/**
 * @file
 * Tests for branch confidence estimation and the Grunwald metrics.
 */

#include <gtest/gtest.h>

#include "bpred/branch_confidence.hh"
#include "bpred/btb.hh"
#include "fsmgen/designer.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{
namespace
{

TEST(ConfidenceMetricsTest, DefinitionsOnKnownCounts)
{
    ConfidenceMetrics m;
    m.branches = 100;
    m.correct = 80;          // 20 wrong
    m.highConfidence = 70;   // 30 low
    m.highAndCorrect = 65;   // 5 confident-but-wrong

    EXPECT_DOUBLE_EQ(m.pvp(), 65.0 / 70.0);
    // low & wrong = 20 - 5 = 15, low = 30.
    EXPECT_DOUBLE_EQ(m.pvn(), 15.0 / 30.0);
    EXPECT_DOUBLE_EQ(m.sensitivity(), 65.0 / 80.0);
    EXPECT_DOUBLE_EQ(m.specificity(), 15.0 / 20.0);
}

TEST(ConfidenceMetricsTest, DegenerateCasesAreZero)
{
    ConfidenceMetrics m;
    EXPECT_DOUBLE_EQ(m.pvp(), 0.0);
    EXPECT_DOUBLE_EQ(m.pvn(), 0.0);
    EXPECT_DOUBLE_EQ(m.sensitivity(), 0.0);
    EXPECT_DOUBLE_EQ(m.specificity(), 0.0);
}

TEST(SudBranchConfidenceTest, TracksPerBranchCorrectness)
{
    SudBranchConfidence estimator(8, SudConfig{3, 1, 3, 2});
    const uint64_t pc = 0x1000;
    EXPECT_FALSE(estimator.confident(pc));
    estimator.update(pc, true);
    estimator.update(pc, true);
    EXPECT_TRUE(estimator.confident(pc));
    estimator.update(pc, false); // decrement 3: drops to 0
    EXPECT_FALSE(estimator.confident(pc));
}

TEST(FsmBranchConfidenceTest, SharedMachinePerEntryState)
{
    Dfa last;
    const int s0 = last.addState(0);
    const int s1 = last.addState(1);
    last.setEdge(s0, 0, s0);
    last.setEdge(s0, 1, s1);
    last.setEdge(s1, 0, s0);
    last.setEdge(s1, 1, s1);
    last.setStart(s0);

    FsmBranchConfidence estimator(6, last);
    estimator.update(0x40, true);
    EXPECT_TRUE(estimator.confident(0x40));
    // A different branch (different hash bucket) is untouched.
    EXPECT_FALSE(estimator.confident(0x44));
}

TEST(MeasureBranchConfidenceTest, CountsAreConsistent)
{
    const BranchTrace trace =
        makeBranchTrace("g721", WorkloadInput::Test, 20000);
    XScaleBtb predictor;
    SudBranchConfidence estimator(10, SudConfig::resetting(4, 4));
    const ConfidenceMetrics m =
        measureBranchConfidence(predictor, estimator, trace);
    EXPECT_EQ(m.branches, trace.size());
    EXPECT_LE(m.highAndCorrect, m.highConfidence);
    EXPECT_LE(m.highAndCorrect, m.correct);
    EXPECT_LE(m.correct, m.branches);
}

TEST(MeasureBranchConfidenceTest, ResettingCounterIsConservative)
{
    // A resetting counter with a high threshold asserts confidence only
    // after long correct runs: PVP must exceed the raw accuracy.
    const BranchTrace trace =
        makeBranchTrace("gsm", WorkloadInput::Test, 40000);
    XScaleBtb predictor;
    SudBranchConfidence estimator(10, SudConfig::resetting(15, 15));
    const ConfidenceMetrics m =
        measureBranchConfidence(predictor, estimator, trace);
    const double accuracy = static_cast<double>(m.correct) /
        static_cast<double>(m.branches);
    EXPECT_GT(m.pvp(), accuracy);
}

TEST(CollectBranchConfidenceModelTest, FsmEstimatorLearnsStructure)
{
    // On vortex, the XScale is wrong in clusters (the correlated
    // branches); an FSM trained on the correctness stream must reach a
    // much better PVN than a resetting counter at similar sensitivity.
    const BranchTrace train =
        makeBranchTrace("vortex", WorkloadInput::Train, 40000);
    const BranchTrace test =
        makeBranchTrace("vortex", WorkloadInput::Test, 40000);

    MarkovModel model(8);
    {
        XScaleBtb predictor;
        collectBranchConfidenceModel(predictor, train, 10, model);
    }
    EXPECT_GT(model.totalObservations(), 10000u);

    FsmDesignOptions design;
    design.order = 8;
    design.patterns.threshold = 0.7;
    const FsmDesignResult designed = designFsm(model, design);

    XScaleBtb p1;
    FsmBranchConfidence fsm_estimator(10, designed.fsm);
    const ConfidenceMetrics fsm_m =
        measureBranchConfidence(p1, fsm_estimator, test);

    XScaleBtb p2;
    SudBranchConfidence sud_estimator(10, SudConfig::resetting(8, 7));
    const ConfidenceMetrics sud_m =
        measureBranchConfidence(p2, sud_estimator, test);

    EXPECT_GT(fsm_m.pvn(), sud_m.pvn() * 1.5);
}

} // anonymous namespace
} // namespace autofsm
