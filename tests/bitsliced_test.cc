/**
 * @file
 * Tests of the bit-sliced replay engine (sim/bitsliced.hh): tally
 * bit-identity against a naive record-by-record reference for every
 * shard count, the warm-up fallback on non-synchronizing machines,
 * lane-group and wide-machine splits, SIMD on/off equality, pool
 * execution, and the batch evaluation stage built on top of it.
 */

#include <gtest/gtest.h>

#include <vector>

#include "automata/dfa.hh"
#include "flow/api.hh"
#include "flow/batch.hh"
#include "sim/bitsliced.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace autofsm
{
namespace
{

/** Step @p fsm over every record, predicting where the mode says to. */
uint64_t
referenceMisses(const Dfa &fsm, const std::vector<int> &outcomes,
                const std::vector<uint32_t> *positions)
{
    uint64_t misses = 0;
    size_t cursor = 0;
    int state = fsm.start();
    for (size_t i = 0; i < outcomes.size(); ++i) {
        bool predicts = positions == nullptr;
        if (positions != nullptr && cursor < positions->size() &&
            (*positions)[cursor] == i) {
            predicts = true;
            ++cursor;
        }
        if (predicts && fsm.output(state) != outcomes[i])
            ++misses;
        state = fsm.next(state, outcomes[i]);
    }
    return misses;
}

std::vector<int>
randomOutcomes(size_t n, uint64_t seed, double taken_bias = 0.5)
{
    Rng rng(seed);
    std::vector<int> outcomes(n);
    for (size_t i = 0; i < n; ++i)
        outcomes[i] = rng.uniform() < taken_bias ? 1 : 0;
    return outcomes;
}

/** Ascending positions hitting roughly every @p stride-th record. */
std::vector<uint32_t>
randomPositions(size_t n, uint64_t seed, uint64_t stride)
{
    Rng rng(seed);
    std::vector<uint32_t> positions;
    for (size_t i = 0; i < n; ++i) {
        if (rng.below(stride) == 0)
            positions.push_back(static_cast<uint32_t>(i));
    }
    return positions;
}

/** The classic non-synchronizing machine: state = parity of 1s seen. */
Dfa
parityMachine()
{
    Dfa fsm;
    const int even = fsm.addState(0);
    const int odd = fsm.addState(1);
    fsm.setEdge(even, 0, even);
    fsm.setEdge(even, 1, odd);
    fsm.setEdge(odd, 0, odd);
    fsm.setEdge(odd, 1, even);
    fsm.setStart(even);
    return fsm;
}

/** A @p states-state shift-register-ish machine (synchronizing). */
Dfa
bigMachine(int states, uint64_t seed)
{
    Rng rng(seed);
    Dfa fsm;
    for (int s = 0; s < states; ++s)
        fsm.addState(static_cast<int>(rng.below(2)));
    for (int s = 0; s < states; ++s) {
        fsm.setEdge(s, 0, static_cast<int>(rng.below(states)));
        fsm.setEdge(s, 1, static_cast<int>(rng.below(states)));
    }
    fsm.setStart(0);
    return fsm;
}

TEST(BitslicedReplay, PackOutcomeWordsLayout)
{
    std::vector<int> outcomes(70, 0);
    outcomes[0] = 1;
    outcomes[63] = 1;
    outcomes[64] = 1;
    outcomes[69] = 1;
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);
    ASSERT_EQ(words.size(), 2u);
    EXPECT_EQ(words[0], (1ULL << 0) | (1ULL << 63));
    EXPECT_EQ(words[1], (1ULL << 0) | (1ULL << 5));
}

TEST(BitslicedReplay, MatchesReferenceAcrossShardCounts)
{
    const size_t kRecords = 40000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 11, 0.6);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    std::vector<Dfa> fsms;
    fsms.push_back(Dfa::saturatingCounter(2));
    fsms.push_back(Dfa::saturatingCounter(3));
    fsms.push_back(Dfa::constant(1));
    fsms.push_back(bigMachine(17, 5));
    std::vector<std::vector<uint32_t>> positions;
    positions.push_back(randomPositions(kRecords, 21, 3));
    positions.push_back(randomPositions(kRecords, 22, 17));
    positions.push_back(randomPositions(kRecords, 23, 64));
    positions.push_back({}); // sparse-empty: never predicts

    std::vector<BitslicedMachine> machines(fsms.size());
    std::vector<uint64_t> expected(fsms.size());
    for (size_t m = 0; m < fsms.size(); ++m) {
        machines[m] = BitslicedMachine{&fsms[m], &positions[m]};
        expected[m] = referenceMisses(fsms[m], outcomes, &positions[m]);
    }
    EXPECT_EQ(expected[3], 0u);

    for (const size_t shards : {1u, 2u, 3u, 7u, 16u}) {
        BitslicedOptions options;
        options.threads = 4;
        options.shards = shards;
        BitslicedReplayStats stats;
        const std::vector<uint64_t> misses = replayMachinesBitsliced(
            machines, words.data(), kRecords, options, &stats);
        EXPECT_EQ(misses, expected) << "shards=" << shards;
        EXPECT_EQ(stats.serialFallbacks, 0u) << "shards=" << shards;
    }
}

TEST(BitslicedReplay, DenseModeMatchesReference)
{
    const size_t kRecords = 20000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 31, 0.7);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    std::vector<Dfa> fsms;
    fsms.push_back(Dfa::saturatingCounter(2));
    fsms.push_back(bigMachine(9, 77));
    std::vector<BitslicedMachine> machines;
    std::vector<uint64_t> expected;
    for (const Dfa &fsm : fsms) {
        machines.push_back(BitslicedMachine{&fsm, nullptr});
        expected.push_back(referenceMisses(fsm, outcomes, nullptr));
    }

    for (const size_t shards : {1u, 2u, 7u}) {
        BitslicedOptions options;
        options.threads = 2;
        options.shards = shards;
        EXPECT_EQ(replayMachinesBitsliced(machines, words.data(),
                                          kRecords, options),
                  expected)
            << "shards=" << shards;
    }
}

TEST(BitslicedReplay, NonSynchronizingMachineFallsBackExactly)
{
    const size_t kRecords = 30000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 41);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    const Dfa parity = parityMachine();
    const Dfa counter = Dfa::saturatingCounter(2);
    const std::vector<uint32_t> pos = randomPositions(kRecords, 42, 5);
    const std::vector<BitslicedMachine> machines = {
        {&parity, &pos}, {&counter, &pos}};
    const std::vector<uint64_t> expected = {
        referenceMisses(parity, outcomes, &pos),
        referenceMisses(counter, outcomes, &pos)};

    BitslicedOptions options;
    options.threads = 4;
    options.shards = 8;
    BitslicedReplayStats stats;
    const std::vector<uint64_t> misses = replayMachinesBitsliced(
        machines, words.data(), kRecords, options, &stats);
    EXPECT_EQ(misses, expected);
    // The parity lane cannot converge in any warm-up window; it must
    // have been replayed serially (and only it).
    EXPECT_EQ(stats.serialFallbacks, 1u);
}

TEST(BitslicedReplay, ManyMachinesSpanMultipleGroups)
{
    const size_t kRecords = 8000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 51, 0.55);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    std::vector<Dfa> fsms;
    std::vector<std::vector<uint32_t>> positions;
    for (int m = 0; m < 90; ++m) {
        fsms.push_back(bigMachine(3 + m % 29, 100 + m));
        positions.push_back(
            randomPositions(kRecords, 200 + m, 2 + m % 13));
    }
    std::vector<BitslicedMachine> machines(fsms.size());
    std::vector<uint64_t> expected(fsms.size());
    for (size_t m = 0; m < fsms.size(); ++m) {
        machines[m] = BitslicedMachine{&fsms[m], &positions[m]};
        expected[m] = referenceMisses(fsms[m], outcomes, &positions[m]);
    }

    BitslicedOptions options;
    options.threads = 3;
    options.shards = 4;
    BitslicedReplayStats stats;
    EXPECT_EQ(replayMachinesBitsliced(machines, words.data(), kRecords,
                                      options, &stats),
              expected);
    EXPECT_EQ(stats.groups, 2u);
}

TEST(BitslicedReplay, WideMachineTakesSerialPath)
{
    const size_t kRecords = 5000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 61);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    const Dfa wide = bigMachine(300, 9); // > 256 states: no lane fits
    const Dfa counter = Dfa::saturatingCounter(2);
    const std::vector<uint32_t> pos = randomPositions(kRecords, 62, 4);
    const std::vector<BitslicedMachine> machines = {
        {&wide, &pos}, {&counter, &pos}};
    const std::vector<uint64_t> expected = {
        referenceMisses(wide, outcomes, &pos),
        referenceMisses(counter, outcomes, &pos)};

    BitslicedOptions options;
    options.threads = 2;
    options.shards = 3;
    EXPECT_EQ(replayMachinesBitsliced(machines, words.data(), kRecords,
                                      options),
              expected);
}

TEST(BitslicedReplay, SimdAndScalarAgree)
{
    const size_t kRecords = 50000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 71, 0.65);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);

    std::vector<Dfa> fsms;
    std::vector<std::vector<uint32_t>> positions;
    for (int m = 0; m < 24; ++m) {
        fsms.push_back(bigMachine(2 + m % 11, 300 + m));
        positions.push_back(
            randomPositions(kRecords, 400 + m, 40 + m));
    }
    std::vector<BitslicedMachine> machines(fsms.size());
    for (size_t m = 0; m < fsms.size(); ++m)
        machines[m] = BitslicedMachine{&fsms[m], &positions[m]};

    BitslicedOptions scalar;
    scalar.threads = 1;
    scalar.allowSimd = false;
    BitslicedReplayStats scalar_stats;
    const std::vector<uint64_t> scalar_misses = replayMachinesBitsliced(
        machines, words.data(), kRecords, scalar, &scalar_stats);
    EXPECT_FALSE(scalar_stats.simd);

    BitslicedOptions simd;
    simd.threads = 2;
    simd.shards = 2;
    BitslicedReplayStats simd_stats;
    const std::vector<uint64_t> simd_misses = replayMachinesBitsliced(
        machines, words.data(), kRecords, simd, &simd_stats);
    EXPECT_EQ(simd_misses, scalar_misses);
    EXPECT_EQ(simd_stats.simd, bitslicedSimdAvailable());
}

TEST(BitslicedReplay, RunsOnCallerPool)
{
    const size_t kRecords = 20000;
    const std::vector<int> outcomes = randomOutcomes(kRecords, 81);
    const std::vector<uint64_t> words = packOutcomeWords(outcomes);
    const Dfa counter = Dfa::saturatingCounter(2);
    const std::vector<BitslicedMachine> machines = {{&counter, nullptr}};
    const std::vector<uint64_t> expected = {
        referenceMisses(counter, outcomes, nullptr)};

    ThreadPool pool(3);
    BitslicedOptions options;
    options.pool = &pool;
    options.shards = 5;
    BitslicedReplayStats stats;
    EXPECT_EQ(replayMachinesBitsliced(machines, words.data(), kRecords,
                                      options, &stats),
              expected);
    EXPECT_EQ(stats.shards, 5u);
}

TEST(BitslicedReplay, EmptyTraceAndValidation)
{
    const Dfa counter = Dfa::saturatingCounter(2);
    const std::vector<BitslicedMachine> machines = {{&counter, nullptr}};
    EXPECT_EQ(replayMachinesBitsliced(machines, nullptr, 0),
              std::vector<uint64_t>{0});

    const std::vector<BitslicedMachine> bad = {{nullptr, nullptr}};
    std::vector<uint64_t> word(1, 0);
    EXPECT_THROW(replayMachinesBitsliced(bad, word.data(), 1),
                 std::invalid_argument);
    EXPECT_TRUE(
        replayMachinesBitsliced({}, word.data(), 1).empty());
}

// --- The batch evaluation stage built on the engine. -------------------

TEST(BatchEvaluate, InlineOutcomesReportDenseMisses)
{
    const std::vector<int> outcomes = randomOutcomes(4000, 91, 0.8);

    DesignRequest request;
    request.id = 7;
    request.outcomes = outcomes;
    request.options.order = 4;
    request.evaluate = true;

    BatchDesigner designer;
    const std::vector<BatchItemResult> results =
        designer.designRequests({request});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    ASSERT_TRUE(results[0].evaluated);
    EXPECT_EQ(results[0].evalBranches, outcomes.size());
    EXPECT_EQ(results[0].evalMisses,
              referenceMisses(results[0].flow.design.fsm, outcomes,
                              nullptr));
    EXPECT_EQ(designer.stats().evaluated, 1u);

    // The response carries the numbers and round-trips through JSON.
    const DesignResponse response =
        designResponseFromItem(request, results[0]);
    EXPECT_TRUE(response.evaluated);
    EXPECT_EQ(response.evalBranches, outcomes.size());
    EXPECT_EQ(response.evalMisses, results[0].evalMisses);
    const DesignResponse parsed =
        designResponseFromJson(toJson(response));
    EXPECT_TRUE(parsed.evaluated);
    EXPECT_EQ(parsed.evalBranches, response.evalBranches);
    EXPECT_EQ(parsed.evalMisses, response.evalMisses);
}

TEST(BatchEvaluate, MatchesSingleRequestService)
{
    const std::vector<int> outcomes = randomOutcomes(3000, 101, 0.3);
    DesignRequest request;
    request.outcomes = outcomes;
    request.options.order = 3;
    request.evaluate = true;

    const DesignResponse single = designService(request);
    ASSERT_TRUE(single.ok) << single.error.detail;
    ASSERT_TRUE(single.evaluated);

    BatchDesigner designer;
    const std::vector<BatchItemResult> results =
        designer.designRequests({request});
    ASSERT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].evalBranches, single.evalBranches);
    EXPECT_EQ(results[0].evalMisses, single.evalMisses);
}

TEST(BatchEvaluate, DedupedDuplicatesStillEvaluate)
{
    const std::vector<int> outcomes = randomOutcomes(2500, 111, 0.6);
    DesignRequest request;
    request.outcomes = outcomes;
    request.options.order = 3;
    request.evaluate = true;

    BatchDesigner designer;
    const std::vector<BatchItemResult> results =
        designer.designRequests({request, request, request});
    ASSERT_EQ(results.size(), 3u);
    for (const BatchItemResult &result : results) {
        ASSERT_TRUE(result.ok);
        ASSERT_TRUE(result.evaluated);
        EXPECT_EQ(result.evalMisses, results[0].evalMisses);
        EXPECT_EQ(result.evalBranches, outcomes.size());
    }
    EXPECT_EQ(designer.stats().cacheHits, 2u);
    EXPECT_EQ(designer.stats().evaluated, 3u);
}

TEST(BatchEvaluate, RequestJsonRoundTripsEvaluateFlag)
{
    DesignRequest request;
    request.outcomes = {1, 0, 1, 1};
    request.evaluate = true;
    const DesignRequest parsed = designRequestFromJson(toJson(request));
    EXPECT_TRUE(parsed.evaluate);

    DesignRequest plain;
    plain.outcomes = {1, 0};
    const std::string json = toJson(plain);
    EXPECT_EQ(json.find("evaluate"), std::string::npos);
    EXPECT_FALSE(designRequestFromJson(json).evaluate);
}

TEST(BatchEvaluate, ModelSourceRejectsEvaluate)
{
    DesignRequest request;
    request.model = MarkovModel(3);
    request.evaluate = true;
    EXPECT_THROW(request.validate(), std::invalid_argument);
    // The non-throwing entry point classifies it instead.
    const DesignResponse response = designService(request);
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.error.kind, "invalid-input");
}

} // anonymous namespace
} // namespace autofsm
