/**
 * @file
 * Tests of the serving stack: the frame codec (golden bytes, malformed
 * input rejection), the strict JSON request/response serialization, the
 * admission controller's class -> budget mapping, the BatchDesigner
 * request engine, and the daemon end to end — concurrent clients
 * getting artifacts bit-identical to the direct library path, graceful
 * drain on shutdown, and failpoint recovery in the accept and dispatch
 * loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "automata/dfa_io.hh"
#include "flow/api.hh"
#include "flow/batch.hh"
#include "flow/design_flow.hh"
#include "flow/design_memo.hh"
#include "fsmgen/designer.hh"
#include "fsmgen/profile.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/net.hh"
#include "serve/server.hh"
#include "sim/packed_trace.hh"
#include "store/store.hh"
#include "support/failpoint.hh"
#include "support/json_parse.hh"
#include "support/rng.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{
namespace
{

using serve::Frame;
using serve::FrameDecoder;
using serve::FrameError;
using serve::FrameType;

/** The Section 4 worked-example trace. */
std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

/** Deterministic pseudo-random traces that design to distinct machines. */
std::vector<int>
syntheticTrace(size_t seed, size_t length = 600)
{
    Rng rng(0x5EE0 ^ (seed * 7919));
    std::vector<int> trace;
    trace.reserve(length);
    for (size_t i = 0; i < length; ++i) {
        const int mode = static_cast<int>((i / 48 + seed) % 3);
        int bit;
        if (mode == 0)
            bit = rng.uniform() < 0.75;
        else if (mode == 1)
            bit = static_cast<int>(i & 1);
        else
            bit = i >= 2 ? (trace[i - 2] ^ 1) : 1;
        trace.push_back(bit);
    }
    return trace;
}

/** An inline-outcomes request the daemon can serve without a resolver. */
DesignRequest
outcomesRequest(uint64_t id, const std::vector<int> &trace)
{
    DesignRequest request;
    request.id = id;
    request.tenant = "test";
    request.outcomes = trace;
    request.options.order = 2;
    return request;
}

/** The artifact of the direct (no daemon) library path. */
std::string
directArtifact(const DesignRequest &request)
{
    return dfaToText(
        DesignFlow(request.options).runOnTrace(request.outcomes).design.fsm);
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, Crc32CheckValue)
{
    EXPECT_EQ(serve::crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(serve::crc32(""), 0u);
    EXPECT_NE(serve::crc32("a"), serve::crc32("b"));
}

TEST(FrameTest, GoldenEncodedBytes)
{
    const std::string frame = serve::encodeFrame(FrameType::DesignRequest,
                                                 "{}");
    ASSERT_EQ(frame.size(), serve::kFrameHeaderBytes + 2);
    const auto byte = [&](size_t i) {
        return static_cast<uint8_t>(frame[i]);
    };
    EXPECT_EQ(byte(0), serve::kFrameVersion);
    EXPECT_EQ(byte(1), static_cast<uint8_t>(FrameType::DesignRequest));
    // Payload length 2, little-endian.
    EXPECT_EQ(byte(2), 2u);
    EXPECT_EQ(byte(3), 0u);
    EXPECT_EQ(byte(4), 0u);
    EXPECT_EQ(byte(5), 0u);
    const uint32_t crc = serve::crc32("{}");
    EXPECT_EQ(byte(6), crc & 0xFF);
    EXPECT_EQ(byte(7), (crc >> 8) & 0xFF);
    EXPECT_EQ(byte(8), (crc >> 16) & 0xFF);
    EXPECT_EQ(byte(9), (crc >> 24) & 0xFF);
    EXPECT_EQ(frame.substr(serve::kFrameHeaderBytes), "{}");
}

TEST(FrameTest, RoundTripAndPipelining)
{
    const std::string wire =
        serve::encodeFrame(FrameType::DesignRequest, "first") +
        serve::encodeFrame(FrameType::MetricsRequest, "") +
        serve::encodeFrame(FrameType::DesignResponse, "third payload");

    // Feed one byte at a time: incomplete frames must yield nullopt,
    // never an error, and all three frames must come out in order.
    FrameDecoder decoder;
    std::vector<Frame> frames;
    for (char c : wire) {
        decoder.feed(std::string_view(&c, 1));
        while (std::optional<Frame> frame = decoder.next())
            frames.push_back(std::move(*frame));
    }
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].type, FrameType::DesignRequest);
    EXPECT_EQ(frames[0].payload, "first");
    EXPECT_EQ(frames[1].type, FrameType::MetricsRequest);
    EXPECT_EQ(frames[1].payload, "");
    EXPECT_EQ(frames[2].type, FrameType::DesignResponse);
    EXPECT_EQ(frames[2].payload, "third payload");
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, RandomizedChunkSplitsDecodeIntact)
{
    // The kernel hands TCP readers arbitrary chunk boundaries; the
    // decoder must reassemble identically no matter where the splits
    // land. Drive it with deterministic random splits across several
    // seeds, including splits inside the header and inside the CRC.
    std::vector<std::string> payloads;
    payloads.push_back("");
    payloads.push_back("x");
    Rng payloadRng(0xF00D);
    for (size_t i = 0; i < 6; ++i) {
        std::string payload(17 + payloadRng.below(900), '\0');
        for (char &c : payload)
            c = static_cast<char>(payloadRng.below(256));
        payloads.push_back(std::move(payload));
    }
    std::string wire;
    for (size_t i = 0; i < payloads.size(); ++i) {
        const FrameType type = (i % 2) == 0 ? FrameType::DesignRequest
                                            : FrameType::DesignResponse;
        wire += serve::encodeFrame(type, payloads[i]);
    }

    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 0x51CE5);
        FrameDecoder decoder;
        std::vector<Frame> frames;
        size_t offset = 0;
        while (offset < wire.size()) {
            const size_t chunk = std::min<size_t>(
                1 + rng.below(37), wire.size() - offset);
            decoder.feed(std::string_view(wire).substr(offset, chunk));
            offset += chunk;
            while (std::optional<Frame> frame = decoder.next())
                frames.push_back(std::move(*frame));
        }
        ASSERT_EQ(frames.size(), payloads.size()) << "seed " << seed;
        for (size_t i = 0; i < payloads.size(); ++i)
            EXPECT_EQ(frames[i].payload, payloads[i])
                << "seed " << seed << " frame " << i;
        EXPECT_EQ(decoder.buffered(), 0u);
    }
}

TEST(FrameTest, TruncatedFrameIsIncompleteNotMalformed)
{
    const std::string frame =
        serve::encodeFrame(FrameType::DesignRequest, "payload");
    FrameDecoder decoder;
    decoder.feed(std::string_view(frame).substr(0, frame.size() - 1));
    EXPECT_EQ(decoder.next(), std::nullopt);
    EXPECT_EQ(decoder.buffered(), frame.size() - 1);
    decoder.feed(std::string_view(frame).substr(frame.size() - 1));
    const std::optional<Frame> decoded = decoder.next();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->payload, "payload");
}

TEST(FrameTest, RejectsWrongVersion)
{
    std::string frame = serve::encodeFrame(FrameType::DesignRequest, "x");
    frame[0] = static_cast<char>(serve::kFrameVersion + 1);
    FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameTest, RejectsUnknownType)
{
    std::string frame = serve::encodeFrame(FrameType::DesignRequest, "x");
    frame[1] = 99;
    FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameTest, RejectsOversizedLength)
{
    // A decoder capped at 16 payload bytes must refuse a 17-byte length
    // from the header alone, before any payload arrives.
    const std::string frame =
        serve::encodeFrame(FrameType::DesignRequest, std::string(17, 'a'));
    FrameDecoder decoder(16);
    decoder.feed(std::string_view(frame).substr(0, serve::kFrameHeaderBytes));
    EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameTest, RejectsCorruptPayloadCrc)
{
    std::string frame = serve::encodeFrame(FrameType::DesignRequest,
                                           "payload");
    frame[frame.size() - 1] ^= 0x01; // flip one payload bit
    FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_THROW(decoder.next(), FrameError);
}

// ---------------------------------------------------------------------------
// Strict JSON layer

TEST(ServeJsonTest, ParserBasics)
{
    const JsonValue value = JsonValue::parse(
        R"({"a": [1, 2.5, -3], "b": "xé\n", "c": true, "d": null})");
    const JsonValue *a = value.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(a->items()[1].asNumber(), 2.5);
    EXPECT_EQ(a->items()[2].asInt(), -3);
    EXPECT_EQ(value.find("b")->asString(), "x\xc3\xa9\n");
    EXPECT_TRUE(value.find("c")->asBool());
    EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(ServeJsonTest, ParserRejectsMalformedDocuments)
{
    EXPECT_THROW(JsonValue::parse("{\"a\": 1, \"a\": 2}"),
                 std::invalid_argument); // duplicate key
    EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"),
                 std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("{\"a\": 01}"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse("[1, 2,]"), std::invalid_argument);
    EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
}

TEST(ServeJsonTest, OptionsRoundTrip)
{
    FsmDesignOptions options;
    options.order = 4;
    options.patterns.threshold = 0.625;
    options.patterns.dontCareMass = 0.05;
    options.patterns.unseenAreDontCare = false;
    options.minimizer = MinimizeAlgo::Exact;
    options.keepStartupStates = true;
    options.budget.deadlineMillis = 1234.5;
    options.budget.maxNfaStates = 77;
    const std::string json = toJson(options);
    const FsmDesignOptions parsed =
        fsmDesignOptionsFromJson(JsonValue::parse(json));
    // A faithful round trip re-serializes to the identical string.
    EXPECT_EQ(toJson(parsed), json);
    EXPECT_EQ(parsed.order, 4);
    EXPECT_EQ(parsed.minimizer, MinimizeAlgo::Exact);
    EXPECT_TRUE(parsed.keepStartupStates);
    EXPECT_DOUBLE_EQ(parsed.budget.deadlineMillis, 1234.5);
}

TEST(ServeJsonTest, RequestRoundTripWithModelSource)
{
    DesignRequest request;
    request.id = 42;
    request.tenant = "team-a";
    request.requestClass = RequestClass::Batch;
    request.options.order = 2;
    request.model = trainMarkovModel(paperTrace(), 2);

    const std::string json = toJson(request);
    const DesignRequest parsed = designRequestFromJson(json);
    EXPECT_EQ(toJson(parsed), json);
    EXPECT_EQ(parsed.id, 42u);
    EXPECT_EQ(parsed.tenant, "team-a");
    EXPECT_EQ(parsed.requestClass, RequestClass::Batch);
    ASSERT_TRUE(parsed.model.has_value());
    EXPECT_TRUE(markovEqual(*parsed.model, *request.model));

    // The round-tripped request designs the same machine.
    EXPECT_EQ(dfaToText(runDesignRequest(parsed).design.fsm),
              dfaToText(runDesignRequest(request).design.fsm));
}

TEST(ServeJsonTest, RequestParsingIsStrict)
{
    DesignRequest request = outcomesRequest(1, paperTrace());
    const std::string json = toJson(request);

    // Unknown top-level field.
    std::string unknown = json;
    unknown.insert(1, "\"surprise\": 1, ");
    EXPECT_THROW(designRequestFromJson(unknown), std::invalid_argument);

    // Out-of-range order (valid range is [1, 24]).
    request.options.order = 25;
    EXPECT_THROW(designRequestFromJson(toJson(request)),
                 std::invalid_argument);
    request.options.order = 0;
    EXPECT_THROW(designRequestFromJson(toJson(request)),
                 std::invalid_argument);

    // Outcome values outside {0,1}.
    EXPECT_THROW(
        designRequestFromJson(
            R"({"id": 1, "tenant": "t", "class": "interactive",)"
            R"( "outcomes": [0, 2]})"),
        std::invalid_argument);
}

TEST(ServeJsonTest, ResponseRoundTrip)
{
    const DesignResponse response =
        designService(outcomesRequest(7, paperTrace()));
    ASSERT_TRUE(response.ok);
    ASSERT_FALSE(response.artifact.empty());

    const std::string json = toJson(response);
    const DesignResponse parsed = designResponseFromJson(json);
    EXPECT_EQ(toJson(parsed), json);
    EXPECT_EQ(parsed.id, 7u);
    EXPECT_EQ(parsed.artifact, response.artifact);
    EXPECT_EQ(parsed.statesFinal, response.statesFinal);
    EXPECT_EQ(parsed.stages.size(), response.stages.size());

    // Failure responses carry the {stage, kind, detail} triple through.
    DesignRequest bad;
    bad.id = 8; // no source at all
    const DesignResponse failed = designService(bad);
    EXPECT_FALSE(failed.ok);
    const DesignResponse failedParsed =
        designResponseFromJson(toJson(failed));
    EXPECT_EQ(failedParsed.error.kind, "invalid-input");
    EXPECT_EQ(failedParsed.error.stage, failed.error.stage);
}

// ---------------------------------------------------------------------------
// Admission control

TEST(AdmissionTest, BudgetForClassMapping)
{
    const FlowBudget interactive = budgetForClass(RequestClass::Interactive);
    const FlowBudget batch = budgetForClass(RequestClass::Batch);
    const FlowBudget bulk = budgetForClass(RequestClass::Bulk);
    EXPECT_FALSE(interactive.unlimited());
    EXPECT_FALSE(batch.unlimited());
    EXPECT_TRUE(bulk.unlimited());
    // Interactive is strictly tighter than batch on every finite axis.
    EXPECT_LT(interactive.deadlineMillis, batch.deadlineMillis);
    EXPECT_LT(interactive.maxNfaStates, batch.maxNfaStates);
    EXPECT_LT(interactive.maxDfaStates, batch.maxDfaStates);
}

TEST(AdmissionTest, AppliesClassBudgetOnlyWhenRequestBudgetUnlimited)
{
    serve::ServeOptions options;
    options.maxQueueDepth = 4;
    const serve::AdmissionController admission(options);

    DesignRequest request = outcomesRequest(1, paperTrace());
    request.requestClass = RequestClass::Interactive;
    serve::AdmissionDecision decision = admission.admit(request, 0, false);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(decision.options.budget.deadlineMillis,
              budgetForClass(RequestClass::Interactive).deadlineMillis);

    // A caller-supplied finite budget is never overridden.
    request.options.budget.deadlineMillis = 99.0;
    decision = admission.admit(request, 0, false);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(decision.options.budget.deadlineMillis, 99.0);

    // With class budgets disabled, unlimited stays unlimited.
    serve::ServeOptions raw = options;
    raw.applyClassBudgets = false;
    request.options.budget = FlowBudget{};
    decision = serve::AdmissionController(raw).admit(request, 0, false);
    ASSERT_TRUE(decision.admitted);
    EXPECT_TRUE(decision.options.budget.unlimited());
}

TEST(AdmissionTest, RefusesFullQueueDrainingAndInvalidRequests)
{
    serve::ServeOptions options;
    options.maxQueueDepth = 2;
    const serve::AdmissionController admission(options);
    const DesignRequest request = outcomesRequest(1, paperTrace());

    serve::AdmissionDecision decision = admission.admit(request, 2, false);
    EXPECT_FALSE(decision.admitted);
    EXPECT_EQ(decision.reason, "budget-exceeded");
    EXPECT_NE(decision.detail.find("queue full"), std::string::npos);

    decision = admission.admit(request, 0, true);
    EXPECT_FALSE(decision.admitted);
    EXPECT_EQ(decision.reason, "budget-exceeded");
    EXPECT_NE(decision.detail.find("draining"), std::string::npos);

    DesignRequest invalid;
    invalid.id = 3; // no behavior source
    decision = admission.admit(invalid, 0, false);
    EXPECT_FALSE(decision.admitted);
    EXPECT_EQ(decision.reason, "invalid-input");
}

// ---------------------------------------------------------------------------
// The unified API and the batch request engine

TEST(DesignApiTest, CompatWrappersMatchRunDesignRequest)
{
    const std::vector<int> trace = paperTrace();
    FsmDesignOptions options;
    options.order = 2;

    DesignRequest request;
    request.outcomes = trace;
    request.options = options;
    const std::string viaApi =
        dfaToText(runDesignRequest(request).design.fsm);
    EXPECT_EQ(dfaToText(designFromTrace(trace, options).fsm), viaApi);
    EXPECT_EQ(dfaToText(designFsm(trainMarkovModel(trace, 2), options).fsm),
              viaApi);
}

TEST(DesignApiTest, RequestsEngineMixedSourcesDedupAndIsolation)
{
    const std::vector<int> trace = syntheticTrace(1);

    std::vector<DesignRequest> requests;
    requests.push_back(outcomesRequest(0, trace));
    // Same behavior as a pre-trained model: dedupes against item 0.
    DesignRequest asModel;
    asModel.id = 1;
    asModel.model = trainMarkovModel(trace, 2);
    asModel.options.order = 2;
    requests.push_back(asModel);
    // Same behavior, different options: must NOT dedupe.
    DesignRequest differentOptions = outcomesRequest(2, trace);
    differentOptions.options.keepStartupStates = true;
    requests.push_back(differentOptions);
    // Invalid request: fails in its own slot only.
    DesignRequest invalid;
    invalid.id = 3;
    requests.push_back(invalid);
    // A distinct behavior, designed independently.
    requests.push_back(outcomesRequest(4, syntheticTrace(2)));

    BatchDesigner designer;
    const std::vector<BatchItemResult> results =
        designer.designRequests(requests);
    ASSERT_EQ(results.size(), 5u);

    ASSERT_TRUE(results[0].ok);
    ASSERT_TRUE(results[1].ok);
    EXPECT_TRUE(results[1].fromCache);
    EXPECT_EQ(dfaToText(results[0].flow.design.fsm),
              dfaToText(results[1].flow.design.fsm));

    ASSERT_TRUE(results[2].ok);
    EXPECT_FALSE(results[2].fromCache);

    EXPECT_FALSE(results[3].ok);
    EXPECT_EQ(results[3].errorKind, "invalid-input");

    ASSERT_TRUE(results[4].ok);
    EXPECT_EQ(dfaToText(results[4].flow.design.fsm),
              directArtifact(requests[4]));

    EXPECT_EQ(designer.stats().items, 5u);
    EXPECT_EQ(designer.stats().cacheHits, 1u);
    EXPECT_EQ(designer.stats().failures, 1u);

    // designResponseFromItem carries both outcomes through.
    const DesignResponse ok = designResponseFromItem(requests[1],
                                                     results[1]);
    EXPECT_TRUE(ok.ok);
    EXPECT_TRUE(ok.fromCache);
    EXPECT_EQ(ok.artifact, dfaToText(results[0].flow.design.fsm));
    const DesignResponse failed = designResponseFromItem(requests[3],
                                                         results[3]);
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.error.kind, "invalid-input");
}

// ---------------------------------------------------------------------------
// The daemon end to end

/** Starts a drain-friendly server on a free port for each test. */
class ServerTest : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::registry().clearAll(); }

    void
    TearDown() override
    {
        failpoint::registry().clearAll();
        // Tests that exercise --store-dir install a global store; reset
        // it (and the in-memory tiers it feeds) so tests stay isolated.
        store::setGlobalStore(nullptr);
        clearDesignMemo();
        clearBranchTraceCache();
        clearPackedTraceCache();
    }

    /** Start with the bit-identical comparison configuration. */
    serve::Server &startServer(serve::ServeOptions options = {})
    {
        options.port = 0;
        options.applyClassBudgets = false;
        server_ = std::make_unique<serve::Server>(options);
        server_->start();
        return *server_;
    }

    serve::Client connect()
    {
        return serve::Client("127.0.0.1", server_->port());
    }

    std::unique_ptr<serve::Server> server_;
};

TEST_F(ServerTest, SingleClientMatchesDirectLibraryPath)
{
    startServer();
    serve::Client client = connect();
    const DesignRequest request = outcomesRequest(11, syntheticTrace(3));
    const DesignResponse response = client.design(request);
    ASSERT_TRUE(response.ok) << response.error.detail;
    EXPECT_EQ(response.id, 11u);
    EXPECT_EQ(response.artifact, directArtifact(request));
    EXPECT_GT(response.statesFinal, 0);
    EXPECT_FALSE(response.stages.empty());

    const std::string metrics = client.fetchMetrics();
    EXPECT_NE(metrics.find("autofsm_serve_queue_depth"), std::string::npos);
    EXPECT_NE(metrics.find("autofsm_serve_requests_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("autofsm_serve_dispatch_batch_size"),
              std::string::npos);
}

TEST_F(ServerTest, EightConcurrentClientsBitIdenticalArtifacts)
{
    constexpr size_t kClients = 8;
    constexpr size_t kRequestsPerClient = 3;
    startServer();

    std::vector<std::string> expected(kClients);
    std::vector<DesignRequest> requests(kClients);
    for (size_t c = 0; c < kClients; ++c) {
        // Half the clients share traces so the dispatcher's batch memo
        // gets exercised under concurrency, half are unique.
        requests[c] = outcomesRequest(100 + c, syntheticTrace(c % 5));
        requests[c].requestClass =
            static_cast<RequestClass>(c % 3); // mixed classes
        expected[c] = directArtifact(requests[c]);
    }

    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                serve::Client client = connect();
                for (size_t r = 0; r < kRequestsPerClient; ++r) {
                    const DesignResponse response =
                        client.design(requests[c]);
                    if (!response.ok) {
                        errors[c] = response.error.detail;
                        return;
                    }
                    if (response.artifact != expected[c]) {
                        errors[c] = "artifact mismatch";
                        return;
                    }
                }
            } catch (const std::exception &e) {
                errors[c] = e.what();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    for (size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(errors[c], "") << "client " << c;
}

TEST_F(ServerTest, MalformedFramesDropOnlyTheirConnection)
{
    startServer();

    // A corrupt frame gets an Error frame back (or a clean close), and
    // the daemon keeps serving other clients afterwards.
    {
        serve::Socket raw = serve::connectTo("127.0.0.1", server_->port());
        std::string corrupt =
            serve::encodeFrame(FrameType::DesignRequest, "{}");
        corrupt[corrupt.size() - 1] ^= 0x01; // break the CRC
        serve::sendAll(raw, corrupt);
        FrameDecoder decoder;
        std::string chunk;
        bool sawError = false;
        while (serve::recvSome(raw, chunk)) {
            decoder.feed(chunk);
            if (std::optional<Frame> frame = decoder.next()) {
                EXPECT_EQ(frame->type, FrameType::Error);
                sawError = true;
                break;
            }
        }
        EXPECT_TRUE(sawError);
    }
    {
        // Garbage that is not even a valid header.
        serve::Socket raw = serve::connectTo("127.0.0.1", server_->port());
        serve::sendAll(raw, std::string(64, '\xff'));
        std::string chunk;
        while (serve::recvSome(raw, chunk)) {
        } // drained until the server closes
    }

    serve::Client client = connect();
    const DesignRequest request = outcomesRequest(21, paperTrace());
    const DesignResponse response = client.design(request);
    ASSERT_TRUE(response.ok) << response.error.detail;
    EXPECT_EQ(response.artifact, directArtifact(request));
}

TEST_F(ServerTest, GracefulDrainAnswersAdmittedRefusesNew)
{
    serve::ServeOptions options;
    options.workers = 2;
    serve::Server &server = startServer(options);

    constexpr size_t kThreads = 4;
    std::atomic<size_t> okResponses{0};
    std::atomic<size_t> drainRejections{0};
    std::atomic<size_t> silentDrops{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            try {
                serve::Client client = connect();
                for (uint64_t i = 0; !stop.load(); ++i) {
                    const DesignResponse response = client.design(
                        outcomesRequest(1000 * t + i, syntheticTrace(t)));
                    if (response.ok) {
                        okResponses.fetch_add(1);
                    } else if (response.error.detail.find("draining") !=
                               std::string::npos) {
                        drainRejections.fetch_add(1);
                        return;
                    } else {
                        silentDrops.fetch_add(1);
                        return;
                    }
                }
            } catch (const std::exception &) {
                // Connection closed after the drain: a request the client
                // had not finished WRITING is fine to lose; an admitted
                // one is not, and admitted ones always got a response
                // above because Client::design is synchronous.
            }
        });
    }

    // Let the clients get some work admitted, then drain.
    while (okResponses.load() < kThreads)
        std::this_thread::yield();
    server.shutdown();
    stop.store(true);
    for (std::thread &t : clients)
        t.join();

    EXPECT_GE(okResponses.load(), kThreads);
    EXPECT_EQ(silentDrops.load(), 0u);

    // Post-drain connections are refused outright (accept is down).
    EXPECT_THROW(serve::Client("127.0.0.1", server.port()),
                 serve::NetError);
}

TEST_F(ServerTest, AcceptLoopRecoversFromInjectedFaults)
{
    startServer();
    // Arm AFTER start: the accept loop evaluates the failpoint once per
    // iteration, recovers (counts the fault), and keeps accepting.
    failpoint::registry().set("serve.accept", "fail-times:2");

    serve::Client client = connect();
    const DesignRequest request = outcomesRequest(31, paperTrace());
    const DesignResponse response = client.design(request);
    ASSERT_TRUE(response.ok) << response.error.detail;

    const std::string metrics = client.fetchMetrics();
    EXPECT_NE(metrics.find("autofsm_serve_accept_faults_total"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Request-scoped observability

/** True when @p spans is one connected tree rooted at a "serve.request". */
::testing::AssertionResult
isConnectedRequestTree(const std::vector<obs::SpanRecord> &spans)
{
    if (spans.empty())
        return ::testing::AssertionFailure() << "no spans";
    std::set<uint64_t> ids;
    size_t roots = 0;
    for (const obs::SpanRecord &span : spans) {
        ids.insert(span.id);
        if (span.parent == 0) {
            ++roots;
            if (span.name != "serve.request") {
                return ::testing::AssertionFailure()
                       << "root span is " << span.name;
            }
        }
    }
    if (roots != 1) {
        return ::testing::AssertionFailure()
               << roots << " roots, expected exactly 1";
    }
    for (const obs::SpanRecord &span : spans) {
        if (span.parent != 0 && ids.count(span.parent) == 0) {
            return ::testing::AssertionFailure()
                   << "orphan span " << span.name << " (id " << span.id
                   << ") names absent parent " << span.parent;
        }
    }
    return ::testing::AssertionSuccess();
}

TEST_F(ServerTest, TracedRequestReturnsConnectedSpanTree)
{
    // Earlier tests may have memoized this design; a memo hit would
    // legitimately skip the subset/minimize stages we assert on below.
    clearDesignMemo();
    startServer();
    serve::Client client = connect();
    DesignRequest request = outcomesRequest(51, syntheticTrace(5));
    request.trace = true;
    const DesignResponse response = client.design(request);
    ASSERT_TRUE(response.ok) << response.error.detail;
    EXPECT_EQ(response.artifact, directArtifact(request));

#ifdef AUTOFSM_NO_TELEMETRY
    EXPECT_TRUE(response.trace.empty());
#else
    EXPECT_TRUE(isConnectedRequestTree(response.trace));
    // The tree covers the executed flow stages, not just serve spans.
    std::set<std::string> names;
    for (const obs::SpanRecord &span : response.trace)
        names.insert(span.name);
    EXPECT_TRUE(names.count("batch.resolve"));
    EXPECT_TRUE(names.count("batch.item"));
    EXPECT_TRUE(names.count("flow.run"));
    EXPECT_TRUE(names.count("flow.subset"));

    // And it strict-JSON round-trips through the response wire format.
    const DesignResponse parsed =
        designResponseFromJson(toJson(response));
    ASSERT_EQ(parsed.trace.size(), response.trace.size());
    for (size_t i = 0; i < parsed.trace.size(); ++i) {
        EXPECT_EQ(parsed.trace[i].id, response.trace[i].id);
        EXPECT_EQ(parsed.trace[i].parent, response.trace[i].parent);
        EXPECT_EQ(parsed.trace[i].name, response.trace[i].name);
        EXPECT_EQ(parsed.trace[i].thread, response.trace[i].thread);
    }
    EXPECT_EQ(toJson(parsed), toJson(response));
#endif
}

TEST_F(ServerTest, UntracedRequestCarriesNoSpans)
{
    startServer();
    serve::Client client = connect();
    const DesignResponse response =
        client.design(outcomesRequest(52, syntheticTrace(6)));
    ASSERT_TRUE(response.ok) << response.error.detail;
    EXPECT_TRUE(response.trace.empty());
}

TEST_F(ServerTest, ConcurrentTracedRequestsOwnDisjointTrees)
{
#ifdef AUTOFSM_NO_TELEMETRY
    GTEST_SKIP() << "built with AUTOFSM_NO_TELEMETRY";
#else
    constexpr size_t kClients = 4;
    startServer();

    std::vector<DesignResponse> responses(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            try {
                serve::Client client = connect();
                // Two pairs share a trace so batch dedup is in play.
                DesignRequest request =
                    outcomesRequest(60 + c, syntheticTrace(c % 2));
                request.trace = true;
                responses[c] = client.design(request);
            } catch (const std::exception &e) {
                errors[c] = e.what();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    std::set<uint64_t> allSpanIds;
    size_t total = 0;
    for (size_t c = 0; c < kClients; ++c) {
        ASSERT_EQ(errors[c], "") << "client " << c;
        ASSERT_TRUE(responses[c].ok) << responses[c].error.detail;
        EXPECT_TRUE(isConnectedRequestTree(responses[c].trace))
            << "client " << c;
        for (const obs::SpanRecord &span : responses[c].trace)
            allSpanIds.insert(span.id);
        total += responses[c].trace.size();
    }
    // No span leaked into more than one request's tree.
    EXPECT_EQ(allSpanIds.size(), total);
#endif
}

TEST_F(ServerTest, SlowRequestLandsInDebugRing)
{
    serve::ServeOptions options;
    options.slowRequestFraction = 0.5;
    startServer(options);
    serve::Client client = connect();

    // A deadline this tight is blown by any real design: the request
    // must show up in the slow ring with its degradation state.
    DesignRequest request = outcomesRequest(71, syntheticTrace(7));
    request.options.budget.deadlineMillis = 0.0001;
    const DesignResponse response = client.design(request);
    (void)response; // ok, degraded, or error — all legal outcomes here

    const std::string debug = client.fetchDebug();
    const JsonValue parsed = JsonValue::parse(debug); // strict
    const JsonValue *slow = parsed.find("slowRequests");
    ASSERT_NE(slow, nullptr);
    ASSERT_FALSE(slow->items().empty());
    const JsonValue &capture = slow->items()[0];
    EXPECT_EQ(capture.find("id")->asInt(), 71);
    EXPECT_EQ(capture.find("tenant")->asString(), "test");
    EXPECT_EQ(capture.find("class")->asString(), "interactive");
    EXPECT_DOUBLE_EQ(capture.find("deadlineMillis")->asNumber(), 0.0001);
    EXPECT_GE(capture.find("totalMillis")->asNumber(),
              capture.find("queueMillis")->asNumber());
    ASSERT_NE(capture.find("outcome"), nullptr);
    ASSERT_NE(capture.find("degraded"), nullptr);
#ifndef AUTOFSM_NO_TELEMETRY
    // Slow-ring sampling recorded the span tree without an opt-in.
    ASSERT_NE(capture.find("spans"), nullptr);
    EXPECT_FALSE(capture.find("spans")->items().empty());
#endif

    // A request inside its deadline does not join the ring.
    const size_t before = slow->items().size();
    const DesignResponse fine =
        client.design(outcomesRequest(72, syntheticTrace(8)));
    ASSERT_TRUE(fine.ok) << fine.error.detail;
    const JsonValue again = JsonValue::parse(client.fetchDebug());
    EXPECT_EQ(again.find("slowRequests")->items().size(), before);
}

TEST_F(ServerTest, RequestDurationHistogramInScrape)
{
    startServer();
    serve::Client client = connect();
    const DesignResponse response =
        client.design(outcomesRequest(81, syntheticTrace(9)));
    ASSERT_TRUE(response.ok) << response.error.detail;

    const std::string metrics = client.fetchMetrics();
    EXPECT_NE(
        metrics.find("autofsm_serve_request_duration_seconds_bucket"
                     "{class=\"interactive\",outcome=\"ok\""),
        std::string::npos);
    // The queue-wait vs service-time split is scraped alongside it
    // (bucket lines carry the le label after the class).
    EXPECT_NE(metrics.find("autofsm_serve_request_queue_seconds_bucket"
                           "{class=\"interactive\",le="),
              std::string::npos);
    EXPECT_NE(metrics.find("autofsm_serve_request_service_seconds_bucket"
                           "{class=\"interactive\",le="),
              std::string::npos);
    // Every class/outcome cell is pre-registered, so dashboards see
    // zero-valued series before traffic arrives.
    EXPECT_NE(
        metrics.find("autofsm_serve_request_duration_seconds_bucket"
                     "{class=\"bulk\",outcome=\"rejected\""),
        std::string::npos);
}

TEST_F(ServerTest, DispatchFaultFailsOneJobStructurally)
{
    startServer();
    serve::Client client = connect();

    failpoint::registry().set("serve.dispatch", "fail-times:1");
    const DesignRequest request = outcomesRequest(41, syntheticTrace(4));
    const DesignResponse faulted = client.design(request);
    EXPECT_FALSE(faulted.ok);
    EXPECT_EQ(faulted.error.stage, "serve.dispatch");
    EXPECT_EQ(faulted.error.kind, "injected");

    // The failpoint is exhausted: the same connection now succeeds.
    const DesignResponse recovered = client.design(request);
    ASSERT_TRUE(recovered.ok) << recovered.error.detail;
    EXPECT_EQ(recovered.artifact, directArtifact(request));
}

// ---------------------------------------------------------------------------
// Client retry policy and the persistent store behind the daemon

TEST(ClientRetryTest, ConnectRetriesExhaustToNetError)
{
    // Grab a free port, then close the listener: every connect attempt
    // is refused, so the retrying constructor must back off the
    // configured number of times and then surface NetError.
    uint16_t deadPort = 0;
    { serve::Socket listener = serve::listenOn(0, &deadPort); }

    serve::ClientOptions options;
    options.connectAttempts = 3;
    options.backoffInitialMs = 1;
    options.backoffMaxMs = 4;
    EXPECT_THROW(serve::Client("127.0.0.1", deadPort, options),
                 serve::NetError);
}

TEST_F(ServerTest, ClientWithTimeoutAndRetriesMatchesDirectPath)
{
    startServer();
    serve::ClientOptions options;
    options.connectAttempts = 3;
    options.backoffInitialMs = 1;
    options.timeoutMs = 30000;
    serve::Client client("127.0.0.1", server_->port(), options);

    const DesignRequest request = outcomesRequest(91, syntheticTrace(9));
    const DesignResponse response = client.design(request);
    ASSERT_TRUE(response.ok) << response.error.detail;
    EXPECT_EQ(response.artifact, directArtifact(request));
}

TEST_F(ServerTest, WarmRestartServesIdenticalArtifactFromStore)
{
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "autofsm-servestore-XXXXXX")
                           .string();
    const std::string dir = ::mkdtemp(tmpl.data());
    ASSERT_FALSE(dir.empty());

    serve::ServeOptions options;
    options.storeDir = dir;
    const DesignRequest request = outcomesRequest(81, syntheticTrace(8));

    startServer(options);
    DesignResponse first;
    {
        serve::Client client = connect();
        first = client.design(request);
    }
    ASSERT_TRUE(first.ok) << first.error.detail;
    server_->shutdown();
    server_.reset();

    // Simulate a process restart: drop every in-memory tier so the
    // disk store is the only place the artifact can come from.
    store::setGlobalStore(nullptr);
    clearDesignMemo();
    clearBranchTraceCache();
    clearPackedTraceCache();

    startServer(options);
    serve::Client client = connect();
    const DesignResponse warmed = client.design(request);
    ASSERT_TRUE(warmed.ok) << warmed.error.detail;
    EXPECT_EQ(warmed.artifact, first.artifact);
    EXPECT_EQ(warmed.statesFinal, first.statesFinal);

    // The recovery pass validated the entry at open, so serving it
    // counts as a warm hit — the metric the CI recovery job greps.
    const std::shared_ptr<store::ArtifactStore> store =
        store::globalStore();
    ASSERT_TRUE(store);
    EXPECT_GT(store->stats().warmHits, 0u);
    EXPECT_NE(client.fetchMetrics().find("autofsm_store_warm_hits_total"),
              std::string::npos);

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

} // namespace
} // namespace autofsm
