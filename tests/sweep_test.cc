/**
 * @file
 * Sweep-engine tests: the packed trace round-trips, the devirtualized
 * kernels and the transposed custom replay are bit-identical to the
 * virtual-dispatch seed path, parallel sweeps match serial ones, and
 * the process-wide trace cache is safe under concurrent access.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "bpred/trainer.hh"
#include "fsmgen/predictor_fsm.hh"
#include "sim/figure5.hh"
#include "sim/nested_sweep.hh"
#include "sim/packed_trace.hh"
#include "sim/sweep.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{
namespace
{

constexpr size_t kBranches = 20000;

TEST(PackedTraceTest, RoundTripsEveryRecord)
{
    const BranchTrace trace =
        makeBranchTrace("gsm", WorkloadInput::Train, kBranches);
    const PackedTrace packed(trace);

    ASSERT_EQ(packed.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(packed.pc(i), trace[i].pc);
        EXPECT_EQ(packed.taken(i), trace[i].taken);
    }
}

TEST(SweepKernelTest, GoldenMatchAgainstVirtualSimulation)
{
    for (const std::string &name : branchBenchmarkNames()) {
        const BranchTrace trace =
            makeBranchTrace(name, WorkloadInput::Test, kBranches);
        const PackedTrace packed(trace);

        {
            XScaleBtb seed, sweep;
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(sweep, packed);
            EXPECT_EQ(a.branches, b.branches) << name;
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name;
        }
        {
            Gshare seed, sweep;
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(sweep, packed);
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name;
        }
        {
            LocalGlobalChooser seed, sweep;
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(sweep, packed);
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name;
        }
    }
}

// The kernel-state replicas must be indistinguishable from the
// predictor classes in every output the experiments read: mispredict
// counts, names, areas, and (for the BTB) lookup/hit tallies.
TEST(SweepKernelTest, KernelReplicasMatchPredictorClasses)
{
    for (const std::string &name : branchBenchmarkNames()) {
        const BranchTrace trace =
            makeBranchTrace(name, WorkloadInput::Test, kBranches);
        const PackedTrace packed(trace);

        {
            XScaleBtb seed;
            BtbKernel kernel;
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(kernel, packed);
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name;
            EXPECT_EQ(seed.name(), kernel.name());
            EXPECT_EQ(seed.area(), kernel.area());
            EXPECT_EQ(seed.lookups(), kernel.lookups()) << name;
            EXPECT_EQ(seed.hits(), kernel.hits()) << name;
        }
        for (int log2 : {8, 12, 16}) {
            GshareConfig config;
            config.log2Entries = log2;
            config.historyBits = std::min(log2, 16);
            Gshare seed(config);
            GshareKernel kernel(config);
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(kernel, packed);
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name << " " << log2;
            EXPECT_EQ(seed.name(), kernel.name());
            EXPECT_EQ(seed.area(), kernel.area());
        }
        for (int log2 : {8, 10, 13}) {
            LgcConfig config;
            config.log2Entries = log2;
            LocalGlobalChooser seed(config);
            LgcKernel kernel(config);
            const BpredSimResult a = simulateBranchPredictor(seed, trace);
            const BpredSimResult b = sweepKernel(kernel, packed);
            EXPECT_EQ(a.mispredicts, b.mispredicts) << name << " " << log2;
            EXPECT_EQ(seed.name(), kernel.name());
            EXPECT_EQ(seed.area(), kernel.area());
        }
    }
}

TEST(SweepKernelTest, LgcKernelRejectsOversizedGeometry)
{
    LgcConfig config;
    config.log2Entries = 17;
    EXPECT_THROW(LgcKernel{config}, std::length_error);
}

TEST(SweepKernelTest, CompatibilityInstantiationUsesVirtualApi)
{
    const BranchTrace trace =
        makeBranchTrace("compress", WorkloadInput::Test, kBranches);
    const PackedTrace packed(trace);

    Gshare concrete;
    BranchPredictor &virt = concrete;
    Gshare direct;
    const BpredSimResult a = sweepKernel<BranchPredictor>(virt, packed);
    const BpredSimResult b = sweepKernel(direct, packed);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(SweepKernelTest, BatchMatchesIndividualRuns)
{
    const BranchTrace trace =
        makeBranchTrace("vortex", WorkloadInput::Test, kBranches);
    const PackedTrace packed(trace);

    std::vector<int> sizes = {8, 10, 12};
    std::vector<Gshare> batch;
    for (int log2 : sizes) {
        GshareConfig config;
        config.log2Entries = log2;
        config.historyBits = log2;
        batch.emplace_back(config);
    }
    const std::vector<BpredSimResult> rs = sweepKernelBatch(batch, packed);
    ASSERT_EQ(rs.size(), sizes.size());

    for (size_t i = 0; i < sizes.size(); ++i) {
        GshareConfig config;
        config.log2Entries = sizes[i];
        config.historyBits = sizes[i];
        Gshare lone(config);
        const BpredSimResult r = sweepKernel(lone, packed);
        EXPECT_EQ(rs[i].branches, r.branches);
        EXPECT_EQ(rs[i].mispredicts, r.mispredicts);
    }
}

TEST(CustomReplayTest, MatchesDirectMachineStepping)
{
    const BranchTrace train =
        makeBranchTrace("ijpeg", WorkloadInput::Train, kBranches);
    CustomTrainingOptions options;
    options.maxCustomBranches = 4;
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(train, options);
    ASSERT_FALSE(trained.empty());

    // Reference: the seed loop stepping every machine on every record.
    const BtbConfig btb_config;
    const AreaCosts costs;
    XScaleBtb btb(btb_config, costs);
    std::vector<PredictorFsm> machines;
    std::unordered_map<uint64_t, size_t> machine_of;
    for (size_t i = 0; i < trained.size(); ++i) {
        machines.emplace_back(trained[i].design.fsm);
        machine_of.emplace(trained[i].pc, i);
    }
    uint64_t btb_misses_total = 0;
    std::vector<uint64_t> btb_misses(trained.size(), 0);
    std::vector<uint64_t> fsm_misses(trained.size(), 0);
    for (const auto &record : train) {
        const bool wrong = btb.predict(record.pc) != record.taken;
        btb_misses_total += wrong;
        const auto it = machine_of.find(record.pc);
        if (it != machine_of.end()) {
            btb_misses[it->second] += wrong;
            fsm_misses[it->second] +=
                (machines[it->second].predict() != 0) != record.taken;
        }
        btb.update(record.pc, record.taken);
        for (auto &machine : machines)
            machine.update(record.taken ? 1 : 0);
    }

    std::vector<CustomSweepMachine> sweep_machines;
    for (const auto &branch : trained)
        sweep_machines.push_back({branch.pc, &branch.design.fsm});
    const PackedTrace packed(train);
    const CustomReplayCounts counts = replayCustomMachines(
        sweep_machines, packed, btb_config, costs, 1);

    EXPECT_EQ(counts.btbMissesTotal, btb_misses_total);
    EXPECT_EQ(counts.btbMisses, btb_misses);
    EXPECT_EQ(counts.fsmMisses, fsm_misses);
    EXPECT_EQ(counts.btbArea, btb.area());
}

// The training pass records the baseline tallies and branch positions
// the custom-same replay needs; driving the replay from that profile
// must yield exactly what re-simulating the baseline BTB would.
TEST(CustomReplayTest, ProfileDrivenReplayMatchesBtbPass)
{
    const BranchTrace train =
        makeBranchTrace("gsm", WorkloadInput::Train, kBranches);
    CustomTrainingOptions options;
    options.maxCustomBranches = 4;
    BaselineBtbProfile profile;
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(train, options, &profile);
    ASSERT_FALSE(trained.empty());
    ASSERT_TRUE(profile.valid);

    std::vector<CustomSweepMachine> machines;
    for (const auto &branch : trained)
        machines.push_back({branch.pc, &branch.design.fsm});
    const PackedTrace packed(train);

    const AreaCosts costs;
    const CustomReplayCounts from_pass = replayCustomMachines(
        machines, packed, options.baseline, costs, 1);

    CustomBaselineProfile baseline;
    baseline.btbMissesTotal = profile.mispredicts;
    baseline.btbLookups = profile.lookups;
    baseline.btbHits = profile.hits;
    baseline.btbArea = profile.area;
    baseline.btbName = profile.name;
    for (const auto &branch : trained) {
        baseline.btbMisses.push_back(branch.baselineMisses);
        baseline.positions.push_back(&branch.trainPositions);
    }
    const CustomReplayCounts from_profile =
        replayCustomMachines(machines, packed, baseline, 1);

    EXPECT_EQ(from_pass.btbMissesTotal, from_profile.btbMissesTotal);
    EXPECT_EQ(from_pass.btbMisses, from_profile.btbMisses);
    EXPECT_EQ(from_pass.fsmMisses, from_profile.fsmMisses);
    EXPECT_EQ(from_pass.btbArea, from_profile.btbArea);
    EXPECT_EQ(from_pass.btbName, from_profile.btbName);
    EXPECT_EQ(from_pass.btbLookups, from_profile.btbLookups);
    EXPECT_EQ(from_pass.btbHits, from_profile.btbHits);
}

/** Series must agree bit for bit, label for label. */
void
expectSeriesIdentical(const AreaMissSeries &a, const AreaMissSeries &b)
{
    EXPECT_EQ(a.label, b.label);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].area, b.points[i].area);
        EXPECT_EQ(a.points[i].missRate, b.points[i].missRate);
        EXPECT_EQ(a.points[i].label, b.points[i].label);
    }
}

// TSan covers this test in CI: the parallel run exercises concurrent
// sweep points and custom replays over the shared packed trace.
TEST(SweepParallelTest, ParallelSweepMatchesSerial)
{
    const BranchTrace train =
        makeBranchTrace("g721", WorkloadInput::Train, kBranches);
    const BranchTrace test =
        makeBranchTrace("g721", WorkloadInput::Test, kBranches);

    Fig5Options options;
    options.branchesPerRun = kBranches;
    options.gshareLog2 = {8, 12};
    options.lgcLog2 = {8, 12};
    options.training.maxCustomBranches = 4;
    BaselineBtbProfile profile;
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(train, options.training, &profile);

    options.sweepThreads = 1;
    const Fig5Benchmark serial =
        evaluateFigure5("g721", train, test, trained, options);
    options.sweepThreads = 4;
    const Fig5Benchmark parallel =
        evaluateFigure5("g721", train, test, trained, options);

    EXPECT_EQ(serial.xscale.area, parallel.xscale.area);
    EXPECT_EQ(serial.xscale.missRate, parallel.xscale.missRate);
    expectSeriesIdentical(serial.gshare, parallel.gshare);
    expectSeriesIdentical(serial.lgc, parallel.lgc);
    expectSeriesIdentical(serial.customSame, parallel.customSame);
    expectSeriesIdentical(serial.customDiff, parallel.customDiff);

    // The profile-driven custom-same path must not change anything
    // either (parallel + profile is what runFigure5 actually runs).
    const Fig5Benchmark profiled =
        evaluateFigure5("g721", PackedTrace(train), PackedTrace(test),
                        trained, options, &profile);
    EXPECT_EQ(serial.xscale.area, profiled.xscale.area);
    EXPECT_EQ(serial.xscale.missRate, profiled.xscale.missRate);
    expectSeriesIdentical(serial.customSame, profiled.customSame);
    expectSeriesIdentical(serial.customDiff, profiled.customDiff);
}

TEST(TraceCacheTest, ConcurrentCallersShareOneBuild)
{
    clearBranchTraceCache();

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const BranchTrace>> got(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&got, t] {
            got[static_cast<size_t>(t)] =
                cachedBranchTrace("gs", WorkloadInput::Train, kBranches);
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[static_cast<size_t>(t)], got[0]);
    ASSERT_NE(got[0], nullptr);
    EXPECT_EQ(got[0]->size(),
              makeBranchTrace("gs", WorkloadInput::Train, kBranches).size());

    const BranchTraceCacheStats stats = branchTraceCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.cachedBranches, got[0]->size());

    // Distinct keys are distinct entries; repeats hit.
    const auto test_input =
        cachedBranchTrace("gs", WorkloadInput::Test, kBranches);
    EXPECT_NE(test_input, got[0]);
    const auto again =
        cachedBranchTrace("gs", WorkloadInput::Train, kBranches);
    EXPECT_EQ(again, got[0]);
    EXPECT_EQ(branchTraceCacheStats().misses, 2u);

    clearBranchTraceCache();
    EXPECT_EQ(branchTraceCacheStats().entries, 0u);
}

TEST(TraceCacheTest, LruCapEvictsColdestCompletedEntry)
{
    clearBranchTraceCache();
    const size_t previous = setBranchTraceCacheCapacity(2);

    const auto a = cachedBranchTrace("gs", WorkloadInput::Train, 2000);
    const auto b = cachedBranchTrace("gs", WorkloadInput::Test, 2000);
    // Touch 'a' so 'b' is the LRU victim when 'c' lands.
    cachedBranchTrace("gs", WorkloadInput::Train, 2000);
    const auto c = cachedBranchTrace("gsm", WorkloadInput::Train, 2000);
    (void)c;

    BranchTraceCacheStats stats = branchTraceCacheStats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.capacity, 2u);

    // 'a' survived (it was touched); re-requesting it hits...
    const uint64_t hits_before = branchTraceCacheStats().hits;
    const auto a2 = cachedBranchTrace("gs", WorkloadInput::Train, 2000);
    EXPECT_EQ(a2, a);
    EXPECT_EQ(branchTraceCacheStats().hits, hits_before + 1);
    // ...while the evicted 'b' rebuilds (a fresh allocation; the old
    // shared_ptr stays valid).
    const auto b2 = cachedBranchTrace("gs", WorkloadInput::Test, 2000);
    EXPECT_NE(b2, b);
    EXPECT_EQ(b2->size(), b->size());

    setBranchTraceCacheCapacity(previous);
    clearBranchTraceCache();
}

TEST(PackedTraceCacheTest, LruCapEvictsColdestPacking)
{
    clearPackedTraceCache();
    const size_t previous = setPackedTraceCacheCapacity(2);

    auto trace = [](uint64_t seed) {
        auto t = std::make_shared<BranchTrace>();
        for (int i = 0; i < 100; ++i)
            t->push_back({seed * 1000 + static_cast<uint64_t>(i % 7) * 4,
                          i % 3 == 0});
        return std::shared_ptr<const BranchTrace>(std::move(t));
    };
    const auto t1 = trace(1);
    const auto t2 = trace(2);
    const auto t3 = trace(3);

    const auto p1 = cachedPackedTrace(t1);
    const auto p2 = cachedPackedTrace(t2);
    cachedPackedTrace(t1); // touch t1: t2 becomes the victim
    const auto p3 = cachedPackedTrace(t3);
    (void)p3;

    PackedTraceCacheStats stats = packedTraceCacheStats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.capacity, 2u);

    EXPECT_EQ(cachedPackedTrace(t1), p1);
    const auto p2_again = cachedPackedTrace(t2);
    EXPECT_NE(p2_again, p2); // rebuilt after eviction
    EXPECT_EQ(p2_again->size(), p2->size());

    setPackedTraceCacheCapacity(previous);
    clearPackedTraceCache();
}

/** The Figure-5 sweep shape plus the XScale BTB point. */
NestedSweepRequest
figure5Request()
{
    NestedSweepRequest request;
    for (int log2 : {8, 10, 12, 14, 16}) {
        GshareConfig config;
        config.log2Entries = log2;
        config.historyBits = std::min(log2, 16);
        request.gshare.push_back(config);
    }
    for (int log2 : {8, 10, 12, 13}) {
        LgcConfig config;
        config.log2Entries = log2;
        request.lgc.push_back(config);
    }
    request.btb.push_back(BtbConfig{});
    return request;
}

/**
 * Every nested-sweep point must match a per-config sweepKernelRaw run
 * bit for bit: mispredicts, names, areas, and BTB lookup/hit tallies.
 */
void
expectNestedMatchesKernels(const NestedSweepRequest &request,
                           const PackedTrace &packed,
                           const NestedSweepOptions &options,
                           const std::string &context)
{
    const AreaCosts costs;
    const NestedSweepResult swept =
        nestedSweep(request, packed, costs, options);

    ASSERT_EQ(swept.gshare.size(), request.gshare.size()) << context;
    for (size_t i = 0; i < request.gshare.size(); ++i) {
        GshareKernel kernel(request.gshare[i], costs);
        const BpredSimResult oracle = sweepKernelRaw(kernel, packed);
        EXPECT_EQ(swept.gshare[i].result.branches, oracle.branches)
            << context << " gshare " << i;
        EXPECT_EQ(swept.gshare[i].result.mispredicts, oracle.mispredicts)
            << context << " gshare " << i;
        EXPECT_EQ(swept.gshare[i].name, kernel.name());
        EXPECT_EQ(swept.gshare[i].area, kernel.area());
    }
    ASSERT_EQ(swept.lgc.size(), request.lgc.size()) << context;
    for (size_t i = 0; i < request.lgc.size(); ++i) {
        LgcKernel kernel(request.lgc[i], costs);
        const BpredSimResult oracle = sweepKernelRaw(kernel, packed);
        EXPECT_EQ(swept.lgc[i].result.mispredicts, oracle.mispredicts)
            << context << " lgc " << i;
        EXPECT_EQ(swept.lgc[i].name, kernel.name());
        EXPECT_EQ(swept.lgc[i].area, kernel.area());
    }
    ASSERT_EQ(swept.btb.size(), request.btb.size()) << context;
    for (size_t i = 0; i < request.btb.size(); ++i) {
        BtbKernel kernel(request.btb[i], costs);
        const BpredSimResult oracle = sweepKernelRaw(kernel, packed);
        EXPECT_EQ(swept.btb[i].result.mispredicts, oracle.mispredicts)
            << context << " btb " << i;
        EXPECT_EQ(swept.btb[i].lookups, kernel.lookups())
            << context << " btb " << i;
        EXPECT_EQ(swept.btb[i].hits, kernel.hits())
            << context << " btb " << i;
        EXPECT_EQ(swept.btb[i].name, kernel.name());
        EXPECT_EQ(swept.btb[i].area, kernel.area());
    }
}

// The acceptance matrix: every Figure-5 point bit-identical to the
// per-config kernels across shard counts (odd ones included), thread
// counts, and both SIMD settings. The partition must be invisible.
TEST(NestedSweepTest, MatchesPerConfigKernelsAcrossShardsAndSimd)
{
    const BranchTrace trace =
        makeBranchTrace("compress", WorkloadInput::Test, kBranches);
    const PackedTrace packed(trace);
    const NestedSweepRequest request = figure5Request();

    for (unsigned threads : {1u, 3u}) {
        for (size_t shards : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                              size_t{16}}) {
            for (bool simd : {false, true}) {
                NestedSweepOptions options;
                options.threads = threads;
                options.shards = shards;
                options.allowSimd = simd;
                expectNestedMatchesKernels(
                    request, packed, options,
                    "threads=" + std::to_string(threads) +
                        " shards=" + std::to_string(shards) +
                        " simd=" + std::to_string(simd));
            }
        }
    }
}

// Traces shorter than any warm-up window, word-boundary straddlers,
// and a non-power-of-two count ending mid-word: the engine recovers
// history directly from the packed outcome words, so even n=1 must be
// exact for every shard count.
TEST(NestedSweepTest, ShortAndMidWordTracesStayExact)
{
    const NestedSweepRequest request = figure5Request();
    for (size_t n : {size_t{1}, size_t{5}, size_t{63}, size_t{64},
                     size_t{65}, size_t{130}, size_t{12345}}) {
        const BranchTrace trace =
            makeBranchTrace("gsm", WorkloadInput::Test, n);
        const PackedTrace packed(trace);
        for (size_t shards : {size_t{1}, size_t{3}, size_t{7},
                              size_t{16}}) {
            NestedSweepOptions options;
            options.threads = 3;
            options.shards = shards;
            expectNestedMatchesKernels(request, packed, options,
                                       "n=" + std::to_string(n) +
                                           " shards=" +
                                           std::to_string(shards));
        }
    }
}

// A gshare family whose effective history depths do not nest falls
// back to the batch path - still bit-identical, just not fused.
TEST(NestedSweepTest, NonNestingGshareFallsBackIdentically)
{
    const BranchTrace trace =
        makeBranchTrace("vortex", WorkloadInput::Test, kBranches);
    const PackedTrace packed(trace);

    NestedSweepRequest request;
    GshareConfig shallow;
    shallow.log2Entries = 12;
    shallow.historyBits = 4;
    GshareConfig deep;
    deep.log2Entries = 12;
    deep.historyBits = 12;
    request.gshare = {shallow, deep};
    EXPECT_FALSE(gshareConfigsNest(request.gshare));

    NestedSweepOptions options;
    const NestedSweepResult swept =
        nestedSweep(request, packed, AreaCosts{}, options);
    EXPECT_FALSE(swept.stats.gshareNested);
    expectNestedMatchesKernels(request, packed, options, "non-nesting");
}

TEST(NestedSweepTest, GshareConfigsNestPredicate)
{
    EXPECT_TRUE(gshareConfigsNest({}));

    // The Figure-5 family nests: hb == min(log2, 16) throughout.
    EXPECT_TRUE(gshareConfigsNest(figure5Request().gshare));

    // A config whose history is capped by its own table size still
    // nests against larger tables (min(hb, L) is what must agree).
    GshareConfig small;
    small.log2Entries = 8;
    small.historyBits = 14;
    GshareConfig large;
    large.log2Entries = 14;
    large.historyBits = 14;
    EXPECT_TRUE(gshareConfigsNest({small, large}));

    GshareConfig shallow;
    shallow.log2Entries = 14;
    shallow.historyBits = 6;
    EXPECT_FALSE(gshareConfigsNest({shallow, large}));
}

TEST(NestedSweepTest, EmptyFamiliesAndEmptyTrace)
{
    const BranchTrace trace =
        makeBranchTrace("gs", WorkloadInput::Test, kBranches);
    const PackedTrace packed(trace);

    const NestedSweepResult none =
        nestedSweep(NestedSweepRequest{}, packed);
    EXPECT_TRUE(none.gshare.empty());
    EXPECT_TRUE(none.lgc.empty());
    EXPECT_TRUE(none.btb.empty());
    EXPECT_EQ(none.stats.pointsPerPass, 0u);

    const PackedTrace empty{BranchTrace{}};
    NestedSweepOptions options;
    options.threads = 3;
    options.shards = 7;
    expectNestedMatchesKernels(figure5Request(), empty, options,
                               "empty trace");
}

} // anonymous namespace
} // namespace autofsm
