/**
 * @file
 * Unit and property tests for the logic-minimization substrate.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "logicmin/espresso.hh"
#include "logicmin/minimize.hh"
#include "logicmin/quine_mccluskey.hh"
#include "support/rng.hh"

namespace autofsm
{
namespace
{

TEST(CubeTest, MintermContainsOnlyItself)
{
    const Cube cube = Cube::minterm(0b101, 3);
    EXPECT_TRUE(cube.contains(0b101));
    for (uint32_t m = 0; m < 8; ++m) {
        if (m != 0b101) {
            EXPECT_FALSE(cube.contains(m));
        }
    }
    EXPECT_EQ(cube.literals(), 3);
}

TEST(CubeTest, DontCarePositionsMatchBoth)
{
    // Pattern "1x" over 2 vars: bit1 = 1, bit0 free.
    const Cube cube = Cube::fromPattern("1x");
    EXPECT_TRUE(cube.contains(0b10));
    EXPECT_TRUE(cube.contains(0b11));
    EXPECT_FALSE(cube.contains(0b00));
    EXPECT_FALSE(cube.contains(0b01));
    EXPECT_EQ(cube.literals(), 1);
}

TEST(CubeTest, PatternRoundTrip)
{
    for (const char *text : {"x1", "1x", "0x1x", "xxxx", "1010"}) {
        const Cube cube = Cube::fromPattern(text);
        EXPECT_EQ(cube.toPattern(static_cast<int>(strlen(text))), text);
    }
}

TEST(CubeTest, CoversIsContainment)
{
    const Cube big = Cube::fromPattern("1xx");
    const Cube small = Cube::fromPattern("1x0");
    EXPECT_TRUE(big.covers(small));
    EXPECT_FALSE(small.covers(big));
    EXPECT_TRUE(big.covers(big));
}

TEST(CubeTest, IntersectsDetectsSharedMinterms)
{
    EXPECT_TRUE(Cube::fromPattern("1x").intersects(Cube::fromPattern("x0")));
    EXPECT_FALSE(Cube::fromPattern("1x").intersects(Cube::fromPattern("0x")));
}

TEST(CubeTest, TryMergeAdjacent)
{
    Cube merged;
    EXPECT_TRUE(Cube::tryMerge(Cube::minterm(0b01, 2),
                               Cube::minterm(0b11, 2), merged));
    EXPECT_EQ(merged.toPattern(2), "x1");

    // Distance 2: no merge.
    EXPECT_FALSE(Cube::tryMerge(Cube::minterm(0b00, 2),
                                Cube::minterm(0b11, 2), merged));
    // Different masks: no merge.
    EXPECT_FALSE(Cube::tryMerge(Cube::fromPattern("1x"),
                                Cube::minterm(0b11, 2), merged));
}

TEST(TruthTableTest, TracksMembership)
{
    TruthTable table(3);
    table.addOn(0b000);
    table.addDontCare(0b111);
    EXPECT_TRUE(table.isOn(0));
    EXPECT_FALSE(table.isOn(7));
    EXPECT_TRUE(table.isDontCare(7));
    EXPECT_EQ(table.offSet().size(), 6u);
    // Duplicate insertion is idempotent.
    table.addOn(0b000);
    EXPECT_EQ(table.onSet().size(), 1u);
}

TEST(CoverTest, EvaluateAndLiterals)
{
    Cover cover(2);
    cover.add(Cube::fromPattern("x1"));
    cover.add(Cube::fromPattern("1x"));
    EXPECT_TRUE(cover.evaluate(0b01));
    EXPECT_TRUE(cover.evaluate(0b10));
    EXPECT_TRUE(cover.evaluate(0b11));
    EXPECT_FALSE(cover.evaluate(0b00));
    EXPECT_EQ(cover.literalCount(), 2);
    EXPECT_EQ(cover.toString(), "x1 | 1x");
}

TEST(CoverTest, RemoveContained)
{
    Cover cover(3);
    cover.add(Cube::fromPattern("1xx"));
    cover.add(Cube::fromPattern("10x")); // contained
    cover.add(Cube::fromPattern("0x1"));
    cover.removeContained();
    EXPECT_EQ(cover.size(), 2u);
    EXPECT_EQ(cover.toString(), "1xx | 0x1");
}

TEST(CoverTest, RemoveContainedKeepsOneOfEqualCubes)
{
    Cover cover(2);
    cover.add(Cube::fromPattern("1x"));
    cover.add(Cube::fromPattern("1x"));
    cover.removeContained();
    EXPECT_EQ(cover.size(), 1u);
}

TEST(QuineMcCluskeyTest, PaperTwoVarExample)
{
    // Section 4.4: {00 -> 0, 01 -> 1, 10 -> 1, 11 -> 1} minimizes to
    // (x1) v (1x).
    TruthTable table(2);
    table.addOn(0b01);
    table.addOn(0b10);
    table.addOn(0b11);
    const Cover cover = minimizeQuineMcCluskey(table);
    EXPECT_EQ(cover.size(), 2u);
    EXPECT_EQ(cover.toString(), "x1 | 1x");
}

TEST(QuineMcCluskeyTest, FullOnCollapsesToTautology)
{
    TruthTable table(3);
    for (uint32_t m = 0; m < 8; ++m)
        table.addOn(m);
    const Cover cover = minimizeQuineMcCluskey(table);
    ASSERT_EQ(cover.size(), 1u);
    EXPECT_EQ(cover.cubes()[0].literals(), 0);
}

TEST(QuineMcCluskeyTest, EmptyOnGivesEmptyCover)
{
    TruthTable table(4);
    table.addDontCare(3);
    EXPECT_TRUE(minimizeQuineMcCluskey(table).empty());
}

TEST(QuineMcCluskeyTest, ClassicTextbookFunction)
{
    // f(a,b,c,d) = sum m(4,8,10,11,12,15) + d(9,14): the standard
    // Quine-McCluskey worked example; with the don't-cares the minimum
    // cover has 3 terms (10xx, 1x1x, x100).
    TruthTable table(4);
    for (uint32_t m : {4u, 8u, 10u, 11u, 12u, 15u})
        table.addOn(m);
    table.addDontCare(9);
    table.addDontCare(14);
    const Cover cover = minimizeQuineMcCluskey(table);
    EXPECT_TRUE(cover.implements(table));
    EXPECT_EQ(cover.size(), 3u);
}

TEST(QuineMcCluskeyTest, DontCaresEnlargePrimes)
{
    // With DC at 0b11, ON {0b01, 0b10} can be covered by x1 | 1x
    // instead of 01 | 10 (same term count, fewer literals).
    TruthTable table(2);
    table.addOn(0b01);
    table.addOn(0b10);
    table.addDontCare(0b11);
    const Cover cover = minimizeQuineMcCluskey(table);
    EXPECT_EQ(cover.literalCount(), 2);
}

TEST(PrimeImplicantTest, AllPrimesFound)
{
    // f = x1 + 1x over 2 vars has exactly two primes.
    TruthTable table(2);
    table.addOn(1);
    table.addOn(2);
    table.addOn(3);
    const auto primes = primeImplicants(table);
    EXPECT_EQ(primes.size(), 2u);
}

TEST(EspressoTest, MatchesExactOnPaperExample)
{
    TruthTable table(2);
    table.addOn(0b01);
    table.addOn(0b10);
    table.addOn(0b11);
    const Cover cover = minimizeEspresso(table);
    EXPECT_TRUE(cover.implements(table));
    EXPECT_EQ(cover.size(), 2u);
    EXPECT_EQ(cover.literalCount(), 2);
}

TEST(EspressoTest, EmptyOnGivesEmptyCover)
{
    TruthTable table(3);
    EXPECT_TRUE(minimizeEspresso(table).empty());
}

TEST(MinimizeTest, DispatchesAndVerifies)
{
    TruthTable table(2);
    table.addOn(0b11);
    for (auto algo : {MinimizeAlgo::Auto, MinimizeAlgo::Exact,
                      MinimizeAlgo::Heuristic}) {
        const Cover cover = minimize(table, algo);
        EXPECT_TRUE(cover.implements(table));
        EXPECT_EQ(cover.size(), 1u);
    }
}

/**
 * Property test: on random incompletely-specified functions, both
 * engines must produce functionally-correct covers, and the heuristic
 * must not be wildly worse than the exact engine.
 */
class MinimizerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MinimizerPropertyTest, EnginesAgreeFunctionally)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    const int num_vars = 3 + static_cast<int>(rng.below(4)); // 3..6
    TruthTable table(num_vars);
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
        const double roll = rng.uniform();
        if (roll < 0.35)
            table.addOn(m);
        else if (roll < 0.50)
            table.addDontCare(m);
    }
    if (table.onSet().empty())
        table.addOn(0);

    const Cover exact = minimizeQuineMcCluskey(table);
    const Cover heur = minimizeEspresso(table);
    EXPECT_TRUE(exact.implements(table));
    EXPECT_TRUE(heur.implements(table));

    // Where they differ, only the DC minterms may disagree.
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
        if (!table.isDontCare(m)) {
            EXPECT_EQ(exact.evaluate(m), heur.evaluate(m)) << "m=" << m;
        }
    }

    // Cost sanity: heuristic within 2x of exact cover size.
    EXPECT_LE(heur.size(), exact.size() * 2 + 1);
}

INSTANTIATE_TEST_SUITE_P(RandomFunctions, MinimizerPropertyTest,
                         ::testing::Range(0, 25));

TEST(MinimizerExhaustiveTest, AllThreeVariableFunctions)
{
    // Every completely-specified function of 3 variables (256 of them):
    // both engines must return implementing covers, and the exact
    // engine's cover must never exceed the trivial minterm count.
    for (uint32_t truth = 0; truth < 256; ++truth) {
        TruthTable table(3);
        int on_count = 0;
        for (uint32_t m = 0; m < 8; ++m) {
            if (truth & (1u << m)) {
                table.addOn(m);
                ++on_count;
            }
        }
        const Cover exact = minimizeQuineMcCluskey(table);
        const Cover heur = minimizeEspresso(table);
        ASSERT_TRUE(exact.implements(table)) << "truth=" << truth;
        ASSERT_TRUE(heur.implements(table)) << "truth=" << truth;
        EXPECT_LE(static_cast<int>(exact.size()), on_count);
        EXPECT_LE(static_cast<int>(heur.size()), on_count);
        // Fully-specified function: the two engines compute the same
        // boolean function everywhere.
        for (uint32_t m = 0; m < 8; ++m)
            ASSERT_EQ(exact.evaluate(m), heur.evaluate(m));
    }
}

TEST(MinimizerStressTest, TenVariableBiasedFunction)
{
    // History length 10, ~1024 minterms: the largest case the design
    // flow produces. The heuristic engine must stay fast and correct.
    Rng rng(99);
    TruthTable table(10);
    for (uint32_t m = 0; m < 1024; ++m) {
        // Bias: ON where the two most recent history bits look taken.
        const bool likely = (m & 0b11) == 0b11;
        if (rng.uniform() < (likely ? 0.95 : 0.05))
            table.addOn(m);
        else if (rng.uniform() < 0.1)
            table.addDontCare(m);
    }
    const Cover cover = minimizeEspresso(table);
    EXPECT_TRUE(cover.implements(table));
    // The structure should compress far below one cube per minterm.
    EXPECT_LT(cover.size(), table.onSet().size() / 2);
}

} // anonymous namespace
} // namespace autofsm
