/**
 * @file
 * Tests of the persistent artifact store: container round-trip
 * bit-identity for packed traces and designed-FSM artifacts, the
 * quarantine policy (corruption, truncation, misfiled entries), the
 * crash-recovery open pass (stale temp sweep), warm-start accounting,
 * the size-capped LRU eviction scan, and the read-through/write-through
 * wiring of the design memo and the workloads trace cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "automata/dfa_io.hh"
#include "flow/design_flow.hh"
#include "flow/design_memo.hh"
#include "sim/packed_trace.hh"
#include "store/store.hh"
#include "support/failpoint.hh"
#include "support/rng.hh"
#include "trace/branch_trace.hh"
#include "workloads/branch_workloads.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{
namespace
{

namespace fs = std::filesystem;

/** Fresh store directory per test, removed on teardown. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        failpoint::registry().clearAll();
        std::string tmpl =
            (fs::temp_directory_path() / "autofsm-store-XXXXXX").string();
        dir_ = ::mkdtemp(tmpl.data());
        ASSERT_FALSE(dir_.empty());
    }

    void
    TearDown() override
    {
        failpoint::registry().clearAll();
        store::setGlobalStore(nullptr);
        clearDesignMemo();
        clearBranchTraceCache();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    store::StoreOptions
    options(uint64_t maxBytes = 0) const
    {
        store::StoreOptions opts;
        opts.dir = dir_;
        opts.maxBytes = maxBytes;
        return opts;
    }

    /** The single entry file under traces/ or designs/ (or empty). */
    std::string
    onlyEntry(const char *sub) const
    {
        for (const auto &entry : fs::directory_iterator(
                 fs::path(dir_) / sub)) {
            return entry.path().string();
        }
        return {};
    }

    size_t
    countFiles(const char *sub) const
    {
        size_t n = 0;
        for ([[maybe_unused]] const auto &entry :
             fs::directory_iterator(fs::path(dir_) / sub)) {
            ++n;
        }
        return n;
    }

    std::string dir_;
};

/** A deterministic trace with non-trivial pc and outcome structure. */
BranchTrace
syntheticBranchTrace(size_t n, uint64_t seed)
{
    Rng rng(0x570E ^ seed);
    BranchTrace trace;
    trace.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        trace.push_back({0x400000 + (i % 17) * 4,
                         rng.uniform() < 0.6 || (i % 7) == 0});
    }
    return trace;
}

/** SoA form of @p trace (what the cache tier spills). */
void
packTrace(const BranchTrace &trace, std::vector<uint64_t> &pcs,
          std::vector<uint64_t> &words)
{
    const size_t n = trace.size();
    pcs.assign(n, 0);
    words.assign((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
        pcs[i] = trace[i].pc;
        if (trace[i].taken)
            words[i >> 6] |= 1ULL << (i & 63);
    }
}

/** A real designed artifact (runs the flow on a synthetic stream). */
store::DesignArtifact
syntheticArtifact()
{
    std::vector<int> outcomes;
    for (size_t i = 0; i < 200; ++i)
        outcomes.push_back(static_cast<int>((i / 3) & 1));
    FsmDesignOptions options;
    options.order = 3;
    const FsmDesignResult design =
        DesignFlow(options).runOnTrace(outcomes).design;

    store::DesignArtifact artifact;
    artifact.order = design.patterns.order;
    artifact.minimizer = 1;
    artifact.keepStartupStates = false;
    artifact.predictOne = design.patterns.predictOne;
    artifact.dontCare = design.patterns.dontCare;
    artifact.cover = design.cover;
    artifact.regexText = design.regexText;
    artifact.beforeReduction = design.beforeReduction;
    artifact.fsm = design.fsm;
    artifact.statesSubset = design.statesSubset;
    artifact.statesHopcroft = design.statesHopcroft;
    artifact.statesFinal = design.statesFinal;
    artifact.stageMillis = {{"minimize", 1.25}, {"subset", 0.5}};
    return artifact;
}

TEST_F(StoreTest, TraceRoundTripIsBitIdentical)
{
    const BranchTrace trace = syntheticBranchTrace(1000, 1);
    std::vector<uint64_t> pcs, words;
    packTrace(trace, pcs, words);

    store::ArtifactStore store(options());
    ASSERT_TRUE(store.putTrace("trace-key", pcs, words, trace.size()));

    const auto blob = store.loadTrace("trace-key");
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(blob->count, trace.size());
    ASSERT_EQ(blob->pcs.size(), pcs.size());
    ASSERT_EQ(blob->takenWords.size(), words.size());
    EXPECT_TRUE(std::equal(pcs.begin(), pcs.end(), blob->pcs.begin()));
    EXPECT_TRUE(std::equal(words.begin(), words.end(),
                           blob->takenWords.begin()));

    // The zero-copy PackedTrace over the mapping replays identically to
    // a freshly packed one — same pcs, same outcome bits, record by
    // record.
    const PackedTrace fromDisk(*blob);
    const PackedTrace fromMemory(trace);
    ASSERT_EQ(fromDisk.size(), fromMemory.size());
    for (size_t i = 0; i < fromDisk.size(); ++i) {
        ASSERT_EQ(fromDisk.pc(i), fromMemory.pc(i)) << "record " << i;
        ASSERT_EQ(fromDisk.taken(i), fromMemory.taken(i)) << "record " << i;
    }

    const store::StoreStats stats = store.stats();
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST_F(StoreTest, TraceBlobOutlivesTheStore)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(300, 2), pcs, words);

    std::optional<store::TraceBlob> blob;
    {
        store::ArtifactStore store(options());
        ASSERT_TRUE(store.putTrace("k", pcs, words, 300));
        blob = store.loadTrace("k");
        ASSERT_TRUE(blob.has_value());
    }
    // The mapping is owned by the blob, not the store object.
    EXPECT_TRUE(std::equal(pcs.begin(), pcs.end(), blob->pcs.begin()));
}

TEST_F(StoreTest, DesignRoundTripIsBitIdentical)
{
    const store::DesignArtifact artifact = syntheticArtifact();
    const uint64_t key = 0x1234abcd5678ef01ULL;

    store::ArtifactStore store(options());
    ASSERT_TRUE(store.putDesign(key, artifact));
    const auto loaded = store.loadDesign(key);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(loaded->order, artifact.order);
    EXPECT_EQ(loaded->minimizer, artifact.minimizer);
    EXPECT_EQ(loaded->keepStartupStates, artifact.keepStartupStates);
    EXPECT_EQ(loaded->predictOne, artifact.predictOne);
    EXPECT_EQ(loaded->dontCare, artifact.dontCare);
    EXPECT_EQ(dfaToText(loaded->fsm), dfaToText(artifact.fsm));
    EXPECT_EQ(dfaToText(loaded->beforeReduction),
              dfaToText(artifact.beforeReduction));
    EXPECT_EQ(loaded->regexText, artifact.regexText);
    EXPECT_EQ(loaded->statesSubset, artifact.statesSubset);
    EXPECT_EQ(loaded->statesHopcroft, artifact.statesHopcroft);
    EXPECT_EQ(loaded->statesFinal, artifact.statesFinal);
    EXPECT_EQ(loaded->stageMillis, artifact.stageMillis);
    ASSERT_EQ(loaded->cover.size(), artifact.cover.size());
    EXPECT_EQ(loaded->cover.numVars(), artifact.cover.numVars());
    for (size_t i = 0; i < artifact.cover.size(); ++i) {
        EXPECT_EQ(loaded->cover.cubes()[i].toPattern(
                      artifact.cover.numVars()),
                  artifact.cover.cubes()[i].toPattern(
                      artifact.cover.numVars()));
    }
}

TEST_F(StoreTest, MissingEntryIsAMiss)
{
    store::ArtifactStore store(options());
    EXPECT_FALSE(store.loadTrace("nobody-wrote-this").has_value());
    EXPECT_FALSE(store.loadDesign(42).has_value());
    const store::StoreStats stats = store.stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST_F(StoreTest, CorruptPayloadIsQuarantinedNotServed)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(256, 3), pcs, words);
    store::ArtifactStore store(options());
    ASSERT_TRUE(store.putTrace("k", pcs, words, 256));

    // Flip one payload byte past the header.
    const std::string path = onlyEntry("traces");
    ASSERT_FALSE(path.empty());
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(200);
        char byte = 0;
        f.seekg(200);
        f.get(byte);
        byte = static_cast<char>(byte ^ 0x40);
        f.seekp(200);
        f.put(byte);
    }

    EXPECT_FALSE(store.loadTrace("k").has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_EQ(countFiles("traces"), 0u);
    EXPECT_EQ(countFiles("quarantine"), 1u);
    // Quarantine is terminal: the entry is gone, later loads just miss.
    EXPECT_FALSE(store.loadTrace("k").has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
}

TEST_F(StoreTest, TruncatedEntryIsQuarantined)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(256, 4), pcs, words);
    store::ArtifactStore store(options());
    ASSERT_TRUE(store.putTrace("k", pcs, words, 256));

    const std::string path = onlyEntry("traces");
    const uintmax_t size = fs::file_size(path);
    fs::resize_file(path, size / 2);

    EXPECT_FALSE(store.loadTrace("k").has_value());
    EXPECT_EQ(store.stats().quarantined, 1u);
    EXPECT_EQ(countFiles("quarantine"), 1u);
}

TEST_F(StoreTest, MisfiledEntryFailsTheKeyHashCheck)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(64, 5), pcs, words);
    store::ArtifactStore store(options());
    ASSERT_TRUE(store.putTrace("key-a", pcs, words, 64));

    // File it under a different key's address: the embedded hash no
    // longer matches the file name, so serving it would be a lie.
    const std::string path = onlyEntry("traces");
    const std::string target =
        (fs::path(path).parent_path() /
         (std::string(16, 'f') + ".af")).string();
    fs::rename(path, target);

    EXPECT_FALSE(store.loadTrace("key-a").has_value());
}

TEST_F(StoreTest, OpenSweepsStaleTempsAndQuarantinesCorruptEntries)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(128, 6), pcs, words);
    {
        store::ArtifactStore store(options());
        ASSERT_TRUE(store.putTrace("good", pcs, words, 128));
    }
    // A writer died mid-commit: leftover temp plus a corrupt entry.
    std::ofstream(fs::path(dir_) / "traces/deadbeef.af.tmp42.7")
        << "partial";
    std::ofstream(fs::path(dir_) / "designs" /
                  (std::string(16, '0') + ".af"))
        << "garbage";

    store::ArtifactStore reopened(options());
    const store::StoreStats stats = reopened.stats();
    EXPECT_EQ(stats.recoveredTemps, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.entries, 1u);
    // The committed entry still loads, bit-identical.
    const auto blob = reopened.loadTrace("good");
    ASSERT_TRUE(blob.has_value());
    EXPECT_TRUE(std::equal(pcs.begin(), pcs.end(), blob->pcs.begin()));
}

TEST_F(StoreTest, WarmHitsCountOnlyInheritedEntries)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(64, 7), pcs, words);
    {
        store::ArtifactStore store(options());
        ASSERT_TRUE(store.putTrace("inherited", pcs, words, 64));
        // Hits in the writing process are not warm.
        ASSERT_TRUE(store.loadTrace("inherited").has_value());
        EXPECT_EQ(store.stats().warmHits, 0u);
    }

    store::ArtifactStore reopened(options());
    ASSERT_TRUE(reopened.loadTrace("inherited").has_value());
    EXPECT_EQ(reopened.stats().warmHits, 1u);
    // An entry this process wrote is a plain hit.
    ASSERT_TRUE(reopened.putTrace("fresh", pcs, words, 64));
    ASSERT_TRUE(reopened.loadTrace("fresh").has_value());
    const store::StoreStats stats = reopened.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.warmHits, 1u);
}

TEST_F(StoreTest, EvictionDropsOldestPastTheCap)
{
    std::vector<uint64_t> pcs, words;
    packTrace(syntheticBranchTrace(512, 8), pcs, words);

    store::ArtifactStore store(options(/*maxBytes=*/1));
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(store.putTrace("k" + std::to_string(i), pcs, words,
                                   512));
    }
    store.rescan();
    const store::StoreStats stats = store.stats();
    EXPECT_GE(stats.evictions, 3u);
    EXPECT_LE(stats.entries, 1u);
}

TEST_F(StoreTest, DesignMemoWritesThroughAndReadsBack)
{
    // Build the artifact BEFORE installing the store: the design flow
    // itself memo-stores, which would write through and double-count.
    const store::DesignArtifact artifact = syntheticArtifact();
    store::setGlobalStore(
        std::make_shared<store::ArtifactStore>(options()));
    clearDesignMemo();
    DesignMemoKey key;
    key.order = artifact.order;
    key.minimizer = artifact.minimizer;
    key.keepStartupStates = artifact.keepStartupStates;
    key.predictOne = artifact.predictOne;
    key.dontCare = artifact.dontCare;

    auto entry = std::make_shared<DesignMemoEntry>();
    entry->cover = artifact.cover;
    entry->regexText = artifact.regexText;
    entry->beforeReduction = artifact.beforeReduction;
    entry->fsm = artifact.fsm;
    entry->statesSubset = artifact.statesSubset;
    entry->statesHopcroft = artifact.statesHopcroft;
    entry->statesFinal = artifact.statesFinal;
    entry->stageMillis = artifact.stageMillis;
    designMemoStore(key, entry);
    EXPECT_EQ(countFiles("designs"), 1u);

    // Wipe the memory tier: the next lookup must come from disk and be
    // bit-identical to what was stored.
    clearDesignMemo();
    const auto fromDisk = designMemoLookup(key);
    ASSERT_TRUE(fromDisk != nullptr);
    EXPECT_EQ(dfaToText(fromDisk->fsm), dfaToText(entry->fsm));
    EXPECT_EQ(fromDisk->regexText, entry->regexText);
    EXPECT_EQ(fromDisk->statesFinal, entry->statesFinal);
    EXPECT_EQ(fromDisk->stageMillis, entry->stageMillis);

    // The disk hit was promoted: a second lookup is a pure memory hit
    // (disk hit count unchanged).
    const uint64_t diskHits = store::globalStore()->stats().hits;
    const auto again = designMemoLookup(key);
    ASSERT_TRUE(again != nullptr);
    EXPECT_EQ(store::globalStore()->stats().hits, diskHits);
}

TEST_F(StoreTest, TraceCacheSpillsAndReloads)
{
    store::setGlobalStore(
        std::make_shared<store::ArtifactStore>(options()));
    clearBranchTraceCache();

    const auto built = cachedBranchTrace("compress", WorkloadInput::Test,
                                         4000);
    ASSERT_TRUE(built != nullptr);
    EXPECT_EQ(countFiles("traces"), 1u);

    // Wipe the memory tier: the rebuild must come from disk and agree
    // record for record with the generated trace.
    clearBranchTraceCache();
    const uint64_t diskHitsBefore = store::globalStore()->stats().hits;
    const auto reloaded = cachedBranchTrace("compress",
                                            WorkloadInput::Test, 4000);
    ASSERT_TRUE(reloaded != nullptr);
    EXPECT_GT(store::globalStore()->stats().hits, diskHitsBefore);
    ASSERT_EQ(reloaded->size(), built->size());
    for (size_t i = 0; i < built->size(); ++i) {
        ASSERT_EQ((*reloaded)[i].pc, (*built)[i].pc) << "record " << i;
        ASSERT_EQ((*reloaded)[i].taken, (*built)[i].taken)
            << "record " << i;
    }
}

TEST_F(StoreTest, CacheTiersSurviveACorruptStoreEntry)
{
    store::setGlobalStore(
        std::make_shared<store::ArtifactStore>(options()));
    clearBranchTraceCache();
    ASSERT_TRUE(cachedBranchTrace("compress", WorkloadInput::Test, 2000) !=
                nullptr);
    const std::string path = onlyEntry("traces");
    ASSERT_FALSE(path.empty());
    fs::resize_file(path, fs::file_size(path) - 5);

    // The corrupt spill is quarantined and the trace is rebuilt.
    clearBranchTraceCache();
    const auto rebuilt = cachedBranchTrace("compress",
                                           WorkloadInput::Test, 2000);
    ASSERT_TRUE(rebuilt != nullptr);
    EXPECT_EQ(rebuilt->size(),
              cachedBranchTrace("compress", WorkloadInput::Test, 2000)
                  ->size());
    EXPECT_GE(store::globalStore()->stats().quarantined, 1u);
}

} // namespace
} // namespace autofsm
