/**
 * @file
 * Tests of the Report interface and the JSON substrate: the text
 * renderers must match the legacy printFigN wrappers byte for byte, and
 * the JSON emitters must produce balanced, escaped, key-complete output
 * on hand-built figure data (no simulation needed).
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "sim/report.hh"
#include "support/json.hh"

namespace autofsm
{
namespace
{

Fig5Benchmark
tinyFig5()
{
    Fig5Benchmark benchmark;
    benchmark.name = "toy";
    benchmark.xscale = {1024.0, 0.125, "xscale"};
    benchmark.gshare.label = "gshare";
    benchmark.gshare.points = {{2048.0, 0.10, "gshare-2^8"},
                               {8192.0, 0.08, "gshare-2^10"}};
    benchmark.lgc.label = "lgc";
    benchmark.customSame.label = "custom-same";
    benchmark.customSame.points = {{1100.0, 0.11, "1 fsm"}};
    benchmark.customDiff.label = "custom-diff";
    benchmark.customDiff.points = {{1100.0, 0.115, "1 fsm"}};
    return benchmark;
}

Fig4Result
tinyFig4()
{
    Fig4Result result;
    AreaEstimate sample;
    sample.states = 4;
    sample.flops = 2;
    sample.terms = 3;
    sample.literals = 6;
    sample.area = 42.5;
    result.samples = {sample};
    result.fit.slope = 10.5;
    result.fit.intercept = 1.25;
    result.fit.r2 = 0.9;
    return result;
}

Fig2Benchmark
tinyFig2()
{
    Fig2Benchmark benchmark;
    benchmark.name = "groff";
    benchmark.sudPoints = {{0.97, 0.6, "sud max=5 dec=1 thr=0.5"}};
    ParetoSeries curve;
    curve.label = "custom w/ hist=2";
    curve.points = {{0.95, 0.7, "thr=0.50"}, {0.99, 0.4, "thr=0.90"}};
    benchmark.fsmCurves = {curve};
    return benchmark;
}

/** Structural sanity: balanced braces/brackets outside strings. */
bool
jsonBalanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(JsonWriterTest, EscapesAndNestsCorrectly)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginObject();
    json.key("name").value("a\"b\\c\nd");
    json.key("count").value(3);
    json.key("ratio").value(0.5);
    json.key("flag").value(true);
    json.key("items").beginArray().value(1).value(2).endArray();
    json.endObject();
    EXPECT_EQ(out.str(),
              "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":3,"
              "\"ratio\":0.5,\"flag\":true,\"items\":[1,2]}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginArray();
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(std::numeric_limits<double>::infinity());
    json.endArray();
    EXPECT_EQ(out.str(), "[null,null]");
}

TEST(ReportTest, TextMatchesLegacyPrinters)
{
    const Fig5Benchmark fig5 = tinyFig5();
    std::ostringstream legacy5;
    printFig5(legacy5, fig5);
    EXPECT_EQ(Fig5Report(fig5).toText(), legacy5.str());

    const Fig4Result fig4 = tinyFig4();
    std::ostringstream legacy4;
    printFig4(legacy4, fig4);
    EXPECT_EQ(Fig4Report(fig4).toText(), legacy4.str());

    const Fig2Benchmark fig2 = tinyFig2();
    std::ostringstream legacy2;
    printFig2(legacy2, fig2);
    EXPECT_EQ(Fig2Report(fig2).toText(), legacy2.str());
}

TEST(ReportTest, Fig5JsonIsBalancedAndKeyComplete)
{
    const std::string json = Fig5Report(tinyFig5()).toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"kind\":\"figure5\""), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\":\"toy\""), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"custom-diff\""), std::string::npos);
    EXPECT_NE(json.find("\"missRate\":0.115"), std::string::npos);
    EXPECT_NE(json.find("\"trained\":[]"), std::string::npos);
}

TEST(ReportTest, Fig4JsonCarriesFitAndSamples)
{
    const std::string json = Fig4Report(tinyFig4()).toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"kind\":\"figure4\""), std::string::npos);
    EXPECT_NE(json.find("\"states\":4"), std::string::npos);
    EXPECT_NE(json.find("\"slope\":10.5"), std::string::npos);
    EXPECT_NE(json.find("\"r2\":0.9"), std::string::npos);
}

TEST(ReportTest, Fig2JsonCarriesCurves)
{
    const std::string json = Fig2Report(tinyFig2()).toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"kind\":\"figure2\""), std::string::npos);
    EXPECT_NE(json.find("\"label\":\"custom w/ hist=2\""),
              std::string::npos);
    EXPECT_NE(json.find("\"accuracy\":0.99"), std::string::npos);
}

} // anonymous namespace
} // namespace autofsm
