/**
 * @file
 * Tests for the automata substrate: regex building, Thompson NFA, subset
 * construction, Hopcroft minimization and start-state reduction.
 */

#include <gtest/gtest.h>

#include "automata/dfa.hh"
#include "automata/nfa.hh"
#include "automata/regex.hh"
#include "support/rng.hh"

namespace autofsm
{
namespace
{

/** All bit strings of length @p len as vectors. */
std::vector<std::vector<int>>
allStrings(int len)
{
    std::vector<std::vector<int>> out;
    for (uint32_t v = 0; v < (1u << len); ++v) {
        std::vector<int> s(static_cast<size_t>(len));
        for (int i = 0; i < len; ++i)
            s[static_cast<size_t>(i)] = bitOf(v, len - 1 - i);
        out.push_back(std::move(s));
    }
    return out;
}

/** The trailing-@p n bits of @p s packed with bit 0 = most recent. */
uint32_t
suffixBits(const std::vector<int> &s, int n)
{
    uint32_t value = 0;
    for (size_t i = s.size() - static_cast<size_t>(n); i < s.size(); ++i)
        value = (value << 1) | static_cast<uint32_t>(s[i]);
    return value;
}

Cover
paperCover()
{
    Cover cover(2);
    cover.add(Cube::fromPattern("x1"));
    cover.add(Cube::fromPattern("1x"));
    return cover;
}

TEST(RegexTest, PaperNotationRendering)
{
    const Regex regex = regexFromCover(paperCover());
    EXPECT_EQ(regex.toString(), "{0|1}*{ {0|1}1 | 1{0|1} }");
}

TEST(RegexTest, EmptyCoverGivesEmptyRegex)
{
    EXPECT_TRUE(regexFromCover(Cover(2)).empty());
    EXPECT_EQ(Regex().toString(), "(empty)");
}

TEST(NfaTest, AcceptsExactlySuffixLanguage)
{
    const Nfa nfa = Nfa::fromRegex(regexFromCover(paperCover()));
    // Language: all strings whose last two bits are 01, 10 or 11.
    for (int len = 2; len <= 6; ++len) {
        for (const auto &s : allStrings(len)) {
            const uint32_t suffix = suffixBits(s, 2);
            EXPECT_EQ(nfa.accepts(s), suffix != 0u);
        }
    }
}

TEST(NfaTest, ShortStringsRejected)
{
    const Nfa nfa = Nfa::fromRegex(regexFromCover(paperCover()));
    EXPECT_FALSE(nfa.accepts({}));
    EXPECT_FALSE(nfa.accepts({1}));
    EXPECT_FALSE(nfa.accepts({0}));
}

TEST(DfaTest, SubsetConstructionMatchesNfa)
{
    const Nfa nfa = Nfa::fromRegex(regexFromCover(paperCover()));
    const Dfa dfa = Dfa::fromNfa(nfa);
    for (int len = 0; len <= 7; ++len) {
        for (const auto &s : allStrings(len))
            EXPECT_EQ(dfa.predictAfter(s) == 1, nfa.accepts(s));
    }
}

TEST(DfaTest, HopcroftPreservesBehavior)
{
    const Dfa dfa =
        Dfa::fromNfa(Nfa::fromRegex(regexFromCover(paperCover())));
    const Dfa minimized = dfa.minimizeHopcroft();
    EXPECT_TRUE(dfa.equivalent(minimized));
    EXPECT_LE(minimized.numStates(), dfa.numStates());
}

TEST(DfaTest, HopcroftReachesPaperStateCount)
{
    // Figure 1 (left): the machine with start-up states has 5 states.
    const Dfa minimized =
        Dfa::fromNfa(Nfa::fromRegex(regexFromCover(paperCover())))
            .minimizeHopcroft();
    EXPECT_EQ(minimized.numStates(), 5);
}

TEST(DfaTest, SteadyStateReductionReachesPaperStateCount)
{
    // Figure 1 (right): removing start-up states leaves 3 states.
    const Dfa reduced =
        Dfa::fromNfa(Nfa::fromRegex(regexFromCover(paperCover())))
            .minimizeHopcroft()
            .steadyStateReduce();
    EXPECT_EQ(reduced.numStates(), 3);
}

TEST(DfaTest, SteadyStateMachineAgreesOnWarmStrings)
{
    const Dfa full =
        Dfa::fromNfa(Nfa::fromRegex(regexFromCover(paperCover())))
            .minimizeHopcroft();
    const Dfa reduced = full.steadyStateReduce();
    // Behavior must be identical for every string of length >= N = 2.
    for (int len = 2; len <= 8; ++len) {
        for (const auto &s : allStrings(len))
            EXPECT_EQ(full.predictAfter(s), reduced.predictAfter(s));
    }
}

TEST(DfaTest, HopcroftMergesRedundantStates)
{
    // Hand-built machine with two interchangeable output-1 states.
    Dfa dfa;
    const int a = dfa.addState(0);
    const int b = dfa.addState(1);
    const int c = dfa.addState(1); // duplicate of b
    dfa.setEdge(a, 0, a);
    dfa.setEdge(a, 1, b);
    dfa.setEdge(b, 0, a);
    dfa.setEdge(b, 1, c);
    dfa.setEdge(c, 0, a);
    dfa.setEdge(c, 1, b);
    dfa.setStart(a);
    const Dfa minimized = dfa.minimizeHopcroft();
    EXPECT_EQ(minimized.numStates(), 2);
    EXPECT_TRUE(dfa.equivalent(minimized));
}

TEST(DfaTest, TrimDropsUnreachable)
{
    Dfa dfa;
    const int a = dfa.addState(0);
    const int b = dfa.addState(1);
    const int orphan = dfa.addState(1);
    dfa.setEdge(a, 0, a);
    dfa.setEdge(a, 1, b);
    dfa.setEdge(b, 0, b);
    dfa.setEdge(b, 1, a);
    dfa.setEdge(orphan, 0, a);
    dfa.setEdge(orphan, 1, b);
    dfa.setStart(a);
    EXPECT_EQ(dfa.trimUnreachable().numStates(), 2);
}

TEST(DfaTest, EquivalentDetectsDifference)
{
    const Dfa zero = Dfa::constant(0);
    const Dfa one = Dfa::constant(1);
    EXPECT_FALSE(zero.equivalent(one));
    EXPECT_TRUE(zero.equivalent(Dfa::constant(0)));
}

TEST(DfaTest, ConstantMachines)
{
    const Dfa one = Dfa::constant(1);
    EXPECT_EQ(one.numStates(), 1);
    EXPECT_EQ(one.predictAfter({0, 1, 0, 0}), 1);
}

TEST(DfaTest, DotOutputMentionsStatesAndEdges)
{
    const Dfa dfa = Dfa::constant(1);
    const std::string dot = dfa.toDot("example");
    EXPECT_NE(dot.find("digraph example"), std::string::npos);
    EXPECT_NE(dot.find("s0"), std::string::npos);
    EXPECT_NE(dot.find("[1]"), std::string::npos);
    EXPECT_NE(dot.find("init -> s0"), std::string::npos);
}

/**
 * Property: for a random cover over n variables, the fully processed
 * machine (subset construction + Hopcroft + steady-state reduction)
 * predicts exactly cover.evaluate(last n bits) on every input of length
 * >= n. This is the core semantic guarantee of Sections 4.5-4.7.
 */
class PipelinePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelinePropertyTest, FinalMachineMatchesCoverOnSuffixes)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 1);
    const int n = 2 + static_cast<int>(rng.below(3)); // 2..4

    // Random non-empty, non-total ON set as minterm cover.
    Cover cover(n);
    uint32_t on_count = 0;
    for (uint32_t m = 0; m < (1u << n); ++m) {
        if (rng.chance(0.4)) {
            cover.add(Cube::minterm(m, n));
            ++on_count;
        }
    }
    if (on_count == 0)
        cover.add(Cube::minterm(0, n));

    const Dfa fsm = Dfa::fromNfa(Nfa::fromRegex(regexFromCover(cover)))
                        .minimizeHopcroft()
                        .steadyStateReduce();

    for (int len = n; len <= n + 4; ++len) {
        for (const auto &s : allStrings(len)) {
            EXPECT_EQ(fsm.predictAfter(s) == 1,
                      cover.evaluate(suffixBits(s, n)))
                << "len=" << len;
        }
    }

    // The steady-state core of a suffix language needs at most 2^n
    // states (one per reachable suffix).
    EXPECT_LE(fsm.numStates(), 1 << n);
}

INSTANTIATE_TEST_SUITE_P(RandomCovers, PipelinePropertyTest,
                         ::testing::Range(0, 20));

} // anonymous namespace
} // namespace autofsm
