/**
 * @file
 * Telemetry subsystem tests: registry semantics (including the
 * 8-thread concurrent-snapshot consistency check from the PR's
 * acceptance criteria), golden bytes for both exporters, and the span
 * tracer's hierarchy rules.
 *
 * Registry/tracer *behavior* tests skip under -DAUTOFSM_NO_TELEMETRY
 * (writes compile to no-ops there, by design). The exporter goldens
 * build their MetricsSnapshot/SpanRecord inputs by hand, so they pin
 * the byte format in every build mode.
 */

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

using namespace autofsm;
using namespace autofsm::obs;

#ifdef AUTOFSM_NO_TELEMETRY
#define SKIP_IF_NO_TELEMETRY() \
    GTEST_SKIP() << "built with AUTOFSM_NO_TELEMETRY"
#else
#define SKIP_IF_NO_TELEMETRY() (void)0
#endif

namespace
{

const MetricValue *
findMetric(const MetricsSnapshot &snapshot, const std::string &name)
{
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == name)
            return &metric;
    }
    return nullptr;
}

} // anonymous namespace

TEST(MetricsRegistryTest, CounterAccumulatesAcrossHandles)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter a = registry.counter("ops_total", "Operations.");
    Counter b = registry.counter("ops_total"); // same metric, new handle
    a.inc();
    a.inc(4);
    b.inc(2);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "ops_total");
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->kind, MetricKind::Counter);
    EXPECT_EQ(metric->count, 7u);
    EXPECT_EQ(metric->help, "Operations.");
}

TEST(MetricsRegistryTest, LabelsDistinguishInstances)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    registry.counter("x_total", "", {{"k", "a"}}).inc(1);
    registry.counter("x_total", "", {{"k", "b"}}).inc(2);
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 2u);
    // Sorted by (name, labels): k=a before k=b.
    EXPECT_EQ(snapshot.metrics[0].count, 1u);
    EXPECT_EQ(snapshot.metrics[1].count, 2u);
}

TEST(MetricsRegistryTest, KindMismatchThrows)
{
    MetricsRegistry registry;
    registry.counter("thing");
    EXPECT_THROW(registry.gauge("thing"), std::invalid_argument);
    registry.histogram("hist", "", {1.0, 2.0});
    EXPECT_THROW(registry.counter("hist"), std::invalid_argument);
    // Same name, different bounds: also a conflict.
    EXPECT_THROW(registry.histogram("hist", "", {1.0, 3.0}),
                 std::invalid_argument);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Gauge gauge = registry.gauge("level");
    gauge.set(2.0);
    gauge.add(0.5);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "level");
    ASSERT_NE(metric, nullptr);
    EXPECT_DOUBLE_EQ(metric->value, 2.5);
}

TEST(MetricsRegistryTest, HistogramBucketsCountAndSum)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Histogram hist = registry.histogram("lat", "", {1.0, 10.0});
    hist.observe(0.5);  // bucket le=1
    hist.observe(1.0);  // boundary lands in le=1 (value > bound fails)
    hist.observe(5.0);  // bucket le=10
    hist.observe(99.0); // +Inf overflow
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "lat");
    ASSERT_NE(metric, nullptr);
    const HistogramValue &value = metric->histogram;
    ASSERT_EQ(value.bucketCounts.size(), 3u);
    EXPECT_EQ(value.bucketCounts[0], 2u);
    EXPECT_EQ(value.bucketCounts[1], 1u);
    EXPECT_EQ(value.bucketCounts[2], 1u);
    EXPECT_EQ(value.count, 4u);
    EXPECT_DOUBLE_EQ(value.sum, 105.5);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsWrites)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    registry.enable(false);
    counter.inc(100);
    const MetricsSnapshot off = registry.snapshot();
    EXPECT_EQ(findMetric(off, "ops_total")->count, 0u);
    registry.enable(true);
    counter.inc(3);
    const MetricsSnapshot on = registry.snapshot();
    EXPECT_EQ(findMetric(on, "ops_total")->count, 3u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    Gauge gauge = registry.gauge("level");
    Histogram hist = registry.histogram("lat", "", {1.0});
    counter.inc(5);
    gauge.set(7.0);
    hist.observe(0.5);
    registry.reset();
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 3u);
    EXPECT_EQ(findMetric(snapshot, "ops_total")->count, 0u);
    EXPECT_DOUBLE_EQ(findMetric(snapshot, "level")->value, 0.0);
    EXPECT_EQ(findMetric(snapshot, "lat")->histogram.count, 0u);
    counter.inc(2); // handles stay live after reset
    const MetricsSnapshot after = registry.snapshot();
    EXPECT_EQ(findMetric(after, "ops_total")->count, 2u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels)
{
    MetricsRegistry registry;
    registry.counter("zz_total");
    registry.gauge("aa");
    registry.counter("mm_total", "", {{"b", "2"}});
    registry.counter("mm_total", "", {{"b", "1"}});
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 4u);
    EXPECT_EQ(snapshot.metrics[0].name, "aa");
    EXPECT_EQ(snapshot.metrics[1].name, "mm_total");
    EXPECT_EQ(snapshot.metrics[1].labels[0].second, "1");
    EXPECT_EQ(snapshot.metrics[2].labels[0].second, "2");
    EXPECT_EQ(snapshot.metrics[3].name, "zz_total");
}

/**
 * The acceptance-criteria test: snapshots taken while 8 writer threads
 * hammer the registry are internally consistent (counter totals only
 * grow and never exceed what was written), and the final merged total
 * equals the serial ground truth exactly.
 */
TEST(MetricsRegistryTest, ConcurrentSnapshotConsistency)
{
    SKIP_IF_NO_TELEMETRY();
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;

    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    Histogram hist =
        registry.histogram("lat_millis", "", {1.0, 10.0, 100.0});

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (uint64_t i = 0; i < kPerThread; ++i) {
                counter.inc();
                if ((i & 1023u) == 0)
                    hist.observe(static_cast<double>(t) + 0.5);
            }
        });
    }
    go.store(true, std::memory_order_release);

    uint64_t previous = 0;
    for (int s = 0; s < 50; ++s) {
        const MetricsSnapshot snapshot = registry.snapshot();
        const MetricValue *metric = findMetric(snapshot, "ops_total");
        ASSERT_NE(metric, nullptr);
        EXPECT_GE(metric->count, previous);
        EXPECT_LE(metric->count, kThreads * kPerThread);
        previous = metric->count;
    }
    for (std::thread &worker : workers)
        worker.join();

    const MetricsSnapshot final_snapshot = registry.snapshot();
    EXPECT_EQ(findMetric(final_snapshot, "ops_total")->count,
              kThreads * kPerThread);
    // Each thread observes at i = 0, 1024, ..., i.e. ceil(N/1024) times.
    const uint64_t observes_per_thread = (kPerThread + 1023) / 1024;
    const HistogramValue &value =
        findMetric(final_snapshot, "lat_millis")->histogram;
    EXPECT_EQ(value.count, kThreads * observes_per_thread);
    uint64_t bucket_total = 0;
    for (const uint64_t count : value.bucketCounts)
        bucket_total += count;
    EXPECT_EQ(bucket_total, value.count);
}

/**
 * Regression: registerMetric used to return a reference into the
 * registry's metric vector that was read after the mutex was released,
 * so a concurrent registration reallocating the vector was a
 * use-after-free (caught by TSan/ASan here). Threads register fresh
 * labelled metrics — forcing reallocation — while using the returned
 * handles immediately; every handle must stay valid and land its writes.
 */
TEST(MetricsRegistryTest, ConcurrentRegistrationYieldsValidHandles)
{
    SKIP_IF_NO_TELEMETRY();
    constexpr int kThreads = 8;
    constexpr int kMetricsPerThread = 64;

    MetricsRegistry registry;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int m = 0; m < kMetricsPerThread; ++m) {
                const Labels labels = {
                    {"thread", std::to_string(t)},
                    {"metric", std::to_string(m)},
                };
                Counter counter =
                    registry.counter("reg_race_total", "", labels);
                counter.inc(3);
                Gauge gauge = registry.gauge("reg_race_gauge", "", labels);
                gauge.set(1.5);
                Histogram hist = registry.histogram(
                    "reg_race_millis", "", {1.0, 10.0}, labels);
                hist.observe(0.5);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &worker : workers)
        worker.join();

    const MetricsSnapshot snapshot = registry.snapshot();
    int counters = 0, gauges = 0, histograms = 0;
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == "reg_race_total") {
            ++counters;
            EXPECT_EQ(metric.count, 3u);
        } else if (metric.name == "reg_race_gauge") {
            ++gauges;
            EXPECT_EQ(metric.value, 1.5);
        } else if (metric.name == "reg_race_millis") {
            ++histograms;
            EXPECT_EQ(metric.histogram.count, 1u);
        }
    }
    EXPECT_EQ(counters, kThreads * kMetricsPerThread);
    EXPECT_EQ(gauges, kThreads * kMetricsPerThread);
    EXPECT_EQ(histograms, kThreads * kMetricsPerThread);
}

/**
 * Regression: the internal dedup key joins components with \x1f; label
 * text containing that byte must not make distinct label sets alias
 * one metric (or trick re-registration checks into a kind mismatch).
 */
TEST(MetricsRegistryTest, SeparatorBytesInLabelsDoNotCollide)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    // Same flattened byte stream with the naive key: a | b\x1fc  vs
    // a\x1fb | c.
    Counter first =
        registry.counter("sep_total", "", {{"a", "b\x1f"
                                                 "c"}});
    Counter second = registry.counter("sep_total", "",
                                      {{"a\x1f"
                                        "b",
                                        "c"}});
    first.inc(1);
    second.inc(10);
    const MetricsSnapshot snapshot = registry.snapshot();
    std::vector<uint64_t> totals;
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == "sep_total")
            totals.push_back(metric.count);
    }
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0] + totals[1], 11u);
}

// --- exporter goldens (hand-built snapshots; run in every build mode) --

namespace
{

MetricsSnapshot
goldenSnapshot()
{
    MetricsSnapshot snapshot;

    MetricValue counter;
    counter.name = "autofsm_demo_total";
    counter.help = "Demo counter.";
    counter.labels = {{"stage", "markov"}};
    counter.kind = MetricKind::Counter;
    counter.count = 3;
    snapshot.metrics.push_back(counter);

    MetricValue gauge;
    gauge.name = "autofsm_gauge";
    gauge.help = "A gauge.";
    gauge.kind = MetricKind::Gauge;
    gauge.value = 2.5;
    snapshot.metrics.push_back(gauge);

    MetricValue hist;
    hist.name = "autofsm_lat_millis";
    hist.help = "Latency.";
    hist.kind = MetricKind::Histogram;
    hist.histogram.upperBounds = {1.0, 2.0};
    hist.histogram.bucketCounts = {1, 2, 1};
    hist.histogram.count = 4;
    hist.histogram.sum = 5.5;
    snapshot.metrics.push_back(hist);

    return snapshot;
}

} // anonymous namespace

TEST(MetricsExportTest, PrometheusGolden)
{
    EXPECT_EQ(metricsToPrometheus(goldenSnapshot()),
              "# HELP autofsm_demo_total Demo counter.\n"
              "# TYPE autofsm_demo_total counter\n"
              "autofsm_demo_total{stage=\"markov\"} 3\n"
              "# HELP autofsm_gauge A gauge.\n"
              "# TYPE autofsm_gauge gauge\n"
              "autofsm_gauge 2.5\n"
              "# HELP autofsm_lat_millis Latency.\n"
              "# TYPE autofsm_lat_millis histogram\n"
              "autofsm_lat_millis_bucket{le=\"1\"} 1\n"
              "autofsm_lat_millis_bucket{le=\"2\"} 3\n"
              "autofsm_lat_millis_bucket{le=\"+Inf\"} 4\n"
              "autofsm_lat_millis_sum 5.5\n"
              "autofsm_lat_millis_count 4\n");
}

TEST(MetricsExportTest, PrometheusEscapesLabelValues)
{
    MetricsSnapshot snapshot;
    MetricValue counter;
    counter.name = "esc_total";
    counter.kind = MetricKind::Counter;
    counter.labels = {{"k", "a\"b\\c\nd"}};
    counter.count = 1;
    snapshot.metrics.push_back(counter);
    EXPECT_EQ(metricsToPrometheus(snapshot),
              "# TYPE esc_total counter\n"
              "esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(MetricsExportTest, JsonGolden)
{
    EXPECT_EQ(
        metricsToJson(goldenSnapshot()),
        "{\"metrics\":["
        "{\"name\":\"autofsm_demo_total\",\"kind\":\"counter\","
        "\"help\":\"Demo counter.\",\"labels\":{\"stage\":\"markov\"},"
        "\"value\":3},"
        "{\"name\":\"autofsm_gauge\",\"kind\":\"gauge\","
        "\"help\":\"A gauge.\",\"value\":2.5},"
        "{\"name\":\"autofsm_lat_millis\",\"kind\":\"histogram\","
        "\"help\":\"Latency.\",\"count\":4,\"sum\":5.5,"
        "\"p50\":1.5,\"p90\":2,\"p99\":2,"
        "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":2},"
        "{\"le\":null,\"count\":1}]}"
        "]}");
}

TEST(MetricsExportTest, ExportersAreDeterministic)
{
    const MetricsSnapshot snapshot = goldenSnapshot();
    EXPECT_EQ(metricsToJson(snapshot), metricsToJson(snapshot));
    EXPECT_EQ(metricsToPrometheus(snapshot),
              metricsToPrometheus(snapshot));
}

TEST(SpansExportTest, JsonGoldenNestsChildrenAndOrphans)
{
    std::vector<SpanRecord> spans;
    spans.push_back({1, 0, "root", 0.0, 5.0});
    spans.push_back({2, 1, "child-a", 1.0, 1.5});
    spans.push_back({3, 1, "child-b", 2.5, 2.0});
    spans.push_back({4, 99, "orphan", 0.5, 0.25}); // absent parent
    EXPECT_EQ(
        spansToJson(spans),
        "{\"spans\":["
        "{\"id\":1,\"name\":\"root\",\"startMillis\":0,\"millis\":5,"
        "\"children\":["
        "{\"id\":2,\"name\":\"child-a\",\"startMillis\":1,"
        "\"millis\":1.5},"
        "{\"id\":3,\"name\":\"child-b\",\"startMillis\":2.5,"
        "\"millis\":2}]},"
        "{\"id\":4,\"name\":\"orphan\",\"startMillis\":0.5,"
        "\"millis\":0.25}"
        "]}");
}

// --- tracer behavior ---------------------------------------------------

TEST(TracerTest, NestedSpansLinkToStackParent)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    {
        SpanScope outer(&tracer, "outer");
        EXPECT_EQ(tracer.currentSpan(), outer.id());
        {
            SpanScope inner(&tracer, "inner");
            EXPECT_EQ(tracer.currentSpan(), inner.id());
        }
        EXPECT_EQ(tracer.currentSpan(), outer.id());
    }
    EXPECT_EQ(tracer.currentSpan(), 0u);

    const std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by id = start order: outer first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent, spans[0].id);
    EXPECT_GE(spans[0].durationMillis, spans[1].durationMillis);
}

TEST(TracerTest, ExplicitParentConnectsAcrossThreads)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    uint64_t root_id = 0;
    {
        SpanScope root(&tracer, "batch");
        root_id = root.id();
        std::thread worker([&] {
            SpanScope item(&tracer, "item", root_id);
            (void)item;
        });
        worker.join();
    }
    const std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "batch");
    EXPECT_EQ(spans[1].name, "item");
    EXPECT_EQ(spans[1].parent, root_id);
}

TEST(TracerTest, ClearDropsRecordedSpans)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    { SpanScope span(&tracer, "a"); }
    ASSERT_EQ(tracer.snapshot().size(), 1u);
    tracer.clear();
    EXPECT_TRUE(tracer.snapshot().empty());
    { SpanScope span(&tracer, "b"); }
    EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(TracerTest, DisabledTracerStillTimes)
{
    // Works in every build mode: a SpanScope over a disabled (or null)
    // tracer is a stopwatch, which FlowTrace depends on.
    Tracer tracer; // disabled by default
    SpanScope span(&tracer, "timed");
    EXPECT_EQ(span.id(), 0u);
    const double first = span.finishMillis();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(span.finishMillis(), first); // idempotent
    EXPECT_TRUE(tracer.snapshot().empty());

    SpanScope null_span(nullptr, "timed");
    EXPECT_GE(null_span.finishMillis(), 0.0);
}
