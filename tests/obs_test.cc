/**
 * @file
 * Telemetry subsystem tests: registry semantics (including the
 * 8-thread concurrent-snapshot consistency check from the PR's
 * acceptance criteria), golden bytes for both exporters, and the span
 * tracer's hierarchy rules.
 *
 * Registry/tracer *behavior* tests skip under -DAUTOFSM_NO_TELEMETRY
 * (writes compile to no-ops there, by design). The exporter goldens
 * build their MetricsSnapshot/SpanRecord inputs by hand, so they pin
 * the byte format in every build mode.
 */

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "support/json_parse.hh"

using namespace autofsm;
using namespace autofsm::obs;

#ifdef AUTOFSM_NO_TELEMETRY
#define SKIP_IF_NO_TELEMETRY() \
    GTEST_SKIP() << "built with AUTOFSM_NO_TELEMETRY"
#else
#define SKIP_IF_NO_TELEMETRY() (void)0
#endif

namespace
{

const MetricValue *
findMetric(const MetricsSnapshot &snapshot, const std::string &name)
{
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == name)
            return &metric;
    }
    return nullptr;
}

} // anonymous namespace

TEST(MetricsRegistryTest, CounterAccumulatesAcrossHandles)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter a = registry.counter("ops_total", "Operations.");
    Counter b = registry.counter("ops_total"); // same metric, new handle
    a.inc();
    a.inc(4);
    b.inc(2);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "ops_total");
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->kind, MetricKind::Counter);
    EXPECT_EQ(metric->count, 7u);
    EXPECT_EQ(metric->help, "Operations.");
}

TEST(MetricsRegistryTest, LabelsDistinguishInstances)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    registry.counter("x_total", "", {{"k", "a"}}).inc(1);
    registry.counter("x_total", "", {{"k", "b"}}).inc(2);
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 2u);
    // Sorted by (name, labels): k=a before k=b.
    EXPECT_EQ(snapshot.metrics[0].count, 1u);
    EXPECT_EQ(snapshot.metrics[1].count, 2u);
}

TEST(MetricsRegistryTest, KindMismatchThrows)
{
    MetricsRegistry registry;
    registry.counter("thing");
    EXPECT_THROW(registry.gauge("thing"), std::invalid_argument);
    registry.histogram("hist", "", {1.0, 2.0});
    EXPECT_THROW(registry.counter("hist"), std::invalid_argument);
    // Same name, different bounds: also a conflict.
    EXPECT_THROW(registry.histogram("hist", "", {1.0, 3.0}),
                 std::invalid_argument);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Gauge gauge = registry.gauge("level");
    gauge.set(2.0);
    gauge.add(0.5);
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "level");
    ASSERT_NE(metric, nullptr);
    EXPECT_DOUBLE_EQ(metric->value, 2.5);
}

TEST(MetricsRegistryTest, HistogramBucketsCountAndSum)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Histogram hist = registry.histogram("lat", "", {1.0, 10.0});
    hist.observe(0.5);  // bucket le=1
    hist.observe(1.0);  // boundary lands in le=1 (value > bound fails)
    hist.observe(5.0);  // bucket le=10
    hist.observe(99.0); // +Inf overflow
    const MetricsSnapshot snapshot = registry.snapshot();
    const MetricValue *metric = findMetric(snapshot, "lat");
    ASSERT_NE(metric, nullptr);
    const HistogramValue &value = metric->histogram;
    ASSERT_EQ(value.bucketCounts.size(), 3u);
    EXPECT_EQ(value.bucketCounts[0], 2u);
    EXPECT_EQ(value.bucketCounts[1], 1u);
    EXPECT_EQ(value.bucketCounts[2], 1u);
    EXPECT_EQ(value.count, 4u);
    EXPECT_DOUBLE_EQ(value.sum, 105.5);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsWrites)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    registry.enable(false);
    counter.inc(100);
    const MetricsSnapshot off = registry.snapshot();
    EXPECT_EQ(findMetric(off, "ops_total")->count, 0u);
    registry.enable(true);
    counter.inc(3);
    const MetricsSnapshot on = registry.snapshot();
    EXPECT_EQ(findMetric(on, "ops_total")->count, 3u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesKeepsRegistrations)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    Gauge gauge = registry.gauge("level");
    Histogram hist = registry.histogram("lat", "", {1.0});
    counter.inc(5);
    gauge.set(7.0);
    hist.observe(0.5);
    registry.reset();
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 3u);
    EXPECT_EQ(findMetric(snapshot, "ops_total")->count, 0u);
    EXPECT_DOUBLE_EQ(findMetric(snapshot, "level")->value, 0.0);
    EXPECT_EQ(findMetric(snapshot, "lat")->histogram.count, 0u);
    counter.inc(2); // handles stay live after reset
    const MetricsSnapshot after = registry.snapshot();
    EXPECT_EQ(findMetric(after, "ops_total")->count, 2u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels)
{
    MetricsRegistry registry;
    registry.counter("zz_total");
    registry.gauge("aa");
    registry.counter("mm_total", "", {{"b", "2"}});
    registry.counter("mm_total", "", {{"b", "1"}});
    const MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.metrics.size(), 4u);
    EXPECT_EQ(snapshot.metrics[0].name, "aa");
    EXPECT_EQ(snapshot.metrics[1].name, "mm_total");
    EXPECT_EQ(snapshot.metrics[1].labels[0].second, "1");
    EXPECT_EQ(snapshot.metrics[2].labels[0].second, "2");
    EXPECT_EQ(snapshot.metrics[3].name, "zz_total");
}

/**
 * The acceptance-criteria test: snapshots taken while 8 writer threads
 * hammer the registry are internally consistent (counter totals only
 * grow and never exceed what was written), and the final merged total
 * equals the serial ground truth exactly.
 */
TEST(MetricsRegistryTest, ConcurrentSnapshotConsistency)
{
    SKIP_IF_NO_TELEMETRY();
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;

    MetricsRegistry registry;
    Counter counter = registry.counter("ops_total");
    Histogram hist =
        registry.histogram("lat_millis", "", {1.0, 10.0, 100.0});

    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (uint64_t i = 0; i < kPerThread; ++i) {
                counter.inc();
                if ((i & 1023u) == 0)
                    hist.observe(static_cast<double>(t) + 0.5);
            }
        });
    }
    go.store(true, std::memory_order_release);

    uint64_t previous = 0;
    for (int s = 0; s < 50; ++s) {
        const MetricsSnapshot snapshot = registry.snapshot();
        const MetricValue *metric = findMetric(snapshot, "ops_total");
        ASSERT_NE(metric, nullptr);
        EXPECT_GE(metric->count, previous);
        EXPECT_LE(metric->count, kThreads * kPerThread);
        previous = metric->count;
    }
    for (std::thread &worker : workers)
        worker.join();

    const MetricsSnapshot final_snapshot = registry.snapshot();
    EXPECT_EQ(findMetric(final_snapshot, "ops_total")->count,
              kThreads * kPerThread);
    // Each thread observes at i = 0, 1024, ..., i.e. ceil(N/1024) times.
    const uint64_t observes_per_thread = (kPerThread + 1023) / 1024;
    const HistogramValue &value =
        findMetric(final_snapshot, "lat_millis")->histogram;
    EXPECT_EQ(value.count, kThreads * observes_per_thread);
    uint64_t bucket_total = 0;
    for (const uint64_t count : value.bucketCounts)
        bucket_total += count;
    EXPECT_EQ(bucket_total, value.count);
}

/**
 * Regression: registerMetric used to return a reference into the
 * registry's metric vector that was read after the mutex was released,
 * so a concurrent registration reallocating the vector was a
 * use-after-free (caught by TSan/ASan here). Threads register fresh
 * labelled metrics — forcing reallocation — while using the returned
 * handles immediately; every handle must stay valid and land its writes.
 */
TEST(MetricsRegistryTest, ConcurrentRegistrationYieldsValidHandles)
{
    SKIP_IF_NO_TELEMETRY();
    constexpr int kThreads = 8;
    constexpr int kMetricsPerThread = 64;

    MetricsRegistry registry;
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int m = 0; m < kMetricsPerThread; ++m) {
                const Labels labels = {
                    {"thread", std::to_string(t)},
                    {"metric", std::to_string(m)},
                };
                Counter counter =
                    registry.counter("reg_race_total", "", labels);
                counter.inc(3);
                Gauge gauge = registry.gauge("reg_race_gauge", "", labels);
                gauge.set(1.5);
                Histogram hist = registry.histogram(
                    "reg_race_millis", "", {1.0, 10.0}, labels);
                hist.observe(0.5);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &worker : workers)
        worker.join();

    const MetricsSnapshot snapshot = registry.snapshot();
    int counters = 0, gauges = 0, histograms = 0;
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == "reg_race_total") {
            ++counters;
            EXPECT_EQ(metric.count, 3u);
        } else if (metric.name == "reg_race_gauge") {
            ++gauges;
            EXPECT_EQ(metric.value, 1.5);
        } else if (metric.name == "reg_race_millis") {
            ++histograms;
            EXPECT_EQ(metric.histogram.count, 1u);
        }
    }
    EXPECT_EQ(counters, kThreads * kMetricsPerThread);
    EXPECT_EQ(gauges, kThreads * kMetricsPerThread);
    EXPECT_EQ(histograms, kThreads * kMetricsPerThread);
}

/**
 * Regression: the internal dedup key joins components with \x1f; label
 * text containing that byte must not make distinct label sets alias
 * one metric (or trick re-registration checks into a kind mismatch).
 */
TEST(MetricsRegistryTest, SeparatorBytesInLabelsDoNotCollide)
{
    SKIP_IF_NO_TELEMETRY();
    MetricsRegistry registry;
    // Same flattened byte stream with the naive key: a | b\x1fc  vs
    // a\x1fb | c.
    Counter first =
        registry.counter("sep_total", "", {{"a", "b\x1f"
                                                 "c"}});
    Counter second = registry.counter("sep_total", "",
                                      {{"a\x1f"
                                        "b",
                                        "c"}});
    first.inc(1);
    second.inc(10);
    const MetricsSnapshot snapshot = registry.snapshot();
    std::vector<uint64_t> totals;
    for (const MetricValue &metric : snapshot.metrics) {
        if (metric.name == "sep_total")
            totals.push_back(metric.count);
    }
    ASSERT_EQ(totals.size(), 2u);
    EXPECT_EQ(totals[0] + totals[1], 11u);
}

// --- exporter goldens (hand-built snapshots; run in every build mode) --

namespace
{

MetricsSnapshot
goldenSnapshot()
{
    MetricsSnapshot snapshot;

    MetricValue counter;
    counter.name = "autofsm_demo_total";
    counter.help = "Demo counter.";
    counter.labels = {{"stage", "markov"}};
    counter.kind = MetricKind::Counter;
    counter.count = 3;
    snapshot.metrics.push_back(counter);

    MetricValue gauge;
    gauge.name = "autofsm_gauge";
    gauge.help = "A gauge.";
    gauge.kind = MetricKind::Gauge;
    gauge.value = 2.5;
    snapshot.metrics.push_back(gauge);

    MetricValue hist;
    hist.name = "autofsm_lat_millis";
    hist.help = "Latency.";
    hist.kind = MetricKind::Histogram;
    hist.histogram.upperBounds = {1.0, 2.0};
    hist.histogram.bucketCounts = {1, 2, 1};
    hist.histogram.count = 4;
    hist.histogram.sum = 5.5;
    snapshot.metrics.push_back(hist);

    return snapshot;
}

} // anonymous namespace

TEST(MetricsExportTest, PrometheusGolden)
{
    EXPECT_EQ(metricsToPrometheus(goldenSnapshot()),
              "# HELP autofsm_demo_total Demo counter.\n"
              "# TYPE autofsm_demo_total counter\n"
              "autofsm_demo_total{stage=\"markov\"} 3\n"
              "# HELP autofsm_gauge A gauge.\n"
              "# TYPE autofsm_gauge gauge\n"
              "autofsm_gauge 2.5\n"
              "# HELP autofsm_lat_millis Latency.\n"
              "# TYPE autofsm_lat_millis histogram\n"
              "autofsm_lat_millis_bucket{le=\"1\"} 1\n"
              "autofsm_lat_millis_bucket{le=\"2\"} 3\n"
              "autofsm_lat_millis_bucket{le=\"+Inf\"} 4\n"
              "autofsm_lat_millis_sum 5.5\n"
              "autofsm_lat_millis_count 4\n");
}

TEST(MetricsExportTest, PrometheusEscapesLabelValues)
{
    MetricsSnapshot snapshot;
    MetricValue counter;
    counter.name = "esc_total";
    counter.kind = MetricKind::Counter;
    counter.labels = {{"k", "a\"b\\c\nd"}};
    counter.count = 1;
    snapshot.metrics.push_back(counter);
    EXPECT_EQ(metricsToPrometheus(snapshot),
              "# TYPE esc_total counter\n"
              "esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(MetricsExportTest, JsonGolden)
{
    EXPECT_EQ(
        metricsToJson(goldenSnapshot()),
        "{\"metrics\":["
        "{\"name\":\"autofsm_demo_total\",\"kind\":\"counter\","
        "\"help\":\"Demo counter.\",\"labels\":{\"stage\":\"markov\"},"
        "\"value\":3},"
        "{\"name\":\"autofsm_gauge\",\"kind\":\"gauge\","
        "\"help\":\"A gauge.\",\"value\":2.5},"
        "{\"name\":\"autofsm_lat_millis\",\"kind\":\"histogram\","
        "\"help\":\"Latency.\",\"count\":4,\"sum\":5.5,"
        "\"p50\":1.5,\"p90\":2,\"p99\":2,"
        "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":2},"
        "{\"le\":null,\"count\":1}]}"
        "]}");
}

TEST(MetricsExportTest, ExportersAreDeterministic)
{
    const MetricsSnapshot snapshot = goldenSnapshot();
    EXPECT_EQ(metricsToJson(snapshot), metricsToJson(snapshot));
    EXPECT_EQ(metricsToPrometheus(snapshot),
              metricsToPrometheus(snapshot));
}

TEST(SpansExportTest, JsonGoldenNestsChildrenAndOrphans)
{
    std::vector<SpanRecord> spans;
    spans.push_back({1, 0, "root", 0.0, 5.0});
    spans.push_back({2, 1, "child-a", 1.0, 1.5});
    spans.push_back({3, 1, "child-b", 2.5, 2.0});
    spans.push_back({4, 99, "orphan", 0.5, 0.25}); // absent parent
    EXPECT_EQ(
        spansToJson(spans),
        "{\"spans\":["
        "{\"id\":1,\"name\":\"root\",\"startMillis\":0,\"millis\":5,"
        "\"children\":["
        "{\"id\":2,\"name\":\"child-a\",\"startMillis\":1,"
        "\"millis\":1.5},"
        "{\"id\":3,\"name\":\"child-b\",\"startMillis\":2.5,"
        "\"millis\":2}]},"
        "{\"id\":4,\"name\":\"orphan\",\"startMillis\":0.5,"
        "\"millis\":0.25}"
        "]}");
}

// --- tracer behavior ---------------------------------------------------

TEST(TracerTest, NestedSpansLinkToStackParent)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    {
        SpanScope outer(&tracer, "outer");
        EXPECT_EQ(tracer.currentSpan(), outer.id());
        {
            SpanScope inner(&tracer, "inner");
            EXPECT_EQ(tracer.currentSpan(), inner.id());
        }
        EXPECT_EQ(tracer.currentSpan(), outer.id());
    }
    EXPECT_EQ(tracer.currentSpan(), 0u);

    const std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Sorted by id = start order: outer first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent, spans[0].id);
    EXPECT_GE(spans[0].durationMillis, spans[1].durationMillis);
}

TEST(TracerTest, ExplicitParentConnectsAcrossThreads)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    uint64_t root_id = 0;
    {
        SpanScope root(&tracer, "batch");
        root_id = root.id();
        std::thread worker([&] {
            SpanScope item(&tracer, "item", root_id);
            (void)item;
        });
        worker.join();
    }
    const std::vector<SpanRecord> spans = tracer.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].name, "batch");
    EXPECT_EQ(spans[1].name, "item");
    EXPECT_EQ(spans[1].parent, root_id);
}

TEST(TracerTest, ClearDropsRecordedSpans)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    { SpanScope span(&tracer, "a"); }
    ASSERT_EQ(tracer.snapshot().size(), 1u);
    tracer.clear();
    EXPECT_TRUE(tracer.snapshot().empty());
    { SpanScope span(&tracer, "b"); }
    EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(TracerTest, DisabledTracerStillTimes)
{
    // Works in every build mode: a SpanScope over a disabled (or null)
    // tracer is a stopwatch, which FlowTrace depends on.
    Tracer tracer; // disabled by default
    SpanScope span(&tracer, "timed");
    EXPECT_EQ(span.id(), 0u);
    const double first = span.finishMillis();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(span.finishMillis(), first); // idempotent
    EXPECT_TRUE(tracer.snapshot().empty());

    SpanScope null_span(nullptr, "timed");
    EXPECT_GE(null_span.finishMillis(), 0.0);
}

/**
 * Regression for the incremental drain path: each drain() returns
 * exactly the spans recorded since the previous drain, sorted by id,
 * and consumes them (they stop appearing in snapshot()).
 */
TEST(TracerTest, DrainConsumesOnlyNewSpansInIdOrder)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);
    { SpanScope span(&tracer, "first"); }
    { SpanScope span(&tracer, "second"); }

    const std::vector<SpanRecord> batch1 = tracer.drain();
    ASSERT_EQ(batch1.size(), 2u);
    EXPECT_EQ(batch1[0].name, "first");
    EXPECT_EQ(batch1[1].name, "second");
    EXPECT_LT(batch1[0].id, batch1[1].id);
    EXPECT_TRUE(tracer.snapshot().empty()); // drained = consumed

    { SpanScope span(&tracer, "third"); }
    const std::vector<SpanRecord> batch2 = tracer.drain();
    ASSERT_EQ(batch2.size(), 1u);
    EXPECT_EQ(batch2[0].name, "third");
    EXPECT_GT(batch2[0].id, batch1[1].id); // ids keep increasing

    EXPECT_TRUE(tracer.drain().empty());
}

TEST(TracerTest, OpenCloseSpanCrossesThreads)
{
    SKIP_IF_NO_TELEMETRY();
    Tracer tracer;
    tracer.enable(true);

    // A request-lifetime span: opened on the admission thread, children
    // recorded from a worker, closed from a third thread.
    const uint64_t root = tracer.openSpan("serve.request");
    ASSERT_NE(root, 0u);
    std::thread worker([&] {
        SpanScope item(&tracer, "batch.item", root);
        (void)item;
    });
    worker.join();
    std::thread closer([&] { tracer.closeSpan(root); });
    closer.join();

    tracer.closeSpan(0);   // no-op
    tracer.closeSpan(999); // unknown id: no-op

    const std::vector<SpanRecord> spans = tracer.drain();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].id, root);
    EXPECT_EQ(spans[0].name, "serve.request");
    EXPECT_EQ(spans[0].parent, 0u);
    EXPECT_GE(spans[0].durationMillis, 0.0);
    EXPECT_EQ(spans[1].name, "batch.item");
    EXPECT_EQ(spans[1].parent, root);
    // The request span must cover its child's whole lifetime.
    EXPECT_GE(spans[0].startMillis + spans[0].durationMillis,
              spans[1].startMillis + spans[1].durationMillis);
}

TEST(TracerTest, DisabledOpenSpanReturnsZero)
{
    Tracer tracer; // disabled
    EXPECT_EQ(tracer.openSpan("nope"), 0u);
    tracer.closeSpan(0);
    EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TracerTest, CurrentTracerDefaultsToGlobalAndBindingOverrides)
{
    EXPECT_EQ(currentTracer(), &globalTracer());
    Tracer mine;
    {
        TracerBinding binding(&mine);
        EXPECT_EQ(currentTracer(), &mine);
        // The binding is thread-local: a fresh thread sees the global.
        Tracer *seen = nullptr;
        std::thread other([&] { seen = currentTracer(); });
        other.join();
        EXPECT_EQ(seen, &globalTracer());
        {
            Tracer inner;
            TracerBinding nested(&inner);
            EXPECT_EQ(currentTracer(), &inner);
        }
        EXPECT_EQ(currentTracer(), &mine); // nested scope restores
    }
    EXPECT_EQ(currentTracer(), &globalTracer());
}

/**
 * The cross-thread parentage acceptance test: two "requests" fanned
 * across a pool of workers must come out as two connected, disjoint
 * span trees — every span walks up to its own request's root, none to
 * the other's, and no parent id is missing.
 */
TEST(TracerTest, PoolFannedRequestsYieldConnectedDisjointTrees)
{
    SKIP_IF_NO_TELEMETRY();
    constexpr int kRequests = 2;
    constexpr int kItemsPerRequest = 4;

    Tracer tracer;
    tracer.enable(true);
    uint64_t roots[kRequests];
    for (int r = 0; r < kRequests; ++r)
        roots[r] = tracer.openSpan("serve.request");

    std::vector<std::thread> workers;
    for (int r = 0; r < kRequests; ++r) {
        for (int i = 0; i < kItemsPerRequest; ++i) {
            workers.emplace_back([&, r] {
                TracerBinding binding(&tracer);
                SpanScope item(currentTracer(),
                               r == 0 ? "item.0" : "item.1", roots[r]);
                // Stack parentage inside the item, as the flow stages do.
                SpanScope stage(currentTracer(), "flow.run");
            });
        }
    }
    for (std::thread &worker : workers)
        worker.join();
    for (int r = 0; r < kRequests; ++r)
        tracer.closeSpan(roots[r]);

    const std::vector<SpanRecord> spans = tracer.drain();
    ASSERT_EQ(spans.size(),
              kRequests * (1 + 2 * kItemsPerRequest));

    std::map<uint64_t, const SpanRecord *> byId;
    for (const SpanRecord &span : spans)
        byId[span.id] = &span;
    for (const SpanRecord &span : spans) {
        if (span.parent == 0) {
            EXPECT_EQ(span.name, "serve.request");
            continue;
        }
        ASSERT_TRUE(byId.count(span.parent))
            << "orphan: " << span.name << " parent " << span.parent;
        // Walk to the root; it must be the right request's root.
        uint64_t at = span.id;
        while (byId[at]->parent != 0)
            at = byId[at]->parent;
        if (span.name == "item.0")
            EXPECT_EQ(at, roots[0]);
        else if (span.name == "item.1")
            EXPECT_EQ(at, roots[1]);
        else
            EXPECT_TRUE(at == roots[0] || at == roots[1]);
    }
}

TEST(TraceEventsExportTest, ChromeGoldenAndStrictJson)
{
    // Hand-built spans, so this pins the byte format in every build
    // mode: complete "X" events, microsecond ts/dur, tid = the
    // tracer-local thread ordinal, span ids in args.
    std::vector<SpanRecord> spans;
    spans.push_back({1, 0, "root", 0.0, 2.5, 0});
    spans.push_back({2, 1, "child", 0.5, 1.0, 1});
    const std::string json = traceEventsToJson(spans);
    EXPECT_EQ(json,
              "{\"traceEvents\":["
              "{\"name\":\"root\",\"cat\":\"autofsm\",\"ph\":\"X\","
              "\"ts\":0,\"dur\":2500,\"pid\":1,\"tid\":0,"
              "\"args\":{\"id\":1,\"parent\":0}},"
              "{\"name\":\"child\",\"cat\":\"autofsm\",\"ph\":\"X\","
              "\"ts\":500,\"dur\":1000,\"pid\":1,\"tid\":1,"
              "\"args\":{\"id\":2,\"parent\":1}}"
              "],\"displayTimeUnit\":\"ms\"}");
    // And the repo's strict parser accepts it (what the smoke job runs).
    const JsonValue parsed = JsonValue::parse(json);
    ASSERT_NE(parsed.find("traceEvents"), nullptr);
    EXPECT_EQ(parsed.find("traceEvents")->items().size(), 2u);
}

// --- structured logger -------------------------------------------------

TEST(LogTest, StrictJsonLineWithTypedFields)
{
    SKIP_IF_NO_TELEMETRY();
    Logger logger;
    std::ostringstream sink;
    logger.setSink(&sink);
    logger.log(LogLevel::Info, "test.site", "hello",
               {{"s", "x\"y"},
                {"i", int64_t{-3}},
                {"u", uint64_t{7}},
                {"r", 1.5},
                {"b", true}});

    std::string line = sink.str();
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();
    const JsonValue parsed = JsonValue::parse(line); // strict: one object
    EXPECT_EQ(parsed.find("level")->asString(), "info");
    EXPECT_EQ(parsed.find("site")->asString(), "test.site");
    EXPECT_EQ(parsed.find("msg")->asString(), "hello");
    EXPECT_GT(parsed.find("ts")->asInt(), 0);
    EXPECT_EQ(parsed.find("s")->asString(), "x\"y");
    EXPECT_EQ(parsed.find("i")->asInt(), -3);
    EXPECT_EQ(parsed.find("u")->asInt(), 7);
    EXPECT_DOUBLE_EQ(parsed.find("r")->asNumber(), 1.5);
    EXPECT_TRUE(parsed.find("b")->asBool());
    // No request context bound: no correlation keys.
    EXPECT_EQ(parsed.find("requestId"), nullptr);
    EXPECT_EQ(parsed.find("suppressed"), nullptr);
}

TEST(LogTest, MinLevelFiltersDebugByDefault)
{
    SKIP_IF_NO_TELEMETRY();
    Logger logger;
    std::ostringstream sink;
    logger.setSink(&sink);
    logger.log(LogLevel::Debug, "test.site", "dropped");
    EXPECT_TRUE(sink.str().empty());
    logger.setMinLevel(LogLevel::Debug);
    logger.log(LogLevel::Debug, "test.site", "kept");
    EXPECT_NE(sink.str().find("\"kept\""), std::string::npos);
}

TEST(LogTest, RateLimitSuppressesCountsAndErrorsBypass)
{
    SKIP_IF_NO_TELEMETRY();
    Logger logger;
    std::ostringstream sink;
    logger.setSink(&sink);
    logger.setRateLimitPerSecond(2);

    for (int i = 0; i < 5; ++i)
        logger.log(LogLevel::Info, "noisy.site", "spam");
    // Errors are never suppressed, even on an exhausted site.
    logger.log(LogLevel::Error, "noisy.site", "boom");

    std::istringstream lines(sink.str());
    std::string line;
    size_t count = 0;
    while (std::getline(lines, line))
        ++count;
    EXPECT_EQ(count, 3u); // 2 info + the error
    EXPECT_EQ(logger.suppressedLines(), 3u);
    EXPECT_NE(sink.str().find("\"boom\""), std::string::npos);
}

TEST(LogTest, SuppressedCountRidesOnNextEmittedLine)
{
    SKIP_IF_NO_TELEMETRY();
    Logger logger;
    std::ostringstream sink;
    logger.setSink(&sink);
    logger.setRateLimitPerSecond(1);
    logger.log(LogLevel::Info, "bursty.site", "first");
    logger.log(LogLevel::Info, "bursty.site", "dropped-1");
    logger.log(LogLevel::Info, "bursty.site", "dropped-2");
    // Next window: the first line through carries the dropped count.
    std::this_thread::sleep_for(std::chrono::milliseconds(1050));
    logger.log(LogLevel::Info, "bursty.site", "second");

    std::istringstream lines(sink.str());
    std::string line, last;
    while (std::getline(lines, line))
        last = line;
    const JsonValue parsed = JsonValue::parse(last);
    EXPECT_EQ(parsed.find("msg")->asString(), "second");
    ASSERT_NE(parsed.find("suppressed"), nullptr);
    EXPECT_EQ(parsed.find("suppressed")->asInt(), 2);
}

TEST(LogTest, RequestCorrelationFromBoundContext)
{
    SKIP_IF_NO_TELEMETRY();
    Logger logger;
    std::ostringstream sink;
    logger.setSink(&sink);

    TraceContext context;
    context.requestId = 7;
    context.tenant = "smoke";
    context.requestClass = "interactive";
    context.sampled = true;
    {
        TraceContextScope scope(context);
        logger.log(LogLevel::Warn, "serve.slow", "late");
    }
    logger.log(LogLevel::Warn, "serve.slow", "outside");

    std::istringstream lines(sink.str());
    std::string inside, outside;
    std::getline(lines, inside);
    std::getline(lines, outside);
    const JsonValue bound = JsonValue::parse(inside);
    EXPECT_EQ(bound.find("requestId")->asInt(), 7);
    EXPECT_EQ(bound.find("tenant")->asString(), "smoke");
    EXPECT_EQ(bound.find("class")->asString(), "interactive");
    // Outside the scope the correlation keys disappear again.
    const JsonValue unbound = JsonValue::parse(outside);
    EXPECT_EQ(unbound.find("requestId"), nullptr);
}

// --- slow-request ring -------------------------------------------------

TEST(SlowRingTest, EvictsOldestCountsDroppedAndJsonParses)
{
    // The ring is plain data, functional in every build mode.
    SlowRequestRing ring(2);
    for (uint64_t id = 1; id <= 3; ++id) {
        SlowRequestCapture capture;
        capture.requestId = id;
        capture.tenant = "t";
        capture.requestClass = "interactive";
        capture.outcome = id == 3 ? "error" : "ok";
        capture.totalMillis = 10.0 * static_cast<double>(id);
        capture.deadlineMillis = 5.0;
        if (id == 3) {
            capture.errorStage = "flow.subset";
            capture.errorKind = "budget-exceeded";
            capture.errorDetail = "too big";
            capture.fallbacks.push_back("flow.minimize:degraded");
        }
        capture.spans.push_back({id, 0, "serve.request", 0.0, 1.0, 0});
        ring.add(std::move(capture));
    }

    const std::vector<SlowRequestCapture> kept = ring.snapshot();
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0].requestId, 2u); // oldest (id 1) evicted
    EXPECT_EQ(kept[1].requestId, 3u);
    EXPECT_EQ(ring.dropped(), 1u);

    const std::string json =
        slowRequestsToJson(kept, ring.capacity(), ring.dropped());
    const JsonValue parsed = JsonValue::parse(json); // strict
    ASSERT_NE(parsed.find("slowRequests"), nullptr);
    ASSERT_EQ(parsed.find("slowRequests")->items().size(), 2u);
    EXPECT_EQ(parsed.find("capacity")->asInt(), 2);
    EXPECT_EQ(parsed.find("dropped")->asInt(), 1);
    const JsonValue &errored = parsed.find("slowRequests")->items()[1];
    EXPECT_EQ(errored.find("outcome")->asString(), "error");
    ASSERT_NE(errored.find("error"), nullptr);
    EXPECT_EQ(errored.find("error")->find("kind")->asString(),
              "budget-exceeded");
    ASSERT_NE(errored.find("spans"), nullptr);
    EXPECT_EQ(errored.find("spans")->items().size(), 1u);
}

TEST(SlowRingTest, ZeroCapacityRefusesEverything)
{
    SlowRequestRing ring(0);
    ring.add(SlowRequestCapture{});
    EXPECT_TRUE(ring.snapshot().empty());
    EXPECT_EQ(ring.dropped(), 1u);
}
