/**
 * @file
 * Tests for the synthesis substrate: VHDL emission and the area model.
 */

#include <gtest/gtest.h>

#include "fsmgen/designer.hh"
#include "support/rng.hh"
#include "synth/area.hh"
#include "synth/vhdl.hh"

namespace autofsm
{
namespace
{

Dfa
paperFsm()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    return designFromTrace(trace, options).fsm;
}

TEST(VhdlTest, ContainsEntityAndPorts)
{
    const std::string vhdl = toVhdl(paperFsm());
    EXPECT_NE(vhdl.find("entity fsm_predictor is"), std::string::npos);
    EXPECT_NE(vhdl.find("clk  : in  std_logic;"), std::string::npos);
    EXPECT_NE(vhdl.find("rst  : in  std_logic;"), std::string::npos);
    EXPECT_NE(vhdl.find("din  : in  std_logic;"), std::string::npos);
    EXPECT_NE(vhdl.find("pred : out std_logic"), std::string::npos);
    EXPECT_NE(vhdl.find("end architecture rtl;"), std::string::npos);
}

TEST(VhdlTest, EnumeratesAllStates)
{
    const Dfa fsm = paperFsm();
    const std::string vhdl = toVhdl(fsm);
    EXPECT_NE(vhdl.find("type state_t is (S0, S1, S2);"),
              std::string::npos);
    for (int s = 0; s < fsm.numStates(); ++s) {
        EXPECT_NE(vhdl.find("when S" + std::to_string(s) + " =>"),
                  std::string::npos);
    }
}

TEST(VhdlTest, ResetTargetsStartState)
{
    const Dfa fsm = paperFsm();
    const std::string vhdl = toVhdl(fsm);
    EXPECT_NE(vhdl.find("state <= S" + std::to_string(fsm.start()) + ";"),
              std::string::npos);
}

TEST(VhdlTest, CustomEntityNameAndOneHot)
{
    VhdlOptions options;
    options.entityName = "branch42";
    options.oneHot = true;
    const std::string vhdl = toVhdl(Dfa::constant(1), options);
    EXPECT_NE(vhdl.find("entity branch42 is"), std::string::npos);
    EXPECT_NE(vhdl.find("one-hot"), std::string::npos);
}

TEST(VhdlTest, MooreOutputsMatchMachine)
{
    const Dfa fsm = paperFsm();
    const std::string vhdl = toVhdl(fsm);
    for (int s = 0; s < fsm.numStates(); ++s) {
        const std::string line = "'" + std::to_string(fsm.output(s)) +
            "' when S" + std::to_string(s);
        EXPECT_NE(vhdl.find(line), std::string::npos) << line;
    }
}

TEST(AreaTest, ConstantMachineIsTiny)
{
    const AreaEstimate est = estimateFsmArea(Dfa::constant(0));
    EXPECT_EQ(est.flops, 0);
    EXPECT_LT(est.area, 5.0);
}

TEST(AreaTest, PaperMachineHasPlausibleCost)
{
    const AreaEstimate est = estimateFsmArea(paperFsm());
    EXPECT_EQ(est.states, 3);
    EXPECT_EQ(est.flops, 2);
    EXPECT_GT(est.terms, 0);
    EXPECT_GT(est.area, 10.0);
    EXPECT_LT(est.area, 100.0);
}

TEST(AreaTest, AreaGrowsWithStates)
{
    // Counter-like machines of growing size.
    auto ring = [](int n) {
        Dfa dfa;
        for (int s = 0; s < n; ++s)
            dfa.addState(s % 2);
        for (int s = 0; s < n; ++s) {
            dfa.setEdge(s, 0, (s + 1) % n);
            dfa.setEdge(s, 1, 0);
        }
        dfa.setStart(0);
        return dfa;
    };
    const double small = estimateFsmArea(ring(4)).area;
    const double medium = estimateFsmArea(ring(16)).area;
    const double large = estimateFsmArea(ring(64)).area;
    EXPECT_LT(small, medium);
    EXPECT_LT(medium, large);
}

TEST(AreaTest, TableAreaIsLinearInBits)
{
    AreaCosts costs;
    EXPECT_DOUBLE_EQ(tableArea(100.0, costs), 100.0 * costs.sramBit);
    EXPECT_DOUBLE_EQ(tableArea(0.0, costs), 0.0);
}

TEST(AreaTest, FitAreaLineTracksSamples)
{
    std::vector<AreaEstimate> samples;
    for (int states = 2; states <= 40; states += 2) {
        AreaEstimate est;
        est.states = states;
        est.area = 2.2 * states + 10.0;
        samples.push_back(est);
    }
    const LineFit fit = fitAreaLine(samples);
    EXPECT_NEAR(fit.slope, 2.2, 1e-9);
    EXPECT_NEAR(fit.intercept, 10.0, 1e-9);
}

TEST(AreaTest, RandomMachinesRoughlyLinear)
{
    // The Figure-4 claim: over generated-FSM-like machines, area is
    // bounded roughly linearly by state count.
    Rng rng(17);
    std::vector<AreaEstimate> samples;
    for (int trial = 0; trial < 12; ++trial) {
        const int n = 3 + static_cast<int>(rng.below(30));
        Dfa dfa;
        for (int s = 0; s < n; ++s)
            dfa.addState(static_cast<int>(rng.below(2)));
        for (int s = 0; s < n; ++s) {
            dfa.setEdge(s, 0, static_cast<int>(rng.below(
                static_cast<uint64_t>(n))));
            dfa.setEdge(s, 1, static_cast<int>(rng.below(
                static_cast<uint64_t>(n))));
        }
        dfa.setStart(0);
        samples.push_back(estimateFsmArea(dfa));
    }
    const LineFit fit = fitAreaLine(samples);
    EXPECT_GT(fit.slope, 0.0);
    EXPECT_GT(fit.r2, 0.5);
}

} // anonymous namespace
} // namespace autofsm
