/**
 * @file
 * Deterministic fault-injection tests of the resilience layer: failpoint
 * trigger modes, the design flow's degradation ladders (minimizer and
 * automata fallbacks), budget/deadline enforcement, the batch retry
 * policy, and recovery paths in the trace cache, trace IO and the thread
 * pool. Every recovery path is driven deterministically — no timing or
 * scheduling luck — so the suite is also run under TSan in CI.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "flow/batch.hh"
#include "flow/budget.hh"
#include "flow/design_flow.hh"
#include "obs/metrics.hh"
#include "store/store.hh"
#include "support/failpoint.hh"
#include "support/thread_pool.hh"
#include "trace/trace_io.hh"
#include "workloads/branch_workloads.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{
namespace
{

/** The Section 4 worked-example trace. */
std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

/** Deterministic distinct traces so memoization cannot merge items. */
std::vector<std::vector<int>>
distinctTraces(size_t count)
{
    std::vector<std::vector<int>> traces;
    for (size_t t = 0; t < count; ++t) {
        std::vector<int> trace;
        for (size_t i = 0; i < 256; ++i)
            trace.push_back(static_cast<int>((i >> (t % 8)) & 1));
        traces.push_back(std::move(trace));
    }
    return traces;
}

/** Models for distinctTraces at @p order. */
std::vector<MarkovModel>
distinctModels(size_t count, int order)
{
    std::vector<MarkovModel> models;
    for (const auto &trace : distinctTraces(count)) {
        MarkovModel model(order);
        model.train(trace);
        models.push_back(std::move(model));
    }
    return models;
}

#ifndef AUTOFSM_NO_TELEMETRY
/** Current value of a counter identified by name + exact label set. */
uint64_t
counterValue(const std::string &name, const obs::Labels &labels)
{
    const obs::MetricsSnapshot snap = obs::globalMetrics().snapshot();
    for (const auto &metric : snap.metrics) {
        if (metric.name != name || metric.labels.size() != labels.size())
            continue;
        bool all = true;
        for (const auto &want : metric.labels) {
            bool found = false;
            for (const auto &have : labels)
                found |= have == want;
            all &= found;
        }
        if (all)
            return metric.count;
    }
    return 0;
}
#endif

/** Every test leaves the process-wide registry disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { failpoint::registry().clearAll(); }
};

TEST_F(FaultTest, FailAfterMode)
{
    failpoint::registry().set("t.after", "fail-after:2");
    EXPECT_NO_THROW(failpoint::evaluate("t.after"));
    EXPECT_NO_THROW(failpoint::evaluate("t.after"));
    EXPECT_THROW(failpoint::evaluate("t.after"), InjectedFault);
    EXPECT_THROW(failpoint::evaluate("t.after"), InjectedFault);

    const failpoint::SiteStats stats =
        failpoint::registry().stats("t.after");
    EXPECT_EQ(stats.evaluations, 4u);
    EXPECT_EQ(stats.triggers, 2u);
}

TEST_F(FaultTest, FailTimesModeIsTransient)
{
    failpoint::registry().set("t.times", "fail-times:2");
    EXPECT_THROW(failpoint::evaluate("t.times"), InjectedFault);
    EXPECT_THROW(failpoint::evaluate("t.times"), InjectedFault);
    EXPECT_NO_THROW(failpoint::evaluate("t.times"));
    EXPECT_NO_THROW(failpoint::evaluate("t.times"));
}

TEST_F(FaultTest, FailEveryMode)
{
    failpoint::registry().set("t.every", "fail-every:3");
    int triggers = 0;
    for (int i = 0; i < 9; ++i) {
        try {
            failpoint::evaluate("t.every");
        } catch (const InjectedFault &e) {
            EXPECT_EQ(e.site(), "t.every");
            ++triggers;
            // Only the 3rd, 6th and 9th evaluation trigger.
            EXPECT_EQ((i + 1) % 3, 0);
        }
    }
    EXPECT_EQ(triggers, 3);
}

TEST_F(FaultTest, FailProbModeIsSeededAndDeterministic)
{
    failpoint::registry().set("t.prob", "fail-prob:1.0:7");
    EXPECT_THROW(failpoint::evaluate("t.prob"), InjectedFault);

    failpoint::registry().set("t.prob", "fail-prob:0.0");
    for (int i = 0; i < 50; ++i)
        EXPECT_NO_THROW(failpoint::evaluate("t.prob"));

    // A fractional probability triggers the same subsequence every run.
    std::vector<int> first, second;
    for (int pass = 0; pass < 2; ++pass) {
        failpoint::registry().set("t.prob", "fail-prob:0.5:1234");
        std::vector<int> &hits = pass == 0 ? first : second;
        for (int i = 0; i < 64; ++i) {
            try {
                failpoint::evaluate("t.prob");
            } catch (const InjectedFault &) {
                hits.push_back(i);
            }
        }
    }
    EXPECT_FALSE(first.empty());
    EXPECT_LT(first.size(), 64u);
    EXPECT_EQ(first, second);
}

TEST_F(FaultTest, ConfigureParsesEnvFormat)
{
    failpoint::registry().configure(
        "t.a:fail-after:0,t.b:fail-every:2");
    EXPECT_TRUE(failpoint::registry().configured("t.a"));
    EXPECT_TRUE(failpoint::registry().configured("t.b"));
    EXPECT_FALSE(failpoint::registry().configured("t.c"));
    EXPECT_THROW(failpoint::evaluate("t.a"), InjectedFault);
    EXPECT_NO_THROW(failpoint::evaluate("t.b"));
    EXPECT_THROW(failpoint::evaluate("t.b"), InjectedFault);

    failpoint::registry().clear("t.a");
    EXPECT_FALSE(failpoint::registry().configured("t.a"));
    EXPECT_NO_THROW(failpoint::evaluate("t.a"));
    // Cleared sites keep their stats readable.
    EXPECT_EQ(failpoint::registry().stats("t.a").triggers, 1u);
}

TEST_F(FaultTest, BadSpecsAreRejected)
{
    failpoint::Registry &reg = failpoint::registry();
    EXPECT_THROW(reg.set("t.x", "explode"), std::invalid_argument);
    EXPECT_THROW(reg.set("t.x", "fail-after:banana"),
                 std::invalid_argument);
    EXPECT_THROW(reg.set("t.x", "fail-every:0"), std::invalid_argument);
    EXPECT_THROW(reg.set("t.x", "fail-prob:1.5"), std::invalid_argument);
    EXPECT_THROW(reg.configure("nocolon"), std::invalid_argument);
    EXPECT_FALSE(reg.configured("t.x"));
}

TEST_F(FaultTest, UnconfiguredSitePassesEvenWhileArmed)
{
    failpoint::registry().set("t.other", "fail-after:0");
    EXPECT_NO_THROW(failpoint::evaluate("t.unrelated"));
}

// ---------------------------------------------------------------------
// Design-flow degradation ladders.
// ---------------------------------------------------------------------

TEST_F(FaultTest, EspressoFailureFallsBackToExactQm)
{
    failpoint::registry().set("logicmin.espresso", "fail-after:0");

    FsmDesignOptions options;
    options.minimizer = MinimizeAlgo::Heuristic;
    const FlowResult degraded = DesignFlow(options).runOnTrace(paperTrace());
    EXPECT_TRUE(degraded.trace.degraded());
    ASSERT_FALSE(degraded.trace.fallbacks().empty());
    EXPECT_EQ(degraded.trace.fallbacks().front(), "minimize:exact");

    // The fallback engine is the exact one, so the machine matches a
    // healthy exact-minimizer run bit for bit.
    failpoint::registry().clearAll();
    FsmDesignOptions exact;
    exact.minimizer = MinimizeAlgo::Exact;
    const FlowResult healthy = DesignFlow(exact).runOnTrace(paperTrace());
    EXPECT_FALSE(healthy.trace.degraded());
    EXPECT_TRUE(degraded.design.fsm.identical(healthy.design.fsm));
}

TEST_F(FaultTest, TotalMinimizerFailureFallsBackToUnminimizedCover)
{
    failpoint::registry().configure(
        "logicmin.espresso:fail-after:0,logicmin.qm:fail-after:0");

    FsmDesignOptions options;
    options.minimizer = MinimizeAlgo::Heuristic;
    const FlowResult result = DesignFlow(options).runOnTrace(paperTrace());
    EXPECT_TRUE(result.trace.degraded());
    ASSERT_FALSE(result.trace.fallbacks().empty());
    EXPECT_EQ(result.trace.fallbacks().back(), "minimize:unminimized");

    // The unminimized cover is exact on the ON-set, so the flow still
    // finishes with a usable machine and full stage records.
    EXPECT_GE(result.design.fsm.numStates(), 1);
    EXPECT_NE(result.trace.find(FlowStage::StartReduce), nullptr);
}

TEST_F(FaultTest, DfaBudgetFallsBackToSaturatingCounter)
{
    FsmDesignOptions options;
    options.budget.maxDfaStates = 1;
    const FlowResult result = DesignFlow(options).runOnTrace(paperTrace());
    EXPECT_TRUE(result.trace.degraded());
    ASSERT_FALSE(result.trace.fallbacks().empty());
    EXPECT_EQ(result.trace.fallbacks().back(), "subset:saturating-counter");
    EXPECT_TRUE(result.design.fsm.identical(Dfa::saturatingCounter(2)));
    EXPECT_EQ(result.design.statesFinal, 4);
    // Degraded runs keep the same FlowTrace shape as healthy ones.
    EXPECT_NE(result.trace.find(FlowStage::Subset), nullptr);
    EXPECT_NE(result.trace.find(FlowStage::StartReduce), nullptr);
}

TEST_F(FaultTest, NfaBudgetFallsBackToSaturatingCounter)
{
    FsmDesignOptions options;
    options.budget.maxNfaStates = 1;
    const FlowResult result = DesignFlow(options).runOnTrace(paperTrace());
    EXPECT_TRUE(result.trace.degraded());
    EXPECT_TRUE(result.design.fsm.identical(Dfa::saturatingCounter(2)));
}

TEST_F(FaultTest, SaturatingCounterIsTheClassicTwoBitMachine)
{
    const Dfa counter = Dfa::saturatingCounter(2);
    ASSERT_EQ(counter.numStates(), 4);
    EXPECT_EQ(counter.output(0), 0);
    EXPECT_EQ(counter.output(1), 0);
    EXPECT_EQ(counter.output(2), 1);
    EXPECT_EQ(counter.output(3), 1);
    EXPECT_EQ(counter.start(), 1); // weakly not-taken
    EXPECT_EQ(counter.next(0, 0), 0); // saturates low
    EXPECT_EQ(counter.next(3, 1), 3); // saturates high
    EXPECT_EQ(counter.next(1, 1), 2);
    EXPECT_EQ(counter.next(2, 0), 1);
}

TEST_F(FaultTest, DeadlineExceededPropagates)
{
    FsmDesignOptions options;
    options.budget.deadlineMillis = 1e-9; // expires immediately
    try {
        DesignFlow(options).runOnTrace(paperTrace());
        FAIL() << "expected FlowError";
    } catch (const FlowError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::DeadlineExceeded);
        EXPECT_NE(std::string(e.what()).find("deadline-exceeded"),
                  std::string::npos);
    }
}

TEST_F(FaultTest, DefaultBudgetIsUnlimitedAndChangesNothing)
{
    const FlowBudget budget;
    EXPECT_TRUE(budget.unlimited());
    EXPECT_TRUE(budget.escalated(8.0).unlimited());

    FlowBudget finite;
    finite.maxDfaStates = 4;
    finite.maxMinterms = 10;
    const FlowBudget doubled = finite.escalated(2.0);
    EXPECT_EQ(doubled.maxDfaStates, 8);
    EXPECT_EQ(doubled.maxMinterms, 20u);
    EXPECT_EQ(doubled.maxNfaStates, 0);      // unlimited stays unlimited
    EXPECT_EQ(doubled.deadlineMillis, 0.0);

    // A default-budget run is bit-identical to the pre-budget pipeline.
    const FlowResult a = DesignFlow().runOnTrace(paperTrace());
    const FlowResult b = DesignFlow().runOnTrace(paperTrace());
    EXPECT_FALSE(a.trace.degraded());
    EXPECT_TRUE(a.design.fsm.identical(b.design.fsm));
}

// ---------------------------------------------------------------------
// Batch retry policy.
// ---------------------------------------------------------------------

TEST_F(FaultTest, BatchRetriesTransientFaultAndSucceeds)
{
    failpoint::registry().set("flow.patterns", "fail-times:1");

    MarkovModel model(2);
    model.train(paperTrace());
    BatchOptions batch;
    batch.threads = 1;
    batch.retry.maxAttempts = 2;
    BatchDesigner designer(FsmDesignOptions{}, batch);
    const auto results = designer.designAll({model});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_EQ(designer.stats().retries, 1u);
    EXPECT_EQ(designer.stats().failures, 0u);

    // The retried item matches a healthy run exactly.
    const FlowResult healthy = DesignFlow().run(model);
    EXPECT_TRUE(results[0].flow.design.fsm.identical(healthy.design.fsm));
}

TEST_F(FaultTest, BatchReportsTerminalInjectedFaultAfterRetries)
{
    failpoint::registry().set("flow.patterns", "fail-times:10");

    MarkovModel model(2);
    model.train(paperTrace());
    BatchOptions batch;
    batch.threads = 1;
    batch.retry.maxAttempts = 3;
    BatchDesigner designer(FsmDesignOptions{}, batch);
    const auto results = designer.designAll({model});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 3);
    EXPECT_EQ(results[0].errorKind, "injected");
    EXPECT_EQ(designer.stats().failures, 1u);
    EXPECT_EQ(designer.stats().retries, 2u);
}

TEST_F(FaultTest, BatchDeadlineFailureIsRetriedThenTerminal)
{
    MarkovModel model(2);
    model.train(paperTrace());
    FsmDesignOptions design;
    design.budget.deadlineMillis = 1e-9;
    BatchOptions batch;
    batch.threads = 1;
    batch.retry.maxAttempts = 2;
    batch.retry.budgetEscalation = 2.0; // 2e-9 ms still expires
    BatchDesigner designer(design, batch);
    const auto results = designer.designAll({model});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 2);
    EXPECT_EQ(results[0].errorKind, "deadline-exceeded");
}

TEST_F(FaultTest, BatchInvalidInputIsNeverRetried)
{
    MarkovModel poison(5); // wrong order for the batch's options
    poison.train(paperTrace());
    FsmDesignOptions design;
    design.order = 2;
    BatchOptions batch;
    batch.threads = 1;
    batch.retry.maxAttempts = 5;
    BatchDesigner designer(design, batch);
    const auto results = designer.designAll({poison});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].attempts, 1); // terminal on the first attempt
    EXPECT_EQ(results[0].errorKind, "invalid-input");
    EXPECT_EQ(designer.stats().retries, 0u);
}

TEST_F(FaultTest, BatchReportsDegradedItems)
{
    failpoint::registry().set("logicmin.espresso", "fail-after:0");

    FsmDesignOptions design;
    design.minimizer = MinimizeAlgo::Heuristic;
    BatchOptions batch;
    batch.threads = 1;
    BatchDesigner designer(design, batch);
    const auto results = designer.designAll(distinctModels(3, 2));

    ASSERT_EQ(results.size(), 3u);
    for (const auto &result : results) {
        EXPECT_TRUE(result.ok);
        EXPECT_TRUE(result.degraded);
        EXPECT_NE(result.fallback.find("minimize:exact"),
                  std::string::npos);
    }
    EXPECT_EQ(designer.stats().degraded, 3u);
    EXPECT_EQ(designer.stats().failures, 0u);
}

TEST_F(FaultTest, EnvFormatConfigDrivesPartiallyDegradedBatch)
{
    // The README's AUTOFSM_FAILPOINTS example, via the same parser the
    // env var uses: every 3rd minimize call loses its primary engine.
    failpoint::registry().configure("flow.minimize:fail-every:3");

    BatchOptions batch;
    batch.threads = 1; // deterministic item order
    BatchDesigner designer(FsmDesignOptions{}, batch);
    const auto results = designer.designAll(distinctModels(6, 2));

    ASSERT_EQ(results.size(), 6u);
    size_t degraded = 0;
    for (const auto &result : results) {
        EXPECT_TRUE(result.ok); // degraded, never failed
        degraded += result.degraded;
    }
    EXPECT_EQ(degraded, 2u); // evaluations 3 and 6
    EXPECT_EQ(designer.stats().degraded, 2u);
    EXPECT_TRUE(results[2].degraded);
    EXPECT_TRUE(results[5].degraded);
}

// ---------------------------------------------------------------------
// Trace cache, trace IO and thread-pool recovery.
// ---------------------------------------------------------------------

TEST_F(FaultTest, TraceCacheDoesNotCacheFailures)
{
    clearBranchTraceCache();
    failpoint::registry().set("workloads.trace_build", "fail-times:1");

    EXPECT_THROW(
        cachedBranchTrace("gsm", WorkloadInput::Train, 2000),
        InjectedFault);
    // The failed entry was evicted, so the next call rebuilds fresh.
    const auto trace = cachedBranchTrace("gsm", WorkloadInput::Train, 2000);
    ASSERT_NE(trace, nullptr);
    EXPECT_FALSE(trace->empty());
    EXPECT_EQ(branchTraceCacheStats().misses, 2u);
    clearBranchTraceCache();
}

TEST_F(FaultTest, TraceCacheConcurrentCallersRecoverFromFailure)
{
    clearBranchTraceCache();
    failpoint::registry().set("workloads.trace_build", "fail-times:1");

    // One build fails; threads that latched the failing future see the
    // fault, everyone else (and everyone after) gets a fresh build.
    std::atomic<int> failures{0}, successes{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            try {
                const auto trace =
                    cachedBranchTrace("gsm", WorkloadInput::Train, 2000);
                successes += trace != nullptr;
            } catch (const InjectedFault &) {
                ++failures;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_GE(failures.load(), 1);
    EXPECT_EQ(failures.load() + successes.load(), 4);

    const auto trace = cachedBranchTrace("gsm", WorkloadInput::Train, 2000);
    ASSERT_NE(trace, nullptr);
    EXPECT_FALSE(trace->empty());
    clearBranchTraceCache();
}

TEST_F(FaultTest, TraceIoSitesCoverReadAndWrite)
{
    std::stringstream buffer;
    const BranchTrace trace = {{0x100, true}, {0x200, false}};

    failpoint::registry().set("trace_io.write", "fail-after:0");
    EXPECT_THROW(writeBranchTrace(buffer, trace), InjectedFault);
    failpoint::registry().clear("trace_io.write");

    buffer = std::stringstream();
    writeBranchTrace(buffer, trace);
    failpoint::registry().set("trace_io.read", "fail-after:0");
    EXPECT_THROW(readBranchTrace(buffer), InjectedFault);
    failpoint::registry().clear("trace_io.read");
    EXPECT_EQ(readBranchTrace(buffer).size(), trace.size());
}

TEST_F(FaultTest, ParallelForSurfacesInjectedPoolFault)
{
    failpoint::registry().set("pool.task", "fail-times:1");
    // Exactly one index hits the fault; parallelFor reports it and every
    // other index still runs.
    std::vector<std::atomic<int>> hits(8);
    for (auto &h : hits)
        h = 0;
    EXPECT_THROW(
        parallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
                    2),
        InjectedFault);
    int ran = 0;
    for (const auto &h : hits)
        ran += h.load();
    EXPECT_EQ(ran, 7); // all but the faulted index
}

#ifndef AUTOFSM_NO_TELEMETRY
TEST_F(FaultTest, FallbackAndFailpointCountersIncrement)
{
    const obs::Labels fallback_labels = {{"stage", "minimize"},
                                         {"kind", "exact"}};
    const obs::Labels site_labels = {{"site", "logicmin.espresso"}};
    const uint64_t fallbacks_before =
        counterValue("autofsm_flow_fallbacks_total", fallback_labels);
    const uint64_t triggers_before =
        counterValue("autofsm_failpoint_triggers_total", site_labels);

    failpoint::registry().set("logicmin.espresso", "fail-after:0");
    FsmDesignOptions options;
    options.minimizer = MinimizeAlgo::Heuristic;
    const FlowResult result = DesignFlow(options).runOnTrace(paperTrace());
    EXPECT_TRUE(result.trace.degraded());

    EXPECT_EQ(counterValue("autofsm_flow_fallbacks_total", fallback_labels),
              fallbacks_before + 1);
    EXPECT_GE(counterValue("autofsm_failpoint_triggers_total", site_labels),
              triggers_before + 1);
}
#endif

// ---------------------------------------------------------------------------
// Persistent store: a writer dying mid-commit (at any of the three
// commit failpoints) must never leave a torn entry observable — the
// next open recovers to a clean miss, and entries committed before the
// crash still load bit-identical.

/** Store fault fixture: a scratch directory plus a committed entry. */
class StoreFaultTest : public FaultTest
{
  protected:
    void
    SetUp() override
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            "autofsm-storefault-XXXXXX")
                               .string();
        dir_ = ::mkdtemp(tmpl.data());
        ASSERT_FALSE(dir_.empty());
        const size_t n = 300;
        pcs_.resize(n);
        words_.assign((n + 63) / 64, 0);
        for (size_t i = 0; i < n; ++i) {
            pcs_[i] = 0x1000 + i * 4;
            if ((i % 3) == 0)
                words_[i >> 6] |= 1ULL << (i & 63);
        }
    }

    void
    TearDown() override
    {
        FaultTest::TearDown();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    store::StoreOptions
    options() const
    {
        store::StoreOptions opts;
        opts.dir = dir_;
        return opts;
    }

    /** Commit one good entry under "survivor" (before the fault). */
    void
    commitSurvivor(store::ArtifactStore &store)
    {
        ASSERT_TRUE(
            store.putTrace("survivor", pcs_, words_, pcs_.size()));
    }

    /** Reopen and check crash-consistency: the faulted entry is a
     *  clean miss, the survivor loads bit-identical, and nothing is
     *  quarantined (the torn temp was never published as an entry). */
    void
    expectCleanRecovery(uint64_t expectRecoveredTemps)
    {
        failpoint::registry().clearAll();
        store::ArtifactStore reopened(options());
        const store::StoreStats stats = reopened.stats();
        EXPECT_EQ(stats.recoveredTemps, expectRecoveredTemps);
        EXPECT_EQ(stats.quarantined, 0u);
        EXPECT_EQ(stats.entries, 1u);
        EXPECT_FALSE(reopened.loadTrace("victim").has_value());
        const auto blob = reopened.loadTrace("survivor");
        ASSERT_TRUE(blob.has_value());
        ASSERT_EQ(blob->pcs.size(), pcs_.size());
        EXPECT_TRUE(
            std::equal(pcs_.begin(), pcs_.end(), blob->pcs.begin()));
        EXPECT_TRUE(std::equal(words_.begin(), words_.end(),
                               blob->takenWords.begin()));
    }

    std::string dir_;
    std::vector<uint64_t> pcs_;
    std::vector<uint64_t> words_;
};

TEST_F(StoreFaultTest, WriterKilledMidWriteLeavesNoTornEntry)
{
    {
        store::ArtifactStore store(options());
        commitSurvivor(store);
        failpoint::registry().set("store.write", "fail-after:0");
        // The fault fires with half the payload in the temp file —
        // exactly what a crash mid-write(2) leaves behind.
        EXPECT_THROW(
            store.putTrace("victim", pcs_, words_, pcs_.size()),
            InjectedFault);
    }
    expectCleanRecovery(/*expectRecoveredTemps=*/1);
}

TEST_F(StoreFaultTest, WriterKilledBeforeFsyncLeavesNoTornEntry)
{
    {
        store::ArtifactStore store(options());
        commitSurvivor(store);
        failpoint::registry().set("store.fsync", "fail-after:0");
        // Full temp file, never made durable, never renamed.
        EXPECT_THROW(
            store.putTrace("victim", pcs_, words_, pcs_.size()),
            InjectedFault);
    }
    expectCleanRecovery(/*expectRecoveredTemps=*/1);
}

TEST_F(StoreFaultTest, WriterKilledBeforeRenameLeavesNoTornEntry)
{
    {
        store::ArtifactStore store(options());
        commitSurvivor(store);
        failpoint::registry().set("store.rename", "fail-after:0");
        // Durable bytes, invisible entry: the atomic publish never ran.
        EXPECT_THROW(
            store.putTrace("victim", pcs_, words_, pcs_.size()),
            InjectedFault);
    }
    expectCleanRecovery(/*expectRecoveredTemps=*/1);
}

TEST_F(StoreFaultTest, TransientWriteFaultThenRetrySucceeds)
{
    store::ArtifactStore store(options());
    failpoint::registry().set("store.write", "fail-times:1");
    EXPECT_THROW(store.putTrace("k", pcs_, words_, pcs_.size()),
                 InjectedFault);
    // The retry commits; the earlier torn temp is no entry at all.
    EXPECT_TRUE(store.putTrace("k", pcs_, words_, pcs_.size()));
    const auto blob = store.loadTrace("k");
    ASSERT_TRUE(blob.has_value());
    EXPECT_TRUE(std::equal(pcs_.begin(), pcs_.end(), blob->pcs.begin()));
}

TEST_F(StoreFaultTest, InjectedReadFaultsDegradeToCleanMisses)
{
    store::ArtifactStore store(options());
    commitSurvivor(store);

    failpoint::registry().set("store.load", "fail-times:1");
    EXPECT_FALSE(store.loadTrace("survivor").has_value());
    // Transient: the entry itself is intact and untouched.
    EXPECT_TRUE(store.loadTrace("survivor").has_value());

    failpoint::registry().set("store.mmap", "fail-times:1");
    EXPECT_FALSE(store.loadTrace("survivor").has_value());
    EXPECT_TRUE(store.loadTrace("survivor").has_value());

    EXPECT_EQ(store.stats().quarantined, 0u);
}

} // anonymous namespace
} // namespace autofsm
