/**
 * @file
 * Semantic check of the VHDL emitter: a small interpreter parses the
 * emitted two-process template back into a transition table and
 * co-simulates it against the source machine on random stimulus. This
 * is the closest offline equivalent of the paper's "hand the VHDL to
 * Synopsys" step.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "fsmgen/designer.hh"
#include "support/rng.hh"
#include "synth/verilog.hh"
#include "synth/vhdl.hh"

namespace autofsm
{
namespace
{

/** Transition table recovered from emitted VHDL text. */
struct ParsedVhdl
{
    int resetState = -1;
    std::map<int, int> next0, next1; // state -> successor
    std::map<int, int> output;       // state -> pred bit
};

int
stateNumber(const std::string &token)
{
    // Tokens look like "S12" possibly followed by punctuation.
    size_t pos = token.find('S');
    EXPECT_NE(pos, std::string::npos) << token;
    int value = 0;
    for (++pos; pos < token.size() && isdigit(token[pos]); ++pos)
        value = value * 10 + (token[pos] - '0');
    return value;
}

ParsedVhdl
parseVhdl(const std::string &text)
{
    ParsedVhdl parsed;
    std::istringstream in(text);
    std::string line;
    int current = -1;
    bool in_taken_arm = false;
    while (std::getline(in, line)) {
        if (line.find("state <= S") != std::string::npos &&
            line.find("next_state") == std::string::npos) {
            parsed.resetState = stateNumber(line);
        } else if (line.find("when S") != std::string::npos &&
                   line.find("=>") != std::string::npos) {
            current = stateNumber(line);
        } else if (line.find("if din = '1' then") != std::string::npos) {
            in_taken_arm = true;
        } else if (line.find("else") != std::string::npos) {
            in_taken_arm = false;
        } else if (line.find("next_state <= S") != std::string::npos) {
            EXPECT_GE(current, 0);
            (in_taken_arm ? parsed.next1 : parsed.next0)[current] =
                stateNumber(line);
        } else if (line.find("' when S") != std::string::npos) {
            const size_t quote = line.find('\'');
            const int bit = line[quote + 1] - '0';
            parsed.output[stateNumber(line.substr(quote))] = bit;
        }
    }
    return parsed;
}

void
cosimulate(const Dfa &fsm)
{
    ParsedVhdl parsed;
    {
        SCOPED_TRACE("parse");
        parsed = parseVhdl(toVhdl(fsm));
    }
    ASSERT_EQ(parsed.resetState, fsm.start());
    ASSERT_EQ(static_cast<int>(parsed.output.size()), fsm.numStates());

    Rng rng(0xc051);
    int hw_state = parsed.resetState;
    int model_state = fsm.start();
    for (int cycle = 0; cycle < 2000; ++cycle) {
        ASSERT_EQ(parsed.output.at(hw_state), fsm.output(model_state))
            << "cycle " << cycle;
        const int din = static_cast<int>(rng.below(2));
        hw_state = din ? parsed.next1.at(hw_state)
                       : parsed.next0.at(hw_state);
        model_state = fsm.next(model_state, din);
        ASSERT_EQ(hw_state, model_state) << "cycle " << cycle;
    }
}

TEST(VhdlSemanticsTest, PaperMachineCosimulates)
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    cosimulate(designFromTrace(trace, options).fsm);
}

TEST(VhdlSemanticsTest, ConstantMachineCosimulates)
{
    cosimulate(Dfa::constant(0));
    cosimulate(Dfa::constant(1));
}

class VhdlSemanticsPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(VhdlSemanticsPropertyTest, GeneratedMachinesCosimulate)
{
    // Design a machine from a random correlated trace, then verify the
    // emitted VHDL implements it bit-for-bit.
    Rng rng(static_cast<uint64_t>(GetParam()) * 997 + 13);
    std::vector<int> trace;
    int bit = 0;
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(0.3))
            bit ^= 1;
        trace.push_back(bit);
    }
    FsmDesignOptions options;
    options.order = 2 + GetParam() % 4;
    cosimulate(designFromTrace(trace, options).fsm);
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, VhdlSemanticsPropertyTest,
                         ::testing::Range(0, 10));

/** Parse one "W'dN" literal starting at @p pos. */
int
verilogState(const std::string &line, size_t pos)
{
    const size_t d = line.find("'d", pos);
    EXPECT_NE(d, std::string::npos) << line;
    int value = 0;
    for (size_t i = d + 2; i < line.size() && isdigit(line[i]); ++i)
        value = value * 10 + (line[i] - '0');
    return value;
}

ParsedVhdl
parseVerilog(const std::string &text)
{
    ParsedVhdl parsed;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("default") != std::string::npos)
            continue; // defensive arms carry no machine information
        if (line.find("state <= ") != std::string::npos &&
            line.find("rst") == std::string::npos &&
            line.find("next_state;") == std::string::npos) {
            parsed.resetState = verilogState(line, line.find("<="));
        } else if (line.find(": next_state = din ?") !=
                   std::string::npos) {
            const int from = verilogState(line, 0);
            const size_t q = line.find('?');
            const size_t c = line.find(':', q);
            parsed.next1[from] = verilogState(line, q);
            parsed.next0[from] = verilogState(line, c);
        } else if (line.find(": pred = 1'b") != std::string::npos) {
            const int from = verilogState(line, 0);
            const size_t b = line.find("1'b");
            parsed.output[from] = line[b + 3] - '0';
        }
    }
    return parsed;
}

void
cosimulateVerilog(const Dfa &fsm)
{
    const ParsedVhdl parsed = parseVerilog(toVerilog(fsm));
    ASSERT_EQ(parsed.resetState, fsm.start());
    ASSERT_EQ(static_cast<int>(parsed.output.size()), fsm.numStates());

    Rng rng(0xbeef);
    int hw_state = parsed.resetState;
    int model_state = fsm.start();
    for (int cycle = 0; cycle < 2000; ++cycle) {
        ASSERT_EQ(parsed.output.at(hw_state), fsm.output(model_state))
            << "cycle " << cycle;
        const int din = static_cast<int>(rng.below(2));
        hw_state = din ? parsed.next1.at(hw_state)
                       : parsed.next0.at(hw_state);
        model_state = fsm.next(model_state, din);
        ASSERT_EQ(hw_state, model_state) << "cycle " << cycle;
    }
}

TEST(VerilogSemanticsTest, PaperMachineCosimulates)
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    cosimulateVerilog(designFromTrace(trace, options).fsm);
}

TEST(VerilogSemanticsTest, ModuleStructure)
{
    const std::string text = toVerilog(Dfa::constant(1));
    EXPECT_NE(text.find("module fsm_predictor"), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
    EXPECT_NE(text.find("input  wire din"), std::string::npos);
    VerilogOptions options;
    options.moduleName = "branch7";
    EXPECT_NE(toVerilog(Dfa::constant(0), options).find("module branch7"),
              std::string::npos);
}

class VerilogSemanticsPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(VerilogSemanticsPropertyTest, GeneratedMachinesCosimulate)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 331 + 5);
    std::vector<int> trace;
    int bit = 0;
    for (int i = 0; i < 3000; ++i) {
        if (rng.chance(0.25))
            bit ^= 1;
        trace.push_back(bit);
    }
    FsmDesignOptions options;
    options.order = 2 + GetParam() % 4;
    cosimulateVerilog(designFromTrace(trace, options).fsm);
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, VerilogSemanticsPropertyTest,
                         ::testing::Range(0, 10));

} // anonymous namespace
} // namespace autofsm
