/**
 * @file
 * Unit tests for the support substrate: rng, bits, history, stats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/bits.hh"
#include "support/json.hh"
#include "support/history.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace autofsm
{
namespace
{

TEST(RngTest, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, UniformStaysInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIsRoughlyUniform)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ReseedRestartsStream)
{
    Rng rng(5);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

TEST(BitsTest, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(32), 0xffffffffu);
}

TEST(BitsTest, BitOf)
{
    EXPECT_EQ(bitOf(0b101, 0), 1);
    EXPECT_EQ(bitOf(0b101, 1), 0);
    EXPECT_EQ(bitOf(0b101, 2), 1);
}

TEST(BitsTest, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(4), 2);
    EXPECT_EQ(ceilLog2(5), 3);
    EXPECT_EQ(ceilLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1025), 11);
}

TEST(BitsTest, BinaryRoundTrip)
{
    EXPECT_EQ(toBinary(0b0110, 4), "0110");
    EXPECT_EQ(fromBinary("0110"), 0b0110u);
    for (uint32_t v = 0; v < 64; ++v)
        EXPECT_EQ(fromBinary(toBinary(v, 6)), v);
}

TEST(HistoryTest, PacksOldestAsMsb)
{
    HistoryRegister history(3);
    history.push(1);
    history.push(0);
    history.push(1);
    // Pushed 1 (oldest), 0, 1 (newest): pattern notation "101".
    EXPECT_EQ(toBinary(history.value(), 3), "101");
}

TEST(HistoryTest, WarmupTracksWidth)
{
    HistoryRegister history(4);
    EXPECT_FALSE(history.warm());
    for (int i = 0; i < 3; ++i) {
        history.push(1);
        EXPECT_FALSE(history.warm());
    }
    history.push(0);
    EXPECT_TRUE(history.warm());
}

TEST(HistoryTest, ShiftsOutOldBits)
{
    HistoryRegister history(2);
    history.push(1);
    history.push(1);
    history.push(0);
    EXPECT_EQ(toBinary(history.value(), 2), "10");
    history.push(0);
    EXPECT_EQ(toBinary(history.value(), 2), "00");
}

TEST(HistoryTest, ResetClearsWarmth)
{
    HistoryRegister history(2);
    history.push(1);
    history.push(1);
    EXPECT_TRUE(history.warm());
    history.reset();
    EXPECT_FALSE(history.warm());
    EXPECT_EQ(history.value(), 0u);
}

TEST(StatsTest, MeanMinMax)
{
    RunningStats stats;
    stats.add(1.0);
    stats.add(2.0);
    stats.add(6.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 6.0);
    EXPECT_EQ(stats.count(), 3u);
    EXPECT_DOUBLE_EQ(stats.sum(), 9.0);
}

TEST(StatsTest, VarianceMatchesDefinition)
{
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_NEAR(stats.variance(), 4.0, 1e-9);
}

TEST(StatsTest, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(FitLineTest, RecoversExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 20; ++i) {
        xs.push_back(i);
        ys.push_back(2.5 * i + 7.0);
    }
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-9);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
    EXPECT_NEAR(fit.at(10.0), 32.0, 1e-9);
}

TEST(FitLineTest, NoisyFitHasReasonableR2)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i + 10.0 + (rng.uniform() - 0.5) * 20.0);
    }
    const LineFit fit = fitLine(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 0.1);
    EXPECT_GT(fit.r2, 0.98);
}

TEST(FitLineTest, DegenerateInputsAreSafe)
{
    EXPECT_DOUBLE_EQ(fitLine({}, {}).slope, 0.0);
    const LineFit single = fitLine({5.0}, {9.0});
    EXPECT_DOUBLE_EQ(single.slope, 0.0);
    EXPECT_DOUBLE_EQ(single.intercept, 9.0);
    // Zero x-variance.
    const LineFit flat = fitLine({2.0, 2.0}, {1.0, 3.0});
    EXPECT_DOUBLE_EQ(flat.slope, 0.0);
    EXPECT_DOUBLE_EQ(flat.intercept, 2.0);
}

TEST(StatsTest, SafeRatio)
{
    EXPECT_DOUBLE_EQ(safeRatio(1.0, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(safeRatio(1.0, 0.0), 0.0);
}


TEST(PercentileTest, InterpolatesBetweenOrderStatistics)
{
    const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 25.0), 1.75);
    // Out-of-range percentiles clamp; empty input is zero.
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 150.0), 4.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, -5.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted({}, 50.0), 0.0);
}

TEST(PercentileTest, QuantilesOfSortsItsInput)
{
    std::vector<double> samples;
    for (int i = 100; i >= 1; --i)
        samples.push_back(static_cast<double>(i));
    const Quantiles q = quantilesOf(samples);
    EXPECT_DOUBLE_EQ(q.p50, 50.5);
    EXPECT_DOUBLE_EQ(q.p90, 90.1);
    EXPECT_DOUBLE_EQ(q.p99, 99.01);
}

TEST(PercentileTest, HistogramQuantileInterpolatesWithinBucket)
{
    const std::vector<double> bounds = {1.0, 2.0};
    const std::vector<uint64_t> counts = {1, 2, 1}; // + overflow
    EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 50.0), 1.5);
    // Percentiles landing in the overflow bucket report the last
    // finite bound.
    EXPECT_DOUBLE_EQ(histogramQuantile(bounds, counts, 99.0), 2.0);
    EXPECT_DOUBLE_EQ(histogramQuantile(bounds, {0, 0, 0}, 50.0), 0.0);
    // First bucket interpolates from an implicit lower edge of 0.
    EXPECT_DOUBLE_EQ(histogramQuantile(bounds, {4, 0, 0}, 50.0), 0.5);
}

TEST(JsonWriterTest, EscapesControlCharacters)
{
    std::ostringstream out;
    JsonWriter json(out);
    // "\x01" is split from the following 'f' so the hex escape does
    // not greedily consume it.
    json.value(std::string_view("a\"b\\c\nd\te\x01"
                                "f"));
    EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriterTest, NonFiniteDoublesRenderNull)
{
    std::ostringstream out;
    JsonWriter json(out);
    json.beginArray();
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(std::numeric_limits<double>::infinity());
    json.value(-std::numeric_limits<double>::infinity());
    json.value(1.5);
    json.endArray();
    EXPECT_EQ(out.str(), "[null,null,null,1.5]");
}

TEST(JsonWriterTest, DeepNestingKeepsCommasStraight)
{
    std::ostringstream out;
    JsonWriter json(out);
    constexpr int kDepth = 64;
    for (int i = 0; i < kDepth; ++i)
        json.beginObject().key("k").beginArray().value(i);
    for (int i = 0; i < kDepth; ++i) {
        json.value(-1);
        json.endArray().endObject();
    }
    const std::string text = out.str();
    // Spot-check shape: it must start with the outermost object and
    // balance every bracket it opened.
    EXPECT_EQ(text.substr(0, 9), "{\"k\":[0,{");
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
    EXPECT_NE(text.find(",-1]}"), std::string::npos);
}

} // anonymous namespace
} // namespace autofsm
