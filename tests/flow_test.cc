/**
 * @file
 * Tests of the batch design pipeline: the thread-pool utilities, the
 * stage-oriented DesignFlow (equivalence with the legacy designFsm), and
 * the BatchDesigner guarantees — thread-count-invariant determinism,
 * memo-cache reuse of identical models, and per-item failure isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "flow/batch.hh"
#include "flow/design_flow.hh"
#include "fsmgen/designer.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace autofsm
{
namespace
{

/** The Section 4 worked-example trace. */
std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

/** A family of deterministic pseudo-random behavior traces. */
std::vector<std::vector<int>>
syntheticTraces(size_t count, size_t length)
{
    std::vector<std::vector<int>> traces;
    traces.reserve(count);
    for (size_t t = 0; t < count; ++t) {
        Rng rng(0xABCDEF ^ (t * 7919));
        std::vector<int> trace;
        trace.reserve(length);
        // Mix of biased, alternating and correlated stretches so the
        // designed machines differ meaningfully across traces.
        for (size_t i = 0; i < length; ++i) {
            const int mode = static_cast<int>((i / 64 + t) % 3);
            int bit;
            if (mode == 0)
                bit = rng.uniform() < 0.8;
            else if (mode == 1)
                bit = static_cast<int>(i & 1);
            else
                bit = i >= 2 ? (trace[i - 2] ^ 1) : 1;
            trace.push_back(bit);
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        for (auto &h : hits)
            h = 0;
        parallelFor(hits.size(),
                    [&](size_t i) { hits[i].fetch_add(1); }, threads);
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneItems)
{
    int calls = 0;
    parallelFor(0, [&](size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 0);
    parallelFor(1, [&](size_t) { ++calls; }, 4);
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesLowestIndexException)
{
    try {
        parallelFor(
            100,
            [](size_t i) {
                if (i == 17 || i == 63)
                    throw std::runtime_error("boom " + std::to_string(i));
            },
            4);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 17");
    }
}

TEST(ThreadPoolTest, PoolRunsSubmittedJobs)
{
    std::atomic<int> sum{0};
    {
        ThreadPool pool(3);
        EXPECT_EQ(pool.threadCount(), 3u);
        for (int i = 1; i <= 10; ++i)
            pool.submit([&sum, i] { sum.fetch_add(i); });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ShutdownDrainsDeeplyQueuedJobs)
{
    // A single worker guarantees a backlog: the first job blocks until
    // every later job is already queued, then the pool is destroyed
    // immediately. Shutdown must still run the whole queue.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        std::promise<void> release;
        std::shared_future<void> gate = release.get_future().share();
        pool.submit([gate, &ran] {
            gate.wait();
            ran.fetch_add(1);
        });
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        release.set_value();
    }
    EXPECT_EQ(ran.load(), 51);
}

TEST(ThreadPoolTest, WorkerSurvivesThrowingJob)
{
    // Raw submit() jobs are expected not to throw; if one does anyway,
    // the worker contains it and keeps serving the queue instead of
    // taking the process down via std::terminate.
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("rogue job"); });
        pool.submit([&ran] { ran.fetch_add(1); });
        pool.submit([] { throw 42; }); // non-std exceptions too
        pool.submit([&ran] { ran.fetch_add(1); });
    }
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, LowestIndexWinsEvenWhenHigherIndexThrowsFirst)
{
    // Deterministic ordering check: index 1 throws immediately, index 0
    // throws only after a delay, so the higher index's exception is
    // recorded first — and must still lose to the lower index.
    try {
        parallelFor(
            2,
            [](size_t i) {
                if (i == 1)
                    throw std::runtime_error("boom 1");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                throw std::runtime_error("boom 0");
            },
            2);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 0");
    }
}

TEST(DesignFlowTest, MatchesLegacyDesignerOnPaperExample)
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;

    const FsmDesignResult legacy = designFromTrace(paperTrace(), options);
    const FlowResult flow = DesignFlow(options).runOnTrace(paperTrace());

    EXPECT_TRUE(flow.design.fsm.identical(legacy.fsm));
    EXPECT_TRUE(
        flow.design.beforeReduction.identical(legacy.beforeReduction));
    EXPECT_EQ(flow.design.regexText, legacy.regexText);
    EXPECT_EQ(flow.design.statesSubset, legacy.statesSubset);
    EXPECT_EQ(flow.design.statesHopcroft, legacy.statesHopcroft);
    EXPECT_EQ(flow.design.statesFinal, legacy.statesFinal);
}

TEST(DesignFlowTest, TraceRecordsEveryStage)
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    const FlowResult flow = DesignFlow(options).runOnTrace(paperTrace());

    for (FlowStage stage :
         {FlowStage::Markov, FlowStage::Patterns, FlowStage::Minimize,
          FlowStage::Regex, FlowStage::Subset, FlowStage::Hopcroft,
          FlowStage::StartReduce}) {
        const StageRecord *record = flow.trace.find(stage);
        ASSERT_NE(record, nullptr) << flowStageName(stage);
        EXPECT_GE(record->millis, 0.0);
    }
    EXPECT_EQ(flow.trace.find(FlowStage::Subset)->metric,
              flow.design.statesSubset);
    EXPECT_EQ(flow.trace.find(FlowStage::Hopcroft)->metric,
              flow.design.statesHopcroft);
    EXPECT_EQ(flow.trace.find(FlowStage::StartReduce)->metric,
              flow.design.statesFinal);
    EXPECT_GE(flow.trace.totalMillis(), 0.0);

    const std::string json = flow.trace.toJson();
    EXPECT_NE(json.find("\"stage\":\"hopcroft\""), std::string::npos);
    EXPECT_NE(json.find("\"metricName\":\"states\""), std::string::npos);
}

TEST(DesignFlowTest, RecordsStagesForConstantMachine)
{
    FsmDesignOptions options;
    options.order = 2;
    // An all-zero trace yields an empty predict-1 cover.
    const FlowResult flow =
        DesignFlow(options).runOnTrace(std::vector<int>(64, 0));
    EXPECT_EQ(flow.design.statesFinal, 1);
    ASSERT_NE(flow.trace.find(FlowStage::StartReduce), nullptr);
    EXPECT_EQ(flow.trace.find(FlowStage::StartReduce)->metric, 1);
}

TEST(DesignFlowTest, MismatchedOrderThrows)
{
    MarkovModel model(3);
    model.train(paperTrace());
    FsmDesignOptions options;
    options.order = 2;
    EXPECT_THROW(DesignFlow(options).run(model), std::invalid_argument);
}

TEST(MarkovHashTest, EqualContentHashesEqual)
{
    MarkovModel a(2), b(2);
    a.train(paperTrace());
    b.train(paperTrace());
    EXPECT_EQ(markovContentHash(a), markovContentHash(b));
    EXPECT_TRUE(markovEqual(a, b));

    MarkovModel c(2);
    c.train(std::vector<int>(32, 1));
    EXPECT_NE(markovContentHash(a), markovContentHash(c));
    EXPECT_FALSE(markovEqual(a, c));
}

TEST(BatchDesignerTest, DeterministicAcrossThreadCounts)
{
    const auto traces = syntheticTraces(9, 600);
    FsmDesignOptions options;
    options.order = 4;

    // Serial reference through the legacy wrapper.
    std::vector<FsmDesignResult> reference;
    for (const auto &trace : traces)
        reference.push_back(designFromTrace(trace, options));

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        BatchOptions batch;
        batch.threads = threads;
        BatchDesigner designer(options, batch);
        const auto results = designer.designTraces(traces);
        ASSERT_EQ(results.size(), traces.size());
        for (size_t i = 0; i < results.size(); ++i) {
            ASSERT_TRUE(results[i].ok) << results[i].error;
            const FsmDesignResult &got = results[i].flow.design;
            EXPECT_TRUE(got.fsm.identical(reference[i].fsm))
                << "threads=" << threads << " item=" << i;
            EXPECT_EQ(got.regexText, reference[i].regexText);
            EXPECT_EQ(got.statesFinal, reference[i].statesFinal);
        }
    }
}

TEST(BatchDesignerTest, IdenticalModelsDesignOnce)
{
    MarkovModel model(3);
    model.train(syntheticTraces(1, 500)[0]);
    MarkovModel other(3);
    other.train(std::vector<int>(200, 1));

    FsmDesignOptions options;
    options.order = 3;
    BatchDesigner designer(options);
    const auto results =
        designer.designAll({model, model, other, model});

    ASSERT_EQ(results.size(), 4u);
    for (const auto &result : results)
        EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(designer.stats().items, 4u);
    EXPECT_EQ(designer.stats().designed, 2u);
    EXPECT_EQ(designer.stats().cacheHits, 2u);
    EXPECT_FALSE(results[0].fromCache);
    EXPECT_TRUE(results[1].fromCache);
    EXPECT_FALSE(results[2].fromCache);
    EXPECT_TRUE(results[3].fromCache);
    EXPECT_TRUE(
        results[1].flow.design.fsm.identical(results[0].flow.design.fsm));
    EXPECT_TRUE(
        results[3].flow.design.fsm.identical(results[0].flow.design.fsm));
}

TEST(BatchDesignerTest, MemoizationCanBeDisabled)
{
    MarkovModel model(2);
    model.train(paperTrace());
    BatchOptions batch;
    batch.memoize = false;
    FsmDesignOptions options;
    options.order = 2;
    BatchDesigner designer(options, batch);
    const auto results = designer.designAll({model, model});
    EXPECT_EQ(designer.stats().designed, 2u);
    EXPECT_EQ(designer.stats().cacheHits, 0u);
    EXPECT_TRUE(
        results[1].flow.design.fsm.identical(results[0].flow.design.fsm));
}

TEST(BatchDesignerTest, PoisonedItemDoesNotSinkBatch)
{
    MarkovModel good(2);
    good.train(paperTrace());
    MarkovModel poison(5); // wrong order for the batch's options
    poison.train(paperTrace());

    FsmDesignOptions options;
    options.order = 2;
    BatchDesigner designer(options);
    const auto results = designer.designAll({good, poison, good});

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_NE(results[1].error.find("order"), std::string::npos);
    EXPECT_TRUE(results[2].ok);
    EXPECT_EQ(designer.stats().failures, 1u);
    EXPECT_TRUE(
        results[2].flow.design.fsm.identical(results[0].flow.design.fsm));
}

TEST(BatchDesignerTest, FailingDuplicatesAreServedFromCache)
{
    // Identical models fail identically, so duplicates of a failing
    // representative reuse its error instead of re-running the flow.
    MarkovModel poison(5); // wrong order for the batch's options
    poison.train(paperTrace());

    FsmDesignOptions options;
    options.order = 2;
    BatchDesigner designer(options);
    const auto results = designer.designAll({poison, poison, poison});

    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_FALSE(results[0].fromCache);
    for (size_t i : {size_t{1}, size_t{2}}) {
        EXPECT_FALSE(results[i].ok);
        EXPECT_TRUE(results[i].fromCache);
        EXPECT_EQ(results[i].error, results[0].error);
        EXPECT_EQ(results[i].errorKind, results[0].errorKind);
    }
    EXPECT_EQ(designer.stats().designed, 1u);
    EXPECT_EQ(designer.stats().cacheHits, 2u);
    // Every duplicate counts as its own failure.
    EXPECT_EQ(designer.stats().failures, 3u);
}


TEST(FlowTraceTest, FindReturnsNullForAbsentStage)
{
    FlowTrace trace;
    trace.add(FlowStage::Markov, 1.0, 3, "histories");
    ASSERT_NE(trace.find(FlowStage::Markov), nullptr);
    EXPECT_EQ(trace.find(FlowStage::Markov)->metric, 3);
    EXPECT_EQ(trace.find(FlowStage::Hopcroft), nullptr);
}

TEST(FlowTraceTest, StageNamesRoundTrip)
{
    const FlowStage all[] = {
        FlowStage::Markov,   FlowStage::Patterns, FlowStage::Minimize,
        FlowStage::Regex,    FlowStage::Subset,   FlowStage::Hopcroft,
        FlowStage::StartReduce,
    };
    for (const FlowStage stage : all) {
        const char *name = flowStageName(stage);
        EXPECT_STRNE(name, "?");
        const auto parsed = flowStageFromName(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, stage) << name;
    }
    EXPECT_FALSE(flowStageFromName("no-such-stage").has_value());
    EXPECT_FALSE(flowStageFromName("").has_value());
}

} // anonymous namespace
} // namespace autofsm
