/**
 * @file
 * Tests for the synthetic workload substrate: determinism, scale,
 * and the structural properties each benchmark model promises.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/history.hh"
#include "trace/branch_trace.hh"
#include "workloads/branch_workloads.hh"
#include "workloads/value_workloads.hh"

namespace autofsm
{
namespace
{

TEST(BranchWorkloadTest, SixBenchmarks)
{
    const auto &names = branchBenchmarkNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "compress");
    EXPECT_EQ(names[5], "gs");
}

TEST(BranchWorkloadTest, Deterministic)
{
    const BranchTrace a =
        makeBranchTrace("ijpeg", WorkloadInput::Train, 5000);
    const BranchTrace b =
        makeBranchTrace("ijpeg", WorkloadInput::Train, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].taken, b[i].taken);
    }
}

TEST(BranchWorkloadTest, InputsDiffer)
{
    const BranchTrace train =
        makeBranchTrace("ijpeg", WorkloadInput::Train, 5000);
    const BranchTrace test =
        makeBranchTrace("ijpeg", WorkloadInput::Test, 5000);
    size_t diffs = 0;
    const size_t n = std::min(train.size(), test.size());
    for (size_t i = 0; i < n; ++i)
        diffs += train[i].taken != test[i].taken;
    EXPECT_GT(diffs, n / 100); // data differs...
    // ...but the program structure (branch sites) is shared.
    const BranchProfile p1 = profileTrace(train);
    const BranchProfile p2 = profileTrace(test);
    EXPECT_EQ(p1.size(), p2.size());
}

TEST(BranchWorkloadTest, ReachesRequestedLength)
{
    for (const auto &name : branchBenchmarkNames()) {
        const BranchTrace trace =
            makeBranchTrace(name, WorkloadInput::Train, 20000);
        EXPECT_GE(trace.size(), 20000u) << name;
        EXPECT_LT(trace.size(), 21000u) << name; // one round of slack
    }
}

TEST(BranchWorkloadTest, EveryBenchmarkHasMultipleSites)
{
    for (const auto &name : branchBenchmarkNames()) {
        const BranchTrace trace =
            makeBranchTrace(name, WorkloadInput::Train, 20000);
        const BranchProfile profile = profileTrace(trace);
        EXPECT_GE(profile.size(), 5u) << name;
        // Mixed directions overall (loop-heavy benchmarks run taken-
        // biased, like real embedded codes, but never monotone).
        uint64_t taken = 0;
        for (const auto &r : trace)
            taken += r.taken;
        EXPECT_GT(taken, trace.size() / 20) << name;
        EXPECT_LT(taken, trace.size() * 19 / 20) << name;
    }
}

TEST(BranchWorkloadTest, VortexIsGloballyPredictable)
{
    // The vortex model's claim: branch outcomes are near-deterministic
    // functions of the global history. Measure the best achievable
    // accuracy of an oracle keyed by (pc, 8-bit global history).
    const BranchTrace trace =
        makeBranchTrace("vortex", WorkloadInput::Train, 40000);

    // First pass: majority vote per (pc, history) key.
    std::map<std::pair<uint64_t, uint32_t>, std::pair<uint64_t, uint64_t>>
        votes;
    HistoryRegister global(8);
    for (const auto &r : trace) {
        auto &v = votes[{r.pc, global.value()}];
        v.first += r.taken;
        v.second += 1;
        global.push(r.taken ? 1 : 0);
    }
    // Second pass: oracle accuracy.
    global.reset();
    uint64_t correct = 0;
    for (const auto &r : trace) {
        const auto &v = votes[{r.pc, global.value()}];
        const bool majority = v.first * 2 >= v.second;
        correct += majority == r.taken;
        global.push(r.taken ? 1 : 0);
    }
    EXPECT_GT(static_cast<double>(correct) /
                  static_cast<double>(trace.size()),
              0.95);
}

TEST(BranchWorkloadTest, UnknownBenchmarkThrows)
{
    EXPECT_THROW(makeBranchTrace("spice", WorkloadInput::Train, 100),
                 std::invalid_argument);
}

TEST(ValueWorkloadTest, FiveBenchmarks)
{
    const auto &names = valueBenchmarkNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "gcc");
    EXPECT_EQ(names[4], "perl");
}

TEST(ValueWorkloadTest, DeterministicAndSized)
{
    const ValueTrace a = makeValueTrace("li", 10000);
    const ValueTrace b = makeValueTrace("li", 10000);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GE(a.size(), 10000u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].value, b[i].value);
    }
}

TEST(ValueWorkloadTest, BenchmarksDiffer)
{
    const ValueTrace a = makeValueTrace("gcc", 5000);
    const ValueTrace b = makeValueTrace("go", 5000);
    size_t diffs = 0;
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i)
        diffs += a[i].value != b[i].value;
    EXPECT_GT(diffs, n / 4);
}

TEST(ValueWorkloadTest, MultipleLoadSites)
{
    const ValueTrace trace = makeValueTrace("perl", 5000);
    std::set<uint64_t> pcs;
    for (const auto &r : trace)
        pcs.insert(r.pc);
    EXPECT_GE(pcs.size(), 5u);
}

TEST(ValueWorkloadTest, UnknownBenchmarkThrows)
{
    EXPECT_THROW(makeValueTrace("vortex", 100), std::invalid_argument);
}

TEST(TraceProfileTest, CountsPerBranch)
{
    BranchTrace trace = {
        {0x10, true}, {0x10, false}, {0x20, true}, {0x10, true}};
    const BranchProfile profile = profileTrace(trace);
    ASSERT_EQ(profile.size(), 2u);
    EXPECT_EQ(profile.at(0x10).executions, 3u);
    EXPECT_EQ(profile.at(0x10).taken, 2u);
    EXPECT_EQ(profile.at(0x20).executions, 1u);
}

} // anonymous namespace
} // namespace autofsm
