/**
 * @file
 * Tests for the extension predictors: PPM, the generated-counter
 * bimodal BTB, the general-purpose counter design flow, and the loop
 * termination unit.
 */

#include <gtest/gtest.h>

#include "bpred/counter_design.hh"
#include "bpred/fsm_bimodal.hh"
#include "bpred/loop_predictor.hh"
#include "bpred/ppm.hh"
#include "bpred/simulate.hh"
#include "support/rng.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{
namespace
{

TEST(PpmTest, ColdPredictsNotTaken)
{
    PpmPredictor ppm;
    EXPECT_FALSE(ppm.predict(0x100));
}

TEST(PpmTest, LearnsDeepGlobalCorrelation)
{
    // Outcome = outcome of the branch 4 back; only contexts of length
    // >= 4 carry the signal.
    PpmPredictor ppm(PpmConfig{8, 12, 2, 0.0});
    Rng rng(3);
    std::vector<int> recent = {0, 0, 0, 0};
    uint64_t wrong = 0, total = 0;
    for (int i = 0; i < 30000; ++i) {
        // Four noise branches, then the correlated one.
        for (int b = 0; b < 4; ++b) {
            const bool t = rng.chance(0.5);
            ppm.update(0x100 + 4 * static_cast<uint64_t>(b), t);
            recent.push_back(t);
        }
        const bool taken = recent[recent.size() - 4] != 0;
        if (i > 2000) {
            ++total;
            wrong += ppm.predict(0x200) != taken;
        }
        ppm.update(0x200, taken);
        recent.push_back(taken);
    }
    EXPECT_LT(static_cast<double>(wrong) / static_cast<double>(total),
              0.08);
}

TEST(PpmTest, FrequencySaturationHalves)
{
    // Hammering one context must not overflow the 16-bit counters.
    PpmPredictor ppm(PpmConfig{2, 8, 2, 0.0});
    for (int i = 0; i < 200000; ++i)
        ppm.update(0x300, true);
    EXPECT_TRUE(ppm.predict(0x300));
}

TEST(PpmTest, AreaScalesWithOrderAndTables)
{
    const PpmPredictor small(PpmConfig{4, 10, 2, 0.0});
    const PpmPredictor large(PpmConfig{8, 12, 2, 0.0});
    EXPECT_LT(small.area(), large.area());
    EXPECT_EQ(small.name(), "ppm-m4-2^10");
}

TEST(CounterDesignTest, RecoversTwoBitLikeBehaviorFromBiasedSuite)
{
    // A suite of strongly biased branches: the designed counter must
    // predict 1 after a run of 1s and 0 after a run of 0s, like the
    // 2-bit counter it replaces.
    std::vector<BranchTrace> suite;
    for (uint64_t seed : {1u, 2u, 3u}) {
        Rng rng(seed);
        BranchTrace trace;
        for (int i = 0; i < 5000; ++i) {
            trace.push_back({0x100, rng.chance(0.9)});
            trace.push_back({0x200, !rng.chance(0.9)});
        }
        suite.push_back(std::move(trace));
    }

    FsmDesignOptions options;
    options.order = 2;
    const FsmDesignResult result = designGeneralCounter(suite, options);
    PredictorFsm counter(result.fsm);
    counter.update(1);
    counter.update(1);
    EXPECT_EQ(counter.predict(), 1);
    counter.update(0);
    counter.update(0);
    EXPECT_EQ(counter.predict(), 0);
}

TEST(CounterDesignTest, LocalModelSeparatesInterleavedBranches)
{
    // Branch A strictly alternates; branch B is always taken. A global
    // (interleaved) view would see pattern 1,1,0,1 noise; the local
    // model must see a clean alternation for A.
    BranchTrace trace;
    for (int i = 0; i < 1000; ++i) {
        trace.push_back({0xA00, i % 2 == 0});
        trace.push_back({0xB00, true});
    }
    MarkovModel model(2);
    collectLocalOutcomeModel(trace, model);
    // Local history "10" (older taken, newer not) is always followed by
    // taken for A, and "11" always by taken for B.
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("10")), 1.0);
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("01")), 0.0);
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("11")), 1.0);
}

TEST(FsmBimodalTest, BehavesLikeBtbWithInjectedTwoBitCounter)
{
    // Inject a hand-built 2-bit-counter machine; the FSM bimodal must
    // then agree with the XScale BTB on any trace (both allocate to the
    // weak state nearest the first outcome... the XScale allocates
    // biased toward the outcome, so compare against a fresh-start
    // semantic instead: prediction after two takens is taken).
    Dfa two_bit;
    for (int s = 0; s < 4; ++s)
        two_bit.addState(s >= 2);
    for (int s = 0; s < 4; ++s) {
        two_bit.setEdge(s, 1, std::min(s + 1, 3));
        two_bit.setEdge(s, 0, std::max(s - 1, 0));
    }
    two_bit.setStart(1);

    FsmBimodalBtb btb(two_bit);
    EXPECT_FALSE(btb.predict(0x100)); // miss -> not taken
    btb.update(0x100, true);
    btb.update(0x100, true);
    EXPECT_TRUE(btb.predict(0x100));
    btb.update(0x100, false);
    btb.update(0x100, false);
    btb.update(0x100, false);
    EXPECT_FALSE(btb.predict(0x100));
    EXPECT_EQ(btb.counterStates(), 4);
}

TEST(FsmBimodalTest, AllocationResetsState)
{
    Dfa last_outcome;
    const int s0 = last_outcome.addState(0);
    const int s1 = last_outcome.addState(1);
    last_outcome.setEdge(s0, 0, s0);
    last_outcome.setEdge(s0, 1, s1);
    last_outcome.setEdge(s1, 0, s0);
    last_outcome.setEdge(s1, 1, s1);
    last_outcome.setStart(s0);

    BtbConfig config;
    config.entries = 4;
    FsmBimodalBtb btb(last_outcome, config);
    const uint64_t pc_a = 0x100, pc_b = pc_a + 4 * 4; // conflicting
    btb.update(pc_a, true);
    EXPECT_TRUE(btb.predict(pc_a));
    btb.update(pc_b, false); // evicts A, allocates B at start state
    btb.update(pc_a, true);  // re-allocates A at start, then steps on 1
    EXPECT_TRUE(btb.predict(pc_a));
}

TEST(LoopTerminationTest, LearnsFixedTripCount)
{
    LoopTerminationUnit unit;
    auto run_instance = [&unit](int trip, int &wrong) {
        for (int i = 0; i < trip - 1; ++i) {
            wrong += unit.predict() != true;
            unit.update(true);
        }
        wrong += unit.predict() != false;
        unit.update(false);
    };

    int warmup_wrong = 0;
    run_instance(8, warmup_wrong);
    run_instance(8, warmup_wrong);
    EXPECT_TRUE(unit.confident());
    EXPECT_EQ(unit.trip(), 8u);

    int wrong = 0;
    for (int k = 0; k < 50; ++k)
        run_instance(8, wrong);
    EXPECT_EQ(wrong, 0); // perfect once locked
}

TEST(LoopTerminationTest, TripChangeCostsOneInstance)
{
    LoopTerminationUnit unit;
    int wrong = 0;
    auto run_instance = [&](int trip) {
        for (int i = 0; i < trip - 1; ++i) {
            wrong += unit.predict() != true;
            unit.update(true);
        }
        wrong += unit.predict() != false;
        unit.update(false);
    };
    run_instance(5);
    run_instance(5);
    wrong = 0;
    run_instance(9); // trip grows: mispredicts the old exit + new exit
    EXPECT_LE(wrong, 2);
    wrong = 0;
    run_instance(9);
    run_instance(9);
    EXPECT_LE(wrong, 1); // re-locks after one repeat
}

TEST(LoopTerminationTest, UnconfidentPredictsTaken)
{
    LoopTerminationUnit unit;
    EXPECT_TRUE(unit.predict());
    unit.update(true);
    EXPECT_TRUE(unit.predict());
}

TEST(PpmEndToEndTest, CompetitiveOnCorrelatedWorkload)
{
    const BranchTrace test =
        makeBranchTrace("vortex", WorkloadInput::Test, 30000);
    PpmPredictor ppm;
    XScaleBtb btb;
    const double ppm_rate = simulateBranchPredictor(ppm, test).missRate();
    XScaleBtb fresh;
    const double btb_rate =
        simulateBranchPredictor(fresh, test).missRate();
    EXPECT_LT(ppm_rate, btb_rate * 0.6);
}

} // anonymous namespace
} // namespace autofsm
