/**
 * @file
 * Tests of the multi-order profiling engine (fsmgen/profile.hh) and the
 * cross-item design-stage memo (flow/design_memo.hh).
 *
 * The profiling engine's contract is bit-identity: flat kernels, packed
 * word streams and fold-derived order sweeps must produce exactly the
 * tables that per-order `MarkovModel::train` builds. The property tests
 * drive random traces across orders and trace lengths (including traces
 * shorter than the maximum order, where only warm-up edges exist). The
 * memo tests pin the hit path's byte-identical artifacts, its
 * eligibility rules (unlimited budget, no armed failpoint) and its
 * thread-safety under a concurrent BatchDesigner (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "flow/batch.hh"
#include "flow/design_flow.hh"
#include "flow/design_memo.hh"
#include "fsmgen/markov.hh"
#include "fsmgen/patterns.hh"
#include "fsmgen/profile.hh"
#include "obs/metrics.hh"
#include "support/failpoint.hh"
#include "support/rng.hh"

namespace autofsm
{
namespace
{

/** Deterministic random 0/1 trace with a taken bias. */
std::vector<int>
randomTrace(uint64_t seed, size_t length, double bias = 0.6)
{
    Rng rng(seed);
    std::vector<int> trace;
    trace.reserve(length);
    for (size_t i = 0; i < length; ++i)
        trace.push_back(rng.uniform() < bias ? 1 : 0);
    return trace;
}

/** Pack a 0/1 trace into the takenWords layout (bit i&63 of word i>>6). */
std::vector<uint64_t>
packWords(const std::vector<int> &bits)
{
    std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
    for (size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            words[i >> 6] |= uint64_t{1} << (i & 63);
    }
    return words;
}

/** The Section 4 worked-example trace. */
std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

/** @p model with every count scaled by @p factor (same probabilities). */
MarkovModel
scaledModel(const MarkovModel &model, uint64_t factor)
{
    MarkovModel out(model.order());
    for (const auto &[history, counts] : model.table())
        out.addCounts(history, counts.ones * factor, counts.total * factor);
    return out;
}

// ---------------------------------------------------------------------
// Profiling engine: bit-identity properties.
// ---------------------------------------------------------------------

TEST(ProfileTest, FoldDerivedSweepMatchesPerOrderTraining)
{
    std::vector<int> orders;
    for (int order = 2; order <= 12; ++order)
        orders.push_back(order);

    const size_t lengths[] = {97, 1000, 4096};
    for (size_t t = 0; t < 3; ++t) {
        const std::vector<int> trace =
            randomTrace(0xBEEF + t, lengths[t], 0.3 + 0.2 * t);
        const std::vector<uint64_t> words = packWords(trace);

        const MultiOrderProfile from_bits = profileBits(trace, orders);
        const MultiOrderProfile from_words =
            profileWords(words.data(), trace.size(), orders);

        for (int order : orders) {
            MarkovModel direct(order);
            direct.train(trace);
            EXPECT_TRUE(markovEqual(direct, from_bits.model(order)))
                << "bits, order " << order << ", length " << lengths[t];
            EXPECT_TRUE(markovEqual(direct, from_words.model(order)))
                << "words, order " << order << ", length " << lengths[t];
            EXPECT_EQ(direct.distinctHistories(),
                      from_bits.model(order).distinctHistories());
            EXPECT_EQ(direct.totalObservations(),
                      from_bits.model(order).totalObservations());
        }
        EXPECT_TRUE(from_bits.stats().flat);
    }
}

TEST(ProfileTest, FlatSingleOrderTrainingMatchesSparse)
{
    const std::vector<int> trace = randomTrace(0xABCD, 3000);
    const std::vector<uint64_t> words = packWords(trace);
    for (int order : {1, 2, 7, 12, 16}) {
        MarkovModel direct(order);
        direct.train(trace);
        EXPECT_TRUE(markovEqual(direct, trainMarkovModel(trace, order)))
            << "order " << order;
        EXPECT_TRUE(markovEqual(
            direct, trainMarkovModelWords(words.data(), trace.size(), order)))
            << "order " << order;
    }
}

TEST(ProfileTest, WarmupEdgesAtTracesShorterThanMaxOrder)
{
    // Traces shorter than (or comparable to) the maximum order consist
    // mostly or entirely of warm-up edges; the replay path must still
    // reproduce per-order training exactly, including empty tables.
    const std::vector<int> orders = {2, 3, 5, 8, 12};
    for (size_t length : {size_t{0}, size_t{1}, size_t{2}, size_t{5},
                          size_t{11}, size_t{12}, size_t{13}}) {
        const std::vector<int> trace = randomTrace(0x51 + length, length);
        const std::vector<uint64_t> words = packWords(trace);
        const MultiOrderProfile from_bits = profileBits(trace, orders);
        const MultiOrderProfile from_words =
            profileWords(words.data(), trace.size(), orders);
        for (int order : orders) {
            MarkovModel direct(order);
            direct.train(trace);
            EXPECT_TRUE(markovEqual(direct, from_bits.model(order)))
                << "length " << length << ", order " << order;
            EXPECT_TRUE(markovEqual(direct, from_words.model(order)))
                << "length " << length << ", order " << order;
        }
    }
}

TEST(ProfileTest, SparseFallbackAboveFlatCapIsIdentical)
{
    // Orders above kMaxFlatOrder use the sparse map, including sparse
    // folds down the ladder.
    const std::vector<int> orders = {kMaxFlatOrder + 2, kMaxFlatOrder, 9};
    const std::vector<int> trace = randomTrace(0x22, 2000);
    const MultiOrderProfile profile = profileBits(trace, orders);
    EXPECT_FALSE(profile.stats().flat);
    for (int order : orders) {
        MarkovModel direct(order);
        direct.train(trace);
        EXPECT_TRUE(markovEqual(direct, profile.model(order)))
            << "order " << order;
    }
}

TEST(ProfileTest, MultipleStreamsAccumulateLikeIndependentTraining)
{
    // Each consumed stream warms up independently, exactly like calling
    // train() once per stream on one model.
    const std::vector<int> a = randomTrace(0xA, 500);
    const std::vector<int> b = randomTrace(0xB, 7); // warm-up only at 9
    const std::vector<int> c = randomTrace(0xC, 300);
    const std::vector<int> orders = {3, 9};

    MultiOrderCounter counter(9);
    counter.consume(a);
    counter.consume(b);
    counter.consume(c);
    const MultiOrderProfile profile = counter.finish(orders);

    for (int order : orders) {
        MarkovModel direct(order);
        direct.train(a);
        direct.train(b);
        direct.train(c);
        EXPECT_TRUE(markovEqual(direct, profile.model(order)))
            << "order " << order;
    }
}

TEST(ProfileTest, StatsAndOrderValidation)
{
    const std::vector<int> trace = randomTrace(0x7, 100);
    MultiOrderCounter counter(5);
    counter.consume(trace);
    MultiOrderProfile profile = counter.finish({5, 2, 2});

    EXPECT_EQ(profile.orders(), (std::vector<int>{5, 2}));
    EXPECT_EQ(profile.stats().observations, 95u);
    EXPECT_EQ(profile.stats().warmupObservations, 4u);
    EXPECT_THROW(profile.model(3), std::invalid_argument);

    MarkovModel taken = profile.takeModel(2);
    MarkovModel direct(2);
    direct.train(trace);
    EXPECT_TRUE(markovEqual(direct, taken));

    MultiOrderCounter bad(4);
    EXPECT_THROW(bad.finish({}), std::invalid_argument);
    EXPECT_THROW(bad.finish({5}), std::invalid_argument);
    EXPECT_THROW(bad.finish({0}), std::invalid_argument);
}

TEST(ProfileTest, PublishesProfileGauges)
{
#ifdef AUTOFSM_NO_TELEMETRY
    GTEST_SKIP() << "built with AUTOFSM_NO_TELEMETRY";
#endif
    obs::MetricsRegistry &registry = obs::globalMetrics();
    registry.enable(true);
    const std::vector<int> trace = randomTrace(0x99, 400);
    const MarkovModel model = trainMarkovModel(trace, 6);

    const obs::MetricsSnapshot snapshot = registry.snapshot();
    const obs::MetricValue *distinct = nullptr;
    const obs::MetricValue *bytes = nullptr;
    const obs::MetricValue *runs = nullptr;
    for (const obs::MetricValue &metric : snapshot.metrics) {
        if (metric.name == "autofsm_profile_distinct_histories")
            distinct = &metric;
        if (metric.name == "autofsm_profile_table_bytes")
            bytes = &metric;
        if (metric.name == "autofsm_profile_runs_total")
            runs = &metric;
    }
    ASSERT_NE(distinct, nullptr);
    ASSERT_NE(bytes, nullptr);
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(distinct->value,
              static_cast<double>(model.distinctHistories()));
    EXPECT_GT(bytes->value, 0.0);
    EXPECT_GE(runs->count, 1u);
}

TEST(ProfileTest, PatternsAreInsertionOrderIndependent)
{
    // definePatterns' don't-care selection ranks histories with a
    // partial sort; the classification must depend only on the table's
    // content, not on map iteration or insertion order.
    const std::vector<int> trace = randomTrace(0x123, 5000);
    const MarkovModel forward = trainMarkovModel(trace, 8);

    // Same content, inserted in descending-history order.
    std::vector<uint32_t> histories;
    for (const auto &[history, counts] : forward.table())
        histories.push_back(history);
    std::sort(histories.rbegin(), histories.rend());
    MarkovModel reversed(8);
    for (uint32_t history : histories) {
        const HistoryCounts counts = forward.counts(history);
        reversed.addCounts(history, counts.ones, counts.total);
    }

    PatternOptions options;
    options.dontCareMass = 0.05;
    const PatternSets a = definePatterns(forward, options);
    const PatternSets b = definePatterns(reversed, options);
    EXPECT_EQ(a.predictOne, b.predictOne);
    EXPECT_EQ(a.predictZero, b.predictZero);
    EXPECT_EQ(a.dontCare, b.dontCare);
    EXPECT_FALSE(a.dontCare.empty());
}

// ---------------------------------------------------------------------
// Design-stage memo.
// ---------------------------------------------------------------------

class DesignMemoTest : public ::testing::Test
{
  protected:
    void SetUp() override { clearDesignMemo(); }

    void
    TearDown() override
    {
        clearDesignMemo();
        designMemoSetCapacity(4096);
        failpoint::registry().clearAll();
    }
};

TEST_F(DesignMemoTest, ScaledCountsHitMemoWithIdenticalArtifacts)
{
    MarkovModel base(2);
    base.train(paperTrace());
    // Doubling every count changes the model's content hash (so the
    // per-batch memo cannot group the two) but preserves every
    // probability, hence the history partition and the whole tail.
    const MarkovModel doubled = scaledModel(base, 2);
    ASSERT_FALSE(markovEqual(base, doubled));

    DesignFlow flow(FsmDesignOptions{});
    const FlowResult first = flow.run(base);
    EXPECT_FALSE(first.tailFromMemo);

    const FlowResult second = flow.run(doubled);
    EXPECT_TRUE(second.tailFromMemo);
    EXPECT_TRUE(second.design.fsm.identical(first.design.fsm));
    EXPECT_TRUE(
        second.design.beforeReduction.identical(first.design.beforeReduction));
    EXPECT_EQ(second.design.regexText, first.design.regexText);
    EXPECT_EQ(second.design.statesSubset, first.design.statesSubset);
    EXPECT_EQ(second.design.statesHopcroft, first.design.statesHopcroft);
    EXPECT_EQ(second.design.statesFinal, first.design.statesFinal);
    EXPECT_EQ(second.design.cover.size(), first.design.cover.size());

    const DesignMemoStats stats = designMemoStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST_F(DesignMemoTest, FiniteBudgetBypassesMemo)
{
    MarkovModel model(2);
    model.train(paperTrace());

    FsmDesignOptions options;
    options.budget.maxDfaStates = 1000; // generous but finite
    DesignFlow flow(options);
    flow.run(model);
    flow.run(model);

    const DesignMemoStats stats = designMemoStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST_F(DesignMemoTest, ArmedFailpointBypassesMemo)
{
    MarkovModel model(2);
    model.train(paperTrace());
    DesignFlow flow(FsmDesignOptions{});
    flow.run(model);
    EXPECT_EQ(designMemoStats().misses, 1u);

    // Any configured failpoint disarms the memo: a hit would skip the
    // downstream stages a fault-injection test is driving.
    failpoint::registry().set("unrelated.site", "fail-times:1000000");
    const FlowResult result = flow.run(model);
    EXPECT_FALSE(result.tailFromMemo);
    const DesignMemoStats stats = designMemoStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u); // the bypassed run counted nothing
}

TEST_F(DesignMemoTest, DesignMemoFailpointInjectsFault)
{
    MarkovModel model(2);
    model.train(paperTrace());
    failpoint::registry().set("flow.designmemo", "fail-times:1");
    DesignFlow flow(FsmDesignOptions{});
    EXPECT_THROW(flow.run(model), InjectedFault);
    failpoint::registry().clearAll();
    EXPECT_NO_THROW(flow.run(model));
}

TEST_F(DesignMemoTest, MemoizeStagesOptionDisablesMemo)
{
    MarkovModel model(2);
    model.train(paperTrace());
    FsmDesignOptions options;
    options.memoizeStages = false;
    DesignFlow flow(options);
    const FlowResult first = flow.run(model);
    const FlowResult second = flow.run(model);
    EXPECT_FALSE(second.tailFromMemo);
    EXPECT_TRUE(second.design.fsm.identical(first.design.fsm));
    EXPECT_EQ(designMemoStats().misses, 0u);
}

TEST_F(DesignMemoTest, CapacityCapDropsStores)
{
    designMemoSetCapacity(0);
    MarkovModel model(2);
    model.train(paperTrace());
    DesignFlow flow(FsmDesignOptions{});
    flow.run(model);
    flow.run(model);
    const DesignMemoStats stats = designMemoStats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.insertions, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST_F(DesignMemoTest, ConcurrentBatchItemsShareMemo)
{
    // Six models with pairwise-different counts but one shared history
    // partition: the per-batch memo cannot group them, so every item
    // races on the process-wide memo. Run under TSan in CI; every
    // resulting machine must be byte-identical regardless of which item
    // stored the entry first.
    MarkovModel base(2);
    base.train(paperTrace());
    std::vector<MarkovModel> models;
    for (uint64_t factor = 1; factor <= 6; ++factor)
        models.push_back(scaledModel(base, factor));

    BatchOptions batch;
    batch.threads = 4;
    BatchDesigner designer(FsmDesignOptions{}, batch);
    const std::vector<BatchItemResult> results = designer.designAll(models);

    ASSERT_EQ(results.size(), 6u);
    for (const BatchItemResult &result : results) {
        ASSERT_TRUE(result.ok);
        EXPECT_TRUE(
            result.flow.design.fsm.identical(results[0].flow.design.fsm));
    }
    const DesignMemoStats stats = designMemoStats();
    EXPECT_EQ(stats.hits + stats.misses, 6u);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

} // anonymous namespace
} // namespace autofsm
