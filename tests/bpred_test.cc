/**
 * @file
 * Tests for the branch-prediction substrate: SUD counters, the XScale
 * BTB, gshare, the local/global chooser, the customized architecture
 * and the training flow.
 */

#include <gtest/gtest.h>

#include "bpred/btb.hh"
#include "bpred/custom.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "bpred/trainer.hh"
#include "support/rng.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{
namespace
{

TEST(SudCounterTest, TwoBitSemantics)
{
    SudCounter counter(SudConfig::twoBit(), 0);
    EXPECT_FALSE(counter.predict());
    counter.update(true);
    counter.update(true);
    EXPECT_TRUE(counter.predict());
    counter.update(true);
    counter.update(true);
    EXPECT_EQ(counter.value(), 3); // saturates
    counter.update(false);
    EXPECT_TRUE(counter.predict()); // hysteresis
    counter.update(false);
    EXPECT_FALSE(counter.predict());
    counter.update(false);
    EXPECT_EQ(counter.value(), 0); // floors
}

TEST(SudCounterTest, ResettingCounterClearsOnMiss)
{
    SudCounter counter(SudConfig::resetting(10, 8), 0);
    for (int i = 0; i < 9; ++i)
        counter.update(true);
    EXPECT_TRUE(counter.predict());
    counter.update(false);
    EXPECT_EQ(counter.value(), 0);
    EXPECT_FALSE(counter.predict());
}

TEST(SudCounterTest, AsymmetricPenalty)
{
    SudConfig config{20, 1, 5, 16};
    SudCounter counter(config, 20);
    EXPECT_TRUE(counter.predict());
    counter.update(false);
    EXPECT_EQ(counter.value(), 15);
    EXPECT_FALSE(counter.predict());
}

TEST(XScaleBtbTest, MissPredictsNotTaken)
{
    XScaleBtb btb;
    EXPECT_FALSE(btb.predict(0x1234));
    EXPECT_FALSE(btb.hit(0x1234));
}

TEST(XScaleBtbTest, LearnsBias)
{
    XScaleBtb btb;
    const uint64_t pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        btb.update(pc, true);
    EXPECT_TRUE(btb.hit(pc));
    EXPECT_TRUE(btb.predict(pc));
    for (int i = 0; i < 4; ++i)
        btb.update(pc, false);
    EXPECT_FALSE(btb.predict(pc));
}

TEST(XScaleBtbTest, ConflictEviction)
{
    BtbConfig config;
    config.entries = 4; // tiny, forces conflicts
    XScaleBtb btb(config);
    const uint64_t pc_a = 0x1000;
    const uint64_t pc_b = pc_a + 4 * 4; // same index, different tag
    for (int i = 0; i < 3; ++i)
        btb.update(pc_a, true);
    EXPECT_TRUE(btb.predict(pc_a));
    btb.update(pc_b, true); // evicts pc_a
    EXPECT_FALSE(btb.hit(pc_a));
    EXPECT_FALSE(btb.predict(pc_a));
}

TEST(XScaleBtbTest, AreaMatchesGeometry)
{
    BtbConfig config;
    AreaCosts costs;
    XScaleBtb btb(config, costs);
    const double expected =
        (config.tagBits + config.targetBits + 2) * config.entries *
        costs.sramBit;
    EXPECT_DOUBLE_EQ(btb.area(), expected);
}

TEST(GshareTest, LearnsGlobalCorrelation)
{
    // Branch B is taken iff the previous branch was taken: gshare must
    // get B nearly perfect; a bimodal BTB sees a 50/50 coin.
    Gshare gshare(GshareConfig{10, 10, 0.0});
    XScaleBtb btb;
    Rng rng(5);

    uint64_t gshare_wrong = 0, btb_wrong = 0, executions = 0;
    bool prev = false;
    for (int i = 0; i < 20000; ++i) {
        const bool a_taken = rng.chance(0.5);
        gshare.update(0x100, a_taken);
        btb.update(0x100, a_taken);

        const bool b_taken = a_taken;
        ++executions;
        gshare_wrong += gshare.predict(0x200) != b_taken;
        btb_wrong += btb.predict(0x200) != b_taken;
        gshare.update(0x200, b_taken);
        btb.update(0x200, b_taken);
        prev = b_taken;
    }
    (void)prev;
    EXPECT_LT(static_cast<double>(gshare_wrong) / executions, 0.05);
    EXPECT_GT(static_cast<double>(btb_wrong) / executions, 0.30);
}

TEST(GshareTest, AreaGrowsWithTable)
{
    const Gshare small(GshareConfig{10, 10});
    const Gshare large(GshareConfig{14, 14});
    EXPECT_LT(small.area(), large.area());
}

TEST(LgcTest, LearnsLocalPattern)
{
    // Period-4 local pattern on one branch, interleaved with random
    // branches that pollute global history: the local side must win.
    LocalGlobalChooser lgc(LgcConfig{10});
    Rng rng(9);
    const int pattern[4] = {1, 1, 0, 1};
    uint64_t wrong = 0, executions = 0;
    int pos = 0;
    for (int i = 0; i < 40000; ++i) {
        // Noise branch.
        lgc.update(0x900, rng.chance(0.5));
        // Patterned branch.
        const bool taken = pattern[pos] != 0;
        pos = (pos + 1) % 4;
        if (i > 2000) {
            ++executions;
            wrong += lgc.predict(0x500) != taken;
        }
        lgc.update(0x500, taken);
    }
    EXPECT_LT(static_cast<double>(wrong) / executions, 0.05);
}

TEST(LgcTest, AreaIncludesAllStructures)
{
    AreaCosts costs;
    LgcConfig config{10, 0.0};
    LocalGlobalChooser lgc(config, costs);
    const double n = 1 << 10;
    EXPECT_DOUBLE_EQ(lgc.area(), (n * 10 + 6 * n) * costs.sramBit);
}

TEST(CustomPredictorTest, CustomEntryOverridesBtb)
{
    CustomBranchPredictor custom;
    custom.addCustomEntry(0x100, Dfa::constant(1));
    EXPECT_TRUE(custom.isCustom(0x100));
    EXPECT_FALSE(custom.isCustom(0x104));
    // BTB would say not-taken (miss); the custom FSM says taken.
    EXPECT_TRUE(custom.predict(0x100));
    EXPECT_FALSE(custom.predict(0x104));
}

TEST(CustomPredictorTest, FsmUpdatesOnEveryBranch)
{
    // FSM predicting "last outcome", attached to branch A. Branch B's
    // outcomes must also step it (Section 7.3 update-all semantics).
    Dfa dfa;
    const int s0 = dfa.addState(0);
    const int s1 = dfa.addState(1);
    dfa.setEdge(s0, 0, s0);
    dfa.setEdge(s0, 1, s1);
    dfa.setEdge(s1, 0, s0);
    dfa.setEdge(s1, 1, s1);
    dfa.setStart(s0);

    CustomBranchPredictor custom;
    custom.addCustomEntry(0xA00, dfa);
    EXPECT_FALSE(custom.predict(0xA00));
    custom.update(0xB00, true); // different branch
    EXPECT_TRUE(custom.predict(0xA00));
    custom.update(0xC00, false);
    EXPECT_FALSE(custom.predict(0xA00));
}

TEST(CustomPredictorTest, AreaAddsPerEntry)
{
    LineFit line;
    line.slope = 2.0;
    line.intercept = 10.0;
    AreaCosts costs;
    CustomBranchPredictor custom({}, {}, line, costs);
    const double base = custom.area();
    custom.addCustomEntry(0x100, Dfa::constant(1)); // 1 state
    const CustomEntryConfig entry;
    const double expected = base + entry.tagBits * costs.camBit +
        entry.targetBits * costs.sramBit + (2.0 * 1 + 10.0);
    EXPECT_DOUBLE_EQ(custom.area(), expected);
}

TEST(SimulateTest, CountsMispredicts)
{
    // Always-not-taken BTB vs an all-taken toy trace.
    XScaleBtb btb;
    BranchTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.push_back({0x50, true});
    const BpredSimResult result = simulateBranchPredictor(btb, trace);
    EXPECT_EQ(result.branches, 10u);
    // First prediction misses (BTB empty), then the counter locks on.
    EXPECT_LT(result.mispredicts, 3u);
    EXPECT_GT(result.mispredicts, 0u);
}

TEST(SimulateTest, PerBranchBreakdown)
{
    XScaleBtb btb;
    BranchTrace trace;
    for (int i = 0; i < 50; ++i) {
        trace.push_back({0x50, true});
        trace.push_back({0x60, i % 2 == 0}); // alternating: hard
    }
    std::unordered_map<uint64_t, uint64_t> per_branch;
    simulateBranchPredictor(btb, trace, per_branch);
    EXPECT_GT(per_branch[0x60], per_branch[0x50]);
}

TEST(TrainerTest, ProfilesWorstBranchFirst)
{
    const BranchTrace trace =
        makeBranchTrace("vortex", WorkloadInput::Train, 30000);
    const auto ranked = profileBaselineMisses(trace);
    ASSERT_GE(ranked.size(), 2u);
    EXPECT_GE(ranked[0].second, ranked[1].second);
}

TEST(TrainerTest, TrainsRequestedCount)
{
    const BranchTrace trace =
        makeBranchTrace("ijpeg", WorkloadInput::Train, 30000);
    CustomTrainingOptions options;
    options.maxCustomBranches = 3;
    options.historyLength = 6;
    const auto trained = trainCustomPredictors(trace, options);
    ASSERT_EQ(trained.size(), 3u);
    for (const auto &branch : trained) {
        EXPECT_GT(branch.design.statesFinal, 0);
        EXPECT_GT(branch.baselineMisses, 0u);
    }
    EXPECT_GE(trained[0].baselineMisses, trained[1].baselineMisses);
}

TEST(TrainerTest, CustomFsmBeatsBaselineOnCorrelatedBranch)
{
    // End-to-end: on the vortex model (globally-correlated branches),
    // the customized architecture must cut the misprediction rate well
    // below the XScale baseline.
    const BranchTrace train =
        makeBranchTrace("vortex", WorkloadInput::Train, 40000);
    const BranchTrace test =
        makeBranchTrace("vortex", WorkloadInput::Test, 40000);

    CustomTrainingOptions options;
    options.maxCustomBranches = 8;
    const auto trained = trainCustomPredictors(train, options);

    XScaleBtb baseline;
    const double base_rate =
        simulateBranchPredictor(baseline, test).missRate();

    CustomBranchPredictor custom;
    for (const auto &branch : trained)
        custom.addCustomEntry(branch.pc, branch.design.fsm);
    const double custom_rate =
        simulateBranchPredictor(custom, test).missRate();

    EXPECT_LT(custom_rate, base_rate * 0.6)
        << "baseline " << base_rate << " custom " << custom_rate;
}

} // anonymous namespace
} // namespace autofsm
