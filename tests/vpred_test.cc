/**
 * @file
 * Tests for the value-prediction substrate: the two-delta stride
 * predictor, SUD/FSM confidence estimators and the combined simulation.
 */

#include <gtest/gtest.h>

#include "fsmgen/designer.hh"
#include "vpred/conf_sim.hh"
#include "vpred/confidence.hh"
#include "vpred/stride_predictor.hh"
#include "workloads/value_workloads.hh"

namespace autofsm
{
namespace
{

TEST(StridePredictorTest, AllocationIsNotAPrediction)
{
    TwoDeltaStridePredictor predictor;
    const StrideOutcome outcome = predictor.executeLoad(0x100, 42);
    EXPECT_FALSE(outcome.predicted);
    EXPECT_FALSE(outcome.correct);
}

TEST(StridePredictorTest, ConstantValueLocksOn)
{
    TwoDeltaStridePredictor predictor;
    predictor.executeLoad(0x100, 7);
    for (int i = 0; i < 5; ++i) {
        const StrideOutcome outcome = predictor.executeLoad(0x100, 7);
        EXPECT_TRUE(outcome.predicted);
        EXPECT_TRUE(outcome.correct);
    }
}

TEST(StridePredictorTest, TwoDeltaNeedsStrideTwice)
{
    TwoDeltaStridePredictor predictor;
    // Values 10, 14, 18, 22: stride 4 seen at 14 (once) and 18 (twice).
    predictor.executeLoad(0x100, 10);
    EXPECT_FALSE(predictor.executeLoad(0x100, 14).correct); // pred 10
    EXPECT_FALSE(predictor.executeLoad(0x100, 18).correct); // pred 14
    // Stride now adopted: next prediction is 18 + 4 = 22.
    EXPECT_TRUE(predictor.executeLoad(0x100, 22).correct);
    EXPECT_TRUE(predictor.executeLoad(0x100, 26).correct);
}

TEST(StridePredictorTest, TransientStrideDoesNotDisturb)
{
    TwoDeltaStridePredictor predictor;
    // Lock onto stride 0 (constant 5), then a one-off jump to 9 and
    // back: the two-delta filter keeps the stride at 0.
    for (uint64_t v : {5u, 5u, 5u, 5u})
        predictor.executeLoad(0x100, v);
    EXPECT_FALSE(predictor.executeLoad(0x100, 9).correct);
    // Prediction is 9 + 0 = 9 (stride still 0), actual 5: wrong.
    EXPECT_FALSE(predictor.executeLoad(0x100, 5).correct);
    // Back to constant 5: correct again.
    EXPECT_TRUE(predictor.executeLoad(0x100, 5).correct);
}

TEST(StridePredictorTest, CyclePatternIsPeriodicallyWrong)
{
    // The 5,5,5,9 cycle: correctness pattern (after warm-up) must be
    // exactly (1,1,0,0) repeating - the structure FsmConfidence learns.
    TwoDeltaStridePredictor predictor;
    std::vector<int> correctness;
    const uint64_t cycle[4] = {5, 5, 5, 9};
    for (int i = 0; i < 40; ++i) {
        const StrideOutcome outcome =
            predictor.executeLoad(0x200, cycle[i % 4]);
        if (i >= 8)
            correctness.push_back(outcome.correct);
    }
    // Phase: recording starts at a cycle boundary (i = 8), where the
    // two-delta predictor mispredicts the 9 and the 5 after it, then
    // hits the two repeated 5s: (0,1,1,0) from the recording origin.
    for (size_t i = 0; i < correctness.size(); ++i) {
        const int expected = (i % 4 == 1 || i % 4 == 2) ? 1 : 0;
        EXPECT_EQ(correctness[i], expected) << i;
    }
}

TEST(StridePredictorTest, TagConflictReallocates)
{
    StrideConfig config;
    config.entries = 4;
    TwoDeltaStridePredictor predictor(config);
    const uint64_t pc_a = 0x100;
    const uint64_t pc_b = pc_a + 4 * 4; // same index, different tag
    predictor.executeLoad(pc_a, 7);
    predictor.executeLoad(pc_a, 7);
    EXPECT_TRUE(predictor.executeLoad(pc_a, 7).correct);
    // Conflicting load evicts.
    EXPECT_FALSE(predictor.executeLoad(pc_b, 3).predicted);
    EXPECT_FALSE(predictor.executeLoad(pc_a, 7).predicted);
}

TEST(SudConfidenceTest, PerEntryIndependence)
{
    SudConfidence confidence(4, SudConfig{3, 1, 1, 2});
    confidence.update(0, true);
    confidence.update(0, true);
    EXPECT_TRUE(confidence.confident(0));
    EXPECT_FALSE(confidence.confident(1));
}

TEST(FsmConfidenceTest, SharedTablePerEntryState)
{
    // Machine: confident iff last outcome was correct.
    Dfa dfa;
    const int s0 = dfa.addState(0);
    const int s1 = dfa.addState(1);
    dfa.setEdge(s0, 0, s0);
    dfa.setEdge(s0, 1, s1);
    dfa.setEdge(s1, 0, s0);
    dfa.setEdge(s1, 1, s1);
    dfa.setStart(s0);

    FsmConfidence confidence(3, dfa, "last-correct");
    confidence.update(1, true);
    EXPECT_FALSE(confidence.confident(0));
    EXPECT_TRUE(confidence.confident(1));
    EXPECT_EQ(confidence.numStates(), 2);
    EXPECT_EQ(confidence.name(), "last-correct");
}

TEST(ConfSimTest, AccuracyAndCoverageDefinitions)
{
    ConfidenceResult result;
    result.loads = 100;
    result.correct = 50;
    result.confident = 25;
    result.confidentCorrect = 20;
    EXPECT_DOUBLE_EQ(result.accuracy(), 0.8);
    EXPECT_DOUBLE_EQ(result.coverage(), 0.4);

    ConfidenceResult empty;
    EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(empty.coverage(), 0.0);
}

TEST(ConfSimTest, AlwaysConfidentHasFullCoverage)
{
    /// Degenerate estimator: always confident.
    class AlwaysConfident : public ConfidenceEstimator
    {
      public:
        bool confident(size_t) const override { return true; }
        void update(size_t, bool) override {}
        std::string name() const override { return "always"; }
    };

    const ValueTrace trace = makeValueTrace("groff", 5000);
    AlwaysConfident estimator;
    const ConfidenceResult result =
        simulateConfidence(trace, StrideConfig{}, estimator);
    EXPECT_EQ(result.confident, result.loads);
    EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
    // Accuracy equals the raw value-predictor hit rate.
    EXPECT_NEAR(result.accuracy(),
                static_cast<double>(result.correct) /
                    static_cast<double>(result.loads),
                1e-12);
}

TEST(ConfSimTest, SudTradeoffMovesWithThreshold)
{
    const ValueTrace trace = makeValueTrace("gcc", 30000);
    SudConfidence loose(2048, SudConfig{10, 1, 1, 2});
    SudConfidence strict(2048, SudConfig{10, 1, 10, 9});
    const ConfidenceResult loose_r =
        simulateConfidence(trace, StrideConfig{}, loose);
    const ConfidenceResult strict_r =
        simulateConfidence(trace, StrideConfig{}, strict);
    EXPECT_GT(strict_r.accuracy(), loose_r.accuracy());
    EXPECT_LT(strict_r.coverage(), loose_r.coverage());
}

TEST(ConfSimTest, FsmLearnsCyclePatternConfidence)
{
    // Train on the (1,1,0,0) correctness cycle, then verify the FSM
    // confidence achieves near-perfect accuracy AND coverage, which no
    // SUD counter can do on this stream.
    ValueTrace trace;
    const uint64_t cycle[4] = {5, 5, 5, 9};
    for (int i = 0; i < 20000; ++i)
        trace.push_back({0x300, cycle[i % 4]});

    MarkovModel model(4);
    collectConfidenceModels(trace, StrideConfig{}, {&model});

    FsmDesignOptions design;
    design.order = 4;
    design.patterns.threshold = 0.9;
    const FsmDesignResult designed = designFsm(model, design);

    FsmConfidence fsm(2048, designed.fsm);
    const ConfidenceResult fsm_r =
        simulateConfidence(trace, StrideConfig{}, fsm);
    EXPECT_GT(fsm_r.accuracy(), 0.98);
    EXPECT_GT(fsm_r.coverage(), 0.90);

    // Best-effort SUD comparison: every configuration leaves coverage
    // or accuracy far below the FSM on this stream.
    bool sud_matches = false;
    for (int max : {3, 10, 20}) {
        for (int threshold : {1, max / 2, max - 1}) {
            if (threshold < 1)
                continue;
            SudConfidence sud(2048, SudConfig{max, 1, 1, threshold});
            const ConfidenceResult r =
                simulateConfidence(trace, StrideConfig{}, sud);
            if (r.accuracy() > 0.98 && r.coverage() > 0.90)
                sud_matches = true;
        }
    }
    EXPECT_FALSE(sud_matches);
}

TEST(ConfSimTest, CollectModelsMatchesRuntimeView)
{
    // The Markov model built by collectConfidenceModels must reflect
    // the deterministic (1,1,0,0) correctness cycle.
    ValueTrace trace;
    const uint64_t cycle[4] = {5, 5, 5, 9};
    for (int i = 0; i < 4000; ++i)
        trace.push_back({0x300, cycle[i % 4]});

    MarkovModel model(2);
    collectConfidenceModels(trace, StrideConfig{}, {&model});

    // After (correct=1, correct=1) the next is wrong; history "11"->0.
    EXPECT_LT(model.probabilityOne(fromBinary("11")), 0.05);
    // After (wrong, wrong) the next is correct; history "00"->1.
    EXPECT_GT(model.probabilityOne(fromBinary("00")), 0.95);
}

} // anonymous namespace
} // namespace autofsm
