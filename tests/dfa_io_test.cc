/**
 * @file
 * Tests for DFA serialization and additional automata invariants
 * (idempotence of the optimization passes, equivalence properties).
 */

#include <gtest/gtest.h>

#include "automata/dfa.hh"
#include "automata/dfa_io.hh"
#include "automata/nfa.hh"
#include "automata/regex.hh"
#include "support/rng.hh"

namespace autofsm
{
namespace
{

Dfa
randomMachine(uint64_t seed, int max_states = 24)
{
    Rng rng(seed);
    const int n = 2 + static_cast<int>(rng.below(
        static_cast<uint64_t>(max_states - 1)));
    Dfa dfa;
    for (int s = 0; s < n; ++s)
        dfa.addState(static_cast<int>(rng.below(2)));
    for (int s = 0; s < n; ++s) {
        dfa.setEdge(s, 0,
                    static_cast<int>(rng.below(static_cast<uint64_t>(n))));
        dfa.setEdge(s, 1,
                    static_cast<int>(rng.below(static_cast<uint64_t>(n))));
    }
    dfa.setStart(static_cast<int>(rng.below(static_cast<uint64_t>(n))));
    return dfa;
}

TEST(DfaIoTest, RoundTripPreservesStructure)
{
    const Dfa original = randomMachine(11);
    const Dfa parsed = dfaFromText(dfaToText(original));
    ASSERT_EQ(parsed.numStates(), original.numStates());
    EXPECT_EQ(parsed.start(), original.start());
    for (int s = 0; s < original.numStates(); ++s) {
        EXPECT_EQ(parsed.output(s), original.output(s));
        EXPECT_EQ(parsed.next(s, 0), original.next(s, 0));
        EXPECT_EQ(parsed.next(s, 1), original.next(s, 1));
    }
}

class DfaIoPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DfaIoPropertyTest, RoundTripIsBehaviorallyEquivalent)
{
    const Dfa original =
        randomMachine(static_cast<uint64_t>(GetParam()) * 31 + 7);
    const Dfa parsed = dfaFromText(dfaToText(original));
    EXPECT_TRUE(original.equivalent(parsed));
}

INSTANTIATE_TEST_SUITE_P(RandomMachines, DfaIoPropertyTest,
                         ::testing::Range(0, 12));

TEST(DfaIoTest, RejectsMalformedInput)
{
    EXPECT_THROW(dfaFromText(""), std::invalid_argument);
    EXPECT_THROW(dfaFromText("nope 1 0\n1 0 0\n"), std::invalid_argument);
    EXPECT_THROW(dfaFromText("fsm 0 0\n"), std::invalid_argument);
    EXPECT_THROW(dfaFromText("fsm 2 5\n0 0 0\n0 0 0\n"),
                 std::invalid_argument);
    EXPECT_THROW(dfaFromText("fsm 2 0\n0 0 0\n"), std::invalid_argument);
    EXPECT_THROW(dfaFromText("fsm 1 0\n2 0 0\n"), std::invalid_argument);
    EXPECT_THROW(dfaFromText("fsm 1 0\n0 0 9\n"), std::invalid_argument);
}

TEST(DfaIoTest, TextFormatIsStable)
{
    const Dfa one = Dfa::constant(1);
    EXPECT_EQ(dfaToText(one), "fsm 1 0\n1 0 0\n");
}

TEST(AutomataInvariantTest, HopcroftIsIdempotent)
{
    for (int seed = 0; seed < 8; ++seed) {
        const Dfa machine = randomMachine(static_cast<uint64_t>(seed));
        const Dfa once = machine.minimizeHopcroft();
        const Dfa twice = once.minimizeHopcroft();
        EXPECT_EQ(once.numStates(), twice.numStates()) << seed;
        EXPECT_TRUE(once.equivalent(twice)) << seed;
    }
}

TEST(AutomataInvariantTest, SteadyStateReduceIsIdempotent)
{
    for (int seed = 0; seed < 8; ++seed) {
        const Dfa machine =
            randomMachine(static_cast<uint64_t>(seed) + 100);
        const Dfa once = machine.steadyStateReduce();
        const Dfa twice = once.steadyStateReduce();
        EXPECT_EQ(once.numStates(), twice.numStates()) << seed;
    }
}

TEST(AutomataInvariantTest, MinimalMachineIsUnique)
{
    // Two different constructions of the same suffix language minimize
    // to machines of identical size.
    Cover a(2), b(2);
    a.add(Cube::fromPattern("x1"));
    a.add(Cube::fromPattern("1x"));
    // Same function, expressed redundantly.
    b.add(Cube::fromPattern("x1"));
    b.add(Cube::fromPattern("1x"));
    b.add(Cube::fromPattern("11"));

    const Dfa ma = Dfa::fromNfa(Nfa::fromRegex(regexFromCover(a)))
                       .minimizeHopcroft();
    const Dfa mb = Dfa::fromNfa(Nfa::fromRegex(regexFromCover(b)))
                       .minimizeHopcroft();
    EXPECT_EQ(ma.numStates(), mb.numStates());
    EXPECT_TRUE(ma.equivalent(mb));
}

TEST(AutomataInvariantTest, EquivalenceIsReflexiveAndSymmetric)
{
    const Dfa a = randomMachine(3);
    const Dfa b = randomMachine(4);
    EXPECT_TRUE(a.equivalent(a));
    EXPECT_EQ(a.equivalent(b), b.equivalent(a));
}

} // anonymous namespace
} // namespace autofsm
