/**
 * @file
 * Integration tests of the experiment drivers (Figures 2, 4, 5) on
 * reduced problem sizes: structural invariants, paper-shape assertions
 * and reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bpred/custom.hh"
#include "bpred/simulate.hh"
#include "sim/figure2.hh"
#include "sim/figure4.hh"
#include "sim/figure5.hh"
#include "sim/report.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{
namespace
{

Fig5Options
smallFig5()
{
    Fig5Options options;
    options.branchesPerRun = 30000;
    options.gshareLog2 = {8, 12};
    options.lgcLog2 = {8, 12};
    options.training.maxCustomBranches = 4;
    return options;
}

TEST(Figure5Test, SeriesAreWellFormed)
{
    const Fig5Benchmark result = runFigure5("ijpeg", smallFig5());
    EXPECT_EQ(result.name, "ijpeg");
    EXPECT_GT(result.xscale.area, 0.0);
    EXPECT_EQ(result.gshare.points.size(), 2u);
    EXPECT_EQ(result.lgc.points.size(), 2u);
    EXPECT_EQ(result.customSame.points.size(), result.trained.size());
    EXPECT_EQ(result.customDiff.points.size(), result.trained.size());

    // Area grows monotonically along each curve.
    for (size_t i = 1; i < result.customDiff.points.size(); ++i) {
        EXPECT_GT(result.customDiff.points[i].area,
                  result.customDiff.points[i - 1].area);
    }
    EXPECT_LT(result.gshare.points[0].area, result.gshare.points[1].area);

    // Custom mispredictions essentially never increase as machines are
    // added on the training input (each FSM replaces a counter that
    // mispredicted more; a tiny warm-up slack is allowed).
    for (size_t i = 1; i < result.customSame.points.size(); ++i) {
        EXPECT_LE(result.customSame.points[i].missRate,
                  result.customSame.points[i - 1].missRate + 2e-3);
    }
}

TEST(Figure5Test, CustomBeatsBaselineOnCorrelatedBenchmarks)
{
    for (const char *name : {"ijpeg", "vortex", "gsm"}) {
        const Fig5Benchmark result = runFigure5(name, smallFig5());
        ASSERT_FALSE(result.customDiff.points.empty());
        const double custom_best = result.customDiff.points.back().missRate;
        EXPECT_LT(custom_best, result.xscale.missRate * 0.75) << name;
    }
}

TEST(Figure5Test, CustomDiffTracksCustomSame)
{
    // Section 7.5: "little to no difference between custom-diff and
    // custom-same" - the models capture input-independent behavior.
    const Fig5Benchmark result = runFigure5("vortex", smallFig5());
    ASSERT_FALSE(result.customDiff.points.empty());
    const double same = result.customSame.points.back().missRate;
    const double diff = result.customDiff.points.back().missRate;
    EXPECT_NEAR(same, diff, 0.02);
}

TEST(Figure5Test, CurveMatchesDirectCustomSimulation)
{
    // The one-pass curve evaluation must equal simulating the actual
    // CustomBranchPredictor architecture with k entries.
    Fig5Options options = smallFig5();
    options.training.maxCustomBranches = 3;
    const Fig5Benchmark result = runFigure5("gsm", options);
    const BranchTrace test = makeBranchTrace(
        "gsm", WorkloadInput::Test, options.branchesPerRun);

    for (size_t k = 1; k <= result.trained.size(); ++k) {
        CustomBranchPredictor custom(options.training.baseline);
        for (size_t i = 0; i < k; ++i) {
            custom.addCustomEntry(result.trained[i].pc,
                                  result.trained[i].design.fsm);
        }
        const BpredSimResult direct =
            simulateBranchPredictor(custom, test);
        EXPECT_NEAR(direct.missRate(),
                    result.customDiff.points[k - 1].missRate, 1e-12)
            << "k=" << k;
    }
}

TEST(Figure4Test, SamplesAndFit)
{
    Fig4Options options;
    options.branchesPerRun = 20000;
    options.fsmsPerBenchmark = 3;
    const Fig4Result result = runFigure4(options);
    // 6 benchmarks x up to 3 machines (some benchmarks have fewer
    // mispredicting branches).
    EXPECT_GE(result.samples.size(), 12u);
    EXPECT_LE(result.samples.size(), 18u);
    for (const auto &sample : result.samples) {
        EXPECT_GT(sample.states, 0);
        EXPECT_GT(sample.area, 0.0);
    }
    // The Figure 4 claim: a meaningful positive linear trend.
    EXPECT_GT(result.fit.slope, 0.0);
    EXPECT_GT(result.fit.r2, 0.3);
}

TEST(Figure4Test, SampleFractionSubsamples)
{
    Fig4Options all;
    all.branchesPerRun = 15000;
    all.fsmsPerBenchmark = 3;
    Fig4Options some = all;
    some.sampleFraction = 0.3;
    const size_t full = runFigure4(all).samples.size();
    const size_t part = runFigure4(some).samples.size();
    EXPECT_LT(part, full);
}

TEST(Figure4Test, ZeroSampleFractionAdmitsNothing)
{
    // Regression: the sampling draw compared with <=, which let a
    // uniform() draw of exactly 0.0 through a 0.0 fraction. uniform()
    // is in [0, 1), so a fraction of 0.0 must admit no machine.
    Fig4Options options;
    options.branchesPerRun = 10000;
    options.fsmsPerBenchmark = 2;
    options.sampleFraction = 0.0;
    EXPECT_TRUE(runFigure4(options).samples.empty());
}

TEST(Figure2Test, StructureAndCrossTraining)
{
    Fig2Options options;
    options.loadsPerBenchmark = 20000;
    options.histories = {2, 4};
    options.thresholds = {0.5, 0.8};
    options.sudMax = {5};
    options.sudDecrement = {1, -1};
    options.sudThresholdFrac = {0.5, 0.9};

    const Fig2Benchmark result = runFigure2("groff", options);
    EXPECT_EQ(result.name, "groff");
    EXPECT_EQ(result.sudPoints.size(), 4u);
    ASSERT_EQ(result.fsmCurves.size(), 2u);
    EXPECT_EQ(result.fsmCurves[0].label, "custom w/ hist=2");
    for (const auto &series : result.fsmCurves) {
        EXPECT_EQ(series.points.size(), 2u);
        for (const auto &point : series.points) {
            EXPECT_GE(point.accuracy, 0.0);
            EXPECT_LE(point.accuracy, 1.0);
            EXPECT_GE(point.coverage, 0.0);
            EXPECT_LE(point.coverage, 1.0);
        }
    }
}

TEST(Figure2Test, ThresholdTradesCoverageForAccuracy)
{
    Fig2Options options;
    options.loadsPerBenchmark = 30000;
    options.histories = {6};
    options.thresholds = {0.5, 0.9};
    options.sudMax = {5};
    options.sudDecrement = {1};
    options.sudThresholdFrac = {0.5};

    const Fig2Benchmark result = runFigure2("gcc", options);
    const auto &points = result.fsmCurves[0].points;
    ASSERT_EQ(points.size(), 2u);
    // Stricter threshold: accuracy must not drop, coverage must not rise.
    EXPECT_GE(points[1].accuracy + 1e-9, points[0].accuracy);
    EXPECT_LE(points[1].coverage, points[0].coverage + 1e-9);
}

TEST(ReportTest, PrintersEmitSeries)
{
    Fig5Options options = smallFig5();
    options.training.maxCustomBranches = 2;
    const Fig5Benchmark fig5 = runFigure5("g721", options);
    std::ostringstream out5;
    printFig5(out5, fig5);
    EXPECT_NE(out5.str().find("xscale"), std::string::npos);
    EXPECT_NE(out5.str().find("custom-diff"), std::string::npos);
    EXPECT_NE(out5.str().find("g721"), std::string::npos);

    Fig4Options fig4_options;
    fig4_options.branchesPerRun = 10000;
    fig4_options.fsmsPerBenchmark = 1;
    std::ostringstream out4;
    printFig4(out4, runFigure4(fig4_options));
    EXPECT_NE(out4.str().find("linear fit"), std::string::npos);

    Fig2Options fig2_options;
    fig2_options.loadsPerBenchmark = 10000;
    fig2_options.histories = {2};
    fig2_options.thresholds = {0.5};
    fig2_options.sudMax = {5};
    fig2_options.sudDecrement = {1};
    fig2_options.sudThresholdFrac = {0.5};
    std::ostringstream out2;
    printFig2(out2, runFigure2("perl", fig2_options));
    EXPECT_NE(out2.str().find("Figure 2"), std::string::npos);
    EXPECT_NE(out2.str().find("custom w/ hist=2"), std::string::npos);
    EXPECT_NE(out2.str().find("accuracy"), std::string::npos);
}

} // anonymous namespace
} // namespace autofsm
