/**
 * @file
 * Tests for the alternative value predictors (last-value, FCM) and the
 * generalized confidence simulation over the common interface.
 */

#include <gtest/gtest.h>

#include "vpred/conf_sim.hh"
#include "vpred/context_predictor.hh"
#include "vpred/hybrid_predictor.hh"
#include "vpred/last_value.hh"
#include "vpred/stride_predictor.hh"
#include "workloads/value_workloads.hh"

namespace autofsm
{
namespace
{

TEST(LastValueTest, ConstantStreamLocksAfterAllocation)
{
    LastValuePredictor predictor;
    EXPECT_FALSE(predictor.executeLoad(0x100, 7).predicted);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(predictor.executeLoad(0x100, 7).correct);
}

TEST(LastValueTest, StrideStreamAlwaysMisses)
{
    LastValuePredictor predictor;
    predictor.executeLoad(0x100, 0);
    for (uint64_t v = 8; v < 80; v += 8)
        EXPECT_FALSE(predictor.executeLoad(0x100, v).correct);
}

TEST(LastValueTest, InterfaceBasics)
{
    LastValuePredictor predictor;
    EXPECT_EQ(predictor.entries(), 2048u);
    EXPECT_EQ(predictor.name(), "last-value2048");
    EXPECT_LT(predictor.indexOf(0xABCD), predictor.entries());
}

TEST(FcmTest, LearnsRepeatingNonArithmeticCycle)
{
    // The cycle 3,1,4,1,5 defeats stride prediction but is a pure
    // order-2 context pattern... except context (1) is ambiguous; use
    // order 2: contexts (3,1)->4, (1,4)->1, (4,1)->5, (1,5)->3, (5,3)->1
    // are all distinct.
    FcmPredictor fcm(FcmConfig{{2048, 16}, 16, 2});
    TwoDeltaStridePredictor stride;
    const uint64_t cycle[5] = {3, 1, 4, 1, 5};
    uint64_t fcm_correct = 0, stride_correct = 0, total = 0;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t value = cycle[i % 5];
        const bool fc = fcm.executeLoad(0x200, value).correct;
        const bool sc = stride.executeLoad(0x200, value).correct;
        if (i > 20) {
            ++total;
            fcm_correct += fc;
            stride_correct += sc;
        }
    }
    EXPECT_GT(static_cast<double>(fcm_correct) / total, 0.99);
    // The stride predictor catches the repeated -2 stride at the cycle
    // wrap (2 of 5 positions) but no more.
    EXPECT_LT(static_cast<double>(stride_correct) / total, 0.45);
}

TEST(FcmTest, ColdContextDoesNotPredict)
{
    FcmPredictor fcm;
    EXPECT_FALSE(fcm.executeLoad(0x100, 1).predicted); // allocation
    EXPECT_FALSE(fcm.executeLoad(0x100, 2).predicted); // warming (o=2)
}

TEST(FcmTest, NameAndEntries)
{
    FcmPredictor fcm(FcmConfig{{1024, 16}, 14, 3});
    EXPECT_EQ(fcm.name(), "fcm-o3-2^14");
    EXPECT_EQ(fcm.entries(), 1024u);
}

TEST(FcmTest, StridePredictorBeatsFcmOnStrides)
{
    FcmPredictor fcm;
    TwoDeltaStridePredictor stride;
    uint64_t fcm_correct = 0, stride_correct = 0, total = 0;
    for (uint64_t i = 0; i < 3000; ++i) {
        const uint64_t value = 1000 + i * 24; // never repeats
        const bool fc = fcm.executeLoad(0x300, value).correct;
        const bool sc = stride.executeLoad(0x300, value).correct;
        if (i > 10) {
            ++total;
            fcm_correct += fc;
            stride_correct += sc;
        }
    }
    EXPECT_EQ(stride_correct, total);
    EXPECT_LT(fcm_correct, total / 10);
}

TEST(HybridTest, TracksBetterComponentPerLoad)
{
    // Load A is strided (stride wins); load B cycles non-arithmetically
    // (FCM wins). The hybrid must approach the better component on each.
    HybridPredictor hybrid;
    const uint64_t cycle[5] = {3, 1, 4, 1, 5};
    uint64_t a_correct = 0, b_correct = 0, total = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool ac =
            hybrid.executeLoad(0x100, 1000 + static_cast<uint64_t>(i) * 8)
                .correct;
        const bool bc = hybrid.executeLoad(0x200, cycle[i % 5]).correct;
        if (i > 100) {
            ++total;
            a_correct += ac;
            b_correct += bc;
        }
    }
    EXPECT_GT(static_cast<double>(a_correct) / total, 0.99);
    EXPECT_GT(static_cast<double>(b_correct) / total, 0.95);
    EXPECT_GT(hybrid.fcmShare(), 0.0);
}

TEST(HybridTest, AtLeastAsGoodAsComponentsOnSuite)
{
    for (const std::string &name : valueBenchmarkNames()) {
        const ValueTrace trace = makeValueTrace(name, 40000);
        HybridPredictor hybrid;
        TwoDeltaStridePredictor stride;
        FcmPredictor fcm;
        uint64_t h = 0, s = 0, f = 0;
        for (const auto &record : trace) {
            h += hybrid.executeLoad(record.pc, record.value).correct;
            s += stride.executeLoad(record.pc, record.value).correct;
            f += fcm.executeLoad(record.pc, record.value).correct;
        }
        // The chooser needs disagreement samples to learn; allow a
        // small shortfall versus the best single component.
        EXPECT_GE(h, std::max(s, f) * 95 / 100) << name;
    }
}

TEST(HybridTest, InterfaceBasics)
{
    HybridPredictor hybrid;
    EXPECT_EQ(hybrid.entries(), 2048u);
    EXPECT_NE(hybrid.name().find("hybrid("), std::string::npos);
    EXPECT_LT(hybrid.indexOf(0x777), hybrid.entries());
}

TEST(GeneralizedConfSimTest, WorksWithAnyPredictor)
{
    const ValueTrace trace = makeValueTrace("groff", 20000);

    LastValuePredictor last_value;
    SudConfidence estimator(last_value.entries(), SudConfig::twoBit());
    const ConfidenceResult r =
        simulateConfidence(trace, last_value, estimator);
    EXPECT_EQ(r.loads, trace.size());
    EXPECT_GT(r.correct, 0u);
    EXPECT_LE(r.confidentCorrect, r.confident);
    EXPECT_LE(r.confidentCorrect, r.correct);
}

TEST(GeneralizedConfSimTest, ModelsCollectOverFcm)
{
    const ValueTrace trace = makeValueTrace("li", 20000);
    FcmPredictor fcm;
    MarkovModel model(4);
    collectConfidenceModels(trace, fcm, {&model});
    EXPECT_GT(model.totalObservations(), 0u);
}

TEST(GeneralizedConfSimTest, OverloadMatchesExplicitStride)
{
    const ValueTrace trace = makeValueTrace("gcc", 15000);
    StrideConfig config;

    SudConfidence a(static_cast<size_t>(config.entries),
                    SudConfig::twoBit());
    const ConfidenceResult via_config =
        simulateConfidence(trace, config, a);

    TwoDeltaStridePredictor predictor(config);
    SudConfidence b(static_cast<size_t>(config.entries),
                    SudConfig::twoBit());
    const ConfidenceResult via_interface =
        simulateConfidence(trace, predictor, b);

    EXPECT_EQ(via_config.correct, via_interface.correct);
    EXPECT_EQ(via_config.confident, via_interface.confident);
    EXPECT_EQ(via_config.confidentCorrect,
              via_interface.confidentCorrect);
}

} // anonymous namespace
} // namespace autofsm
