/**
 * @file
 * Tests for the trace substrate: binary trace I/O and SimPoint-style
 * representative-interval selection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "support/rng.hh"
#include "trace/simpoint.hh"
#include "trace/trace_io.hh"
#include "workloads/branch_workloads.hh"
#include "workloads/value_workloads.hh"

namespace autofsm
{
namespace
{

TEST(TraceIoTest, BranchRoundTripThroughStream)
{
    const BranchTrace original =
        makeBranchTrace("gsm", WorkloadInput::Train, 3000);
    std::stringstream buffer;
    writeBranchTrace(buffer, original);
    const BranchTrace loaded = readBranchTrace(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].taken, original[i].taken);
    }
}

TEST(TraceIoTest, ValueRoundTripThroughStream)
{
    const ValueTrace original = makeValueTrace("li", 3000);
    std::stringstream buffer;
    writeValueTrace(buffer, original);
    const ValueTrace loaded = readValueTrace(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc);
        EXPECT_EQ(loaded[i].value, original[i].value);
    }
}

TEST(TraceIoTest, EmptyTraceRoundTrips)
{
    std::stringstream buffer;
    writeBranchTrace(buffer, {});
    EXPECT_TRUE(readBranchTrace(buffer).empty());
}

TEST(TraceIoTest, RejectsBadMagicAndWrongKind)
{
    std::stringstream garbage("not a trace at all, sorry");
    EXPECT_THROW(readBranchTrace(garbage), std::invalid_argument);

    std::stringstream wrong_kind;
    writeValueTrace(wrong_kind, {});
    EXPECT_THROW(readBranchTrace(wrong_kind), std::invalid_argument);
}

TEST(TraceIoTest, RejectsTruncatedBody)
{
    std::stringstream buffer;
    BranchTrace trace = {{0x100, true}, {0x200, false}};
    writeBranchTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - 5); // chop mid-record
    std::stringstream chopped(bytes);
    EXPECT_THROW(readBranchTrace(chopped), std::invalid_argument);
}

TEST(TraceIoTest, RejectsBadOutcomeByte)
{
    std::stringstream buffer;
    BranchTrace trace = {{0x100, true}, {0x200, false}};
    writeBranchTrace(buffer, trace);
    std::string bytes = buffer.str();
    // Record layout after the 16-byte header: 8-byte pc, 1 outcome
    // byte. Corrupt the first record's outcome to a non-boolean value.
    ASSERT_GT(bytes.size(), 24u);
    bytes[24] = '\x07';
    std::stringstream corrupt(bytes);
    EXPECT_THROW(readBranchTrace(corrupt), std::invalid_argument);
    try {
        std::stringstream again(bytes);
        readBranchTrace(again);
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("outcome"),
                  std::string::npos);
    }
}

TEST(TraceIoTest, RejectsImplausibleRecordCount)
{
    std::stringstream buffer;
    writeBranchTrace(buffer, {});
    std::string bytes = buffer.str();
    // Overwrite the 8-byte record count (header bytes 8..15) with an
    // absurd value; the reader must refuse before reserving memory.
    ASSERT_GE(bytes.size(), 16u);
    for (size_t i = 8; i < 16; ++i)
        bytes[i] = '\xff';
    std::stringstream corrupt(bytes);
    try {
        readBranchTrace(corrupt);
        FAIL() << "expected rejection";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("implausible"),
                  std::string::npos);
    }
}

TEST(TraceIoTest, RejectsTruncatedValueTrace)
{
    std::stringstream buffer;
    const ValueTrace trace = {{0x100, 42}, {0x200, 43}};
    writeValueTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - 3); // chop mid-record
    std::stringstream chopped(bytes);
    EXPECT_THROW(readValueTrace(chopped), std::invalid_argument);
}

TEST(TraceIoTest, FileRoundTrip)
{
    const std::string path = "/tmp/autofsm_trace_io_test.bin";
    const BranchTrace original =
        makeBranchTrace("gs", WorkloadInput::Test, 1000);
    saveBranchTrace(path, original);
    const BranchTrace loaded = loadBranchTrace(path);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(loadBranchTrace("/nonexistent/nope.bin"),
                 std::invalid_argument);
}

/** A two-phase trace: phase A (branch X alternating), phase B (branch Y
 *  always taken). */
BranchTrace
twoPhaseTrace(size_t per_phase)
{
    BranchTrace trace;
    for (size_t i = 0; i < per_phase; ++i)
        trace.push_back({0xAAA0, i % 2 == 0});
    for (size_t i = 0; i < per_phase; ++i)
        trace.push_back({0xBBB0, true});
    return trace;
}

TEST(SimPointTest, TwoPhasesYieldTwoClusters)
{
    const BranchTrace trace = twoPhaseTrace(20000);
    SimPointOptions options;
    options.intervalSize = 1000;
    options.clusters = 2;
    const std::vector<SimPoint> points = selectSimPoints(trace, options);
    ASSERT_EQ(points.size(), 2u);

    // One representative from each half, with equal weights.
    EXPECT_LT(points[0].interval, 20u);
    EXPECT_GE(points[1].interval, 20u);
    EXPECT_NEAR(points[0].weight, 0.5, 1e-9);
    EXPECT_NEAR(points[1].weight, 0.5, 1e-9);
}

TEST(SimPointTest, WeightsSumToOne)
{
    const BranchTrace trace =
        makeBranchTrace("compress", WorkloadInput::Train, 50000);
    SimPointOptions options;
    options.intervalSize = 2000;
    options.clusters = 5;
    const auto points = selectSimPoints(trace, options);
    ASSERT_FALSE(points.empty());
    double sum = 0.0;
    for (const auto &point : points)
        sum += point.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SimPointTest, SampleTraceConcatenatesIntervals)
{
    const BranchTrace trace = twoPhaseTrace(10000);
    SimPointOptions options;
    options.intervalSize = 500;
    options.clusters = 2;
    const auto points = selectSimPoints(trace, options);
    const BranchTrace sampled =
        sampleTrace(trace, points, options.intervalSize);
    EXPECT_EQ(sampled.size(), points.size() * options.intervalSize);
    // The sample contains both phases' branches.
    const BranchProfile profile = profileTrace(sampled);
    EXPECT_EQ(profile.size(), 2u);
}

TEST(SimPointTest, DeterministicAcrossRuns)
{
    const BranchTrace trace =
        makeBranchTrace("ijpeg", WorkloadInput::Train, 30000);
    SimPointOptions options;
    options.intervalSize = 1500;
    options.clusters = 3;
    const auto a = selectSimPoints(trace, options);
    const auto b = selectSimPoints(trace, options);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].interval, b[i].interval);
        EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
}

TEST(SimPointTest, TinyTraceHandled)
{
    SimPointOptions options;
    options.intervalSize = 1000;
    EXPECT_TRUE(selectSimPoints({}, options).empty());
    // Trace shorter than one interval: no intervals, no points.
    EXPECT_TRUE(selectSimPoints(twoPhaseTrace(100), options).empty());
}

TEST(SimPointTest, SampledTrainingPreservesFsmQuality)
{
    // Methodology check: training custom FSMs on the SimPoint sample
    // yields nearly the accuracy of training on the full trace.
    const BranchTrace full =
        makeBranchTrace("vortex", WorkloadInput::Train, 60000);
    SimPointOptions options;
    options.intervalSize = 3000;
    options.clusters = 4;
    const BranchTrace sampled =
        sampleTrace(full, selectSimPoints(full, options),
                    options.intervalSize);
    ASSERT_LT(sampled.size(), full.size() / 2);

    // The sampled trace must cover the same static branches.
    EXPECT_EQ(profileTrace(sampled).size(), profileTrace(full).size());
}

} // anonymous namespace
} // namespace autofsm
