/**
 * @file
 * Tests for the cache substrate: LRU set-associative cache semantics,
 * reuse feedback, bypass predictors and the end-to-end bypass flow.
 */

#include <gtest/gtest.h>

#include "cache/bypass.hh"
#include "cache/cache.hh"
#include "fsmgen/designer.hh"
#include "workloads/memory_workloads.hh"

namespace autofsm
{
namespace
{

CacheConfig
tinyCache()
{
    CacheConfig config;
    config.sets = 2;
    config.ways = 2;
    config.blockBytes = 32;
    return config;
}

TEST(CacheTest, ColdMissThenHit)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1, 0x1000).hit);
    EXPECT_TRUE(cache.access(0x1, 0x1000).hit);
    // Same block, different byte offset: still a hit.
    EXPECT_TRUE(cache.access(0x1, 0x101f).hit);
    // Next block: miss.
    EXPECT_FALSE(cache.access(0x1, 0x1020).hit);
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheTest, LruEvictsOldest)
{
    SetAssocCache cache(tinyCache());
    // Three blocks mapping to set 0 (addresses differing in bit 7+).
    const uint64_t a = 0x0000, b = 0x0100, c = 0x0200;
    cache.access(0x1, a);
    cache.access(0x1, b);
    cache.access(0x1, a); // refresh a: b is now LRU
    const CacheAccessResult r = cache.access(0x1, c);
    EXPECT_TRUE(r.evicted);
    EXPECT_TRUE(cache.access(0x1, a).hit);  // a survived
    EXPECT_FALSE(cache.access(0x1, b).hit); // b was evicted
}

TEST(CacheTest, EvictionReportsFillPcAndReuse)
{
    SetAssocCache cache(tinyCache());
    const uint64_t a = 0x0000, b = 0x0100, c = 0x0200;
    cache.access(0xAA, a);
    cache.access(0xBB, b);
    cache.access(0xAA, a); // reuse a
    // c evicts b (LRU), which was never reused.
    const CacheAccessResult r1 = cache.access(0xCC, c);
    EXPECT_TRUE(r1.evicted);
    EXPECT_EQ(r1.victimFillPc, 0xBBu);
    EXPECT_FALSE(r1.victimWasReused);
    // A fourth block now evicts a (c is newer), which WAS reused.
    const CacheAccessResult r2 = cache.access(0xDD, 0x0300);
    EXPECT_TRUE(r2.evicted);
    EXPECT_EQ(r2.victimFillPc, 0xAAu);
    EXPECT_TRUE(r2.victimWasReused);
}

TEST(CacheTest, FirstReuseReportedOnce)
{
    SetAssocCache cache(tinyCache());
    cache.access(0xAA, 0x0000);
    const CacheAccessResult first = cache.access(0xAA, 0x0000);
    EXPECT_TRUE(first.firstReuse);
    EXPECT_EQ(first.reusedFillPc, 0xAAu);
    const CacheAccessResult second = cache.access(0xAA, 0x0000);
    EXPECT_FALSE(second.firstReuse);
}

TEST(CacheTest, BypassDoesNotAllocate)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1, 0x40, /*fill_on_miss=*/false).hit);
    // Still a miss: nothing was filled.
    EXPECT_FALSE(cache.access(0x1, 0x40).hit);
    // Now it was filled, so it hits.
    EXPECT_TRUE(cache.access(0x1, 0x40).hit);
}

TEST(CacheTest, MissRateAccounting)
{
    SetAssocCache cache(tinyCache());
    cache.access(0x1, 0);
    cache.access(0x1, 0);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(BypassPredictorTest, NeverBypassIsConventional)
{
    NeverBypass never;
    EXPECT_FALSE(never.shouldBypass(0x123));
}

TEST(BypassPredictorTest, SudStartsFillingThenLearns)
{
    SudBypass bypass(6, SudConfig::twoBit());
    const uint64_t pc = 0x100;
    EXPECT_FALSE(bypass.shouldBypass(pc)); // optimistic start
    for (int i = 0; i < 4; ++i)
        bypass.update(pc, false);
    EXPECT_TRUE(bypass.shouldBypass(pc));
    for (int i = 0; i < 2; ++i)
        bypass.update(pc, true);
    EXPECT_FALSE(bypass.shouldBypass(pc));
}

TEST(BypassPredictorTest, FsmBankIsPerEntry)
{
    Dfa last;
    const int s0 = last.addState(0);
    const int s1 = last.addState(1);
    last.setEdge(s0, 0, s0);
    last.setEdge(s0, 1, s1);
    last.setEdge(s1, 0, s0);
    last.setEdge(s1, 1, s1);
    last.setStart(s1); // optimistic: fill until proven useless

    FsmBypass bypass(6, last);
    EXPECT_FALSE(bypass.shouldBypass(0x100));
    bypass.update(0x100, false);
    EXPECT_TRUE(bypass.shouldBypass(0x100));
    EXPECT_FALSE(bypass.shouldBypass(0x104)); // other entry untouched
}

TEST(MemoryWorkloadTest, NamesAndDeterminism)
{
    ASSERT_EQ(memoryWorkloadNames().size(), 3u);
    const ValueTrace a = makeMemoryTrace("stream_mix", 5000);
    const ValueTrace b = makeMemoryTrace("stream_mix", 5000);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_THROW(makeMemoryTrace("spec", 100), std::invalid_argument);
}

TEST(BypassSimTest, SamplingFillsKeepFeedbackAlive)
{
    /// Predictor that always wants to bypass.
    class AlwaysBypass : public BypassPredictor
    {
      public:
        bool shouldBypass(uint64_t) const override { return true; }
        void
        update(uint64_t, bool) override
        {
            ++updates;
        }
        mutable int updates = 0;
    };

    const ValueTrace trace = makeMemoryTrace("stream_mix", 20000);
    AlwaysBypass always;
    BypassSimOptions options;
    options.sampleEvery = 8;
    const BypassSimResult r =
        simulateBypass(trace, CacheConfig{}, always, options);
    // Sampling forces roughly 1/8 of wished bypasses to fill...
    EXPECT_LT(r.bypasses, r.misses);
    // ...and those fills produce training feedback.
    EXPECT_GT(always.updates, 0);
}

TEST(BypassSimTest, EndToEndFsmRescuesThrashingCache)
{
    // stream_mix thrashes a conventional 16 KiB cache (~100% misses);
    // a cross-trained FSM bypass must recover a large fraction.
    const CacheConfig cache;
    MarkovModel model(4);
    for (const char *other : {"stencil", "hash_walk"}) {
        SudBypass baseline(8, SudConfig::twoBit());
        collectReuseModel(makeMemoryTrace(other, 60000), cache, 8, model,
                          baseline);
    }
    FsmDesignOptions design;
    design.order = 4;
    const FsmDesignResult designed = designFsm(model, design);

    const ValueTrace own = makeMemoryTrace("stream_mix", 60000);
    NeverBypass never;
    const double base = simulateBypass(own, cache, never).missRate();
    FsmBypass fsm(8, designed.fsm);
    const double fsm_rate = simulateBypass(own, cache, fsm).missRate();

    EXPECT_GT(base, 0.95);
    EXPECT_LT(fsm_rate, 0.75);
}

} // anonymous namespace
} // namespace autofsm
