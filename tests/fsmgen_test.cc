/**
 * @file
 * Tests for the fsmgen core: Markov modeling, pattern definition, the
 * end-to-end design flow (reproducing the paper's worked example and
 * Figure 1), and the runtime predictor.
 */

#include <gtest/gtest.h>

#include "fsmgen/designer.hh"
#include "fsmgen/markov.hh"
#include "fsmgen/patterns.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/rng.hh"

namespace autofsm
{
namespace
{

/** The paper's example trace t = 0000 1000 1011 1101 1110 1111. */
std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

TEST(MarkovTest, PaperSecondOrderProbabilities)
{
    MarkovModel model(2);
    model.train(paperTrace());
    // Section 4.2: P[1|00]=2/5, P[1|01]=3/5, P[1|10]=3/4, P[1|11]=6/8.
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("00")), 2.0 / 5.0);
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("01")), 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("10")), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(model.probabilityOne(fromBinary("11")), 6.0 / 8.0);
}

TEST(MarkovTest, CountsAndTotals)
{
    MarkovModel model(2);
    model.train(paperTrace());
    EXPECT_EQ(model.counts(fromBinary("00")).total, 5u);
    EXPECT_EQ(model.counts(fromBinary("00")).ones, 2u);
    EXPECT_EQ(model.counts(fromBinary("11")).total, 8u);
    // 24-bit trace, order 2: 22 sliding windows.
    EXPECT_EQ(model.totalObservations(), 22u);
    EXPECT_EQ(model.distinctHistories(), 4u);
}

TEST(MarkovTest, UnseenHistoryIsFiftyFifty)
{
    MarkovModel model(4);
    EXPECT_DOUBLE_EQ(model.probabilityOne(0b1010), 0.5);
    EXPECT_EQ(model.counts(0b1010).total, 0u);
}

TEST(MarkovTest, WarmupSkipsFirstNBits)
{
    MarkovModel model(3);
    model.train({1, 1, 1});     // exactly N bits: nothing observed yet
    EXPECT_EQ(model.totalObservations(), 0u);
    model.train({1, 1, 1, 0}); // one observation: 111 -> 0
    EXPECT_EQ(model.counts(fromBinary("111")).total, 1u);
    EXPECT_EQ(model.counts(fromBinary("111")).ones, 0u);
}

TEST(MarkovTest, MergeAggregatesSuites)
{
    MarkovModel a(2), b(2);
    a.train({0, 0, 1});
    b.train({0, 0, 1});
    a.merge(b);
    EXPECT_EQ(a.counts(fromBinary("00")).total, 2u);
    EXPECT_EQ(a.counts(fromBinary("00")).ones, 2u);
    EXPECT_EQ(a.totalObservations(), 2u);
}

TEST(MarkovTest, HistoryPackingMatchesPaperNotation)
{
    // Trace 1,0 then next 1: history "10" (older=1, newer=0).
    MarkovModel model(2);
    model.train({1, 0, 1});
    EXPECT_EQ(model.counts(fromBinary("10")).total, 1u);
    EXPECT_EQ(model.counts(fromBinary("10")).ones, 1u);
}

TEST(PatternTest, PaperPartition)
{
    MarkovModel model(2);
    model.train(paperTrace());
    PatternOptions options;
    options.dontCareMass = 0.0;
    const PatternSets sets = definePatterns(model, options);
    // Section 4.3: predict1 = {01, 10, 11}, predict0 = {00}, dc empty.
    EXPECT_EQ(sets.predictOne,
              (std::vector<uint32_t>{fromBinary("01"), fromBinary("10"),
                                     fromBinary("11")}));
    EXPECT_EQ(sets.predictZero, std::vector<uint32_t>{fromBinary("00")});
    EXPECT_TRUE(sets.dontCare.empty());
}

TEST(PatternTest, UnseenHistoriesBecomeDontCares)
{
    MarkovModel model(3);
    model.train({1, 1, 1, 1, 1, 1}); // only history 111 observed
    const PatternSets sets = definePatterns(model);
    EXPECT_EQ(sets.predictOne, std::vector<uint32_t>{fromBinary("111")});
    EXPECT_EQ(sets.dontCare.size(), 7u);
}

TEST(PatternTest, RareMassDivertsLeastSeen)
{
    MarkovModel model(2);
    // History 00 seen 98 times (always ->1), history 11 seen twice.
    for (int i = 0; i < 98; ++i)
        model.observe(fromBinary("00"), 1);
    model.observe(fromBinary("11"), 0);
    model.observe(fromBinary("11"), 0);
    PatternOptions options;
    options.dontCareMass = 0.05; // budget: 5 observations
    const PatternSets sets = definePatterns(model, options);
    EXPECT_EQ(sets.predictOne, std::vector<uint32_t>{fromBinary("00")});
    // 11 (2 observations <= budget) plus the two unseen histories.
    EXPECT_EQ(sets.dontCare.size(), 3u);
    EXPECT_TRUE(sets.predictZero.empty());
}

TEST(PatternTest, ThresholdSweepShrinksPredictOneSet)
{
    MarkovModel model(2);
    model.train(paperTrace());
    PatternOptions loose, strict;
    loose.threshold = 0.5;
    strict.threshold = 0.7;
    const auto loose_sets = definePatterns(model, loose);
    const auto strict_sets = definePatterns(model, strict);
    EXPECT_EQ(loose_sets.predictOne.size(), 3u);
    // Only 10 (0.75) and 11 (0.75) survive at 0.7.
    EXPECT_EQ(strict_sets.predictOne.size(), 2u);
}

TEST(PatternTest, TruthTableRoundTrip)
{
    PatternSets sets;
    sets.order = 2;
    sets.predictOne = {1, 2};
    sets.predictZero = {0};
    sets.dontCare = {3};
    const TruthTable table = sets.toTruthTable();
    EXPECT_TRUE(table.isOn(1));
    EXPECT_TRUE(table.isOn(2));
    EXPECT_FALSE(table.isOn(0));
    EXPECT_TRUE(table.isDontCare(3));
}

TEST(DesignerTest, PaperWorkedExampleEndToEnd)
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    const FsmDesignResult result = designFromTrace(paperTrace(), options);

    // Section 4.4's minimized cover.
    EXPECT_EQ(result.cover.toString(), "x1 | 1x");
    // Section 4.5's regular expression.
    EXPECT_EQ(result.regexText, "{0|1}*{ {0|1}1 | 1{0|1} }");
    // Figure 1: 5 states with start-up states, 3 after reduction.
    EXPECT_EQ(result.statesHopcroft, 5);
    EXPECT_EQ(result.statesFinal, 3);
    EXPECT_EQ(result.beforeReduction.numStates(), 5);
    EXPECT_EQ(result.fsm.numStates(), 3);
}

TEST(DesignerTest, FinalMachinePredictsPaperPatterns)
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    const Dfa fsm = designFromTrace(paperTrace(), options).fsm;

    // From any state, pattern 01/10/11 ends predicting 1; 00 predicts 0.
    for (int start = 0; start < fsm.numStates(); ++start) {
        for (uint32_t pattern = 0; pattern < 4; ++pattern) {
            int state = start;
            state = fsm.next(state, bitOf(pattern, 1));
            state = fsm.next(state, bitOf(pattern, 0));
            EXPECT_EQ(fsm.output(state), pattern == 0 ? 0 : 1)
                << "start=" << start << " pattern=" << pattern;
        }
    }
}

TEST(DesignerTest, KeepStartupStatesOption)
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    options.keepStartupStates = true;
    const FsmDesignResult result = designFromTrace(paperTrace(), options);
    EXPECT_EQ(result.fsm.numStates(), 5);
}

TEST(DesignerTest, AllZeroTraceGivesConstantZero)
{
    FsmDesignOptions options;
    options.order = 2;
    const FsmDesignResult result =
        designFromTrace(std::vector<int>(64, 0), options);
    EXPECT_EQ(result.fsm.numStates(), 1);
    EXPECT_EQ(result.fsm.output(result.fsm.start()), 0);
    EXPECT_EQ(result.regexText, "(empty)");
}

TEST(DesignerTest, AllOneTraceGivesConstantOne)
{
    FsmDesignOptions options;
    options.order = 2;
    const FsmDesignResult result =
        designFromTrace(std::vector<int>(64, 1), options);
    EXPECT_EQ(result.fsm.numStates(), 1);
    EXPECT_EQ(result.fsm.output(result.fsm.start()), 1);
}

TEST(DesignerTest, AlternatingTraceIsPerfectlyLearned)
{
    std::vector<int> trace;
    for (int i = 0; i < 100; ++i)
        trace.push_back(i % 2);
    FsmDesignOptions options;
    options.order = 2;
    const Dfa fsm = designFromTrace(trace, options).fsm;

    // Simulate: predictions should be perfect once warmed up.
    PredictorFsm predictor(fsm);
    int correct = 0, total = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i >= 2) {
            correct += predictor.predict() == trace[i];
            ++total;
        }
        predictor.update(trace[i]);
    }
    EXPECT_EQ(correct, total);
}

TEST(DesignerTest, HigherOrderCapturesLongerPeriodicity)
{
    // Period-3 pattern 1,1,0 needs order >= 2 to be fully predictable;
    // order 3 must learn it perfectly.
    std::vector<int> trace;
    for (int i = 0; i < 300; ++i)
        trace.push_back(i % 3 == 2 ? 0 : 1);
    FsmDesignOptions options;
    options.order = 3;
    const Dfa fsm = designFromTrace(trace, options).fsm;

    PredictorFsm predictor(fsm);
    int correct = 0, total = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i >= 3) {
            correct += predictor.predict() == trace[i];
            ++total;
        }
        predictor.update(trace[i]);
    }
    EXPECT_EQ(correct, total);
}

/**
 * Build a Markov model whose biased histories are exactly those matching
 * one of @p patterns, with profile noise - the setup behind the paper's
 * Figure 6/7 example machines.
 */
MarkovModel
modelFromPatterns(int order, const std::vector<std::string> &patterns,
                  double noise, uint64_t seed)
{
    MarkovModel model(order);
    Rng rng(seed);
    std::vector<Cube> cubes;
    for (const auto &text : patterns)
        cubes.push_back(Cube::fromPattern(text));
    for (uint32_t h = 0; h < (1u << order); ++h) {
        bool biased = false;
        for (const auto &cube : cubes)
            biased = biased || cube.contains(h);
        for (int i = 0; i < 100; ++i) {
            int outcome = biased ? 1 : 0;
            if (rng.chance(noise))
                outcome ^= 1;
            model.observe(h, outcome);
        }
    }
    return model;
}

TEST(DesignerTest, Figure6MachineHasFourStates)
{
    // Figure 6: ijpeg branch correlated with the branch two back
    // (pattern "1x"); the paper's machine has 4 states.
    const MarkovModel model = modelFromPatterns(2, {"1x"}, 0.05, 0x5eed);
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    const FsmDesignResult result = designFsm(model, options);
    EXPECT_EQ(result.cover.toString(), "1x");
    EXPECT_EQ(result.statesFinal, 4);

    // The paper's invariant: from ANY state, traversing first a 1 and
    // then either symbol lands on a predict-1 state; first a 0 lands on
    // a predict-0 state.
    const Dfa &fsm = result.fsm;
    for (int start = 0; start < fsm.numStates(); ++start) {
        for (int second = 0; second < 2; ++second) {
            EXPECT_EQ(fsm.output(fsm.next(fsm.next(start, 1), second)), 1);
            EXPECT_EQ(fsm.output(fsm.next(fsm.next(start, 0), second)), 0);
        }
    }
}

TEST(DesignerTest, Figure7MachineHasElevenStates)
{
    // Figure 7: gs branch capturing 0x1x and 0xx1x; the paper's machine
    // has 11 states.
    const MarkovModel model =
        modelFromPatterns(5, {"x0x1x", "0xx1x"}, 0.05, 0x5eed);
    FsmDesignOptions options;
    options.order = 5;
    options.patterns.dontCareMass = 0.0;
    const FsmDesignResult result = designFsm(model, options);
    EXPECT_EQ(result.statesFinal, 11);

    // Any 5-edge walk matching either pattern ends on predict-1.
    const Dfa &fsm = result.fsm;
    const Cube a = Cube::fromPattern("x0x1x");
    const Cube b = Cube::fromPattern("0xx1x");
    for (int start = 0; start < fsm.numStates(); ++start) {
        for (uint32_t walk = 0; walk < 32; ++walk) {
            int state = start;
            for (int bit = 4; bit >= 0; --bit)
                state = fsm.next(state, bitOf(walk, bit));
            const bool expect_one = a.contains(walk) || b.contains(walk);
            EXPECT_EQ(fsm.output(state), expect_one ? 1 : 0)
                << "start=" << start << " walk=" << toBinary(walk, 5);
        }
    }
}

TEST(PredictorFsmTest, SharedTableReplication)
{
    const Dfa fsm = Dfa::constant(1);
    PredictorFsm first(fsm);
    PredictorFsm second(first.sharedTable());
    EXPECT_EQ(&first.table(), &second.table());
    EXPECT_EQ(second.predict(), 1);
}

TEST(PredictorFsmTest, UpdateFollowsTransitions)
{
    // Two-state machine: output equals last input.
    Dfa dfa;
    const int s0 = dfa.addState(0);
    const int s1 = dfa.addState(1);
    dfa.setEdge(s0, 0, s0);
    dfa.setEdge(s0, 1, s1);
    dfa.setEdge(s1, 0, s0);
    dfa.setEdge(s1, 1, s1);
    dfa.setStart(s0);

    PredictorFsm predictor(dfa);
    EXPECT_EQ(predictor.predict(), 0);
    predictor.update(1);
    EXPECT_EQ(predictor.predict(), 1);
    predictor.update(0);
    EXPECT_EQ(predictor.predict(), 0);
    predictor.reset();
    EXPECT_EQ(predictor.state(), s0);
}

/**
 * Property: for random biased traces, the generated FSM's steady-state
 * prediction for history h equals the majority vote of the training
 * model at h (for histories that were seen and kept).
 */
class DesignerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DesignerPropertyTest, PredictionsFollowTrainingBias)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 3);
    const int order = 2 + static_cast<int>(rng.below(3)); // 2..4

    // Correlated source: next bit = older bit XOR noise.
    std::vector<int> trace;
    int prev = 0, prev2 = 0;
    for (int i = 0; i < 4000; ++i) {
        int bit = (prev2 ^ 1);
        if (rng.chance(0.1))
            bit ^= 1;
        trace.push_back(bit);
        prev2 = prev;
        prev = bit;
    }

    FsmDesignOptions options;
    options.order = order;
    options.patterns.dontCareMass = 0.0;
    const FsmDesignResult result = designFromTrace(trace, options);

    MarkovModel model(order);
    model.train(trace);

    for (const auto &[history, counts] : model.table()) {
        if (counts.total == 0)
            continue;
        const double p = static_cast<double>(counts.ones) /
            static_cast<double>(counts.total);
        if (p == 0.5)
            continue; // ties may go either way
        // Drive the machine through the history from its start state,
        // preceded by `order` filler bits so we are in steady state.
        PredictorFsm predictor(result.fsm);
        for (int i = 0; i < order; ++i)
            predictor.update(0);
        for (int bit = order - 1; bit >= 0; --bit)
            predictor.update(bitOf(history, bit));
        EXPECT_EQ(predictor.predict(), p > 0.5 ? 1 : 0)
            << "order=" << order << " history="
            << toBinary(history, order);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, DesignerPropertyTest,
                         ::testing::Range(0, 15));

} // anonymous namespace
} // namespace autofsm
