/**
 * @file
 * Regenerates Figure 2: value-prediction confidence accuracy vs
 * coverage for the five value benchmarks - the saturating up/down
 * counter sweep against cross-trained custom FSM curves of history
 * length 2-10.
 *
 * Usage: bench_fig2_confidence [loads_per_benchmark]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/figure2.hh"
#include "sim/report.hh"
#include "workloads/value_workloads.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** Best SUD coverage at accuracy >= target (the comparison the paper
 *  makes at 80% accuracy for gcc). */
double
bestCoverageAt(const std::vector<ParetoPoint> &points, double accuracy)
{
    double best = 0.0;
    for (const auto &point : points) {
        if (point.accuracy >= accuracy)
            best = std::max(best, point.coverage);
    }
    return best;
}

double
bestCoverageAt(const std::vector<ParetoSeries> &series, double accuracy)
{
    double best = 0.0;
    for (const auto &s : series)
        best = std::max(best, bestCoverageAt(s.points, accuracy));
    return best;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[loads_per_benchmark]");
    Fig2Options options;
    options.loadsPerBenchmark = static_cast<size_t>(args.positionalOr(
        0, static_cast<long>(options.loadsPerBenchmark)));

    std::cout << "Reproduction of Figure 2 (Sherwood & Calder, ISCA'01)\n"
              << "loads per benchmark: " << options.loadsPerBenchmark
              << ", cross-trained (leave-one-out)\n\n";

    for (const std::string &name : valueBenchmarkNames()) {
        const Fig2Benchmark result = runFigure2(name, options);
        printFig2(std::cout, result);

        std::cout << std::fixed << std::setprecision(1);
        for (double target : {0.7, 0.8, 0.9}) {
            const double sud = bestCoverageAt(result.sudPoints, target);
            const double fsm = bestCoverageAt(result.fsmCurves, target);
            std::cout << "summary[" << name << "] @" << target * 100.0
                      << "% accuracy: best sud coverage "
                      << sud * 100.0 << "%, best custom-FSM coverage "
                      << fsm * 100.0 << "%\n";
        }
        std::cout << "\n";
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
