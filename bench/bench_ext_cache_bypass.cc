/**
 * @file
 * Extension experiment: FSM-guided cache bypass (Section 2.4).
 *
 * For each synthetic memory workload: baseline miss rate (always
 * fill), 2-bit-counter bypass, and generated-FSM bypass trained on the
 * reuse streams of the OTHER workloads (cross-trained, like the
 * confidence experiments). A good bypass predictor keeps streaming
 * fills out of the cache and cuts the resident loads' conflict misses.
 *
 * Usage: bench_ext_cache_bypass [accesses_per_workload]
 */

#include <iomanip>
#include <iostream>

#include "cache/bypass.hh"
#include "fsmgen/designer.hh"
#include "workloads/memory_workloads.hh"

#include "bench_common.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[accesses_per_run]");
    const size_t accesses =
        static_cast<size_t>(args.positionalOr(0, 200000));

    CacheConfig cache; // 16 KiB: 128 sets x 4 ways x 32 B
    const int log2_entries = 8;

    std::cout << "Extension: cache bypass guided by designed FSMs "
                 "(16 KiB 4-way cache)\n\n";
    std::cout << std::setw(12) << "workload" << std::setw(12) << "no-bypass"
              << std::setw(12) << "2bit" << std::setw(12) << "fsm"
              << std::setw(12) << "bypassed" << "\n";

    for (const std::string &name : memoryWorkloadNames()) {
        const ValueTrace own = makeMemoryTrace(name, accesses);

        NeverBypass never;
        const BypassSimResult base = simulateBypass(own, cache, never);

        SudBypass sud(log2_entries, SudConfig::twoBit());
        const BypassSimResult counter = simulateBypass(own, cache, sud);

        // Cross-train the FSM on the other workloads' reuse streams,
        // profiled under the 2-bit baseline policy (the paper's
        // profile-under-the-baseline methodology).
        MarkovModel model(4);
        for (const std::string &other : memoryWorkloadNames()) {
            if (other == name)
                continue;
            SudBypass baseline(log2_entries, SudConfig::twoBit());
            collectReuseModel(makeMemoryTrace(other, accesses), cache,
                              log2_entries, model, baseline);
        }
        FsmDesignOptions design;
        design.order = 4;
        const FsmDesignResult designed = designFsm(model, design);
        FsmBypass fsm(log2_entries, designed.fsm);
        const BypassSimResult fsm_r = simulateBypass(own, cache, fsm);

        std::cout << std::setw(12) << name << std::fixed
                  << std::setprecision(2) << std::setw(11)
                  << base.missRate() * 100.0 << "%" << std::setw(11)
                  << counter.missRate() * 100.0 << "%" << std::setw(11)
                  << fsm_r.missRate() * 100.0 << "%" << std::setw(11)
                  << 100.0 * static_cast<double>(fsm_r.bypasses) /
                      static_cast<double>(fsm_r.accesses)
                  << "%\n";
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
