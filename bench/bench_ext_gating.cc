/**
 * @file
 * Extension experiment: branch confidence for pipeline gating
 * (Section 2.5, Manne et al.; metrics from Grunwald et al. [16]).
 *
 * A fetch-gating mechanism wants high PVN: when the estimator says
 * "low confidence", the branch should really be about to mispredict,
 * so stalling fetch saves wrong-path energy without hurting
 * performance. Compares resetting counters (the standard choice) with
 * cross-trained FSM estimators over the XScale predictor's correctness
 * stream, and estimates the wrong-path fetch energy saved at a fixed
 * performance-loss budget.
 *
 * Usage: bench_ext_gating [branches_per_run]
 */

#include <iomanip>
#include <iostream>

#include "bpred/branch_confidence.hh"
#include "bpred/btb.hh"
#include "fsmgen/designer.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

void
printRow(const std::string &bench, const std::string &scheme,
         const ConfidenceMetrics &m)
{
    std::cout << std::setw(10) << bench << std::setw(18) << scheme
              << std::fixed << std::setprecision(1) << std::setw(9)
              << m.pvp() * 100.0 << "%" << std::setw(9)
              << m.pvn() * 100.0 << "%" << std::setw(9)
              << m.sensitivity() * 100.0 << "%" << std::setw(9)
              << m.specificity() * 100.0 << "%\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 200000));
    const int log2_entries = 10;

    std::cout << "Extension: branch confidence for pipeline gating "
                 "(Grunwald metrics over the XScale predictor)\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(18) << "estimator"
              << std::setw(10) << "PVP" << std::setw(10) << "PVN"
              << std::setw(10) << "SENS" << std::setw(10) << "SPEC"
              << "\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &test = *test_trace;

        // Standard counter-based estimators.
        {
            XScaleBtb predictor;
            SudBranchConfidence estimator(log2_entries,
                                          SudConfig::resetting(8, 7));
            printRow(name, "resetting(8,7)",
                     measureBranchConfidence(predictor, estimator, test));
        }
        {
            XScaleBtb predictor;
            SudBranchConfidence estimator(log2_entries,
                                          SudConfig{15, 1, 2, 12});
            printRow(name, "sud(15,2,12)",
                     measureBranchConfidence(predictor, estimator, test));
        }

        // Cross-trained FSM estimator: model the XScale's correctness
        // stream on every OTHER benchmark (general-purpose setting).
        MarkovModel model(8);
        for (const std::string &other : branchBenchmarkNames()) {
            if (other == name)
                continue;
            const auto other_train_trace =
                cachedBranchTrace(other, WorkloadInput::Train, branches);
            const BranchTrace &other_train = *other_train_trace;
            XScaleBtb predictor;
            collectBranchConfidenceModel(predictor, other_train,
                                         log2_entries, model);
        }
        for (double threshold : {0.7, 0.9}) {
            FsmDesignOptions design;
            design.order = 8;
            design.patterns.threshold = threshold;
            const FsmDesignResult designed = designFsm(model, design);
            XScaleBtb predictor;
            FsmBranchConfidence estimator(log2_entries, designed.fsm);
            printRow(name,
                     "fsm thr=" + std::to_string(threshold).substr(0, 4),
                     measureBranchConfidence(predictor, estimator, test));
        }
        std::cout << "\n";
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
