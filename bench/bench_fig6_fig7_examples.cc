/**
 * @file
 * Regenerates Figures 6 and 7: example custom finite state machines.
 *
 * Figure 6: a branch in ijpeg correlated with the branch two back in
 * global history; the generated machine captures the pattern "1x"
 * (4 states in the paper).
 *
 * Figure 7: a branch in gs whose taken patterns are 0x1x and 0xx1x
 * (11 states in the paper).
 */

#include <iostream>

#include "fsmgen/designer.hh"
#include "fsmgen/markov.hh"
#include "support/rng.hh"

using namespace autofsm;

namespace
{

/**
 * Build a Markov model whose biased histories are exactly those
 * matching any of @p patterns (don't-care positions written 'x').
 */
MarkovModel
modelFromPatterns(int order, const std::vector<std::string> &patterns,
                  double noise, uint64_t seed)
{
    MarkovModel model(order);
    Rng rng(seed);
    std::vector<Cube> cubes;
    for (const auto &text : patterns)
        cubes.push_back(Cube::fromPattern(text));

    for (uint32_t h = 0; h < (1u << order); ++h) {
        bool taken_biased = false;
        for (const auto &cube : cubes)
            taken_biased = taken_biased || cube.contains(h);
        // Simulate 100 profile observations per history with the given
        // noise level, as a real profile of such a branch would yield.
        for (int i = 0; i < 100; ++i) {
            int outcome = taken_biased ? 1 : 0;
            if (rng.chance(noise))
                outcome ^= 1;
            model.observe(h, outcome);
        }
    }
    return model;
}

void
showMachine(const std::string &title, int order,
            const std::vector<std::string> &patterns)
{
    std::cout << "== " << title << " ==\n";
    const MarkovModel model =
        modelFromPatterns(order, patterns, 0.05, 0x5eed);
    FsmDesignOptions options;
    options.order = order;
    options.patterns.dontCareMass = 0.0;
    const FsmDesignResult result = designFsm(model, options);

    std::cout << "target patterns:   ";
    for (const auto &p : patterns)
        std::cout << " " << p;
    std::cout << "\nminimized cover:    " << result.cover.toString()
              << "\nregular expression: " << result.regexText
              << "\nfinal states:       " << result.statesFinal << "\n";
    std::cout << result.fsm.toDot("machine") << "\n";
}

} // anonymous namespace

int
main()
{
    std::cout << "Reproduction of Figures 6 and 7 "
                 "(Sherwood & Calder, ISCA'01)\n\n";
    // Figure 6: ijpeg branch correlated with the branch two back.
    showMachine("Figure 6: ijpeg branch, pattern 1x", 2, {"1x"});
    // Figure 7: gs branch capturing 0x1x and 0xx1x.
    showMachine("Figure 7: gs branch, patterns 0x1x | 0xx1x", 5,
                {"x0x1x", "0xx1x"});
    return 0;
}
