/**
 * @file
 * Regenerates Figure 5: misprediction rate versus estimated predictor
 * area for the six branch benchmarks, comparing the XScale baseline,
 * gshare, the local/global chooser (LGC) and the customized FSM
 * architecture (custom-same / custom-diff).
 *
 * Usage: bench_fig5_branch [branches_per_run]
 */

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/figure5.hh"
#include "sim/report.hh"
#include "workloads/branch_workloads.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** Smallest area whose miss rate beats (<=) the given rate, or -1. */
double
areaToBeat(const AreaMissSeries &series, double target)
{
    double best = -1.0;
    for (const auto &point : series.points) {
        if (point.missRate <= target &&
            (best < 0.0 || point.area < best)) {
            best = point.area;
        }
    }
    return best;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    Fig5Options options;
    options.branchesPerRun = static_cast<size_t>(
        args.positionalOr(0, static_cast<long>(options.branchesPerRun)));
    if (args.threadsSet) {
        options.training.threads = args.threads;
        options.sweepThreads = args.threads;
    }
    if (args.shardsSet)
        options.replayShards = args.shards;

    std::cout << "Reproduction of Figure 5 (Sherwood & Calder, ISCA'01)\n"
              << "branches per run: " << options.branchesPerRun << "\n\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const Fig5Benchmark result = runFigure5(name, options);
        printFig5(std::cout, result);

        // Headline summary rows (Section 7.5 claims).
        const double custom_best =
            result.customDiff.points.empty()
                ? result.xscale.missRate
                : result.customDiff.points.back().missRate;
        const double custom_area =
            result.customDiff.points.empty()
                ? result.xscale.area
                : result.customDiff.points.back().area;
        std::cout << std::fixed << std::setprecision(2)
                  << "summary[" << name << "]: xscale "
                  << result.xscale.missRate * 100.0 << "% @"
                  << std::setprecision(0) << result.xscale.area
                  << " -> custom " << std::setprecision(2)
                  << custom_best * 100.0 << "% @" << std::setprecision(0)
                  << custom_area << "; gshare needs area "
                  << areaToBeat(result.gshare, custom_best)
                  << ", lgc needs area "
                  << areaToBeat(result.lgc, custom_best)
                  << " to match (-1 = never)\n\n";
        std::cout.flush();
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
