/**
 * @file
 * Benchmarks the single-pass sweep engine (sim/sweep.hh) against a
 * faithful replica of the seed Figure-5 evaluation: per-point virtual
 * simulateBranchPredictor sweeps and the AoS all-machines-per-record
 * custom curve, traces rebuilt per run as the seed did. Both paths
 * share one untimed training pass; the engine path draws its traces
 * from the process-wide cache. Results must be bit-identical or the
 * bench aborts.
 *
 * Usage: bench_sim_sweep [branches_per_run] [json_out]
 *   branches_per_run  dynamic branches per trace (default 400000)
 *   json_out          wall-clock report path (default BENCH_sim.json)
 * --repeat=N times each path N times and reports the median run.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/custom.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "bpred/trainer.hh"
#include "fsmgen/predictor_fsm.hh"
#include "sim/figure5.hh"
#include "sim/packed_trace.hh"
#include "support/json.hh"
#include "synth/area.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** The seed's customCurve: every machine stepped on every AoS record. */
AreaMissSeries
seedCustomCurve(const std::vector<TrainedBranch> &trained,
                const BranchTrace &trace, const BtbConfig &btb_config,
                const std::string &label, const AreaCosts &costs)
{
    XScaleBtb btb(btb_config, costs);
    std::vector<PredictorFsm> machines;
    std::unordered_map<uint64_t, size_t> machine_of;
    machines.reserve(trained.size());
    for (size_t i = 0; i < trained.size(); ++i) {
        machines.emplace_back(trained[i].design.fsm);
        machine_of.emplace(trained[i].pc, i);
    }

    uint64_t btb_misses_total = 0;
    std::vector<uint64_t> btb_misses(trained.size(), 0);
    std::vector<uint64_t> fsm_misses(trained.size(), 0);

    for (const auto &record : trace) {
        const bool btb_wrong = btb.predict(record.pc) != record.taken;
        btb_misses_total += btb_wrong;

        const auto it = machine_of.find(record.pc);
        if (it != machine_of.end()) {
            btb_misses[it->second] += btb_wrong;
            const bool fsm_pred = machines[it->second].predict() != 0;
            fsm_misses[it->second] += fsm_pred != record.taken;
        }

        btb.update(record.pc, record.taken);
        for (auto &machine : machines)
            machine.update(record.taken ? 1 : 0);
    }
    publishBtbMetrics(btb);

    const double total =
        static_cast<double>(trace.size() ? trace.size() : 1);
    const CustomEntryConfig entry_config;

    AreaMissSeries series;
    series.label = label;
    double area = btb.area();
    uint64_t misses = btb_misses_total;
    for (size_t k = 0; k < trained.size(); ++k) {
        misses -= btb_misses[k];
        misses += fsm_misses[k];
        area += entry_config.tagBits * costs.camBit +
            entry_config.targetBits * costs.sramBit +
            estimateFsmArea(trained[k].design.fsm, costs).area;
        series.points.push_back(
            {area, static_cast<double>(misses) / total,
             std::to_string(k + 1) + " fsm"});
    }
    return series;
}

/** The seed's evaluation: traces rebuilt, one virtual run per point. */
Fig5Benchmark
seedEvaluate(const std::string &benchmark,
             const std::vector<TrainedBranch> &trained,
             const Fig5Options &options)
{
    const AreaCosts costs;
    Fig5Benchmark result;
    result.name = benchmark;
    result.trained = trained;

    const BranchTrace train = makeBranchTrace(
        benchmark, WorkloadInput::Train, options.branchesPerRun);
    const BranchTrace test = makeBranchTrace(
        benchmark, WorkloadInput::Test, options.branchesPerRun);

    {
        XScaleBtb btb(options.training.baseline, costs);
        const BpredSimResult r = simulateBranchPredictor(btb, test);
        publishBtbMetrics(btb);
        result.xscale = {btb.area(), r.missRate(), btb.name()};
    }

    result.gshare.label = "gshare";
    for (int log2 : options.gshareLog2) {
        GshareConfig config;
        config.log2Entries = log2;
        config.historyBits = std::min(log2, 16);
        Gshare predictor(config, costs);
        const BpredSimResult r = simulateBranchPredictor(predictor, test);
        result.gshare.points.push_back(
            {predictor.area(), r.missRate(), predictor.name()});
    }

    result.lgc.label = "lgc";
    for (int log2 : options.lgcLog2) {
        LgcConfig config;
        config.log2Entries = log2;
        LocalGlobalChooser predictor(config, costs);
        const BpredSimResult r = simulateBranchPredictor(predictor, test);
        result.lgc.points.push_back(
            {predictor.area(), r.missRate(), predictor.name()});
    }

    result.customSame = seedCustomCurve(trained, train,
                                        options.training.baseline,
                                        "custom-same", costs);
    result.customDiff = seedCustomCurve(trained, test,
                                        options.training.baseline,
                                        "custom-diff", costs);
    return result;
}

bool
pointsIdentical(const AreaMissPoint &a, const AreaMissPoint &b)
{
    return a.area == b.area && a.missRate == b.missRate &&
        a.label == b.label;
}

bool
seriesIdentical(const AreaMissSeries &a, const AreaMissSeries &b)
{
    return a.label == b.label && a.points.size() == b.points.size() &&
        std::equal(a.points.begin(), a.points.end(), b.points.begin(),
                   pointsIdentical);
}

bool
resultsIdentical(const Fig5Benchmark &a, const Fig5Benchmark &b)
{
    return pointsIdentical(a.xscale, b.xscale) &&
        seriesIdentical(a.gshare, b.gshare) &&
        seriesIdentical(a.lgc, b.lgc) &&
        seriesIdentical(a.customSame, b.customSame) &&
        seriesIdentical(a.customDiff, b.customDiff);
}

struct BenchmarkTiming
{
    std::string name;
    double serialMs = 0.0;
    double sweepMs = 0.0;

    double
    speedup() const
    {
        return sweepMs > 0.0 ? serialMs / sweepMs : 0.0;
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(
        argc, argv, "[branches_per_run] [json_out]");
    Fig5Options options;
    options.branchesPerRun = static_cast<size_t>(
        args.positionalOr(0, static_cast<long>(options.branchesPerRun)));
    const std::string json_out = args.positionalOr(1, "BENCH_sim.json");
    if (args.threadsSet)
        options.sweepThreads = args.threads;

    std::cout << "Sweep-engine benchmark: seed serial path vs "
                 "sim/sweep.hh\nbranches per run: "
              << options.branchesPerRun << "\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(14) << "serial_ms"
              << std::setw(14) << "sweep_ms" << std::setw(10) << "speedup"
              << "\n";

    std::vector<BenchmarkTiming> timings;
    for (const std::string &name : branchBenchmarkNames()) {
        // Train once, untimed: both paths replay the same machines, and
        // this warms the trace and packing caches exactly as a prior
        // design-flow stage would have.
        const auto train = cachedBranchTrace(name, WorkloadInput::Train,
                                             options.branchesPerRun);
        cachedPackedTrace(train);
        cachedPackedTrace(cachedBranchTrace(name, WorkloadInput::Test,
                                            options.branchesPerRun));
        Fig5Options train_options = options;
        train_options.training.threads = 1;
        BaselineBtbProfile profile;
        const std::vector<TrainedBranch> trained =
            trainCustomPredictors(*train, train_options.training,
                                  &profile);

        BenchmarkTiming timing;
        timing.name = name;

        // Both paths are pure functions of the traces and the trained
        // machines, so --repeat=N re-runs them unchanged and the upper
        // median drops cold-cache noise.
        Fig5Benchmark serial;
        timing.serialMs = bench::medianRunMillis(args, [&] {
            serial = seedEvaluate(name, trained, options);
        });

        Fig5Benchmark sweep;
        timing.sweepMs = bench::medianRunMillis(args, [&] {
            const auto sweep_train = cachedPackedTrace(cachedBranchTrace(
                name, WorkloadInput::Train, options.branchesPerRun));
            const auto sweep_test = cachedPackedTrace(cachedBranchTrace(
                name, WorkloadInput::Test, options.branchesPerRun));
            sweep = evaluateFigure5(name, *sweep_train, *sweep_test,
                                    trained, options, &profile);
        });

        if (!resultsIdentical(serial, sweep)) {
            std::cerr << "FATAL: sweep-engine results diverge from the "
                         "serial path on '"
                      << name << "'\n";
            return 1;
        }

        std::cout << std::setw(10) << name << std::fixed
                  << std::setprecision(2) << std::setw(14)
                  << timing.serialMs << std::setw(14) << timing.sweepMs
                  << std::setw(10) << timing.speedup() << "\n";
        std::cout.flush();
        timings.push_back(timing);
    }

    double serial_total = 0.0, sweep_total = 0.0;
    for (const auto &timing : timings) {
        serial_total += timing.serialMs;
        sweep_total += timing.sweepMs;
    }
    const double overall =
        sweep_total > 0.0 ? serial_total / sweep_total : 0.0;
    const BranchTraceCacheStats cache = branchTraceCacheStats();

    std::cout << "\noverall: serial " << std::fixed
              << std::setprecision(2) << serial_total << " ms, sweep "
              << sweep_total << " ms, speedup " << overall << "x\n";
    std::cout << "trace cache: " << cache.hits << " hits, "
              << cache.misses << " misses, " << cache.entries
              << " entries\n";

    std::ofstream out(json_out);
    if (!out) {
        std::cerr << "cannot write " << json_out << "\n";
        return 1;
    }
    JsonWriter json(out);
    json.beginObject();
    json.key("bench").value("sim_sweep");
    json.key("branches_per_run")
        .value(static_cast<uint64_t>(options.branchesPerRun));
    json.key("benchmarks").beginArray();
    for (const auto &timing : timings) {
        json.beginObject();
        json.key("name").value(timing.name);
        json.key("serial_ms").value(timing.serialMs);
        json.key("sweep_ms").value(timing.sweepMs);
        json.key("speedup").value(timing.speedup());
        json.endObject();
    }
    json.endArray();
    json.key("serial_ms_total").value(serial_total);
    json.key("sweep_ms_total").value(sweep_total);
    json.key("speedup").value(overall);
    json.key("trace_cache_hits").value(cache.hits);
    json.key("trace_cache_misses").value(cache.misses);
    json.endObject();
    out << "\n";
    std::cout << "wrote " << json_out << "\n";

    bench::exportMetricsIfRequested(args);
    return 0;
}
