/**
 * @file
 * Ablation of the logic-minimization engine: exact Quine-McCluskey vs
 * the Espresso-style heuristic, on workload-derived and random pattern
 * sets. Reports cover size, literal count and runtime - the design
 * choice behind MinimizeAlgo::Auto's 8-variable cutoff.
 */

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

#include "logicmin/espresso.hh"
#include "logicmin/quine_mccluskey.hh"
#include "support/rng.hh"

using namespace autofsm;

namespace
{

TruthTable
randomTable(int num_vars, double on_frac, double dc_frac, uint64_t seed)
{
    Rng rng(seed);
    TruthTable table(num_vars);
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
        const double roll = rng.uniform();
        if (roll < on_frac)
            table.addOn(m);
        else if (roll < on_frac + dc_frac)
            table.addDontCare(m);
    }
    if (table.onSet().empty())
        table.addOn(0);
    return table;
}

TruthTable
biasedTable(int num_vars, uint64_t seed)
{
    // Workload-shaped function: strongly biased by the recent history
    // bits, as branch pattern sets are.
    Rng rng(seed);
    TruthTable table(num_vars);
    for (uint32_t m = 0; m < (1u << num_vars); ++m) {
        const bool likely = (m & 0b11) == 0b11 || (m & 0b101) == 0b101;
        const double roll = rng.uniform();
        if (roll < (likely ? 0.9 : 0.05))
            table.addOn(m);
        else if (roll < (likely ? 0.95 : 0.15))
            table.addDontCare(m);
    }
    if (table.onSet().empty())
        table.addOn(0);
    return table;
}

void
compareOnce(const std::string &label, const TruthTable &table)
{
    const Cover exact = minimizeQuineMcCluskey(table);
    const Cover heur = minimizeEspresso(table);
    std::cout << std::setw(22) << label << std::setw(7) << table.numVars()
              << std::setw(9) << table.onSet().size() << std::setw(9)
              << exact.size() << std::setw(9) << exact.literalCount()
              << std::setw(9) << heur.size() << std::setw(9)
              << heur.literalCount() << "\n";
}

void
BM_QuineMcCluskey(benchmark::State &state)
{
    const TruthTable table =
        randomTable(static_cast<int>(state.range(0)), 0.3, 0.1, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(minimizeQuineMcCluskey(table));
}
BENCHMARK(BM_QuineMcCluskey)->DenseRange(4, 10, 2);

void
BM_Espresso(benchmark::State &state)
{
    const TruthTable table =
        randomTable(static_cast<int>(state.range(0)), 0.3, 0.1, 42);
    for (auto _ : state)
        benchmark::DoNotOptimize(minimizeEspresso(table));
}
BENCHMARK(BM_Espresso)->DenseRange(4, 10, 2);

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::cout << "Ablation: exact QM vs Espresso-heuristic minimization\n\n";
    std::cout << std::setw(22) << "function" << std::setw(7) << "vars"
              << std::setw(9) << "|ON|" << std::setw(9) << "qm-cub"
              << std::setw(9) << "qm-lit" << std::setw(9) << "es-cub"
              << std::setw(9) << "es-lit" << "\n";
    for (int vars : {4, 6, 8, 10}) {
        compareOnce("random", randomTable(vars, 0.3, 0.1,
                                          static_cast<uint64_t>(vars)));
        compareOnce("workload-biased",
                    biasedTable(vars, static_cast<uint64_t>(vars) + 77));
    }
    std::cout << "\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
