/**
 * @file
 * Regenerates Figure 4: estimated implementation area versus number of
 * states for the custom FSM predictors generated across all branch
 * benchmarks, with the linear trend fit the paper reuses for its later
 * area numbers.
 *
 * Usage: bench_fig4_area [branches_per_run]
 */

#include <cstdlib>
#include <iostream>

#include "sim/figure4.hh"
#include "sim/report.hh"

#include "bench_common.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    Fig4Options options;
    options.branchesPerRun = static_cast<size_t>(
        args.positionalOr(0, static_cast<long>(options.branchesPerRun)));
    if (args.seedSet)
        options.seed = args.seed;
    if (args.threadsSet)
        options.threads = args.threads;

    std::cout << "Reproduction of Figure 4 (Sherwood & Calder, ISCA'01)\n"
              << "training " << options.fsmsPerBenchmark
              << " FSMs per benchmark, history length "
              << options.historyLength << "\n\n";

    const Fig4Result result = runFigure4(options);
    printFig4(std::cout, result);
    bench::exportMetricsIfRequested(args);
    return 0;
}
