/**
 * @file
 * Regenerates Figure 4: estimated implementation area versus number of
 * states for the custom FSM predictors generated across all branch
 * benchmarks, with the linear trend fit the paper reuses for its later
 * area numbers.
 *
 * Usage: bench_fig4_area [branches_per_run]
 */

#include <cstdlib>
#include <iostream>

#include "sim/figure4.hh"
#include "sim/report.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    Fig4Options options;
    if (argc > 1)
        options.branchesPerRun = static_cast<size_t>(atol(argv[1]));

    std::cout << "Reproduction of Figure 4 (Sherwood & Calder, ISCA'01)\n"
              << "training " << options.fsmsPerBenchmark
              << " FSMs per benchmark, history length "
              << options.historyLength << "\n\n";

    const Fig4Result result = runFigure4(options);
    printFig4(std::cout, result);
    return 0;
}
