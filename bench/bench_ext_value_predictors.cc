/**
 * @file
 * Extension experiment: confidence FSMs across value predictor types
 * (Section 6.1 surveys last-value, stride and context predictors; the
 * paper evaluates confidence on the stride predictor only).
 *
 * For each benchmark and each predictor (last-value, two-delta stride,
 * order-2 FCM): raw hit rate, then the cross-trained FSM estimator's
 * accuracy/coverage at threshold 0.8 - showing the design flow is
 * predictor-agnostic: it learns whatever correctness structure the
 * underlying predictor produces.
 *
 * Usage: bench_ext_value_predictors [loads_per_benchmark]
 */

#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>

#include "fsmgen/designer.hh"
#include "vpred/conf_sim.hh"
#include "vpred/context_predictor.hh"
#include "vpred/hybrid_predictor.hh"
#include "vpred/last_value.hh"
#include "workloads/value_workloads.hh"

#include "bench_common.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[loads_per_run]");
    const size_t loads =
        static_cast<size_t>(args.positionalOr(0, 100000));

    using Factory = std::function<std::unique_ptr<ValuePredictor>()>;
    const std::pair<const char *, Factory> kinds[] = {
        {"last-value",
         [] { return std::make_unique<LastValuePredictor>(); }},
        {"two-delta",
         [] { return std::make_unique<TwoDeltaStridePredictor>(); }},
        {"fcm-o2", [] { return std::make_unique<FcmPredictor>(); }},
        {"hybrid", [] { return std::make_unique<HybridPredictor>(); }},
    };

    std::cout << "Extension: FSM confidence across value predictor "
                 "types (history 6, threshold 0.8, cross-trained)\n\n";
    std::cout << std::setw(8) << "bench" << std::setw(12) << "predictor"
              << std::setw(12) << "hit-rate" << std::setw(12)
              << "accuracy" << std::setw(12) << "coverage"
              << std::setw(10) << "states" << "\n";

    for (const std::string &name : valueBenchmarkNames()) {
        const ValueTrace own = makeValueTrace(name, loads);

        for (const auto &[kind_name, make] : kinds) {
            // Cross-train a model on the other benchmarks, through the
            // same predictor type.
            MarkovModel model(6);
            for (const std::string &other : valueBenchmarkNames()) {
                if (other == name)
                    continue;
                const ValueTrace trace = makeValueTrace(other, loads);
                auto trainer = make();
                collectConfidenceModels(trace, *trainer, {&model});
            }

            FsmDesignOptions design;
            design.order = 6;
            design.patterns.threshold = 0.8;
            const FsmDesignResult designed = designFsm(model, design);

            auto predictor = make();
            FsmConfidence estimator(predictor->entries(), designed.fsm);
            const ConfidenceResult r =
                simulateConfidence(own, *predictor, estimator);

            std::cout << std::setw(8) << name << std::setw(12)
                      << kind_name << std::fixed << std::setprecision(1)
                      << std::setw(11)
                      << 100.0 * static_cast<double>(r.correct) /
                          static_cast<double>(r.loads)
                      << "%" << std::setw(11) << r.accuracy() * 100.0
                      << "%" << std::setw(11) << r.coverage() * 100.0
                      << "%" << std::setw(10) << designed.statesFinal
                      << "\n";
        }
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
