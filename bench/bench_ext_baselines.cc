/**
 * @file
 * Extension experiment: additional baselines around the Figure 5 story.
 *
 * 1. PPM (Chen et al., the paper's Section 3.2) against the XScale
 *    baseline and the customized architecture, per benchmark.
 * 2. Loop termination prediction (the paper's reference [35]) on each
 *    benchmark's loop-exit branches, against the 2-bit counter and a
 *    per-branch custom FSM - quantifying the paper's remark that
 *    compress's remaining headroom belongs to loop prediction.
 *
 * Usage: bench_ext_baselines [branches_per_run]
 */

#include <iomanip>
#include <iostream>
#include <map>

#include "bpred/custom.hh"
#include "bpred/loop_predictor.hh"
#include "bpred/ppm.hh"
#include "bpred/simulate.hh"
#include "bpred/trainer.hh"
#include "sim/nested_sweep.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** Miss rate of a per-branch loop unit on every loop-like branch. */
void
loopSection(size_t branches)
{
    std::cout << "-- loop termination prediction on the worst "
                 "loop-shaped branch --\n";
    std::cout << std::setw(10) << "bench" << std::setw(16) << "branch"
              << std::setw(12) << "2bit" << std::setw(12) << "fsm"
              << std::setw(12) << "loop-unit" << "\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const auto train_trace =
            cachedBranchTrace(name, WorkloadInput::Train, branches);
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &train = *train_trace;
        const BranchTrace &test = *test_trace;

        // Find the most-taken-biased branch with occasional exits: the
        // loop shape (taken rate in [0.7, 0.99], enough executions).
        const BranchProfile profile = profileTrace(train);
        uint64_t loop_pc = 0;
        uint64_t best_runs = 0;
        for (const auto &[pc, entry] : profile) {
            const double rate = static_cast<double>(entry.taken) /
                static_cast<double>(entry.executions);
            if (rate >= 0.7 && rate <= 0.99 &&
                entry.executions > best_runs) {
                best_runs = entry.executions;
                loop_pc = pc;
            }
        }
        if (loop_pc == 0) {
            std::cout << std::setw(10) << name << std::setw(16)
                      << "(none)" << "\n";
            continue;
        }

        // Train a custom FSM for exactly that branch.
        CustomTrainingOptions options;
        options.maxCustomBranches = 64;
        const auto trained = trainCustomPredictors(train, options);
        const TrainedBranch *fsm_branch = nullptr;
        for (const auto &branch : trained) {
            if (branch.pc == loop_pc)
                fsm_branch = &branch;
        }

        // Evaluate the three schemes on the test input.
        SudCounter counter(SudConfig::twoBit(), 1);
        LoopTerminationUnit loop_unit;
        PredictorFsm fsm(fsm_branch ? fsm_branch->design.fsm
                                    : Dfa::constant(1));
        uint64_t executions = 0, counter_wrong = 0, fsm_wrong = 0,
                 loop_wrong = 0;
        for (const auto &record : test) {
            if (record.pc == loop_pc) {
                ++executions;
                counter_wrong += counter.predict() != record.taken;
                fsm_wrong += (fsm.predict() != 0) != record.taken;
                loop_wrong += loop_unit.predict() != record.taken;
                counter.update(record.taken);
                loop_unit.update(record.taken);
            }
            fsm.update(record.taken ? 1 : 0); // update-on-every-branch
        }

        auto pct = [executions](uint64_t wrong) {
            return 100.0 * static_cast<double>(wrong) /
                static_cast<double>(executions ? executions : 1);
        };
        std::cout << std::setw(10) << name << std::setw(16) << std::hex
                  << loop_pc << std::dec << std::fixed
                  << std::setprecision(2) << std::setw(11)
                  << pct(counter_wrong) << "%" << std::setw(11)
                  << pct(fsm_wrong) << "%" << std::setw(11)
                  << pct(loop_wrong) << "%\n";
    }
    std::cout << "\n";
}

void
ppmSection(size_t branches)
{
    std::cout << "-- PPM baseline vs XScale and custom --\n";
    std::cout << std::setw(10) << "bench" << std::setw(12) << "xscale"
              << std::setw(14) << "ppm(m8,2^10)" << std::setw(12)
              << "custom-8" << "\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const auto train_trace =
            cachedBranchTrace(name, WorkloadInput::Train, branches);
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &train = *train_trace;
        const BranchTrace &test = *test_trace;

        // The XScale column is a single-config BTB sweep point; the
        // nested engine services it bit-identically to the virtual
        // XScaleBtb walk at kernel speed.
        NestedSweepRequest btb_request;
        btb_request.btb.push_back(BtbConfig{});
        const double base =
            nestedSweep(btb_request, *cachedPackedTrace(test_trace))
                .btb[0]
                .result.missRate();

        PpmPredictor ppm;
        const double ppm_rate =
            simulateBranchPredictor(ppm, test).missRate();

        CustomTrainingOptions options;
        options.maxCustomBranches = 8;
        CustomBranchPredictor custom;
        for (const auto &branch : trainCustomPredictors(train, options))
            custom.addCustomEntry(branch.pc, branch.design.fsm);
        const double custom_rate =
            simulateBranchPredictor(custom, test).missRate();

        std::cout << std::setw(10) << name << std::fixed
                  << std::setprecision(2) << std::setw(11) << base * 100.0
                  << "%" << std::setw(13) << ppm_rate * 100.0 << "%"
                  << std::setw(11) << custom_rate * 100.0 << "%\n";
    }
    std::cout << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 200000));

    std::cout << "Extension baselines around Figure 5\n\n";
    ppmSection(branches);
    loopSection(branches);
    bench::exportMetricsIfRequested(args);
    return 0;
}
