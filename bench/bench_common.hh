/**
 * @file
 * Shared argv handling for the plain-main benches.
 *
 * Every non-google-benchmark harness takes a handful of positional
 * numbers plus the same optional flags; this header centralizes the
 * parsing (it used to be copy-pasted per bench) and plugs the telemetry
 * exporters in behind `--metrics-out`:
 *
 *     bench_foo [positional...] [--threads=N] [--seed=N]
 *               [--repeat=N] [--shards=N]
 *               [--metrics-out=FILE] [--metrics-format=json|prom]
 *
 * When `--metrics-format` is omitted it is inferred from the output
 * path: a `.prom` extension selects the Prometheus text format,
 * anything else JSON. Call `exportMetricsIfRequested` once at the end
 * of main to write the global registry's snapshot.
 *
 * Timed sections should run through `medianRunMillis` so `--repeat=N`
 * reports the median of N runs instead of one cold-cache shot.
 */

#ifndef AUTOFSM_BENCH_COMMON_HH
#define AUTOFSM_BENCH_COMMON_HH

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hh"
#include "obs/metrics.hh"

namespace autofsm::bench
{

struct BenchOptions
{
    /** Bare numeric arguments, in order (meaning is per-bench). */
    std::vector<long> positional;
    /** The same arguments, unparsed (for string positionals). */
    std::vector<std::string> positionalRaw;
    /** --threads=N; 0 means "use the harness default". */
    unsigned threads = 0;
    bool threadsSet = false;
    /** --seed=N. */
    uint64_t seed = 0;
    bool seedSet = false;
    /**
     * --repeat=N: timed sections run N times and report the median
     * (see medianRunMillis); 1 keeps the historical single-shot timing.
     */
    size_t repeat = 1;
    bool repeatSet = false;
    /**
     * --shards=N: trace shards for benches with sharded replays
     * (0 = the engine's auto choice, 1 = unsharded).
     */
    size_t shards = 0;
    bool shardsSet = false;
    /** --metrics-out=FILE; empty means no export. */
    std::string metricsOut;
    /** "json" or "prom" (set explicitly or inferred from metricsOut). */
    std::string metricsFormat = "json";
    bool metricsFormatSet = false;
    /**
     * --request-file=FILE: a JSON array of DesignRequests (the
     * flow/api.hh schema shared with the serve daemon) for benches that
     * support request replay; empty means the bench's synthetic load.
     */
    std::string requestFile;
    /**
     * --trace-out=FILE: benches that support it enable the global
     * tracer and write the recorded spans as Chrome trace-event JSON
     * (obs::renderTraceEvents); empty means no trace export.
     */
    std::string traceOut;

    /** positional[i] as long, or @p fallback when absent. */
    long
    positionalOr(size_t i, long fallback) const
    {
        return i < positional.size() ? positional[i] : fallback;
    }

    /** positionalRaw[i], or @p fallback when absent. */
    std::string
    positionalOr(size_t i, const char *fallback) const
    {
        return i < positionalRaw.size() ? positionalRaw[i]
                                        : std::string(fallback);
    }
};

inline bool
consumeFlag(std::string_view arg, std::string_view prefix,
            std::string_view &value)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

/**
 * Parse argv. On `-h`/`--help` or a malformed flag, prints @p usage
 * (plus the shared flag help) and exits — benches have no cleanup that
 * would make error-return plumbing worth the duplication.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv, const char *usage)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string_view value;
        if (arg == "-h" || arg == "--help") {
            std::cout << "usage: " << argv[0] << " " << usage << "\n"
                      << "  [--threads=N] [--seed=N] [--repeat=N] "
                         "[--shards=N]\n"
                         "  [--metrics-out=FILE] "
                         "[--metrics-format=json|prom]\n"
                         "  [--request-file=FILE] [--trace-out=FILE]\n";
            std::exit(0);
        } else if (consumeFlag(arg, "--threads=", value)) {
            options.threads = static_cast<unsigned>(
                std::strtoul(std::string(value).c_str(), nullptr, 10));
            options.threadsSet = true;
        } else if (consumeFlag(arg, "--seed=", value)) {
            options.seed = std::strtoull(std::string(value).c_str(),
                                         nullptr, 10);
            options.seedSet = true;
        } else if (consumeFlag(arg, "--repeat=", value)) {
            options.repeat = std::strtoull(std::string(value).c_str(),
                                           nullptr, 10);
            options.repeatSet = true;
            if (options.repeat == 0) {
                std::cerr << argv[0] << ": --repeat must be >= 1\n";
                std::exit(2);
            }
        } else if (consumeFlag(arg, "--shards=", value)) {
            options.shards = std::strtoull(std::string(value).c_str(),
                                           nullptr, 10);
            options.shardsSet = true;
        } else if (consumeFlag(arg, "--metrics-out=", value)) {
            options.metricsOut = std::string(value);
        } else if (consumeFlag(arg, "--metrics-format=", value)) {
            options.metricsFormat = std::string(value);
            options.metricsFormatSet = true;
        } else if (consumeFlag(arg, "--request-file=", value)) {
            options.requestFile = std::string(value);
        } else if (consumeFlag(arg, "--trace-out=", value)) {
            options.traceOut = std::string(value);
        } else if (!arg.empty() && arg[0] == '-' &&
                   !(arg.size() > 1 &&
                     (std::isdigit(static_cast<unsigned char>(arg[1])) !=
                      0))) {
            std::cerr << argv[0] << ": unknown flag '" << arg << "'\n"
                      << "usage: " << argv[0] << " " << usage << "\n";
            std::exit(2);
        } else {
            options.positional.push_back(
                std::strtol(std::string(arg).c_str(), nullptr, 10));
            options.positionalRaw.emplace_back(arg);
        }
    }

    if (options.metricsFormat != "json" && options.metricsFormat != "prom") {
        std::cerr << argv[0] << ": --metrics-format must be json or prom\n";
        std::exit(2);
    }
    if (!options.metricsFormatSet && !options.metricsOut.empty() &&
        options.metricsOut.size() >= 5 &&
        options.metricsOut.compare(options.metricsOut.size() - 5, 5,
                                   ".prom") == 0) {
        options.metricsFormat = "prom";
    }
    return options;
}

/**
 * Time @p fn options.repeat times and return the median wall time in
 * milliseconds (upper median for even counts). With the default
 * --repeat=1 this is exactly the old single-shot measurement; higher
 * repeats squeeze out cold-cache and scheduler noise without changing
 * what is timed. @p fn runs repeat times regardless, so it must be
 * idempotent over the bench's state (replays over read-only traces
 * are; anything accumulating tallies externally is not).
 */
template <typename Fn>
inline double
medianRunMillis(const BenchOptions &options, Fn &&fn)
{
    std::vector<double> millis(options.repeat ? options.repeat : 1);
    for (double &sample : millis) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        sample = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    }
    std::sort(millis.begin(), millis.end());
    return millis[millis.size() / 2];
}

/**
 * Write the global registry's snapshot to options.metricsOut (no-op
 * when the flag was not given). Returns false and warns on I/O failure
 * so benches can surface it without aborting their report.
 */
inline bool
exportMetricsIfRequested(const BenchOptions &options)
{
    if (options.metricsOut.empty())
        return true;
    std::ofstream out(options.metricsOut);
    if (!out) {
        std::cerr << "warning: cannot open " << options.metricsOut
                  << " for metrics export\n";
        return false;
    }
    if (options.metricsFormat == "prom")
        obs::renderPrometheus(out); // the shared daemon/bench scrape path
    else
        obs::renderMetricsJson(out, obs::globalMetrics().snapshot());
    out.flush();
    if (!out) {
        std::cerr << "warning: short write to " << options.metricsOut
                  << "\n";
        return false;
    }
    std::cerr << "metrics (" << options.metricsFormat << ") -> "
              << options.metricsOut << "\n";
    return true;
}

} // namespace autofsm::bench

#endif // AUTOFSM_BENCH_COMMON_HH
