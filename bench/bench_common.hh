/**
 * @file
 * Shared argv handling for the plain-main benches.
 *
 * Every non-google-benchmark harness takes a handful of positional
 * numbers plus the same optional flags; this header centralizes the
 * parsing (it used to be copy-pasted per bench) and plugs the telemetry
 * exporters in behind `--metrics-out`:
 *
 *     bench_foo [positional...] [--threads=N] [--seed=N]
 *               [--metrics-out=FILE] [--metrics-format=json|prom]
 *
 * When `--metrics-format` is omitted it is inferred from the output
 * path: a `.prom` extension selects the Prometheus text format,
 * anything else JSON. Call `exportMetricsIfRequested` once at the end
 * of main to write the global registry's snapshot.
 */

#ifndef AUTOFSM_BENCH_COMMON_HH
#define AUTOFSM_BENCH_COMMON_HH

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hh"
#include "obs/metrics.hh"

namespace autofsm::bench
{

struct BenchOptions
{
    /** Bare numeric arguments, in order (meaning is per-bench). */
    std::vector<long> positional;
    /** The same arguments, unparsed (for string positionals). */
    std::vector<std::string> positionalRaw;
    /** --threads=N; 0 means "use the harness default". */
    unsigned threads = 0;
    bool threadsSet = false;
    /** --seed=N. */
    uint64_t seed = 0;
    bool seedSet = false;
    /** --metrics-out=FILE; empty means no export. */
    std::string metricsOut;
    /** "json" or "prom" (set explicitly or inferred from metricsOut). */
    std::string metricsFormat = "json";
    bool metricsFormatSet = false;
    /**
     * --request-file=FILE: a JSON array of DesignRequests (the
     * flow/api.hh schema shared with the serve daemon) for benches that
     * support request replay; empty means the bench's synthetic load.
     */
    std::string requestFile;
    /**
     * --trace-out=FILE: benches that support it enable the global
     * tracer and write the recorded spans as Chrome trace-event JSON
     * (obs::renderTraceEvents); empty means no trace export.
     */
    std::string traceOut;

    /** positional[i] as long, or @p fallback when absent. */
    long
    positionalOr(size_t i, long fallback) const
    {
        return i < positional.size() ? positional[i] : fallback;
    }

    /** positionalRaw[i], or @p fallback when absent. */
    std::string
    positionalOr(size_t i, const char *fallback) const
    {
        return i < positionalRaw.size() ? positionalRaw[i]
                                        : std::string(fallback);
    }
};

inline bool
consumeFlag(std::string_view arg, std::string_view prefix,
            std::string_view &value)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    value = arg.substr(prefix.size());
    return true;
}

/**
 * Parse argv. On `-h`/`--help` or a malformed flag, prints @p usage
 * (plus the shared flag help) and exits — benches have no cleanup that
 * would make error-return plumbing worth the duplication.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv, const char *usage)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string_view value;
        if (arg == "-h" || arg == "--help") {
            std::cout << "usage: " << argv[0] << " " << usage << "\n"
                      << "  [--threads=N] [--seed=N]\n"
                         "  [--metrics-out=FILE] "
                         "[--metrics-format=json|prom]\n"
                         "  [--request-file=FILE] [--trace-out=FILE]\n";
            std::exit(0);
        } else if (consumeFlag(arg, "--threads=", value)) {
            options.threads = static_cast<unsigned>(
                std::strtoul(std::string(value).c_str(), nullptr, 10));
            options.threadsSet = true;
        } else if (consumeFlag(arg, "--seed=", value)) {
            options.seed = std::strtoull(std::string(value).c_str(),
                                         nullptr, 10);
            options.seedSet = true;
        } else if (consumeFlag(arg, "--metrics-out=", value)) {
            options.metricsOut = std::string(value);
        } else if (consumeFlag(arg, "--metrics-format=", value)) {
            options.metricsFormat = std::string(value);
            options.metricsFormatSet = true;
        } else if (consumeFlag(arg, "--request-file=", value)) {
            options.requestFile = std::string(value);
        } else if (consumeFlag(arg, "--trace-out=", value)) {
            options.traceOut = std::string(value);
        } else if (!arg.empty() && arg[0] == '-' &&
                   !(arg.size() > 1 &&
                     (std::isdigit(static_cast<unsigned char>(arg[1])) !=
                      0))) {
            std::cerr << argv[0] << ": unknown flag '" << arg << "'\n"
                      << "usage: " << argv[0] << " " << usage << "\n";
            std::exit(2);
        } else {
            options.positional.push_back(
                std::strtol(std::string(arg).c_str(), nullptr, 10));
            options.positionalRaw.emplace_back(arg);
        }
    }

    if (options.metricsFormat != "json" && options.metricsFormat != "prom") {
        std::cerr << argv[0] << ": --metrics-format must be json or prom\n";
        std::exit(2);
    }
    if (!options.metricsFormatSet && !options.metricsOut.empty() &&
        options.metricsOut.size() >= 5 &&
        options.metricsOut.compare(options.metricsOut.size() - 5, 5,
                                   ".prom") == 0) {
        options.metricsFormat = "prom";
    }
    return options;
}

/**
 * Write the global registry's snapshot to options.metricsOut (no-op
 * when the flag was not given). Returns false and warns on I/O failure
 * so benches can surface it without aborting their report.
 */
inline bool
exportMetricsIfRequested(const BenchOptions &options)
{
    if (options.metricsOut.empty())
        return true;
    std::ofstream out(options.metricsOut);
    if (!out) {
        std::cerr << "warning: cannot open " << options.metricsOut
                  << " for metrics export\n";
        return false;
    }
    if (options.metricsFormat == "prom")
        obs::renderPrometheus(out); // the shared daemon/bench scrape path
    else
        obs::renderMetricsJson(out, obs::globalMetrics().snapshot());
    out.flush();
    if (!out) {
        std::cerr << "warning: short write to " << options.metricsOut
                  << "\n";
        return false;
    }
    std::cerr << "metrics (" << options.metricsFormat << ") -> "
              << options.metricsOut << "\n";
    return true;
}

} // namespace autofsm::bench

#endif // AUTOFSM_BENCH_COMMON_HH
