/**
 * @file
 * Benchmarks the multi-order profiling engine (fsmgen/profile.hh)
 * against a faithful replica of the seed's per-order training: one
 * baseline BTB pass plus one sparse-map trace walk *per order*, as
 * figure5's order sweep used to do. The engine path makes one baseline
 * pass and one counting walk at the maximum order, then folds the lower
 * orders out. Every per-order model must be bit-identical between the
 * two paths or the bench aborts.
 *
 * A second timed section designs every swept model into an FSM through
 * the shared design flow, reporting machines/sec and the design-memo
 * hit rate (flow/design_memo.hh): across branches and orders many
 * truth tables coincide, so the minimize->regex->NFA->DFA->reduce tail
 * is shared.
 *
 * Usage: bench_profile [branches_per_run] [json_out]
 *   branches_per_run  dynamic branches per trace (default 400000)
 *   json_out          wall-clock report path (default BENCH_profile.json)
 * --repeat=N times the two sweep sections N times and reports the
 * median run (the design section stays single-shot: its memo hit rate
 * is part of the report and re-running would warm it).
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bpred/trainer.hh"
#include "flow/batch.hh"
#include "flow/design_memo.hh"
#include "fsmgen/designer.hh"
#include "fsmgen/profile.hh"
#include "support/history.hh"
#include "support/json.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/**
 * Faithful replica of the seed's order sweep: for every order, a fresh
 * baseline profiling pass ranks the branches, then a sparse-map walk
 * trains one MarkovModel per selected branch. Returns models indexed
 * [order][branch] with branches in ranked order.
 */
std::vector<std::vector<MarkovModel>>
seedOrderSweep(const BranchTrace &trace, const std::vector<int> &orders,
               const CustomTrainingOptions &options)
{
    std::vector<std::vector<MarkovModel>> per_order;
    per_order.reserve(orders.size());
    for (const int order : orders) {
        const auto ranked = profileBaselineMisses(trace, options.baseline);
        const size_t count = std::min(
            ranked.size(), static_cast<size_t>(options.maxCustomBranches));

        std::unordered_map<uint64_t, MarkovModel> models;
        for (size_t i = 0; i < count; ++i)
            models.emplace(ranked[i].first, MarkovModel(order));

        HistoryRegister global(order);
        for (const auto &record : trace) {
            const auto it = models.find(record.pc);
            if (it != models.end() && global.warm())
                it->second.observe(global.value(), record.taken ? 1 : 0);
            global.push(record.taken ? 1 : 0);
        }

        std::vector<MarkovModel> out;
        out.reserve(count);
        for (size_t i = 0; i < count; ++i)
            out.push_back(std::move(models.at(ranked[i].first)));
        per_order.push_back(std::move(out));
    }
    return per_order;
}

struct BenchmarkTiming
{
    std::string name;
    double perOrderMs = 0.0; ///< seed replica: one walk per order
    double sweepMs = 0.0;    ///< engine: one walk + folds
    /**
     * Engine stage: standalone counting pass. Zero when the caller
     * feeds observe() inline (the trainer does), in which case the
     * counting time is part of sweepMs.
     */
    double countMs = 0.0;
    double foldMs = 0.0;     ///< engine stage: order-ladder folds
    double replayMs = 0.0;   ///< engine stage: warm-up replay
    double designMs = 0.0;   ///< designing every swept model
    size_t machines = 0;     ///< machines designed

    double
    speedup() const
    {
        return sweepMs > 0.0 ? perOrderMs / sweepMs : 0.0;
    }

    double
    machinesPerSec() const
    {
        return designMs > 0.0
            ? static_cast<double>(machines) * 1000.0 / designMs
            : 0.0;
    }
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args =
        bench::parseBenchArgs(argc, argv, "[branches_per_run] [json_out]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 400000));
    const std::string json_out = args.positionalOr(1, "BENCH_profile.json");

    std::vector<int> orders;
    for (int order = 2; order <= 10; ++order)
        orders.push_back(order);

    CustomTrainingOptions options;

    std::cout << "Profiling-engine benchmark: fold sweep vs per-order "
                 "training (orders 2-10, "
              << branches << " branches/run)\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(12) << "perorder"
              << std::setw(10) << "sweep" << std::setw(9) << "speedup"
              << std::setw(10) << "design" << std::setw(12) << "mach/s"
              << "\n";

    const DesignMemoStats memo_before = designMemoStats();
    std::vector<BenchmarkTiming> timings;

    for (const std::string &name : branchBenchmarkNames()) {
        const auto train_trace =
            cachedBranchTrace(name, WorkloadInput::Train, branches);
        const BranchTrace &train = *train_trace;

        BenchmarkTiming timing;
        timing.name = name;

        // Seed replica: per-order baseline pass + sparse walk. Both
        // paths train from scratch each run, so --repeat=N re-runs
        // them unchanged and the upper median drops cold-cache noise.
        std::vector<std::vector<MarkovModel>> seed_models;
        timing.perOrderMs = bench::medianRunMillis(args, [&] {
            seed_models = seedOrderSweep(train, orders, options);
        });

        // Engine: one baseline pass, one counting walk, fold the rest.
        std::vector<BranchModelSweep> sweeps;
        timing.sweepMs = bench::medianRunMillis(args, [&] {
            sweeps = collectBranchModelSweeps(train, orders, options);
        });

        for (const BranchModelSweep &sweep : sweeps) {
            timing.countMs += sweep.profile.stats().countMillis;
            timing.foldMs += sweep.profile.stats().foldMillis;
            timing.replayMs += sweep.profile.stats().replayMillis;
        }

        // Fold-vs-direct bit-identity: every model, every order.
        for (size_t oi = 0; oi < orders.size(); ++oi) {
            if (seed_models[oi].size() != sweeps.size()) {
                std::cerr << "FATAL: " << name << " order " << orders[oi]
                          << ": branch count mismatch ("
                          << seed_models[oi].size() << " vs "
                          << sweeps.size() << ")\n";
                return 1;
            }
            for (size_t bi = 0; bi < sweeps.size(); ++bi) {
                if (!markovEqual(seed_models[oi][bi],
                                 sweeps[bi].profile.model(orders[oi]))) {
                    std::cerr << "FATAL: " << name << " order "
                              << orders[oi] << " branch " << bi
                              << ": fold-derived table differs from "
                                 "direct training\n";
                    return 1;
                }
            }
        }

        // Design throughput: every swept model through the shared flow.
        const auto design_start = Clock::now();
        for (const int order : orders) {
            FsmDesignOptions design;
            design.order = order;
            design.patterns = options.patterns;
            design.minimizer = options.minimizer;
            for (const BranchModelSweep &sweep : sweeps) {
                const FsmDesignResult designed =
                    designFsm(sweep.profile.model(order), design);
                timing.machines += designed.fsm.numStates() > 0;
            }
        }
        timing.designMs = millisSince(design_start);

        std::cout << std::setw(10) << timing.name << std::setw(12)
                  << std::fixed << std::setprecision(1) << timing.perOrderMs
                  << std::setw(10) << timing.sweepMs << std::setw(8)
                  << std::setprecision(2) << timing.speedup() << "x"
                  << std::setw(10) << std::setprecision(1)
                  << timing.designMs << std::setw(12) << std::setprecision(0)
                  << timing.machinesPerSec() << "\n";
        timings.push_back(timing);
    }

    const DesignMemoStats memo_after = designMemoStats();
    const uint64_t memo_hits = memo_after.hits - memo_before.hits;
    const uint64_t memo_misses = memo_after.misses - memo_before.misses;

    double per_order_total = 0.0, sweep_total = 0.0, design_total = 0.0;
    size_t machines_total = 0;
    for (const auto &timing : timings) {
        per_order_total += timing.perOrderMs;
        sweep_total += timing.sweepMs;
        design_total += timing.designMs;
        machines_total += timing.machines;
    }
    const double overall =
        sweep_total > 0.0 ? per_order_total / sweep_total : 0.0;

    std::cout << "\ntotal: per-order " << std::setprecision(1)
              << per_order_total << " ms, sweep " << sweep_total
              << " ms, speedup " << std::setprecision(2) << overall
              << "x\ndesign: " << machines_total << " machines in "
              << std::setprecision(1) << design_total << " ms ("
              << std::setprecision(0)
              << (design_total > 0.0
                      ? static_cast<double>(machines_total) * 1000.0 /
                          design_total
                      : 0.0)
              << " machines/s), memo " << memo_hits << " hits / "
              << memo_misses << " misses\n";
    std::cout << "fold-derived tables bit-identical to direct training\n";

    std::ofstream out(json_out);
    if (!out) {
        std::cerr << "FATAL: cannot write " << json_out << "\n";
        return 1;
    }
    JsonWriter json(out);
    json.beginObject();
    json.key("bench").value("profile");
    json.key("branches_per_run").value(static_cast<uint64_t>(branches));
    json.key("order_min").value(static_cast<uint64_t>(orders.front()));
    json.key("order_max").value(static_cast<uint64_t>(orders.back()));
    json.key("benchmarks").beginArray();
    for (const auto &timing : timings) {
        json.beginObject();
        json.key("name").value(timing.name);
        json.key("per_order_ms").value(timing.perOrderMs);
        json.key("sweep_ms").value(timing.sweepMs);
        json.key("speedup").value(timing.speedup());
        json.key("count_ms").value(timing.countMs);
        json.key("fold_ms").value(timing.foldMs);
        json.key("replay_ms").value(timing.replayMs);
        json.key("design_ms").value(timing.designMs);
        json.key("machines").value(static_cast<uint64_t>(timing.machines));
        json.key("machines_per_sec").value(timing.machinesPerSec());
        json.endObject();
    }
    json.endArray();
    json.key("per_order_ms_total").value(per_order_total);
    json.key("sweep_ms_total").value(sweep_total);
    json.key("speedup").value(overall);
    json.key("design_ms_total").value(design_total);
    json.key("machines_total").value(static_cast<uint64_t>(machines_total));
    json.key("designmemo_hits").value(memo_hits);
    json.key("designmemo_misses").value(memo_misses);
    json.key("identical").value(true);
    json.endObject();
    out << "\n";

    bench::exportMetricsIfRequested(args);
    return 0;
}
