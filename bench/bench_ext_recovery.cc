/**
 * @file
 * Extension experiment: confidence utility under the two recovery
 * models of Section 6.2.
 *
 * With squash recovery a value misprediction is expensive (the paper:
 * "a very accurate SUD counter was needed ... but this resulted in low
 * coverage"); with re-execution recovery the penalty is small and
 * coverage matters more. This bench scores every estimator by
 * utility = (confident & correct) * gain - (confident & wrong) * penalty
 * and reports the best SUD configuration against the best custom FSM
 * per policy - showing the designed estimators win under both regimes
 * by picking a different point on their own Pareto curve.
 *
 * Usage: bench_ext_recovery [loads_per_benchmark]
 */

#include <iomanip>
#include <iostream>

#include "fsmgen/designer.hh"
#include "vpred/conf_sim.hh"
#include "workloads/value_workloads.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

struct Policy
{
    const char *name;
    double gain;
    double penalty;
};

double
utility(const ConfidenceResult &r, const Policy &policy)
{
    return policy.gain * static_cast<double>(r.confidentCorrect) -
        policy.penalty *
        static_cast<double>(r.confident - r.confidentCorrect);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[loads_per_run]");
    const size_t loads =
        static_cast<size_t>(args.positionalOr(0, 150000));

    const StrideConfig stride;
    const Policy policies[] = {
        {"re-execution (penalty 1)", 1.0, 1.0},
        {"squash (penalty 10)", 1.0, 10.0},
    };

    std::cout << "Extension: confidence utility under squash vs "
                 "re-execution recovery (Section 6.2)\n\n";

    for (const std::string &name : valueBenchmarkNames()) {
        const ValueTrace own = makeValueTrace(name, loads);

        // Cross-trained model, history 8.
        MarkovModel model(8);
        for (const std::string &other : valueBenchmarkNames()) {
            if (other == name)
                continue;
            const ValueTrace trace = makeValueTrace(other, loads);
            collectConfidenceModels(trace, stride, {&model});
        }

        for (const Policy &policy : policies) {
            // Best SUD configuration for this policy.
            double best_sud = -1e18;
            std::string best_sud_name;
            for (int max : {5, 10, 20, 40}) {
                for (int dec : {1, 2, 5, 10, max + 1}) {
                    for (double frac : {0.5, 0.8, 0.9}) {
                        SudConfig config{max, 1, dec,
                                         std::max(1, static_cast<int>(
                                             frac * max + 0.5))};
                        SudConfidence estimator(
                            static_cast<size_t>(stride.entries), config);
                        const ConfidenceResult r = simulateConfidence(
                            own, stride, estimator);
                        const double u = utility(r, policy);
                        if (u > best_sud) {
                            best_sud = u;
                            best_sud_name = estimator.name();
                        }
                    }
                }
            }

            // Best FSM threshold for this policy.
            double best_fsm = -1e18;
            double best_fsm_thr = 0.0;
            for (double threshold :
                 {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98}) {
                FsmDesignOptions design;
                design.order = 8;
                design.patterns.threshold = threshold;
                const FsmDesignResult designed = designFsm(model, design);
                FsmConfidence estimator(
                    static_cast<size_t>(stride.entries), designed.fsm);
                const ConfidenceResult r =
                    simulateConfidence(own, stride, estimator);
                const double u = utility(r, policy);
                if (u > best_fsm) {
                    best_fsm = u;
                    best_fsm_thr = threshold;
                }
            }

            const double per_load =
                static_cast<double>(loads ? loads : 1);
            std::cout << std::setw(8) << name << "  "
                      << std::setw(26) << policy.name << ": best sud "
                      << std::fixed << std::setprecision(3)
                      << best_sud / per_load << "/load ("
                      << best_sud_name << "), best fsm "
                      << best_fsm / per_load << "/load (thr "
                      << std::setprecision(2) << best_fsm_thr << ")\n";
        }
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
