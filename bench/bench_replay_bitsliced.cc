/**
 * @file
 * Throughput bench of the bit-sliced replay engine (sim/bitsliced.hh)
 * against the transposed per-machine replay it replaced, over trained
 * Figure 5 machines on a real workload trace. Bit-identity between the
 * two paths — and across shard counts and the scalar/SIMD kernels — is
 * enforced: any divergence exits non-zero, so the speedup number can
 * only come from a correct replay.
 *
 * The headline (CI-gated) number is the batch evaluation shape: every
 * machine predicts at every record. The old path's chunk/nibble tables
 * can only *advance* across records, not count misses inside a chunk,
 * so predicting everywhere degenerates it to bit-at-a-time stepping —
 * the exact algorithmic gap the mask-plane composition tables close.
 * The per-branch sparse replay (each machine counting only at its own
 * branch's positions, where the old chunk path skips 8 records per
 * lookup) is also timed and reported as `sparseSpeedup`, ungated.
 *
 * Writes [json_out] (default BENCH_replay.json) for the CI gate:
 * `identical` plus the evaluation-replay `speedup` (old path / engine).
 *
 * Usage: bench_replay_bitsliced [branches] [machines] [json_out]
 *        (--threads=N, --shards=N, --repeat=N apply; threads default 1
 *         so the headline number is a single-core comparison)
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "automata/dfa.hh"
#include "bpred/trainer.hh"
#include "sim/bitsliced.hh"
#include "sim/packed_trace.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/**
 * Verbatim replica of the per-machine transposed replay this engine
 * replaced (sim/sweep.cc before the bit-sliced rewrite), kept here as
 * the timed baseline so the comparison cannot drift as the library
 * evolves — the same idiom bench_sim_sweep uses for the seed path.
 */
struct FlatFsm
{
    explicit FlatFsm(const Dfa &dfa)
        : states(dfa.numStates()), start(dfa.start())
    {
        out.resize(static_cast<size_t>(states));
        for (int s = 0; s < states; ++s)
            out[static_cast<size_t>(s)] =
                static_cast<uint8_t>(dfa.output(s) ? 1 : 0);

        if (states <= 256) {
            next8.resize(static_cast<size_t>(states) * 2);
            for (int s = 0; s < states; ++s) {
                next8[static_cast<size_t>(s) * 2 + 0] =
                    static_cast<uint8_t>(dfa.next(s, 0));
                next8[static_cast<size_t>(s) * 2 + 1] =
                    static_cast<uint8_t>(dfa.next(s, 1));
            }
        } else {
            nextWide.resize(static_cast<size_t>(states) * 2);
            for (int s = 0; s < states; ++s) {
                nextWide[static_cast<size_t>(s) * 2 + 0] = dfa.next(s, 0);
                nextWide[static_cast<size_t>(s) * 2 + 1] = dfa.next(s, 1);
            }
        }

        if (states <= 64) {
            chunk.resize(256 * static_cast<size_t>(states));
            for (unsigned c = 0; c < 256; ++c) {
                for (int s = 0; s < states; ++s) {
                    uint32_t state = static_cast<uint32_t>(s);
                    for (int bit = 0; bit < 8; ++bit)
                        state = next8[state * 2 + ((c >> bit) & 1)];
                    chunk[c * static_cast<size_t>(states) +
                          static_cast<size_t>(s)] =
                        static_cast<uint8_t>(state);
                }
            }
        }

        if (states <= 256) {
            nibble.resize(16 * static_cast<size_t>(states));
            for (unsigned c = 0; c < 16; ++c) {
                for (int s = 0; s < states; ++s) {
                    uint32_t state = static_cast<uint32_t>(s);
                    for (int bit = 0; bit < 4; ++bit)
                        state = next8[state * 2 + ((c >> bit) & 1)];
                    nibble[c * static_cast<size_t>(states) +
                           static_cast<size_t>(s)] =
                        static_cast<uint8_t>(state);
                }
            }
        }
    }

    int states;
    int start;
    std::vector<uint8_t> out;
    std::vector<uint8_t> next8;
    std::vector<int> nextWide;
    std::vector<uint8_t> chunk;
    std::vector<uint8_t> nibble;
};

template <typename NextTable>
uint64_t
replayStream(const FlatFsm &fsm, const NextTable &next,
             const uint64_t *words, size_t n,
             const std::vector<uint32_t> &positions)
{
    uint64_t misses = 0;
    uint32_t state = static_cast<uint32_t>(fsm.start);
    const bool chunked = !fsm.chunk.empty();
    const bool nibbled = !fsm.nibble.empty();
    const size_t states = static_cast<size_t>(fsm.states);
    size_t p = 0;
    const size_t npos = positions.size();
    size_t i = 0;
    while (i < n) {
        const size_t next_match = p < npos ? positions[p] : n;
        if (chunked && (i & 7) == 0 && i + 8 <= n && next_match >= i + 8) {
            const uint8_t c = static_cast<uint8_t>(
                (words[i >> 6] >> (i & 63)) & 0xff);
            state = fsm.chunk[static_cast<size_t>(c) * states + state];
            i += 8;
            continue;
        }
        if (nibbled && (i & 3) == 0 && i + 4 <= n && next_match >= i + 4) {
            const uint8_t c = static_cast<uint8_t>(
                (words[i >> 6] >> (i & 63)) & 0xf);
            state = fsm.nibble[static_cast<size_t>(c) * states + state];
            i += 4;
            continue;
        }
        const uint8_t bit = static_cast<uint8_t>(
            (words[i >> 6] >> (i & 63)) & 1ULL);
        if (i == next_match) {
            misses += static_cast<uint64_t>(fsm.out[state] != bit);
            ++p;
        }
        state = static_cast<uint32_t>(next[state * 2 + bit]);
        ++i;
    }
    return misses;
}

uint64_t
replayOne(const FlatFsm &fsm, const uint64_t *words, size_t n,
          const std::vector<uint32_t> &positions)
{
    if (!fsm.next8.empty())
        return replayStream(fsm, fsm.next8, words, n, positions);
    return replayStream(fsm, fsm.nextWide, words, n, positions);
}

/** Dense baseline: the straightforward predict-every-record loop. */
uint64_t
replayDenseNaive(const FlatFsm &fsm, const uint64_t *words, size_t n)
{
    uint64_t misses = 0;
    uint32_t state = static_cast<uint32_t>(fsm.start);
    for (size_t i = 0; i < n; ++i) {
        const uint8_t bit = static_cast<uint8_t>(
            (words[i >> 6] >> (i & 63)) & 1ULL);
        misses += static_cast<uint64_t>(fsm.out[state] != bit);
        state = fsm.next8[state * 2 + bit];
    }
    return misses;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(
        argc, argv, "[branches] [machines] [json_out]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 400000));
    const size_t machine_count =
        static_cast<size_t>(args.positionalOr(1, 64));
    const std::string json_out = args.positionalOr(2, "BENCH_replay.json");
    const unsigned threads = args.threadsSet ? args.threads : 1;

    std::cout << "bit-sliced replay bench: " << branches << " branches, "
              << machine_count << " machines, threads " << threads
              << ", repeat " << args.repeat << "\n"
              << "SIMD kernel: "
              << (bitslicedSimdCompiled() ? "compiled" : "compiled out")
              << ", "
              << (bitslicedSimdAvailable() ? "cpu-supported"
                                           : "not cpu-supported")
              << "\n\n";

    // Trained Figure 5 machines on a real trace give the replay its
    // production shape (small minimized FSMs, clustered positions);
    // padding by duplication scales the lane count without inventing
    // synthetic automata.
    const auto trace = cachedBranchTrace("gs", WorkloadInput::Train,
                                         branches);
    CustomTrainingOptions training;
    training.maxCustomBranches =
        static_cast<int>(std::min<size_t>(machine_count, 64));
    training.threads = threads;
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(*trace, training);
    if (trained.empty()) {
        std::cerr << "FATAL: no machines trained\n";
        return 1;
    }

    const PackedTrace packed(*trace);
    const uint64_t *words = packed.takenWords().data();
    const size_t n = packed.size();

    // Pad to the requested lane count by cyclic duplication, but give
    // each duplicate a disjoint slice of its branch's position list —
    // the shape of a trace whose 64 hot branches were all trained:
    // position lists partition the records instead of overlapping.
    std::vector<const Dfa *> fsms(machine_count);
    std::vector<std::vector<uint32_t>> positions(machine_count);
    const size_t dup =
        (machine_count + trained.size() - 1) / trained.size();
    for (size_t m = 0; m < machine_count; ++m) {
        const TrainedBranch &branch = trained[m % trained.size()];
        fsms[m] = &branch.design.fsm;
        const std::vector<uint32_t> &all = branch.trainPositions;
        const size_t slice = m / trained.size();
        for (size_t i = slice; i < all.size(); i += dup)
            positions[m].push_back(all[i]);
    }

    std::vector<FlatFsm> flat;
    flat.reserve(machine_count);
    for (size_t m = 0; m < machine_count; ++m)
        flat.emplace_back(*fsms[m]);

    BitslicedOptions options;
    options.threads = threads;
    options.shards = args.shards;

    // =====================================================================
    // Headline: evaluation replay — every machine predicts at every
    // record (the batch evaluation stage's shape). The old path has one
    // way to do that: a full position list, which disables its chunk
    // and nibble tables (they cannot count misses mid-chunk) and steps
    // bit by bit.
    // =====================================================================
    std::vector<uint32_t> all_positions(n);
    for (size_t i = 0; i < n; ++i)
        all_positions[i] = static_cast<uint32_t>(i);

    std::vector<uint64_t> base_misses(machine_count);
    const double baseline_ms = bench::medianRunMillis(args, [&] {
        parallelFor(
            machine_count,
            [&](size_t m) {
                base_misses[m] =
                    replayOne(flat[m], words, n, all_positions);
            },
            threads);
    });

    // The hand-written predict-every-record loop, for context: it
    // shows how much of the gap is the old path's position bookkeeping
    // versus the dependent-chain latency the engine actually removes.
    std::vector<uint64_t> naive_misses(machine_count);
    const double naive_ms = bench::medianRunMillis(args, [&] {
        parallelFor(
            machine_count,
            [&](size_t m) {
                naive_misses[m] = replayDenseNaive(flat[m], words, n);
            },
            threads);
    });
    bool identical = naive_misses == base_misses;

    std::vector<BitslicedMachine> machines(machine_count);
    for (size_t m = 0; m < machine_count; ++m)
        machines[m] = BitslicedMachine{fsms[m], nullptr};
    BitslicedReplayStats stats;
    std::vector<uint64_t> sliced_misses;
    const double sliced_ms = bench::medianRunMillis(args, [&] {
        sliced_misses =
            replayMachinesBitsliced(machines, words, n, options, &stats);
    });
    identical = identical && sliced_misses == base_misses;

    // --- Shard sweep: every count must reproduce the same tallies.
    struct ShardPoint
    {
        size_t shards;
        double ms;
    };
    std::vector<ShardPoint> shard_sweep;
    for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        BitslicedOptions sharded = options;
        sharded.shards = shards;
        std::vector<uint64_t> misses;
        const double ms = bench::medianRunMillis(args, [&] {
            misses = replayMachinesBitsliced(machines, words, n, sharded);
        });
        shard_sweep.push_back({shards, ms});
        if (misses != base_misses) {
            std::cerr << "FATAL: shard count " << shards
                      << " diverged from the per-machine replay\n";
            identical = false;
        }
    }

    // --- Scalar kernel must agree when SIMD ran (and vice versa).
    double scalar_ms = 0.0;
    {
        BitslicedOptions scalar = options;
        scalar.allowSimd = false;
        std::vector<uint64_t> misses;
        scalar_ms = bench::medianRunMillis(args, [&] {
            misses = replayMachinesBitsliced(machines, words, n, scalar);
        });
        if (misses != base_misses) {
            std::cerr << "FATAL: scalar lane kernel diverged\n";
            identical = false;
        }
    }

    const double machines_per_s_base =
        baseline_ms > 0.0 ? machine_count * 1000.0 / baseline_ms : 0.0;
    const double machines_per_s_sliced =
        sliced_ms > 0.0 ? machine_count * 1000.0 / sliced_ms : 0.0;
    const double speedup =
        sliced_ms > 0.0 ? baseline_ms / sliced_ms : 0.0;

    std::cout << std::fixed << std::setprecision(2)
              << "evaluation replay (" << machine_count << " machines x "
              << n << " records, predict everywhere):\n"
              << "  per-machine baseline " << baseline_ms << " ms ("
              << std::setprecision(0) << machines_per_s_base
              << " machines/s; naive loop " << std::setprecision(2)
              << naive_ms << " ms)\n"
              << "  bit-sliced           " << sliced_ms << " ms ("
              << std::setprecision(0) << machines_per_s_sliced
              << " machines/s), " << stats.groups << " groups, "
              << stats.shards << " shards, simd="
              << (stats.simd ? "yes" : "no") << ", fallbacks="
              << stats.serialFallbacks << "\n"
              << std::setprecision(2) << "  speedup " << speedup
              << "x (scalar kernel " << scalar_ms
              << " ms)\n\nshard sweep (threads " << threads << "):\n";
    for (const ShardPoint &point : shard_sweep) {
        std::cout << "  shards " << point.shards << ": "
                  << std::setprecision(2) << point.ms << " ms\n";
    }

    // =====================================================================
    // Sparse replay — each machine counts only at its own branch's
    // positions, replayCustomMachines' shape. Here the old path is at
    // its best (chunk lookups skip 8 records between positions), so
    // the margin is structural, not a gate.
    // =====================================================================
    std::vector<uint64_t> sparse_base(machine_count);
    const double sparse_base_ms = bench::medianRunMillis(args, [&] {
        parallelFor(
            machine_count,
            [&](size_t m) {
                sparse_base[m] =
                    replayOne(flat[m], words, n, positions[m]);
            },
            threads);
    });
    std::vector<BitslicedMachine> sparse_machines(machine_count);
    for (size_t m = 0; m < machine_count; ++m)
        sparse_machines[m] = BitslicedMachine{fsms[m], &positions[m]};
    std::vector<uint64_t> sparse_sliced;
    const double sparse_ms = bench::medianRunMillis(args, [&] {
        sparse_sliced =
            replayMachinesBitsliced(sparse_machines, words, n, options);
    });
    if (sparse_sliced != sparse_base) {
        std::cerr << "FATAL: sparse replay diverged from the "
                     "per-machine baseline\n";
        identical = false;
    }
    for (const size_t shards : {size_t{3}, size_t{7}}) {
        BitslicedOptions sharded = options;
        sharded.shards = shards;
        if (replayMachinesBitsliced(sparse_machines, words, n, sharded) !=
            sparse_base) {
            std::cerr << "FATAL: sparse replay diverged at shard count "
                      << shards << "\n";
            identical = false;
        }
    }
    const double sparse_speedup =
        sparse_ms > 0.0 ? sparse_base_ms / sparse_ms : 0.0;
    std::cout << "\nsparse replay (per-branch positions):\n"
              << "  baseline " << std::setprecision(2) << sparse_base_ms
              << " ms, bit-sliced " << sparse_ms << " ms => "
              << sparse_speedup << "x\n";

    std::ofstream report(json_out);
    if (!report) {
        std::cerr << "FATAL: cannot write " << json_out << "\n";
        return 1;
    }
    JsonWriter json(report);
    json.beginObject();
    json.key("bench").value("replay-bitsliced");
    json.key("branches").value(static_cast<uint64_t>(n));
    json.key("machines").value(static_cast<uint64_t>(machine_count));
    json.key("threads").value(threads);
    json.key("repeat").value(static_cast<uint64_t>(args.repeat));
    json.key("baselineMs").value(baseline_ms);
    json.key("naiveMs").value(naive_ms);
    json.key("bitslicedMs").value(sliced_ms);
    json.key("scalarMs").value(scalar_ms);
    json.key("speedup").value(speedup);
    json.key("machinesPerSecBaseline").value(machines_per_s_base);
    json.key("machinesPerSecBitsliced").value(machines_per_s_sliced);
    json.key("shardSweep");
    json.beginArray();
    for (const ShardPoint &point : shard_sweep) {
        json.beginObject();
        json.key("shards").value(static_cast<uint64_t>(point.shards));
        json.key("ms").value(point.ms);
        json.endObject();
    }
    json.endArray();
    json.key("sparseBaselineMs").value(sparse_base_ms);
    json.key("sparseBitslicedMs").value(sparse_ms);
    json.key("sparseSpeedup").value(sparse_speedup);
    json.key("groups").value(static_cast<uint64_t>(stats.groups));
    json.key("shards").value(static_cast<uint64_t>(stats.shards));
    json.key("simd").value(stats.simd);
    json.key("simdCompiled").value(bitslicedSimdCompiled());
    json.key("serialFallbacks")
        .value(static_cast<uint64_t>(stats.serialFallbacks));
    json.key("identical").value(identical);
    json.endObject();
    report << "\n";
    std::cout << "\nreport -> " << json_out << "\n";

    bench::exportMetricsIfRequested(args);
    if (!identical) {
        std::cerr << "FATAL: bit-sliced replay diverged from the "
                     "per-machine baseline\n";
        return 1;
    }
    return 0;
}
