/**
 * @file
 * Benchmarks the parallel batch design pipeline on the Figure 5
 * workload: every hot branch of every branch benchmark is collected into
 * one batch, designed serially (the legacy per-item path) and then via
 * BatchDesigner at several thread counts. Verifies that every parallel
 * result is bit-identical to the serial one, reports the wall-clock
 * speedups, the memo-cache behavior, and the aggregate per-stage time
 * breakdown from the FlowTraces.
 *
 * With --request-file=FILE the synthetic workload is replaced by a
 * replay: the file's JSON array of DesignRequests (the flow/api.hh
 * schema the serve daemon speaks) is run through the same
 * BatchDesigner::designRequests engine the daemon dispatches to, with
 * the workload trace resolver installed so traceRef requests resolve.
 * Adding --trace-out=FILE records the replay's spans and writes them as
 * Chrome trace-event JSON.
 *
 * The synthetic run also measures the tracing tax and writes it to
 * [json_out] (default BENCH_serve.json) for the CI gate: one batch with
 * the tracer off vs on, plus a microbenchmark of the disabled-SpanScope
 * cost — `offOverheadFraction` estimates what the recorded span count
 * costs a tracing-off run, which the acceptance bar holds at <= 2%.
 *
 * Usage: bench_flow_batch [branches_per_run] [max_branches_per_benchmark]
 *                         [json_out]
 */

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "bpred/trainer.hh"
#include "flow/batch.hh"
#include "obs/export.hh"
#include "obs/span.hh"
#include "serve/server.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "support/thread_pool.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Replay a --request-file through the daemon's batch engine. */
int
replayRequestFile(const bench::BenchOptions &args)
{
    std::ifstream in(args.requestFile);
    if (!in) {
        std::cerr << "cannot open " << args.requestFile << "\n";
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<DesignRequest> requests;
    try {
        requests = designRequestsFromJson(text.str());
    } catch (const std::exception &e) {
        std::cerr << args.requestFile << ": " << e.what() << "\n";
        return 1;
    }

    serve::installWorkloadTraceResolver();
    if (!args.traceOut.empty()) {
        obs::globalTracer().clear();
        obs::globalTracer().enable(true);
    }
    BatchOptions batch;
    batch.threads = args.threads;
    BatchDesigner designer({}, batch);
    const auto start = std::chrono::steady_clock::now();
    const auto results = designer.designRequests(requests);
    const double wall_ms = millisSince(start);
    if (!args.traceOut.empty()) {
        obs::globalTracer().enable(false);
        const std::vector<obs::SpanRecord> spans =
            obs::globalTracer().drain();
        std::ofstream trace_out(args.traceOut);
        if (!trace_out) {
            std::cerr << "cannot write " << args.traceOut << "\n";
            return 1;
        }
        obs::renderTraceEvents(trace_out, spans);
        trace_out << "\n";
        std::cout << spans.size() << " spans -> " << args.traceOut
                  << "\n";
    }

    size_t failures = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const DesignResponse response =
            designResponseFromItem(requests[i], results[i]);
        if (response.ok) {
            std::cout << "id=" << response.id << " ok states="
                      << response.statesFinal
                      << (response.fromCache ? " cached" : "")
                      << (response.degraded ? " degraded" : "") << "\n";
        } else {
            ++failures;
            std::cout << "id=" << response.id << " FAILED ["
                      << response.error.stage << " " << response.error.kind
                      << "] " << response.error.detail << "\n";
        }
    }
    std::cout << "replayed " << results.size() << " requests in "
              << std::fixed << std::setprecision(1) << wall_ms << " ms ("
              << designer.stats().designed << " designed, "
              << designer.stats().cacheHits << " cached, " << failures
              << " failed)\n";
    bench::exportMetricsIfRequested(args);
    return failures == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(
        argc, argv,
        "[branches_per_run] [max_branches_per_benchmark] [json_out]");
    if (!args.requestFile.empty())
        return replayRequestFile(args);
    const size_t branches_per_run =
        static_cast<size_t>(args.positionalOr(0, 400000));
    const int max_branches = static_cast<int>(args.positionalOr(1, 12));
    const std::string json_out = args.positionalOr(2, "BENCH_serve.json");

    CustomTrainingOptions training;
    training.maxCustomBranches = max_branches;

    // --- Collect the Figure 5 workload: all hot branches, all programs.
    std::vector<MarkovModel> models;
    std::cout << "Figure 5 batch workload (" << branches_per_run
              << " branches/run, up to " << max_branches
              << " hot branches per benchmark):\n";
    for (const std::string &name : branchBenchmarkNames()) {
        const auto trace = cachedBranchTrace(
            name, WorkloadInput::Train, branches_per_run);
        const auto candidates = collectBranchModels(*trace, training);
        for (const auto &candidate : candidates)
            models.push_back(candidate.model);
        std::cout << "  " << name << ": " << candidates.size()
                  << " hot branches\n";
    }
    std::cout << "total batch size: " << models.size() << " machines, "
              << ThreadPool::defaultThreadCount()
              << " hardware threads\n\n";

    FsmDesignOptions design;
    design.order = training.historyLength;
    design.patterns = training.patterns;
    design.minimizer = training.minimizer;

    // --- Serial baseline: the legacy one-at-a-time path.
    const auto serial_start = std::chrono::steady_clock::now();
    std::vector<FsmDesignResult> serial;
    serial.reserve(models.size());
    for (const auto &model : models)
        serial.push_back(designFsm(model, design));
    const double serial_ms = millisSince(serial_start);
    std::cout << std::fixed << std::setprecision(1);
    std::cout << "serial designFsm loop: " << serial_ms << " ms\n\n";

    // --- Batch runs at increasing thread counts.
    std::cout << std::setw(8) << "threads" << std::setw(10) << "memo"
              << std::setw(12) << "wall ms" << std::setw(10) << "speedup"
              << std::setw(10) << "designed" << std::setw(10) << "cached"
              << std::setw(12) << "identical" << "\n";

    std::vector<BatchItemResult> last_results;
    for (const bool memoize : {false, true}) {
        for (const unsigned threads : {1u, 2u, 4u, 8u}) {
            BatchOptions batch;
            batch.threads = threads;
            batch.memoize = memoize;
            BatchDesigner designer(design, batch);

            const auto start = std::chrono::steady_clock::now();
            const auto results = designer.designAll(models);
            const double batch_ms = millisSince(start);

            bool identical = results.size() == serial.size();
            for (size_t i = 0; identical && i < results.size(); ++i) {
                identical = results[i].ok &&
                    results[i].flow.design.fsm.identical(serial[i].fsm);
            }

            std::cout << std::setw(8) << threads << std::setw(10)
                      << (memoize ? "on" : "off") << std::setw(12)
                      << batch_ms << std::setw(9) << std::setprecision(2)
                      << serial_ms / (batch_ms > 0.0 ? batch_ms : 1.0)
                      << "x" << std::setprecision(1) << std::setw(10)
                      << designer.stats().designed << std::setw(10)
                      << designer.stats().cacheHits << std::setw(12)
                      << (identical ? "yes" : "NO") << "\n";

            if (!identical) {
                std::cerr << "FATAL: batch output diverged from the "
                             "serial pipeline\n";
                return 1;
            }
            last_results = results;
        }
    }

    // --- Aggregate per-stage breakdown from the FlowTraces.
    std::map<std::string, double> stage_ms;
    std::map<std::string, int64_t> stage_metric;
    for (const auto &result : last_results) {
        for (const auto &stage : result.flow.trace.stages()) {
            stage_ms[flowStageName(stage.stage)] += stage.millis;
            stage_metric[flowStageName(stage.stage)] += stage.metric;
        }
    }
    std::cout << "\nper-stage totals across the batch (designed items):\n";
    for (const auto &[name, ms] : stage_ms) {
        std::cout << "  " << std::setw(14) << std::left << name
                  << std::right << std::setw(10) << std::setprecision(1)
                  << ms << " ms   metric sum " << stage_metric[name]
                  << "\n";
    }

    // --- Per-item latency spread (stage times from the FlowTraces).
    std::vector<double> item_ms;
    item_ms.reserve(last_results.size());
    for (const auto &result : last_results)
        item_ms.push_back(result.flow.trace.totalMillis());
    const Quantiles q = quantilesOf(item_ms);
    std::cout << "\nper-item design time: p50 " << std::setprecision(2)
              << q.p50 << " ms, p90 " << q.p90 << " ms, p99 " << q.p99
              << " ms over " << item_ms.size() << " items\n";

    // --- Tracing tax: one batch with the tracer off, one with it on.
    obs::Tracer &tracer = obs::globalTracer();
    tracer.enable(false);
    tracer.clear();
    BatchOptions overhead_batch;
    overhead_batch.threads = 4;
    overhead_batch.memoize = false;

    // Medians under --repeat: the on/off delta is small relative to
    // scheduler noise, so one cold shot routinely reported a negative
    // "tax".
    std::vector<BatchItemResult> off_results;
    const double off_ms = bench::medianRunMillis(args, [&] {
        off_results = BatchDesigner(design, overhead_batch).designAll(models);
    });

    tracer.enable(true);
    std::vector<BatchItemResult> on_results;
    const double on_ms = bench::medianRunMillis(args, [&] {
        // Keep only the final run's spans so the per-span projection
        // and the --trace-out export see one batch, not --repeat many.
        tracer.clear();
        on_results = BatchDesigner(design, overhead_batch).designAll(models);
    });
    tracer.enable(false);
    const std::vector<obs::SpanRecord> spans = tracer.drain();
    if (!args.traceOut.empty()) {
        std::ofstream trace_out(args.traceOut);
        if (!trace_out) {
            std::cerr << "cannot write " << args.traceOut << "\n";
            return 1;
        }
        obs::renderTraceEvents(trace_out, spans);
        trace_out << "\n";
        std::cout << spans.size() << " spans -> " << args.traceOut
                  << "\n";
    }

    bool overhead_identical =
        off_results.size() == serial.size() &&
        on_results.size() == serial.size();
    for (size_t i = 0; overhead_identical && i < serial.size(); ++i) {
        overhead_identical = off_results[i].ok && on_results[i].ok &&
            off_results[i].flow.design.fsm.identical(serial[i].fsm) &&
            on_results[i].flow.design.fsm.identical(serial[i].fsm);
    }

    // What tracing-off actually costs per instrumentation site: a
    // disabled SpanScope still reads the clock twice. Amortize it over
    // many iterations on a private, disabled tracer.
    obs::Tracer disabled;
    constexpr int kSpanIterations = 1000000;
    const auto span_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpanIterations; ++i)
        obs::SpanScope scope(&disabled, "bench.disabled");
    const double disabled_span_nanos =
        millisSince(span_start) * 1e6 / kSpanIterations;

    // Projected tracing-off tax on this batch: every span the traced
    // run recorded corresponds to one disabled SpanScope in the off
    // run.
    const double off_overhead_fraction = off_ms > 0.0
        ? static_cast<double>(spans.size()) * disabled_span_nanos /
            (off_ms * 1e6)
        : 0.0;
    const double trace_overhead =
        off_ms > 0.0 ? (on_ms - off_ms) / off_ms : 0.0;

    std::cout << "\ntracing tax: off " << std::setprecision(1) << off_ms
              << " ms, on " << on_ms << " ms (" << std::setprecision(2)
              << trace_overhead * 100.0 << "% recording), "
              << spans.size() << " spans, disabled span "
              << disabled_span_nanos << " ns => off-path overhead "
              << off_overhead_fraction * 100.0 << "%\n";

    std::ofstream report(json_out);
    if (!report) {
        std::cerr << "FATAL: cannot write " << json_out << "\n";
        return 1;
    }
    JsonWriter json(report);
    json.beginObject();
    json.key("bench").value("flow-batch-trace");
    json.key("offMs").value(off_ms);
    json.key("onMs").value(on_ms);
    json.key("traceOverhead").value(trace_overhead);
    json.key("spans").value(static_cast<uint64_t>(spans.size()));
    json.key("disabledSpanNanos").value(disabled_span_nanos);
    json.key("offOverheadFraction").value(off_overhead_fraction);
    json.key("identical").value(overhead_identical);
    json.endObject();
    report << "\n";
    if (!overhead_identical) {
        std::cerr << "FATAL: tracing on/off runs diverged from the "
                     "serial pipeline\n";
        return 1;
    }

    bench::exportMetricsIfRequested(args);
    return 0;
}
