/**
 * @file
 * Ablation of the don't-care mass (Section 4.3 claim: placing the 1%
 * least-seen histories in the don't-care set roughly halves predictor
 * size with negligible accuracy impact).
 *
 * For each branch benchmark, trains the single worst branch's FSM at
 * several don't-care fractions and reports final state count and the
 * branch's measured misprediction rate on the test input.
 */

#include <iomanip>
#include <iostream>

#include "bpred/trainer.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/history.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** Miss rate of @p fsm on branch @p pc over @p trace (update-on-every-
 *  branch semantics). */
double
fsmMissRate(const Dfa &fsm, uint64_t pc, const BranchTrace &trace)
{
    PredictorFsm machine(fsm);
    uint64_t executions = 0, misses = 0;
    for (const auto &record : trace) {
        if (record.pc == pc) {
            ++executions;
            misses += (machine.predict() != 0) != record.taken;
        }
        machine.update(record.taken ? 1 : 0);
    }
    return executions == 0
        ? 0.0
        : static_cast<double>(misses) / static_cast<double>(executions);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 200000));

    const std::vector<double> masses = {0.0, 0.005, 0.01, 0.02, 0.05};

    std::cout << "Ablation: don't-care sets vs FSM size and accuracy\n"
              << "(Section 4.3: don't-cares shrink the predictor with "
                 "negligible accuracy cost)\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(10) << "dc-mass"
              << std::setw(12) << "unseen-dc" << std::setw(10) << "states"
              << std::setw(12) << "miss" << "\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const auto train_trace =
            cachedBranchTrace(name, WorkloadInput::Train, branches);
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &train = *train_trace;
        const BranchTrace &test = *test_trace;

        auto report = [&](double mass, bool unseen_dc) {
            CustomTrainingOptions options;
            options.maxCustomBranches = 1;
            options.patterns.dontCareMass = mass;
            options.patterns.unseenAreDontCare = unseen_dc;
            const auto trained = trainCustomPredictors(train, options);
            if (trained.empty())
                return;
            const auto &branch = trained.front();
            const double miss =
                fsmMissRate(branch.design.fsm, branch.pc, test);
            std::cout << std::setw(10) << name << std::setw(9)
                      << std::fixed << std::setprecision(1)
                      << mass * 100.0 << "%" << std::setw(12)
                      << (unseen_dc ? "yes" : "no") << std::setw(10)
                      << branch.design.statesFinal << std::setw(11)
                      << std::setprecision(2) << miss * 100.0 << "%\n";
        };

        // Baseline: every unseen history forced into the OFF-set.
        report(0.0, false);
        for (double mass : masses)
            report(mass, true);
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
