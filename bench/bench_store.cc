/**
 * @file
 * Throughput of the persistent artifact/trace store: packed-trace
 * commit (write + fsync + rename), validated mmap load, and the
 * designed-FSM artifact round-trip. The store sits under the in-memory
 * caches, so its load path bounds how fast a daemon restart can warm
 * up and its commit path bounds write-through overhead on a design.
 *
 *     bench_store [--benchmark_filter=...]
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "flow/design_flow.hh"
#include "store/store.hh"
#include "support/rng.hh"

using namespace autofsm;

namespace
{

/** A scratch store directory, removed when the benchmark exits. */
class ScratchStore
{
  public:
    ScratchStore()
    {
        std::string tmpl = (std::filesystem::temp_directory_path() /
                            "autofsm-benchstore-XXXXXX")
                               .string();
        dir_ = ::mkdtemp(tmpl.data());
        store::StoreOptions options;
        options.dir = dir_;
        store_ = std::make_unique<store::ArtifactStore>(options);
    }

    ~ScratchStore()
    {
        store_.reset();
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    store::ArtifactStore &operator*() { return *store_; }
    store::ArtifactStore *operator->() { return store_.get(); }

  private:
    std::string dir_;
    std::unique_ptr<store::ArtifactStore> store_;
};

/** Deterministic packed-trace payload of @p branches branches. */
void
syntheticPacked(size_t branches, std::vector<uint64_t> *pcs,
                std::vector<uint64_t> *words)
{
    Rng rng(0xBEEF ^ branches);
    pcs->resize(branches);
    words->assign((branches + 63) / 64, 0);
    for (size_t i = 0; i < branches; ++i) {
        (*pcs)[i] = 0x400000 + rng.below(4096) * 4;
        if (rng.chance(0.7))
            (*words)[i >> 6] |= 1ULL << (i & 63);
    }
}

void
BM_StorePutTrace(benchmark::State &state)
{
    const size_t branches = static_cast<size_t>(state.range(0));
    std::vector<uint64_t> pcs, words;
    syntheticPacked(branches, &pcs, &words);
    ScratchStore store;
    uint64_t key = 0;
    for (auto _ : state) {
        // A fresh key each iteration: measure commit, not overwrite.
        const std::string keyText = "bench-" + std::to_string(key++);
        benchmark::DoNotOptimize(
            store->putTrace(keyText, pcs, words, branches));
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(pcs.size() * 8 + words.size() * 8));
}
BENCHMARK(BM_StorePutTrace)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_StoreLoadTrace(benchmark::State &state)
{
    const size_t branches = static_cast<size_t>(state.range(0));
    std::vector<uint64_t> pcs, words;
    syntheticPacked(branches, &pcs, &words);
    ScratchStore store;
    store->putTrace("bench", pcs, words, branches);
    for (auto _ : state) {
        // Each load re-validates the header and section CRCs, then
        // maps the payload zero-copy.
        auto blob = store->loadTrace("bench");
        benchmark::DoNotOptimize(blob->pcs.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(pcs.size() * 8 + words.size() * 8));
}
BENCHMARK(BM_StoreLoadTrace)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void
BM_StoreDesignRoundTrip(benchmark::State &state)
{
    // One real designed artifact, committed and re-loaded per
    // iteration: the write-through + warm-start path of design_memo.
    std::vector<int> trace;
    Rng rng(0xD15C);
    for (size_t i = 0; i < 600; ++i)
        trace.push_back(rng.chance(0.7));
    FsmDesignOptions options;
    options.order = 3;
    const FsmDesignResult design =
        DesignFlow(options).runOnTrace(trace).design;

    store::DesignArtifact artifact;
    artifact.order = design.patterns.order;
    artifact.minimizer = 1;
    artifact.predictOne = design.patterns.predictOne;
    artifact.dontCare = design.patterns.dontCare;
    artifact.cover = design.cover;
    artifact.regexText = design.regexText;
    artifact.beforeReduction = design.beforeReduction;
    artifact.fsm = design.fsm;
    artifact.statesSubset = design.statesSubset;
    artifact.statesHopcroft = design.statesHopcroft;
    artifact.statesFinal = design.statesFinal;

    ScratchStore store;
    const uint64_t keyHash = store::hashBytes("bench-design");
    for (auto _ : state) {
        store->putDesign(keyHash, artifact);
        auto loaded = store->loadDesign(keyHash);
        benchmark::DoNotOptimize(loaded->statesFinal);
    }
}
BENCHMARK(BM_StoreDesignRoundTrip);

} // anonymous namespace

BENCHMARK_MAIN();
