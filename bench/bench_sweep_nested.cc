/**
 * @file
 * Benchmarks the nested-index sweep engine (sim/nested_sweep.hh)
 * against the PR-3 batch path (sweepKernelBatch) on the Figure-5 sweep
 * shape: gshare 2^{8,10,12,14,16} plus LGC 2^{8,10,12,13} on one test
 * trace. The timed comparison covers exactly those two families - one
 * batch pass per family versus one fused nested pass for everything.
 * The XScale BTB point is evaluated through the engine too and checked
 * for identity (lookups and hits included), but reported untimed: the
 * batch path never serviced BTB points, so timing it would compare
 * against nothing.
 *
 * Before timing, every point is checked bit-identical against the
 * per-config sweepKernelRaw oracle across shard counts {1, 2, 3, 7,
 * 16}, the engine's auto shard choice, and both SIMD settings; any
 * divergence aborts the bench. CI gates on `identical` and `speedup`
 * in the JSON report.
 *
 * Usage: bench_sweep_nested [benchmark] [branches_per_run] [json_out]
 *   benchmark         trace name (default "compress")
 *   branches_per_run  dynamic branches in the trace (default 400000)
 *   json_out          wall-clock report path (default BENCH_sweep.json)
 * --repeat=N times each section N times and reports the median;
 * --threads/--shards steer the nested engine.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "sim/nested_sweep.hh"
#include "sim/packed_trace.hh"
#include "sim/sweep.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"
#include "synth/area.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

/** One sweep point's oracle tallies from the per-config kernel. */
struct OraclePoint
{
    std::string name;
    uint64_t mispredicts = 0;
    uint64_t lookups = 0; // BTB only
    uint64_t hits = 0;    // BTB only
};

NestedSweepRequest
figure5Request()
{
    NestedSweepRequest request;
    for (int log2 : {8, 10, 12, 14, 16}) {
        GshareConfig config;
        config.log2Entries = log2;
        config.historyBits = std::min(log2, 16);
        request.gshare.push_back(config);
    }
    for (int log2 : {8, 10, 12, 13}) {
        LgcConfig config;
        config.log2Entries = log2;
        request.lgc.push_back(config);
    }
    request.btb.push_back(BtbConfig{});
    return request;
}

/** Per-config kernel runs: the bit-identity reference for everything. */
std::vector<OraclePoint>
runOracle(const NestedSweepRequest &request, const PackedTrace &trace,
          const AreaCosts &costs)
{
    std::vector<OraclePoint> oracle;
    for (const auto &config : request.gshare) {
        GshareKernel kernel(config, costs);
        oracle.push_back(
            {kernel.name(), sweepKernelRaw(kernel, trace).mispredicts});
    }
    for (const auto &config : request.lgc) {
        LgcKernel kernel(config, costs);
        oracle.push_back(
            {kernel.name(), sweepKernelRaw(kernel, trace).mispredicts});
    }
    for (const auto &config : request.btb) {
        BtbKernel kernel(config, costs);
        const uint64_t mispredicts =
            sweepKernelRaw(kernel, trace).mispredicts;
        oracle.push_back({kernel.name(), mispredicts, kernel.lookups(),
                          kernel.hits()});
    }
    return oracle;
}

bool
matchesOracle(const NestedSweepResult &result,
              const std::vector<OraclePoint> &oracle)
{
    size_t at = 0;
    for (const auto &point : result.gshare) {
        if (point.name != oracle[at].name ||
            point.result.mispredicts != oracle[at].mispredicts)
            return false;
        ++at;
    }
    for (const auto &point : result.lgc) {
        if (point.name != oracle[at].name ||
            point.result.mispredicts != oracle[at].mispredicts)
            return false;
        ++at;
    }
    for (const auto &point : result.btb) {
        if (point.name != oracle[at].name ||
            point.result.mispredicts != oracle[at].mispredicts ||
            point.lookups != oracle[at].lookups ||
            point.hits != oracle[at].hits)
            return false;
        ++at;
    }
    return at == oracle.size();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(
        argc, argv, "[benchmark] [branches_per_run] [json_out]");
    const std::string benchmark = args.positionalOr(0, "compress");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(1, 400000));
    const std::string json_out = args.positionalOr(2, "BENCH_sweep.json");
    const unsigned threads = args.threadsSet
        ? args.threads
        : ThreadPool::defaultThreadCount();

    const AreaCosts costs;
    const NestedSweepRequest request = figure5Request();
    const auto trace = cachedPackedTrace(
        cachedBranchTrace(benchmark, WorkloadInput::Test, branches));

    std::cout << "Nested-index sweep benchmark: sweepKernelBatch vs "
                 "sim/nested_sweep.hh\nbenchmark: "
              << benchmark << ", branches: " << trace->size()
              << ", threads: " << threads << ", repeat: " << args.repeat
              << "\nsimd compiled: " << nestedSweepSimdCompiled()
              << ", available: " << nestedSweepSimdAvailable() << "\n\n";

    // Identity first, untimed: every point against the per-config
    // kernel oracle, across shard counts, the auto choice, and both
    // SIMD settings. The sweep sizes must not depend on the partition.
    const std::vector<OraclePoint> oracle =
        runOracle(request, *trace, costs);
    bool identical = true;
    for (size_t shards : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                          size_t{7}, size_t{16}}) {
        for (bool simd : {false, true}) {
            NestedSweepOptions options;
            options.threads = threads;
            options.shards = shards;
            options.allowSimd = simd;
            const NestedSweepResult result =
                nestedSweep(request, *trace, costs, options);
            if (!matchesOracle(result, oracle)) {
                std::cerr << "FATAL: nested sweep diverges from the "
                             "per-config kernels (shards="
                          << shards << ", simd=" << simd << ")\n";
                identical = false;
            }
        }
    }
    if (!identical)
        return 1;
    std::cout << "identity: all points bit-identical across shard "
                 "counts {auto,1,2,3,7,16} x simd {off,on}\n";

    // Timed comparison on the gshare + LGC families only.
    NestedSweepRequest timed_request = request;
    timed_request.btb.clear();

    const double baseline_ms = bench::medianRunMillis(args, [&] {
        std::vector<GshareKernel> gshare;
        gshare.reserve(timed_request.gshare.size());
        for (const auto &config : timed_request.gshare)
            gshare.emplace_back(config, costs);
        sweepKernelBatch(gshare, *trace);
        std::vector<LgcKernel> lgc;
        lgc.reserve(timed_request.lgc.size());
        for (const auto &config : timed_request.lgc)
            lgc.emplace_back(config, costs);
        sweepKernelBatch(lgc, *trace);
    });

    NestedSweepOptions timed_options;
    timed_options.threads = threads;
    timed_options.shards = args.shards;
    NestedSweepStats stats;
    const double nested_ms = bench::medianRunMillis(args, [&] {
        stats = nestedSweep(timed_request, *trace, costs, timed_options)
                    .stats;
    });
    const double speedup =
        nested_ms > 0.0 ? baseline_ms / nested_ms : 0.0;

    // The BTB point rides the same engine; report its cost alone so
    // the full-request number is explainable, but keep it out of the
    // gated comparison (the batch path has no BTB mode to race).
    NestedSweepRequest btb_request;
    btb_request.btb = request.btb;
    const double btb_ms = bench::medianRunMillis(args, [&] {
        nestedSweep(btb_request, *trace, costs, timed_options);
    });

    std::cout << std::fixed << std::setprecision(2);
    std::cout << "batch (gshare+lgc):  " << std::setw(10) << baseline_ms
              << " ms\n";
    std::cout << "nested (gshare+lgc): " << std::setw(10) << nested_ms
              << " ms  speedup " << speedup << "x\n";
    std::cout << "nested (btb only):   " << std::setw(10) << btb_ms
              << " ms  (informational)\n";
    std::cout << "engine: simd=" << stats.simd
              << " nested=" << stats.gshareNested
              << " gshare_shards=" << stats.gshareShards
              << " points_per_pass=" << stats.pointsPerPass << "\n";

    std::ofstream out(json_out);
    if (!out) {
        std::cerr << "cannot write " << json_out << "\n";
        return 1;
    }
    JsonWriter json(out);
    json.beginObject();
    json.key("bench").value("sweep_nested");
    json.key("benchmark").value(benchmark);
    json.key("branches").value(static_cast<uint64_t>(trace->size()));
    json.key("threads").value(static_cast<uint64_t>(threads));
    json.key("shards").value(static_cast<uint64_t>(stats.gshareShards));
    json.key("repeat").value(static_cast<uint64_t>(args.repeat));
    json.key("simd").value(stats.simd);
    json.key("gshare_nested").value(stats.gshareNested);
    json.key("points_per_pass")
        .value(static_cast<uint64_t>(stats.pointsPerPass));
    json.key("identical").value(identical);
    json.key("batch_ms").value(baseline_ms);
    json.key("nested_ms").value(nested_ms);
    json.key("btb_ms").value(btb_ms);
    json.key("speedup").value(speedup);
    json.endObject();
    out << "\n";
    std::cout << "wrote " << json_out << "\n";

    bench::exportMetricsIfRequested(args);
    return 0;
}
