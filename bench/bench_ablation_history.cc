/**
 * @file
 * Ablation of the Markov order / history length (Section 4.2 claim:
 * accuracy saturates with history; N <= 10 suffices).
 *
 * For each branch benchmark, trains the worst branch's FSM at history
 * lengths 1-12 and reports state count and miss rate on the test input.
 */

#include <iomanip>
#include <iostream>

#include "bpred/trainer.hh"
#include "fsmgen/predictor_fsm.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

namespace
{

double
fsmMissRate(const Dfa &fsm, uint64_t pc, const BranchTrace &trace)
{
    PredictorFsm machine(fsm);
    uint64_t executions = 0, misses = 0;
    for (const auto &record : trace) {
        if (record.pc == pc) {
            ++executions;
            misses += (machine.predict() != 0) != record.taken;
        }
        machine.update(record.taken ? 1 : 0);
    }
    return executions == 0
        ? 0.0
        : static_cast<double>(misses) / static_cast<double>(executions);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 200000));

    std::cout << "Ablation: history length vs accuracy "
                 "(Section 4.2: no need past N = 10)\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(8) << "N"
              << std::setw(10) << "states" << std::setw(12) << "miss"
              << "\n";

    std::vector<int> orders;
    for (int order = 1; order <= 12; ++order)
        orders.push_back(order);

    for (const std::string &name : branchBenchmarkNames()) {
        const auto train_trace =
            cachedBranchTrace(name, WorkloadInput::Train, branches);
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &train = *train_trace;
        const BranchTrace &test = *test_trace;

        // One profiling pass per benchmark: the worst branch's models at
        // every order come out of a single fold sweep instead of twelve
        // trainCustomPredictors runs (each re-simulating the baseline).
        CustomTrainingOptions options;
        options.maxCustomBranches = 1;
        const auto sweeps = collectBranchModelSweeps(train, orders, options);
        if (sweeps.empty())
            continue;
        const BranchModelSweep &worst = sweeps.front();

        for (int order : orders) {
            FsmDesignOptions design;
            design.order = order;
            design.patterns = options.patterns;
            design.minimizer = options.minimizer;
            const FsmDesignResult designed =
                designFsm(worst.profile.model(order), design);
            const double miss = fsmMissRate(designed.fsm, worst.pc, test);
            std::cout << std::setw(10) << name << std::setw(8) << order
                      << std::setw(10) << designed.statesFinal
                      << std::setw(11) << std::fixed
                      << std::setprecision(2) << miss * 100.0 << "%\n";
        }
        std::cout << "\n";
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
