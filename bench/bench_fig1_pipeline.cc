/**
 * @file
 * Regenerates Figure 1 and the Section 4 worked example: the design
 * flow applied to the trace t = 0000 1000 1011 1101 1110 1111 at
 * history length 2, printing every intermediate artifact, and times the
 * flow with google-benchmark (the paper reports 20s-2min per program on
 * a 500 MHz Alpha; the flow itself is microseconds per machine).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "fsmgen/designer.hh"
#include "synth/vhdl.hh"

using namespace autofsm;

namespace
{

std::vector<int>
paperTrace()
{
    std::vector<int> trace;
    for (char c : std::string("000010001011110111101111"))
        trace.push_back(c == '1');
    return trace;
}

FsmDesignOptions
paperOptions()
{
    FsmDesignOptions options;
    options.order = 2;
    options.patterns.dontCareMass = 0.0;
    return options;
}

void
printArtifacts()
{
    const FsmDesignResult result =
        designFromTrace(paperTrace(), paperOptions());

    std::cout << "Reproduction of Figure 1 / Section 4 worked example\n";
    std::cout << "trace t = 0000 1000 1011 1101 1110 1111 (N = 2)\n\n";
    std::cout << "predict-1 histories:";
    for (uint32_t h : result.patterns.predictOne)
        std::cout << " " << toBinary(h, 2);
    std::cout << "\npredict-0 histories:";
    for (uint32_t h : result.patterns.predictZero)
        std::cout << " " << toBinary(h, 2);
    std::cout << "\nminimized cover:     " << result.cover.toString()
              << "\nregular expression:  " << result.regexText << "\n\n";
    std::cout << "states after subset construction: "
              << result.statesSubset << "\n";
    std::cout << "states after Hopcroft:            "
              << result.statesHopcroft << " (Figure 1, left)\n";
    std::cout << "states after start-state removal: "
              << result.statesFinal << " (Figure 1, right)\n\n";
    std::cout << "final machine (DOT):\n"
              << result.fsm.toDot("figure1") << "\n";
    std::cout << "synthesizable VHDL:\n" << toVhdl(result.fsm) << "\n";
}

void
BM_DesignFlowPaperExample(benchmark::State &state)
{
    const std::vector<int> trace = paperTrace();
    const FsmDesignOptions options = paperOptions();
    for (auto _ : state) {
        benchmark::DoNotOptimize(designFromTrace(trace, options));
    }
}
BENCHMARK(BM_DesignFlowPaperExample);

void
BM_DesignFlowHistory9(benchmark::State &state)
{
    // A correlated 9-bit-history trace, the shape Figure 5 trains on.
    std::vector<int> trace;
    int bit = 0;
    for (int i = 0; i < 20000; ++i) {
        bit = (i % 7 == 0) ? 1 - bit : bit;
        trace.push_back(bit);
    }
    FsmDesignOptions options;
    options.order = 9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(designFromTrace(trace, options));
    }
}
BENCHMARK(BM_DesignFlowHistory9);

} // anonymous namespace

int
main(int argc, char **argv)
{
    printArtifacts();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
