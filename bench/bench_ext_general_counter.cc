/**
 * @file
 * Extension experiment: general-purpose counter design (Section 1's
 * "perform well over a suite of applications" claim, applied to the
 * bimodal counter itself).
 *
 * Designs one prediction counter per history length from the aggregate
 * local-outcome behavior of all branch benchmarks EXCEPT the one under
 * test (leave-one-out), drops it into every BTB entry in place of the
 * 2-bit counter, and compares miss rates.
 *
 * Usage: bench_ext_general_counter [branches_per_run]
 */

#include <iomanip>
#include <iostream>

#include "bpred/counter_design.hh"
#include "bpred/fsm_bimodal.hh"
#include "bpred/simulate.hh"
#include "workloads/trace_cache.hh"

#include "bench_common.hh"

using namespace autofsm;

int
main(int argc, char **argv)
{
    const auto args = bench::parseBenchArgs(argc, argv, "[branches_per_run]");
    const size_t branches =
        static_cast<size_t>(args.positionalOr(0, 200000));

    std::cout << "Extension: automatically designed general-purpose "
                 "counters vs the 2-bit counter\n"
              << "(cross-trained leave-one-out, bimodal BTB geometry)\n\n";
    std::cout << std::setw(10) << "bench" << std::setw(12) << "2-bit"
              << std::setw(12) << "fsm N=2" << std::setw(12) << "fsm N=3"
              << std::setw(12) << "fsm N=4" << std::setw(10) << "states"
              << "\n";

    for (const std::string &name : branchBenchmarkNames()) {
        const auto test_trace =
            cachedBranchTrace(name, WorkloadInput::Test, branches);
        const BranchTrace &test = *test_trace;

        XScaleBtb baseline;
        const double base =
            simulateBranchPredictor(baseline, test).missRate();

        std::cout << std::setw(10) << name << std::setw(11) << std::fixed
                  << std::setprecision(2) << base * 100.0 << "%";

        std::vector<BranchTrace> suite;
        for (const std::string &other : branchBenchmarkNames()) {
            if (other != name) {
                suite.push_back(*cachedBranchTrace(
                    other, WorkloadInput::Train, branches));
            }
        }

        int last_states = 0;
        for (int order : {2, 3, 4}) {
            FsmDesignOptions options;
            options.order = order;
            const FsmDesignResult counter =
                designGeneralCounter(suite, options);
            FsmBimodalBtb btb(counter.fsm);
            const double rate =
                simulateBranchPredictor(btb, test).missRate();
            std::cout << std::setw(11) << rate * 100.0 << "%";
            last_states = counter.statesFinal;
        }
        std::cout << std::setw(10) << last_states << "\n";
    }
    bench::exportMetricsIfRequested(args);
    return 0;
}
