file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gating.dir/bench_ext_gating.cc.o"
  "CMakeFiles/bench_ext_gating.dir/bench_ext_gating.cc.o.d"
  "bench_ext_gating"
  "bench_ext_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
