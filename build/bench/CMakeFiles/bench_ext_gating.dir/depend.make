# Empty dependencies file for bench_ext_gating.
# This may be replaced when dependencies are built.
