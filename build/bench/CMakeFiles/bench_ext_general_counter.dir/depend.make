# Empty dependencies file for bench_ext_general_counter.
# This may be replaced when dependencies are built.
