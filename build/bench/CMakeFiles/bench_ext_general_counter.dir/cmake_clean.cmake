file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_general_counter.dir/bench_ext_general_counter.cc.o"
  "CMakeFiles/bench_ext_general_counter.dir/bench_ext_general_counter.cc.o.d"
  "bench_ext_general_counter"
  "bench_ext_general_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_general_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
