# Empty dependencies file for bench_fig4_area.
# This may be replaced when dependencies are built.
