file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dontcare.dir/bench_ablation_dontcare.cc.o"
  "CMakeFiles/bench_ablation_dontcare.dir/bench_ablation_dontcare.cc.o.d"
  "bench_ablation_dontcare"
  "bench_ablation_dontcare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dontcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
