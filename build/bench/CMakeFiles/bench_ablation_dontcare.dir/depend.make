# Empty dependencies file for bench_ablation_dontcare.
# This may be replaced when dependencies are built.
