file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cache_bypass.dir/bench_ext_cache_bypass.cc.o"
  "CMakeFiles/bench_ext_cache_bypass.dir/bench_ext_cache_bypass.cc.o.d"
  "bench_ext_cache_bypass"
  "bench_ext_cache_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cache_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
