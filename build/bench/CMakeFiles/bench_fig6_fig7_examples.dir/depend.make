# Empty dependencies file for bench_fig6_fig7_examples.
# This may be replaced when dependencies are built.
