file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fig7_examples.dir/bench_fig6_fig7_examples.cc.o"
  "CMakeFiles/bench_fig6_fig7_examples.dir/bench_fig6_fig7_examples.cc.o.d"
  "bench_fig6_fig7_examples"
  "bench_fig6_fig7_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fig7_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
