# Empty dependencies file for bench_ext_value_predictors.
# This may be replaced when dependencies are built.
