file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_value_predictors.dir/bench_ext_value_predictors.cc.o"
  "CMakeFiles/bench_ext_value_predictors.dir/bench_ext_value_predictors.cc.o.d"
  "bench_ext_value_predictors"
  "bench_ext_value_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_value_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
