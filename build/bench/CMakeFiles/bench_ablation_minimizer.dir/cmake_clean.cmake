file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_minimizer.dir/bench_ablation_minimizer.cc.o"
  "CMakeFiles/bench_ablation_minimizer.dir/bench_ablation_minimizer.cc.o.d"
  "bench_ablation_minimizer"
  "bench_ablation_minimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
