# Empty dependencies file for bench_ablation_minimizer.
# This may be replaced when dependencies are built.
