# Empty dependencies file for bench_fig2_confidence.
# This may be replaced when dependencies are built.
