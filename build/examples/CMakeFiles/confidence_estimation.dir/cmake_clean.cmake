file(REMOVE_RECURSE
  "CMakeFiles/confidence_estimation.dir/confidence_estimation.cpp.o"
  "CMakeFiles/confidence_estimation.dir/confidence_estimation.cpp.o.d"
  "confidence_estimation"
  "confidence_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confidence_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
