# Empty compiler generated dependencies file for confidence_estimation.
# This may be replaced when dependencies are built.
