file(REMOVE_RECURSE
  "CMakeFiles/custom_branch_predictor.dir/custom_branch_predictor.cpp.o"
  "CMakeFiles/custom_branch_predictor.dir/custom_branch_predictor.cpp.o.d"
  "custom_branch_predictor"
  "custom_branch_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_branch_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
