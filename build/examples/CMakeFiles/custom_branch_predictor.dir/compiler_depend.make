# Empty compiler generated dependencies file for custom_branch_predictor.
# This may be replaced when dependencies are built.
