
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_branch_predictor.cpp" "examples/CMakeFiles/custom_branch_predictor.dir/custom_branch_predictor.cpp.o" "gcc" "examples/CMakeFiles/custom_branch_predictor.dir/custom_branch_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/autofsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/autofsm_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/autofsm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/vpred/CMakeFiles/autofsm_vpred.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/autofsm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/autofsm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/autofsm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logicmin/CMakeFiles/autofsm_logicmin.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autofsm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
