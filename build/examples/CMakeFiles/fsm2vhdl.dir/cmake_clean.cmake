file(REMOVE_RECURSE
  "CMakeFiles/fsm2vhdl.dir/fsm2vhdl.cpp.o"
  "CMakeFiles/fsm2vhdl.dir/fsm2vhdl.cpp.o.d"
  "fsm2vhdl"
  "fsm2vhdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm2vhdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
