# Empty compiler generated dependencies file for fsm2vhdl.
# This may be replaced when dependencies are built.
