# Empty compiler generated dependencies file for branch_confidence_test.
# This may be replaced when dependencies are built.
