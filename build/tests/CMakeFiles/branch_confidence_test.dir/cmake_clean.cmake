file(REMOVE_RECURSE
  "CMakeFiles/branch_confidence_test.dir/branch_confidence_test.cc.o"
  "CMakeFiles/branch_confidence_test.dir/branch_confidence_test.cc.o.d"
  "branch_confidence_test"
  "branch_confidence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
