file(REMOVE_RECURSE
  "CMakeFiles/vpred_test.dir/vpred_test.cc.o"
  "CMakeFiles/vpred_test.dir/vpred_test.cc.o.d"
  "vpred_test"
  "vpred_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
