# Empty dependencies file for vpred_test.
# This may be replaced when dependencies are built.
