file(REMOVE_RECURSE
  "CMakeFiles/bpred_ext_test.dir/bpred_ext_test.cc.o"
  "CMakeFiles/bpred_ext_test.dir/bpred_ext_test.cc.o.d"
  "bpred_ext_test"
  "bpred_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpred_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
