# Empty compiler generated dependencies file for bpred_ext_test.
# This may be replaced when dependencies are built.
