# Empty compiler generated dependencies file for fsmgen_test.
# This may be replaced when dependencies are built.
