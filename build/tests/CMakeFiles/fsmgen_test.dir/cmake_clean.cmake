file(REMOVE_RECURSE
  "CMakeFiles/fsmgen_test.dir/fsmgen_test.cc.o"
  "CMakeFiles/fsmgen_test.dir/fsmgen_test.cc.o.d"
  "fsmgen_test"
  "fsmgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsmgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
