file(REMOVE_RECURSE
  "CMakeFiles/dfa_io_test.dir/dfa_io_test.cc.o"
  "CMakeFiles/dfa_io_test.dir/dfa_io_test.cc.o.d"
  "dfa_io_test"
  "dfa_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfa_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
