# Empty compiler generated dependencies file for dfa_io_test.
# This may be replaced when dependencies are built.
