# Empty dependencies file for vpred_ext_test.
# This may be replaced when dependencies are built.
