file(REMOVE_RECURSE
  "CMakeFiles/vpred_ext_test.dir/vpred_ext_test.cc.o"
  "CMakeFiles/vpred_ext_test.dir/vpred_ext_test.cc.o.d"
  "vpred_ext_test"
  "vpred_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpred_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
