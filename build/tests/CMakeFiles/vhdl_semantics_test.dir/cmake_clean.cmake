file(REMOVE_RECURSE
  "CMakeFiles/vhdl_semantics_test.dir/vhdl_semantics_test.cc.o"
  "CMakeFiles/vhdl_semantics_test.dir/vhdl_semantics_test.cc.o.d"
  "vhdl_semantics_test"
  "vhdl_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vhdl_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
