# Empty dependencies file for vhdl_semantics_test.
# This may be replaced when dependencies are built.
