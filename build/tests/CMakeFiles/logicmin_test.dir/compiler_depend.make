# Empty compiler generated dependencies file for logicmin_test.
# This may be replaced when dependencies are built.
