file(REMOVE_RECURSE
  "CMakeFiles/logicmin_test.dir/logicmin_test.cc.o"
  "CMakeFiles/logicmin_test.dir/logicmin_test.cc.o.d"
  "logicmin_test"
  "logicmin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logicmin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
