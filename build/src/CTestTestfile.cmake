# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("logicmin")
subdirs("automata")
subdirs("fsmgen")
subdirs("synth")
subdirs("trace")
subdirs("workloads")
subdirs("bpred")
subdirs("cache")
subdirs("vpred")
subdirs("sim")
