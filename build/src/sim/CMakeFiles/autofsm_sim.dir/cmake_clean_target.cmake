file(REMOVE_RECURSE
  "libautofsm_sim.a"
)
