# Empty dependencies file for autofsm_sim.
# This may be replaced when dependencies are built.
