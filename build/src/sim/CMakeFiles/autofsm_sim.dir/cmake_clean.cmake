file(REMOVE_RECURSE
  "CMakeFiles/autofsm_sim.dir/figure2.cc.o"
  "CMakeFiles/autofsm_sim.dir/figure2.cc.o.d"
  "CMakeFiles/autofsm_sim.dir/figure4.cc.o"
  "CMakeFiles/autofsm_sim.dir/figure4.cc.o.d"
  "CMakeFiles/autofsm_sim.dir/figure5.cc.o"
  "CMakeFiles/autofsm_sim.dir/figure5.cc.o.d"
  "CMakeFiles/autofsm_sim.dir/report.cc.o"
  "CMakeFiles/autofsm_sim.dir/report.cc.o.d"
  "libautofsm_sim.a"
  "libautofsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
