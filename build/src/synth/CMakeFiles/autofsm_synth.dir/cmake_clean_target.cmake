file(REMOVE_RECURSE
  "libautofsm_synth.a"
)
