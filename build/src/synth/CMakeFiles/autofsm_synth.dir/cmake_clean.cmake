file(REMOVE_RECURSE
  "CMakeFiles/autofsm_synth.dir/area.cc.o"
  "CMakeFiles/autofsm_synth.dir/area.cc.o.d"
  "CMakeFiles/autofsm_synth.dir/verilog.cc.o"
  "CMakeFiles/autofsm_synth.dir/verilog.cc.o.d"
  "CMakeFiles/autofsm_synth.dir/vhdl.cc.o"
  "CMakeFiles/autofsm_synth.dir/vhdl.cc.o.d"
  "libautofsm_synth.a"
  "libautofsm_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
