# Empty compiler generated dependencies file for autofsm_synth.
# This may be replaced when dependencies are built.
