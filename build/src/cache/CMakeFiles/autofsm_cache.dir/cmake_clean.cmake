file(REMOVE_RECURSE
  "CMakeFiles/autofsm_cache.dir/bypass.cc.o"
  "CMakeFiles/autofsm_cache.dir/bypass.cc.o.d"
  "CMakeFiles/autofsm_cache.dir/cache.cc.o"
  "CMakeFiles/autofsm_cache.dir/cache.cc.o.d"
  "libautofsm_cache.a"
  "libautofsm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
