# Empty compiler generated dependencies file for autofsm_cache.
# This may be replaced when dependencies are built.
