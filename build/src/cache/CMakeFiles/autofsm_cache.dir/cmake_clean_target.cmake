file(REMOVE_RECURSE
  "libautofsm_cache.a"
)
