file(REMOVE_RECURSE
  "libautofsm_logicmin.a"
)
