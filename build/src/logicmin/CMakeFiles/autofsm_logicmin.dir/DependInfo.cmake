
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logicmin/cover.cc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/cover.cc.o" "gcc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/cover.cc.o.d"
  "/root/repo/src/logicmin/espresso.cc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/espresso.cc.o" "gcc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/espresso.cc.o.d"
  "/root/repo/src/logicmin/minimize.cc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/minimize.cc.o" "gcc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/minimize.cc.o.d"
  "/root/repo/src/logicmin/quine_mccluskey.cc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/quine_mccluskey.cc.o" "gcc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/quine_mccluskey.cc.o.d"
  "/root/repo/src/logicmin/truth_table.cc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/truth_table.cc.o" "gcc" "src/logicmin/CMakeFiles/autofsm_logicmin.dir/truth_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
