# Empty dependencies file for autofsm_logicmin.
# This may be replaced when dependencies are built.
