file(REMOVE_RECURSE
  "CMakeFiles/autofsm_logicmin.dir/cover.cc.o"
  "CMakeFiles/autofsm_logicmin.dir/cover.cc.o.d"
  "CMakeFiles/autofsm_logicmin.dir/espresso.cc.o"
  "CMakeFiles/autofsm_logicmin.dir/espresso.cc.o.d"
  "CMakeFiles/autofsm_logicmin.dir/minimize.cc.o"
  "CMakeFiles/autofsm_logicmin.dir/minimize.cc.o.d"
  "CMakeFiles/autofsm_logicmin.dir/quine_mccluskey.cc.o"
  "CMakeFiles/autofsm_logicmin.dir/quine_mccluskey.cc.o.d"
  "CMakeFiles/autofsm_logicmin.dir/truth_table.cc.o"
  "CMakeFiles/autofsm_logicmin.dir/truth_table.cc.o.d"
  "libautofsm_logicmin.a"
  "libautofsm_logicmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_logicmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
