
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpred/conf_sim.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/conf_sim.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/conf_sim.cc.o.d"
  "/root/repo/src/vpred/confidence.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/confidence.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/confidence.cc.o.d"
  "/root/repo/src/vpred/context_predictor.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/context_predictor.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/context_predictor.cc.o.d"
  "/root/repo/src/vpred/hybrid_predictor.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/hybrid_predictor.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/hybrid_predictor.cc.o.d"
  "/root/repo/src/vpred/last_value.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/last_value.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/last_value.cc.o.d"
  "/root/repo/src/vpred/stride_predictor.cc" "src/vpred/CMakeFiles/autofsm_vpred.dir/stride_predictor.cc.o" "gcc" "src/vpred/CMakeFiles/autofsm_vpred.dir/stride_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autofsm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/autofsm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logicmin/CMakeFiles/autofsm_logicmin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
