file(REMOVE_RECURSE
  "CMakeFiles/autofsm_vpred.dir/conf_sim.cc.o"
  "CMakeFiles/autofsm_vpred.dir/conf_sim.cc.o.d"
  "CMakeFiles/autofsm_vpred.dir/confidence.cc.o"
  "CMakeFiles/autofsm_vpred.dir/confidence.cc.o.d"
  "CMakeFiles/autofsm_vpred.dir/context_predictor.cc.o"
  "CMakeFiles/autofsm_vpred.dir/context_predictor.cc.o.d"
  "CMakeFiles/autofsm_vpred.dir/hybrid_predictor.cc.o"
  "CMakeFiles/autofsm_vpred.dir/hybrid_predictor.cc.o.d"
  "CMakeFiles/autofsm_vpred.dir/last_value.cc.o"
  "CMakeFiles/autofsm_vpred.dir/last_value.cc.o.d"
  "CMakeFiles/autofsm_vpred.dir/stride_predictor.cc.o"
  "CMakeFiles/autofsm_vpred.dir/stride_predictor.cc.o.d"
  "libautofsm_vpred.a"
  "libautofsm_vpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_vpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
