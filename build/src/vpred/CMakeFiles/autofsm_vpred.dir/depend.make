# Empty dependencies file for autofsm_vpred.
# This may be replaced when dependencies are built.
