file(REMOVE_RECURSE
  "libautofsm_vpred.a"
)
