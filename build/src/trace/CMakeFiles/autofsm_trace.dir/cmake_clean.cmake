file(REMOVE_RECURSE
  "CMakeFiles/autofsm_trace.dir/branch_trace.cc.o"
  "CMakeFiles/autofsm_trace.dir/branch_trace.cc.o.d"
  "CMakeFiles/autofsm_trace.dir/simpoint.cc.o"
  "CMakeFiles/autofsm_trace.dir/simpoint.cc.o.d"
  "CMakeFiles/autofsm_trace.dir/trace_io.cc.o"
  "CMakeFiles/autofsm_trace.dir/trace_io.cc.o.d"
  "libautofsm_trace.a"
  "libautofsm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
