# Empty compiler generated dependencies file for autofsm_trace.
# This may be replaced when dependencies are built.
