file(REMOVE_RECURSE
  "libautofsm_trace.a"
)
