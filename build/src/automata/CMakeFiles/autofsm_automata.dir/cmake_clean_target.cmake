file(REMOVE_RECURSE
  "libautofsm_automata.a"
)
