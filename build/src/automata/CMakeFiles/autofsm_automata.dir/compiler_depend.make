# Empty compiler generated dependencies file for autofsm_automata.
# This may be replaced when dependencies are built.
