file(REMOVE_RECURSE
  "CMakeFiles/autofsm_automata.dir/dfa.cc.o"
  "CMakeFiles/autofsm_automata.dir/dfa.cc.o.d"
  "CMakeFiles/autofsm_automata.dir/dfa_io.cc.o"
  "CMakeFiles/autofsm_automata.dir/dfa_io.cc.o.d"
  "CMakeFiles/autofsm_automata.dir/nfa.cc.o"
  "CMakeFiles/autofsm_automata.dir/nfa.cc.o.d"
  "CMakeFiles/autofsm_automata.dir/regex.cc.o"
  "CMakeFiles/autofsm_automata.dir/regex.cc.o.d"
  "libautofsm_automata.a"
  "libautofsm_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
