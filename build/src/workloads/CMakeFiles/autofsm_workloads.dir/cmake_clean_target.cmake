file(REMOVE_RECURSE
  "libautofsm_workloads.a"
)
