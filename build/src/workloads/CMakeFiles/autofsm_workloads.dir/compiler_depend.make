# Empty compiler generated dependencies file for autofsm_workloads.
# This may be replaced when dependencies are built.
