file(REMOVE_RECURSE
  "CMakeFiles/autofsm_workloads.dir/branch_workloads.cc.o"
  "CMakeFiles/autofsm_workloads.dir/branch_workloads.cc.o.d"
  "CMakeFiles/autofsm_workloads.dir/memory_workloads.cc.o"
  "CMakeFiles/autofsm_workloads.dir/memory_workloads.cc.o.d"
  "CMakeFiles/autofsm_workloads.dir/value_workloads.cc.o"
  "CMakeFiles/autofsm_workloads.dir/value_workloads.cc.o.d"
  "libautofsm_workloads.a"
  "libautofsm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
