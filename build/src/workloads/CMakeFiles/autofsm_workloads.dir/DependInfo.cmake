
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/branch_workloads.cc" "src/workloads/CMakeFiles/autofsm_workloads.dir/branch_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/autofsm_workloads.dir/branch_workloads.cc.o.d"
  "/root/repo/src/workloads/memory_workloads.cc" "src/workloads/CMakeFiles/autofsm_workloads.dir/memory_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/autofsm_workloads.dir/memory_workloads.cc.o.d"
  "/root/repo/src/workloads/value_workloads.cc" "src/workloads/CMakeFiles/autofsm_workloads.dir/value_workloads.cc.o" "gcc" "src/workloads/CMakeFiles/autofsm_workloads.dir/value_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/autofsm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
