# Empty compiler generated dependencies file for autofsm_fsmgen.
# This may be replaced when dependencies are built.
