file(REMOVE_RECURSE
  "libautofsm_fsmgen.a"
)
