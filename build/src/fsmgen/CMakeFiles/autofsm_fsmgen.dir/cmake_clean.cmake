file(REMOVE_RECURSE
  "CMakeFiles/autofsm_fsmgen.dir/designer.cc.o"
  "CMakeFiles/autofsm_fsmgen.dir/designer.cc.o.d"
  "CMakeFiles/autofsm_fsmgen.dir/markov.cc.o"
  "CMakeFiles/autofsm_fsmgen.dir/markov.cc.o.d"
  "CMakeFiles/autofsm_fsmgen.dir/patterns.cc.o"
  "CMakeFiles/autofsm_fsmgen.dir/patterns.cc.o.d"
  "CMakeFiles/autofsm_fsmgen.dir/predictor_fsm.cc.o"
  "CMakeFiles/autofsm_fsmgen.dir/predictor_fsm.cc.o.d"
  "libautofsm_fsmgen.a"
  "libautofsm_fsmgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_fsmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
