
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsmgen/designer.cc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/designer.cc.o" "gcc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/designer.cc.o.d"
  "/root/repo/src/fsmgen/markov.cc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/markov.cc.o" "gcc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/markov.cc.o.d"
  "/root/repo/src/fsmgen/patterns.cc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/patterns.cc.o" "gcc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/patterns.cc.o.d"
  "/root/repo/src/fsmgen/predictor_fsm.cc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/predictor_fsm.cc.o" "gcc" "src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/predictor_fsm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/automata/CMakeFiles/autofsm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logicmin/CMakeFiles/autofsm_logicmin.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
