file(REMOVE_RECURSE
  "CMakeFiles/autofsm_bpred.dir/branch_confidence.cc.o"
  "CMakeFiles/autofsm_bpred.dir/branch_confidence.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/btb.cc.o"
  "CMakeFiles/autofsm_bpred.dir/btb.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/counter_design.cc.o"
  "CMakeFiles/autofsm_bpred.dir/counter_design.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/custom.cc.o"
  "CMakeFiles/autofsm_bpred.dir/custom.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/fsm_bimodal.cc.o"
  "CMakeFiles/autofsm_bpred.dir/fsm_bimodal.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/gshare.cc.o"
  "CMakeFiles/autofsm_bpred.dir/gshare.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/local_global.cc.o"
  "CMakeFiles/autofsm_bpred.dir/local_global.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/ppm.cc.o"
  "CMakeFiles/autofsm_bpred.dir/ppm.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/simulate.cc.o"
  "CMakeFiles/autofsm_bpred.dir/simulate.cc.o.d"
  "CMakeFiles/autofsm_bpred.dir/trainer.cc.o"
  "CMakeFiles/autofsm_bpred.dir/trainer.cc.o.d"
  "libautofsm_bpred.a"
  "libautofsm_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
