
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/branch_confidence.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/branch_confidence.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/branch_confidence.cc.o.d"
  "/root/repo/src/bpred/btb.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/btb.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/btb.cc.o.d"
  "/root/repo/src/bpred/counter_design.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/counter_design.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/counter_design.cc.o.d"
  "/root/repo/src/bpred/custom.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/custom.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/custom.cc.o.d"
  "/root/repo/src/bpred/fsm_bimodal.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/fsm_bimodal.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/fsm_bimodal.cc.o.d"
  "/root/repo/src/bpred/gshare.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/gshare.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/gshare.cc.o.d"
  "/root/repo/src/bpred/local_global.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/local_global.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/local_global.cc.o.d"
  "/root/repo/src/bpred/ppm.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/ppm.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/ppm.cc.o.d"
  "/root/repo/src/bpred/simulate.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/simulate.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/simulate.cc.o.d"
  "/root/repo/src/bpred/trainer.cc" "src/bpred/CMakeFiles/autofsm_bpred.dir/trainer.cc.o" "gcc" "src/bpred/CMakeFiles/autofsm_bpred.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsmgen/CMakeFiles/autofsm_fsmgen.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/autofsm_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/autofsm_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/autofsm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/autofsm_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/logicmin/CMakeFiles/autofsm_logicmin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
