file(REMOVE_RECURSE
  "libautofsm_bpred.a"
)
