# Empty compiler generated dependencies file for autofsm_bpred.
# This may be replaced when dependencies are built.
