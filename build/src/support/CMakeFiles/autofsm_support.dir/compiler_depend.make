# Empty compiler generated dependencies file for autofsm_support.
# This may be replaced when dependencies are built.
