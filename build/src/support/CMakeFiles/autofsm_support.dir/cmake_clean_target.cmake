file(REMOVE_RECURSE
  "libautofsm_support.a"
)
