file(REMOVE_RECURSE
  "CMakeFiles/autofsm_support.dir/stats.cc.o"
  "CMakeFiles/autofsm_support.dir/stats.cc.o.d"
  "libautofsm_support.a"
  "libautofsm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autofsm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
