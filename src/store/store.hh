/**
 * @file
 * Crash-safe, content-addressed persistence tier under the in-memory
 * caches: packed traces and designed-FSM artifacts survive process
 * restarts and are shared between daemon replicas pointed at one
 * directory.
 *
 * Two artifact kinds share one container format (see store.cc for the
 * byte layout): a versioned header carrying the kind, the key hash and
 * a header CRC, a section table, and 8-byte-aligned payload sections
 * each protected by its own CRC32. `PackedTrace` blobs keep their SoA
 * layout on disk so a load is a zero-copy `mmap`; designed-FSM
 * artifacts serialize the reduced `Dfa` (and the run's intermediate
 * products) through the existing text formats.
 *
 * Robustness contract:
 *
 *  - Every write commits temp-file -> fsync -> atomic rename, so a
 *    reader can never observe a torn entry; a writer dying at any
 *    instant leaves either the old state or the new state plus at most
 *    a stale `*.tmp` file, which the next open sweeps away.
 *  - Every read validates magic, version, lengths and every CRC. A
 *    corrupt or truncated entry is *quarantined* — renamed into
 *    `quarantine/`, counted in `autofsm_store_quarantined_total`, and
 *    logged — never returned and never re-read.
 *  - A size-capped LRU eviction scan (oldest mtime first) runs on open
 *    and after `evictScanBytes` of writes.
 *  - All IO sites carry failpoints (`store.write`, `store.fsync`,
 *    `store.rename`, `store.load`, `store.mmap`). The write sites
 *    propagate `InjectedFault` — simulating the writer dying
 *    mid-commit, with on-disk state exactly as a crash would leave it —
 *    while the read sites degrade to a clean miss. The cache tiers
 *    that call the store treat any store failure as a miss.
 */

#ifndef AUTOFSM_STORE_STORE_HH
#define AUTOFSM_STORE_STORE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "automata/dfa.hh"
#include "logicmin/cover.hh"

namespace autofsm::store
{

/** Disk-tier knobs. */
struct StoreOptions
{
    /** Root directory (created on open, with its subdirectories). */
    std::string dir;
    /** Total payload cap across entries; 0 = unlimited. */
    uint64_t maxBytes = 0;
    /** Bytes written between size/eviction rescans. */
    uint64_t evictScanBytes = 8 * 1024 * 1024;
};

/** What a container file holds (header byte; part of the format). */
enum class ArtifactKind : uint8_t
{
    PackedTrace = 1,
    Design = 2,
};

/**
 * A designed-FSM artifact: everything the design memo caches, plus the
 * full canonical key (verified on load — the file name's 64-bit hash is
 * only an address) and the computing run's stage timings.
 */
struct DesignArtifact
{
    // The canonical-pattern-set key (flow/design_memo.hh semantics).
    int order = 0;
    int minimizer = 0;
    bool keepStartupStates = false;
    std::vector<uint32_t> predictOne;
    std::vector<uint32_t> dontCare;

    // The memoized tail products.
    Cover cover = Cover::forInputs(1);
    std::string regexText;
    Dfa beforeReduction;
    Dfa fsm;
    int statesSubset = 0;
    int statesHopcroft = 0;
    int statesFinal = 0;

    /** Stage timings of the run that computed this artifact (name,
     *  milliseconds). Informational: reloads report them unchanged. */
    std::vector<std::pair<std::string, double>> stageMillis;
};

/**
 * A zero-copy view of a stored PackedTrace: spans point straight into
 * the mmap'd file, kept alive by @c owner. sim/packed_trace.hh wraps
 * this into a borrowed-storage PackedTrace.
 */
struct TraceBlob
{
    std::span<const uint64_t> pcs;
    std::span<const uint64_t> takenWords;
    uint64_t count = 0;
    std::shared_ptr<const void> owner;
};

/** Point-in-time tallies of one store instance. */
struct StoreStats
{
    uint64_t writes = 0;
    uint64_t writeFailures = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    /** Hits on entries that already existed when this store opened —
     *  work inherited from a previous process (the warm-start rate). */
    uint64_t warmHits = 0;
    uint64_t quarantined = 0;
    uint64_t evictions = 0;
    /** Stale temp files swept by the open-time recovery pass. */
    uint64_t recoveredTemps = 0;
    uint64_t bytes = 0;
    size_t entries = 0;
};

/** 64-bit content hash of @p bytes (splitmix64-mixed FNV-style). */
uint64_t hashBytes(std::string_view bytes);

class ArtifactStore
{
  public:
    /**
     * Open (creating directories as needed) and run the recovery pass:
     * sweep stale temp files, validate every entry — quarantining
     * corrupt ones — and run the eviction scan. Entries that survive
     * form the warm set for `StoreStats::warmHits`.
     *
     * @throws std::runtime_error when the directory cannot be created.
     */
    explicit ArtifactStore(StoreOptions options);

    const StoreOptions &options() const { return options_; }

    /**
     * Persist @p trace under @p keyText (the trace cache's key string;
     * embedded and verified on load). Returns false on IO failure
     * (logged, counted — never throws for real IO errors).
     *
     * @throws InjectedFault from the store.{write,fsync,rename}
     *         failpoints, leaving disk state as a mid-commit crash
     *         would.
     */
    bool putTrace(std::string_view keyText,
                  std::span<const uint64_t> pcs,
                  std::span<const uint64_t> takenWords, uint64_t count);

    /**
     * Load the packed trace stored under @p keyText; nullopt on miss,
     * on any validation failure (the entry is quarantined), or on an
     * injected store.{load,mmap} fault (a clean miss).
     */
    std::optional<TraceBlob> loadTrace(std::string_view keyText);

    /** Persist @p artifact under @p keyHash (same contract as putTrace). */
    bool putDesign(uint64_t keyHash, const DesignArtifact &artifact);

    /**
     * Load the design artifact addressed by @p keyHash; nullopt on
     * miss/quarantine/injected fault. The caller must still compare the
     * embedded canonical key against its own (hash collisions read as
     * misses, not as wrong answers).
     */
    std::optional<DesignArtifact> loadDesign(uint64_t keyHash);

    /** Tallies since open (includes the open-time recovery pass). */
    StoreStats stats() const;

    /** Re-run the size scan, evicting past maxBytes (tests). */
    void rescan();

  private:
    struct LoadedFile;

    std::string tracePath(uint64_t hash) const;
    std::string designPath(uint64_t hash) const;
    bool commitFile(const std::string &finalPath, std::string_view bytes);
    std::shared_ptr<LoadedFile> loadFile(const std::string &path,
                                         ArtifactKind kind,
                                         uint64_t keyHash, bool wantMmap);
    void quarantine(const std::string &path, const std::string &reason);
    void scan(bool validateAll);

    StoreOptions options_;
    mutable std::mutex mutex_;
    StoreStats stats_;
    /** Entry file names present when the store opened (warm set). */
    std::unordered_set<std::string> warmSet_;
    uint64_t bytesSinceScan_ = 0;
    uint64_t quarantineSeq_ = 0;
};

/**
 * The process-wide disk tier the cache layers consult (design memo,
 * trace cache); nullptr (the default) means no persistence. The serve
 * daemon installs one for --store-dir; tests attach and detach their
 * own. Thread-safe.
 */
std::shared_ptr<ArtifactStore> globalStore();
void setGlobalStore(std::shared_ptr<ArtifactStore> store);

} // namespace autofsm::store

#endif // AUTOFSM_STORE_STORE_HH
