#include "store/store.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "automata/dfa_io.hh"
#include "logicmin/cube.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "support/crc32.hh"
#include "support/failpoint.hh"

namespace autofsm::store
{

namespace fs = std::filesystem;

namespace
{

// ---------------------------------------------------------------------
// Container format v1 (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "AFST"
//   4       2     format version (1)
//   6       1     kind (ArtifactKind)
//   7       1     section count N
//   8       8     key hash (the content address, re-checked on load)
//   16      8     total file bytes
//   24      8     item count (trace records; 0 for designs)
//   32      4     header CRC32 (bytes [0,32) ++ the section table)
//   36      4     reserved (0)
//   40      24*N  section table: {u32 tag, u32 crc, u64 offset, u64 len}
//   ...           payload sections, each 8-byte aligned, zero padding
//
// Section tags. PackedTrace: 1 = pc array (u64 LE), 2 = outcome words
// (u64 LE), 3 = key text. Design: 1 = reduced fsm (dfaToText), 2 = dfa
// before reduction, 3 = regex text, 4 = cover text, 5 = meta text,
// 6 = predictOne (u32 LE), 7 = dontCare (u32 LE), 8 = stage timings.
// ---------------------------------------------------------------------

constexpr char kMagic[4] = {'A', 'F', 'S', 'T'};
constexpr uint16_t kVersion = 1;
constexpr size_t kHeaderBytes = 40;
constexpr size_t kSectionDescBytes = 24;
constexpr size_t kHeaderCrcOffset = 32;

constexpr uint32_t kSecTracePcs = 1;
constexpr uint32_t kSecTraceWords = 2;
constexpr uint32_t kSecTraceKey = 3;

constexpr uint32_t kSecDesignFsm = 1;
constexpr uint32_t kSecDesignBefore = 2;
constexpr uint32_t kSecDesignRegex = 3;
constexpr uint32_t kSecDesignCover = 4;
constexpr uint32_t kSecDesignMeta = 5;
constexpr uint32_t kSecDesignOnes = 6;
constexpr uint32_t kSecDesignDc = 7;
constexpr uint32_t kSecDesignStages = 8;

void
putU16Le(std::string &out, uint16_t value)
{
    out += static_cast<char>(value & 0xff);
    out += static_cast<char>((value >> 8) & 0xff);
}

void
putU32Le(std::string &out, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
putU64Le(std::string &out, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out += static_cast<char>((value >> shift) & 0xff);
}

void
patchU32Le(std::string &out, size_t at, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[at + static_cast<size_t>(i)] =
            static_cast<char>((value >> (8 * i)) & 0xff);
}

void
patchU64Le(std::string &out, size_t at, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[at + static_cast<size_t>(i)] =
            static_cast<char>((value >> (8 * i)) & 0xff);
}

uint16_t
getU16Le(const char *bytes)
{
    const auto b = [bytes](int i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]));
    };
    return static_cast<uint16_t>(b(0) | (b(1) << 8));
}

uint32_t
getU32Le(const char *bytes)
{
    const auto b = [bytes](int i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

uint64_t
getU64Le(const char *bytes)
{
    return static_cast<uint64_t>(getU32Le(bytes)) |
        (static_cast<uint64_t>(getU32Le(bytes + 4)) << 32);
}

/** splitmix64 finalizer (the repo's standard mixing step). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string
hexKey(uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<size_t>(i)] = digits[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

/** Parse the 16-hex-digit entry name back to its key hash. */
std::optional<uint64_t>
keyFromFileName(const std::string &name)
{
    if (name.size() != 19 || name.substr(16) != ".af")
        return std::nullopt;
    uint64_t hash = 0;
    for (int i = 0; i < 16; ++i) {
        const char c = name[static_cast<size_t>(i)];
        hash <<= 4;
        if (c >= '0' && c <= '9')
            hash |= static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            hash |= static_cast<uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return hash;
}

/** One artifact file's worth of write-side sections. */
struct SectionSpec
{
    uint32_t tag = 0;
    std::string_view bytes;
};

/** Compose a whole container file (header, table, aligned payload). */
std::string
composeFile(ArtifactKind kind, uint64_t keyHash, uint64_t itemCount,
            const std::vector<SectionSpec> &sections)
{
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putU16Le(out, kVersion);
    out += static_cast<char>(static_cast<uint8_t>(kind));
    out += static_cast<char>(static_cast<uint8_t>(sections.size()));
    putU64Le(out, keyHash);
    putU64Le(out, 0); // file bytes, patched below
    putU64Le(out, itemCount);
    putU32Le(out, 0); // header CRC, patched below
    putU32Le(out, 0); // reserved

    const size_t tableAt = out.size();
    for (const SectionSpec &section : sections) {
        putU32Le(out, section.tag);
        putU32Le(out, crc32Ieee(section.bytes));
        putU64Le(out, 0); // offset, patched below
        putU64Le(out, section.bytes.size());
    }

    for (size_t i = 0; i < sections.size(); ++i) {
        out.append((8 - out.size() % 8) % 8, '\0');
        patchU64Le(out, tableAt + i * kSectionDescBytes + 8, out.size());
        out.append(sections[i].bytes);
    }

    patchU64Le(out, 16, out.size());
    const std::string_view whole(out);
    const uint32_t headerCrc = crc32IeeeUpdate(
        crc32Ieee(whole.substr(0, kHeaderCrcOffset)),
        whole.substr(kHeaderBytes, sections.size() * kSectionDescBytes));
    patchU32Le(out, kHeaderCrcOffset, headerCrc);
    return out;
}

std::string
serializeU32Array(const std::vector<uint32_t> &values)
{
    std::string out;
    out.reserve(values.size() * 4);
    for (const uint32_t v : values)
        putU32Le(out, v);
    return out;
}

std::vector<uint32_t>
parseU32Array(std::string_view bytes)
{
    std::vector<uint32_t> out;
    out.reserve(bytes.size() / 4);
    for (size_t at = 0; at + 4 <= bytes.size(); at += 4)
        out.push_back(getU32Le(bytes.data() + at));
    return out;
}

std::string
serializeU64Array(std::span<const uint64_t> values)
{
    std::string out;
    out.reserve(values.size() * 8);
    for (const uint64_t v : values)
        putU64Le(out, v);
    return out;
}

std::string
serializeCover(const Cover &cover)
{
    std::ostringstream out;
    out << cover.numVars() << "\n";
    for (const Cube &cube : cover.cubes())
        out << cube.toPattern(cover.numVars()) << "\n";
    return out.str();
}

Cover
parseCover(const std::string &text)
{
    std::istringstream in(text);
    int numVars = 0;
    if (!(in >> numVars) || numVars < 1 || numVars > 32)
        throw std::invalid_argument("cover: bad variable count");
    Cover cover = Cover::forInputs(numVars);
    std::string pattern;
    while (in >> pattern) {
        if (pattern.size() != static_cast<size_t>(numVars))
            throw std::invalid_argument("cover: bad pattern width");
        for (const char c : pattern) {
            if (c != '0' && c != '1' && c != 'x')
                throw std::invalid_argument("cover: bad pattern char");
        }
        cover.add(Cube::fromPattern(pattern));
    }
    return cover;
}

std::string
serializeMeta(const DesignArtifact &artifact)
{
    std::ostringstream out;
    out << "order " << artifact.order << "\n"
        << "minimizer " << artifact.minimizer << "\n"
        << "keepStartupStates " << (artifact.keepStartupStates ? 1 : 0)
        << "\n"
        << "statesSubset " << artifact.statesSubset << "\n"
        << "statesHopcroft " << artifact.statesHopcroft << "\n"
        << "statesFinal " << artifact.statesFinal << "\n";
    return out.str();
}

void
parseMeta(const std::string &text, DesignArtifact &artifact)
{
    std::istringstream in(text);
    std::string field;
    long value = 0;
    while (in >> field >> value) {
        if (field == "order")
            artifact.order = static_cast<int>(value);
        else if (field == "minimizer")
            artifact.minimizer = static_cast<int>(value);
        else if (field == "keepStartupStates")
            artifact.keepStartupStates = value != 0;
        else if (field == "statesSubset")
            artifact.statesSubset = static_cast<int>(value);
        else if (field == "statesHopcroft")
            artifact.statesHopcroft = static_cast<int>(value);
        else if (field == "statesFinal")
            artifact.statesFinal = static_cast<int>(value);
        else
            throw std::invalid_argument("meta: unknown field " + field);
    }
}

std::string
serializeStages(const std::vector<std::pair<std::string, double>> &stages)
{
    std::ostringstream out;
    for (const auto &[name, millis] : stages)
        out << name << " " << millis << "\n";
    return out.str();
}

std::vector<std::pair<std::string, double>>
parseStages(const std::string &text)
{
    std::istringstream in(text);
    std::vector<std::pair<std::string, double>> out;
    std::string name;
    double millis = 0.0;
    while (in >> name >> millis)
        out.emplace_back(name, millis);
    return out;
}

/** Pre-registered store instrumentation (shared by every instance). */
struct StoreTelemetry
{
    obs::Counter writes;
    obs::Counter writeFailures;
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter warmHits;
    obs::Counter quarantined;
    obs::Counter evictions;
    obs::Gauge bytes;
    obs::Gauge entries;
};

StoreTelemetry &
storeTelemetry()
{
    static StoreTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        StoreTelemetry t;
        t.writes = registry.counter(
            "autofsm_store_writes_total",
            "Artifacts committed to the persistent store.");
        t.writeFailures = registry.counter(
            "autofsm_store_write_failures_total",
            "Store commits abandoned on an IO failure.");
        t.hits = registry.counter(
            "autofsm_store_hits_total",
            "Store loads that returned a validated artifact.");
        t.misses = registry.counter(
            "autofsm_store_misses_total",
            "Store loads that found no usable artifact.");
        t.warmHits = registry.counter(
            "autofsm_store_warm_hits_total",
            "Store hits on entries inherited from a previous process "
            "(the warm-start rate).");
        t.quarantined = registry.counter(
            "autofsm_store_quarantined_total",
            "Corrupt or truncated store entries renamed aside.");
        t.evictions = registry.counter(
            "autofsm_store_evictions_total",
            "Store entries dropped by the size-capped LRU scan.");
        t.bytes = registry.gauge(
            "autofsm_store_bytes",
            "Total bytes held by the persistent store.");
        t.entries = registry.gauge(
            "autofsm_store_entries",
            "Entries currently held by the persistent store.");
        return t;
    }();
    return telemetry;
}

/** Owner of one mmap'd artifact; unmapped with the last reference. */
struct Mapping
{
    void *base = MAP_FAILED;
    size_t length = 0;

    ~Mapping()
    {
        if (base != MAP_FAILED && length > 0)
            ::munmap(base, length);
    }
};

bool
writeAllFd(int fd, std::string_view bytes)
{
    size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + written, bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<size_t>(n);
    }
    return true;
}

std::shared_ptr<ArtifactStore> &
globalStoreSlot()
{
    static std::shared_ptr<ArtifactStore> slot;
    return slot;
}

std::mutex &
globalStoreMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // anonymous namespace

uint64_t
hashBytes(std::string_view bytes)
{
    uint64_t h = mix64(bytes.size());
    size_t at = 0;
    for (; at + 8 <= bytes.size(); at += 8)
        h = mix64(h ^ getU64Le(bytes.data() + at));
    for (; at < bytes.size(); ++at)
        h = mix64(h ^ static_cast<unsigned char>(bytes[at]));
    return h;
}

/**
 * A validated container file, either read() bytes or a live mapping.
 * Filled in place behind a shared_ptr and never moved afterwards, so
 * `data` (which may point into `inlineBytes`) stays valid for the life
 * of any span handed out against it.
 */
struct ArtifactStore::LoadedFile
{
    struct Section
    {
        uint32_t tag = 0;
        uint64_t offset = 0;
        uint64_t length = 0;
    };

    const char *data = nullptr;
    size_t size = 0;
    uint64_t itemCount = 0;
    std::string inlineBytes;           ///< backing for the read() path
    std::shared_ptr<const void> owner; ///< backing for the mmap path
    std::vector<Section> sections;

    std::string_view
    section(uint32_t tag) const
    {
        for (const Section &s : sections) {
            if (s.tag == tag)
                return {data + s.offset,
                        static_cast<size_t>(s.length)};
        }
        return {};
    }
};

ArtifactStore::ArtifactStore(StoreOptions options)
    : options_(std::move(options))
{
    std::error_code ec;
    for (const char *sub : {"traces", "designs", "quarantine"}) {
        fs::create_directories(fs::path(options_.dir) / sub, ec);
        if (ec) {
            throw std::runtime_error("store: cannot create " +
                                     options_.dir + "/" + sub + ": " +
                                     ec.message());
        }
    }
    scan(/*validateAll=*/true);
    const StoreStats opened = stats();
    obs::logInfo("store.open", "persistent store opened",
                 {{"dir", options_.dir},
                  {"entries", static_cast<uint64_t>(opened.entries)},
                  {"bytes", opened.bytes},
                  {"quarantined", opened.quarantined},
                  {"recoveredTemps", opened.recoveredTemps},
                  {"evicted", opened.evictions}});
}

std::string
ArtifactStore::tracePath(uint64_t hash) const
{
    return options_.dir + "/traces/" + hexKey(hash) + ".af";
}

std::string
ArtifactStore::designPath(uint64_t hash) const
{
    return options_.dir + "/designs/" + hexKey(hash) + ".af";
}

bool
ArtifactStore::commitFile(const std::string &finalPath,
                          std::string_view bytes)
{
    static std::atomic<uint64_t> tmpSeq{0};
    const std::string tmp = finalPath + ".tmp" +
        std::to_string(::getpid()) + "." +
        std::to_string(tmpSeq.fetch_add(1, std::memory_order_relaxed));

    const auto fail = [&](const char *what) {
        obs::logWarn("store.write", "store commit failed",
                     {{"op", what},
                      {"file", finalPath},
                      {"detail", std::strerror(errno)}});
        ::unlink(tmp.c_str());
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.writeFailures;
        }
        storeTelemetry().writeFailures.inc();
        return false;
    };

    const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        return fail("open");

    // A triggered store.write simulates the writer dying mid-write:
    // half the payload lands in the temp file, nothing is renamed, and
    // the fault propagates like the crash it stands for.
    try {
        AUTOFSM_FAILPOINT("store.write");
    } catch (const InjectedFault &) {
        writeAllFd(fd, bytes.substr(0, bytes.size() / 2));
        ::close(fd);
        throw;
    }
    if (!writeAllFd(fd, bytes)) {
        ::close(fd);
        return fail("write");
    }
    // A triggered store.fsync dies after the data is written but before
    // it is durable: the full temp file remains, unrenamed.
    try {
        AUTOFSM_FAILPOINT("store.fsync");
    } catch (const InjectedFault &) {
        ::close(fd);
        throw;
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        return fail("fsync");
    }
    ::close(fd);
    // A triggered store.rename dies between fsync and the atomic
    // publish: durable bytes, invisible entry.
    AUTOFSM_FAILPOINT("store.rename");
    if (::rename(tmp.c_str(), finalPath.c_str()) != 0)
        return fail("rename");

    // Make the directory entry durable too (best effort: a failure
    // here can only delay visibility after a power cut, not tear it).
    const std::string dir =
        finalPath.substr(0, finalPath.find_last_of('/'));
    const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        ::fsync(dirFd);
        ::close(dirFd);
    }

    bool rescanNow = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.writes;
        stats_.bytes += bytes.size();
        ++stats_.entries;
        bytesSinceScan_ += bytes.size();
        if (bytesSinceScan_ >= options_.evictScanBytes) {
            bytesSinceScan_ = 0;
            rescanNow = true;
        }
    }
    storeTelemetry().writes.inc();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        storeTelemetry().bytes.set(static_cast<double>(stats_.bytes));
        storeTelemetry().entries.set(static_cast<double>(stats_.entries));
    }
    if (rescanNow)
        scan(/*validateAll=*/false);
    return true;
}

void
ArtifactStore::quarantine(const std::string &path,
                          const std::string &reason)
{
    const std::string name = path.substr(path.find_last_of('/') + 1);
    uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        seq = quarantineSeq_++;
        ++stats_.quarantined;
    }
    const std::string target = options_.dir + "/quarantine/" + name +
        "." + std::to_string(seq);
    if (::rename(path.c_str(), target.c_str()) != 0) {
        // Cannot even move it aside; remove so it is not re-read.
        ::unlink(path.c_str());
    }
    storeTelemetry().quarantined.inc();
    obs::logWarn("store.quarantine", "quarantined corrupt store entry",
                 {{"file", path}, {"reason", reason}});
}

std::shared_ptr<ArtifactStore::LoadedFile>
ArtifactStore::loadFile(const std::string &path, ArtifactKind kind,
                        uint64_t keyHash, bool wantMmap)
{
    AUTOFSM_FAILPOINT("store.load");
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return nullptr; // miss (or unreadable: nothing to serve)

    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        quarantine(path, "unstatable or not a regular file");
        return nullptr;
    }
    const size_t size = static_cast<size_t>(st.st_size);

    auto file = std::make_shared<LoadedFile>();
    file->size = size;
    if (wantMmap && size > 0) {
        try {
            AUTOFSM_FAILPOINT("store.mmap");
        } catch (const InjectedFault &) {
            ::close(fd);
            throw;
        }
        auto mapping = std::make_shared<Mapping>();
        mapping->base =
            ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
        mapping->length = size;
        ::close(fd);
        if (mapping->base == MAP_FAILED) {
            quarantine(path, "mmap failed");
            return nullptr;
        }
        file->data = static_cast<const char *>(mapping->base);
        file->owner = std::move(mapping);
    } else {
        file->inlineBytes.resize(size);
        size_t got = 0;
        while (got < size) {
            const ssize_t n = ::read(
                fd, file->inlineBytes.data() + got, size - got);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            got += static_cast<size_t>(n);
        }
        ::close(fd);
        if (got != size) {
            quarantine(path, "short read");
            return nullptr;
        }
        file->data = file->inlineBytes.data();
    }

    // Validate everything before trusting anything.
    const auto reject =
        [&](const std::string &reason) -> std::shared_ptr<LoadedFile> {
        quarantine(path, reason);
        return nullptr;
    };
    if (size < kHeaderBytes)
        return reject("truncated header");
    if (std::memcmp(file->data, kMagic, sizeof(kMagic)) != 0)
        return reject("bad magic");
    if (getU16Le(file->data + 4) != kVersion)
        return reject("unsupported version " +
                      std::to_string(getU16Le(file->data + 4)));
    if (static_cast<uint8_t>(file->data[6]) !=
        static_cast<uint8_t>(kind)) {
        return reject("wrong artifact kind");
    }
    const size_t sectionCount =
        static_cast<unsigned char>(file->data[7]);
    if (getU64Le(file->data + 8) != keyHash)
        return reject("key hash mismatch");
    if (getU64Le(file->data + 16) != size)
        return reject("file length mismatch");
    file->itemCount = getU64Le(file->data + 24);
    if (size < kHeaderBytes + sectionCount * kSectionDescBytes)
        return reject("truncated section table");
    const std::string_view whole(file->data, size);
    const uint32_t wantHeaderCrc =
        getU32Le(file->data + kHeaderCrcOffset);
    const uint32_t gotHeaderCrc = crc32IeeeUpdate(
        crc32Ieee(whole.substr(0, kHeaderCrcOffset)),
        whole.substr(kHeaderBytes, sectionCount * kSectionDescBytes));
    if (gotHeaderCrc != wantHeaderCrc)
        return reject("header CRC mismatch");

    for (size_t i = 0; i < sectionCount; ++i) {
        const char *desc =
            file->data + kHeaderBytes + i * kSectionDescBytes;
        LoadedFile::Section section;
        section.tag = getU32Le(desc);
        const uint32_t wantCrc = getU32Le(desc + 4);
        section.offset = getU64Le(desc + 8);
        section.length = getU64Le(desc + 16);
        if (section.offset % 8 != 0 || section.offset > size ||
            section.length > size - section.offset) {
            return reject("section out of bounds");
        }
        if (crc32Ieee(whole.substr(section.offset, section.length)) !=
            wantCrc) {
            return reject("section CRC mismatch (tag " +
                          std::to_string(section.tag) + ")");
        }
        file->sections.push_back(section);
    }
    return file;
}

bool
ArtifactStore::putTrace(std::string_view keyText,
                        std::span<const uint64_t> pcs,
                        std::span<const uint64_t> takenWords,
                        uint64_t count)
{
    const std::string pcBytes = serializeU64Array(pcs);
    const std::string wordBytes = serializeU64Array(takenWords);
    const uint64_t keyHash = hashBytes(keyText);
    const std::string file =
        composeFile(ArtifactKind::PackedTrace, keyHash, count,
                    {{kSecTracePcs, pcBytes},
                     {kSecTraceWords, wordBytes},
                     {kSecTraceKey, keyText}});
    return commitFile(tracePath(keyHash), file);
}

std::optional<TraceBlob>
ArtifactStore::loadTrace(std::string_view keyText)
{
    const uint64_t keyHash = hashBytes(keyText);
    const std::string path = tracePath(keyHash);
    std::shared_ptr<LoadedFile> file;
    try {
        file = loadFile(path, ArtifactKind::PackedTrace, keyHash,
                        /*wantMmap=*/true);
    } catch (const InjectedFault &) {
        file = nullptr; // injected read fault: a clean miss
    }
    if (file) {
        // The stored layout must agree with itself before any span is
        // handed out; a mismatch is corruption, not a format variant.
        const uint64_t n = file->itemCount;
        if (file->section(kSecTraceKey) != keyText ||
            file->section(kSecTracePcs).size() != n * 8 ||
            file->section(kSecTraceWords).size() !=
                ((n + 63) / 64) * 8) {
            quarantine(path, "inconsistent trace sections");
            file = nullptr;
        }
    }
    bool warm = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (file) {
            ++stats_.hits;
            warm = warmSet_.count(path) > 0;
            if (warm)
                ++stats_.warmHits;
        } else {
            ++stats_.misses;
        }
    }
    if (!file) {
        storeTelemetry().misses.inc();
        return std::nullopt;
    }
    storeTelemetry().hits.inc();
    if (warm)
        storeTelemetry().warmHits.inc();

    TraceBlob blob;
    blob.count = file->itemCount;
    const std::string_view pcBytes = file->section(kSecTracePcs);
    const std::string_view wordBytes = file->section(kSecTraceWords);
    blob.pcs = {reinterpret_cast<const uint64_t *>(pcBytes.data()),
                pcBytes.size() / 8};
    blob.takenWords = {
        reinterpret_cast<const uint64_t *>(wordBytes.data()),
        wordBytes.size() / 8};
    blob.owner = std::move(file); // keeps the mapping alive
    return blob;
}

bool
ArtifactStore::putDesign(uint64_t keyHash, const DesignArtifact &artifact)
{
    const std::string fsmText = dfaToText(artifact.fsm);
    const std::string beforeText = dfaToText(artifact.beforeReduction);
    const std::string coverText = serializeCover(artifact.cover);
    const std::string metaText = serializeMeta(artifact);
    const std::string onesBytes = serializeU32Array(artifact.predictOne);
    const std::string dcBytes = serializeU32Array(artifact.dontCare);
    const std::string stagesText = serializeStages(artifact.stageMillis);
    const std::string file =
        composeFile(ArtifactKind::Design, keyHash, 0,
                    {{kSecDesignFsm, fsmText},
                     {kSecDesignBefore, beforeText},
                     {kSecDesignRegex, artifact.regexText},
                     {kSecDesignCover, coverText},
                     {kSecDesignMeta, metaText},
                     {kSecDesignOnes, onesBytes},
                     {kSecDesignDc, dcBytes},
                     {kSecDesignStages, stagesText}});
    return commitFile(designPath(keyHash), file);
}

std::optional<DesignArtifact>
ArtifactStore::loadDesign(uint64_t keyHash)
{
    const std::string path = designPath(keyHash);
    std::shared_ptr<LoadedFile> file;
    try {
        file = loadFile(path, ArtifactKind::Design, keyHash,
                        /*wantMmap=*/false);
    } catch (const InjectedFault &) {
        file = nullptr;
    }
    std::optional<DesignArtifact> artifact;
    if (file) {
        try {
            DesignArtifact out;
            out.fsm =
                dfaFromText(std::string(file->section(kSecDesignFsm)));
            out.beforeReduction = dfaFromText(
                std::string(file->section(kSecDesignBefore)));
            out.regexText = std::string(file->section(kSecDesignRegex));
            out.cover =
                parseCover(std::string(file->section(kSecDesignCover)));
            parseMeta(std::string(file->section(kSecDesignMeta)), out);
            out.predictOne = parseU32Array(file->section(kSecDesignOnes));
            out.dontCare = parseU32Array(file->section(kSecDesignDc));
            out.stageMillis = parseStages(
                std::string(file->section(kSecDesignStages)));
            artifact = std::move(out);
        } catch (const std::exception &e) {
            // CRCs passed but the content does not parse: a writer bug
            // or a format skew. Same policy either way — never serve it.
            quarantine(path,
                       std::string("unparseable artifact: ") + e.what());
        }
    }
    bool warm = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (artifact) {
            ++stats_.hits;
            warm = warmSet_.count(path) > 0;
            if (warm)
                ++stats_.warmHits;
        } else {
            ++stats_.misses;
        }
    }
    if (!artifact) {
        storeTelemetry().misses.inc();
        return std::nullopt;
    }
    storeTelemetry().hits.inc();
    if (warm)
        storeTelemetry().warmHits.inc();
    return artifact;
}

void
ArtifactStore::scan(bool validateAll)
{
    struct EntryFile
    {
        std::string path;
        uint64_t size = 0;
        fs::file_time_type mtime;
        bool warm = false;
    };
    std::vector<EntryFile> entries;
    uint64_t recoveredTemps = 0;
    std::error_code ec;
    for (const char *sub : {"traces", "designs"}) {
        const ArtifactKind kind = sub[0] == 't'
            ? ArtifactKind::PackedTrace
            : ArtifactKind::Design;
        const fs::directory_iterator end;
        for (fs::directory_iterator it(fs::path(options_.dir) / sub, ec);
             !ec && it != end; it.increment(ec)) {
            const fs::path path = it->path();
            const std::string name = path.filename().string();
            if (name.find(".tmp") != std::string::npos) {
                // A writer died mid-commit; the entry was never
                // published, so the leftover bytes are garbage.
                std::error_code removeEc;
                fs::remove(path, removeEc);
                ++recoveredTemps;
                obs::logInfo("store.recover", "removed stale temp file",
                             {{"file", path.string()}});
                continue;
            }
            const std::optional<uint64_t> key = keyFromFileName(name);
            if (!key) {
                quarantine(path.string(), "unrecognized file name");
                continue;
            }
            EntryFile entry;
            entry.path = path.string();
            if (validateAll) {
                // Full validation (CRCs and all); corrupt entries are
                // quarantined here, before anything can load them. An
                // injected store.load fault leaves the entry in place
                // but unverified: counted, never warm.
                std::shared_ptr<LoadedFile> file;
                bool faulted = false;
                try {
                    file = loadFile(path.string(), kind, *key,
                                    /*wantMmap=*/false);
                } catch (const InjectedFault &) {
                    faulted = true;
                }
                if (!file && !faulted)
                    continue; // quarantined (or vanished underneath us)
                entry.warm = !faulted;
            }
            std::error_code statEc;
            entry.size = fs::file_size(path, statEc);
            entry.mtime = fs::last_write_time(path, statEc);
            if (statEc)
                continue;
            entries.push_back(std::move(entry));
        }
        ec.clear();
    }

    uint64_t total = 0;
    for (const EntryFile &entry : entries)
        total += entry.size;

    uint64_t evicted = 0;
    if (options_.maxBytes > 0 && total > options_.maxBytes) {
        std::sort(entries.begin(), entries.end(),
                  [](const EntryFile &a, const EntryFile &b) {
                      return a.mtime < b.mtime;
                  });
        while (total > options_.maxBytes && evicted < entries.size()) {
            std::error_code removeEc;
            fs::remove(entries[evicted].path, removeEc);
            total -= entries[evicted].size;
            ++evicted;
        }
        obs::logInfo("store.evict", "size-capped eviction scan",
                     {{"evicted", evicted},
                      {"bytes", total},
                      {"maxBytes", options_.maxBytes}});
        entries.erase(entries.begin(),
                      entries.begin() + static_cast<long>(evicted));
        storeTelemetry().evictions.inc(evicted);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.recoveredTemps += recoveredTemps;
        stats_.evictions += evicted;
        stats_.entries = entries.size();
        stats_.bytes = total;
        if (validateAll) {
            warmSet_.clear();
            for (const EntryFile &entry : entries) {
                if (entry.warm)
                    warmSet_.insert(entry.path);
            }
        } else {
            for (auto it = warmSet_.begin(); it != warmSet_.end();) {
                const bool kept = std::any_of(
                    entries.begin(), entries.end(),
                    [&](const EntryFile &e) { return e.path == *it; });
                it = kept ? std::next(it) : warmSet_.erase(it);
            }
        }
    }
    storeTelemetry().bytes.set(static_cast<double>(total));
    storeTelemetry().entries.set(static_cast<double>(entries.size()));
}

StoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
ArtifactStore::rescan()
{
    scan(/*validateAll=*/false);
}

std::shared_ptr<ArtifactStore>
globalStore()
{
    std::lock_guard<std::mutex> lock(globalStoreMutex());
    return globalStoreSlot();
}

void
setGlobalStore(std::shared_ptr<ArtifactStore> store)
{
    std::lock_guard<std::mutex> lock(globalStoreMutex());
    globalStoreSlot() = std::move(store);
}

} // namespace autofsm::store
