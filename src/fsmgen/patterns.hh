/**
 * @file
 * Pattern definition: partition histories into "predict 1", "predict 0"
 * and "don't care" sets (Section 4.3).
 */

#ifndef AUTOFSM_FSMGEN_PATTERNS_HH
#define AUTOFSM_FSMGEN_PATTERNS_HH

#include <cstdint>
#include <vector>

#include "fsmgen/markov.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/** Knobs of the pattern-definition stage. */
struct PatternOptions
{
    /**
     * Predict-1 bias threshold. A history with P[1|h] >= threshold joins
     * the "predict 1" set. 0.5 is the misprediction-minimizing choice
     * for branch prediction; confidence estimators sweep it towards 1.0
     * to trade coverage for accuracy (the Figure 2 curves).
     */
    double threshold = 0.5;

    /**
     * Fraction of total observations whose least-seen histories are
     * placed in the "don't care" set. The paper reports that donating
     * the 1% least seen histories halves predictor size with negligible
     * accuracy impact.
     */
    double dontCareMass = 0.01;

    /**
     * Whether the 2^N histories never observed in the trace are
     * don't-cares (always beneficial; exposed for ablation).
     */
    bool unseenAreDontCare = true;
};

/** The three history sets, in packed-history form. */
struct PatternSets
{
    int order = 0;
    std::vector<uint32_t> predictOne;
    std::vector<uint32_t> predictZero;
    std::vector<uint32_t> dontCare;

    /** Build the ON/DC truth table handed to logic minimization. */
    TruthTable toTruthTable() const;
};

/**
 * Partition every history of the model's order according to @p options.
 *
 * Seen histories with P[1|h] >= threshold go to "predict 1", the rest to
 * "predict 0", except that the least-frequently-seen histories making up
 * at most `dontCareMass` of all observations are diverted to the
 * "don't care" set (ties broken towards keeping histories specified).
 */
PatternSets definePatterns(const MarkovModel &model,
                           const PatternOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_PATTERNS_HH
