/**
 * @file
 * The end-to-end automated FSM predictor design flow (Section 4).
 *
 * trace -> Markov model -> pattern sets -> minimized cover -> regular
 * expression -> NFA -> DFA -> Hopcroft minimization -> start-state
 * reduction. The result carries the artifacts of every stage so examples,
 * benches and tests can inspect intermediate products (e.g. Figure 1
 * shows the machine both before and after start-state reduction).
 *
 * `designFsm` / `designFromTrace` are retained as thin compatibility
 * wrappers over the stage-oriented pipeline in flow/design_flow.hh
 * (`DesignFlow`), which additionally reports per-stage wall-clock and
 * size metrics; batches of traces should go through flow/batch.hh
 * (`BatchDesigner`) to get parallelism and memoization.
 */

#ifndef AUTOFSM_FSMGEN_DESIGNER_HH
#define AUTOFSM_FSMGEN_DESIGNER_HH

#include <string>
#include <vector>

#include "automata/dfa.hh"
#include "automata/regex.hh"
#include "flow/budget.hh"
#include "fsmgen/markov.hh"
#include "fsmgen/patterns.hh"
#include "logicmin/minimize.hh"

namespace autofsm
{

/** Knobs of the whole design flow. */
struct FsmDesignOptions
{
    /** Markov order / history length N. */
    int order = 2;
    /** Pattern-definition knobs (threshold, don't-care mass). */
    PatternOptions patterns;
    /** Logic-minimization engine. */
    MinimizeAlgo minimizer = MinimizeAlgo::Auto;
    /**
     * Skip start-state reduction and keep the transient start-up states
     * (used to reproduce the left-hand machine of Figure 1 and for the
     * size ablation).
     */
    bool keepStartupStates = false;
    /**
     * Per-stage resource budgets (flow/budget.hh). All-zero (the
     * default) means unlimited and leaves the flow's behavior exactly
     * as before; finite limits make oversized inputs degrade gracefully
     * instead of stalling (see DesignFlow's fallback ladder).
     */
    FlowBudget budget;
    /**
     * Train trace-entry models through the flat counting kernels of
     * fsmgen/profile.hh instead of the sparse per-outcome map walk.
     * Bit-identical models either way; off keeps the reference path.
     */
    bool flatProfiling = true;
    /**
     * Consult the process-wide design-stage memo (flow/design_memo.hh)
     * that shares the minimize->regex->NFA->DFA->reduce tail across
     * items with identical pattern partitions. Hits return bit-identical
     * artifacts; the memo is bypassed automatically when the budget is
     * finite or a failpoint is armed.
     */
    bool memoizeStages = true;
};

/** All artifacts produced by one run of the design flow. */
struct FsmDesignResult
{
    PatternSets patterns;
    /**
     * Minimized sum-of-products description of the "predict 1" set.
     * Starts as an empty 1-input cover; designFsm replaces it with a
     * cover over the N history bits.
     */
    Cover cover = Cover::forInputs(1);
    /** The paper-notation regular expression for the language L. */
    std::string regexText;
    /** Hopcroft-minimized machine before start-state reduction. */
    Dfa beforeReduction;
    /** The final predictor machine. */
    Dfa fsm;

    /** @name Stage state-count statistics. */
    /// @{
    int statesSubset = 0;   ///< after subset construction
    int statesHopcroft = 0; ///< after Hopcroft minimization
    int statesFinal = 0;    ///< after start-state reduction
    /// @}
};

/**
 * Run the design flow on a pre-built Markov model.
 *
 * @throws std::invalid_argument if model.order() != options.order.
 */
FsmDesignResult designFsm(const MarkovModel &model,
                          const FsmDesignOptions &options = {});

/** Convenience: train a model on @p trace, then run the flow. */
FsmDesignResult designFromTrace(const std::vector<int> &trace,
                                const FsmDesignOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_DESIGNER_HH
