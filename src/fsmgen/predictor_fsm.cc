#include "fsmgen/predictor_fsm.hh"

namespace autofsm
{

FsmTable::FsmTable(const Dfa &dfa)
    : start_(dfa.start())
{
    const int n = dfa.numStates();
    next_.resize(static_cast<size_t>(n) * 2);
    outputs_.resize(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
        next_[static_cast<size_t>(s) * 2 + 0] = dfa.next(s, 0);
        next_[static_cast<size_t>(s) * 2 + 1] = dfa.next(s, 1);
        outputs_[static_cast<size_t>(s)] =
            static_cast<uint8_t>(dfa.output(s));
    }
}

} // namespace autofsm
