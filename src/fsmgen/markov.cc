#include "fsmgen/markov.hh"

#include <cassert>

namespace autofsm
{

MarkovModel::MarkovModel(int order)
    : order_(order)
{
    assert(order >= 1 && order <= 24);
}

void
MarkovModel::observe(uint32_t history, int outcome)
{
    assert(outcome == 0 || outcome == 1);
    assert((history & ~lowMask(order_)) == 0);
    auto &entry = table_[history];
    entry.total += 1;
    entry.ones += static_cast<uint64_t>(outcome);
    ++total_;
}

void
MarkovModel::addCounts(uint32_t history, uint64_t ones, uint64_t total)
{
    assert((history & ~lowMask(order_)) == 0);
    assert(ones <= total);
    if (total == 0)
        return;
    auto &entry = table_[history];
    entry.ones += ones;
    entry.total += total;
    total_ += total;
}

void
MarkovModel::train(const std::vector<int> &trace)
{
    HistoryRegister history(order_);
    for (int bit : trace) {
        if (history.warm())
            observe(history.value(), bit);
        history.push(bit);
    }
}

double
MarkovModel::probabilityOne(uint32_t history) const
{
    const auto it = table_.find(history);
    if (it == table_.end() || it->second.total == 0)
        return 0.5;
    return static_cast<double>(it->second.ones) /
        static_cast<double>(it->second.total);
}

HistoryCounts
MarkovModel::counts(uint32_t history) const
{
    const auto it = table_.find(history);
    return it == table_.end() ? HistoryCounts{} : it->second;
}

void
MarkovModel::merge(const MarkovModel &other)
{
    assert(other.order_ == order_);
    for (const auto &[history, counts] : other.table_) {
        auto &entry = table_[history];
        entry.ones += counts.ones;
        entry.total += counts.total;
    }
    total_ += other.total_;
    publishMarkovTableGauges(*this);
}

} // namespace autofsm
