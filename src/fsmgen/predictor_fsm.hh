/**
 * @file
 * Runtime form of a generated FSM predictor.
 *
 * Wraps an immutable transition table (shared between the many instances
 * a hardware table would replicate, e.g. one confidence FSM per value
 * predictor entry) plus the per-instance current state.
 */

#ifndef AUTOFSM_FSMGEN_PREDICTOR_FSM_HH
#define AUTOFSM_FSMGEN_PREDICTOR_FSM_HH

#include <cassert>
#include <memory>
#include <vector>

#include "automata/dfa.hh"

namespace autofsm
{

/**
 * Immutable, densely-packed transition table compiled from a Dfa.
 * Shareable across any number of PredictorFsm instances.
 */
class FsmTable
{
  public:
    explicit FsmTable(const Dfa &dfa);

    int numStates() const { return static_cast<int>(outputs_.size()); }
    int start() const { return start_; }

    int
    next(int state, int outcome) const
    {
        return next_[static_cast<size_t>(state) * 2 +
                     static_cast<size_t>(outcome)];
    }

    int output(int state) const { return outputs_[static_cast<size_t>(state)]; }

  private:
    std::vector<int> next_;      ///< 2 successors per state, row-major
    std::vector<uint8_t> outputs_;
    int start_ = 0;
};

/** One live instance of a generated predictor. */
class PredictorFsm
{
  public:
    explicit PredictorFsm(std::shared_ptr<const FsmTable> table)
        : table_(std::move(table)), state_(table_->start())
    {}

    /** Build a self-owned instance straight from a Dfa. */
    explicit PredictorFsm(const Dfa &dfa)
        : PredictorFsm(std::make_shared<const FsmTable>(dfa))
    {}

    /** The Moore output of the current state: the prediction. */
    int predict() const { return table_->output(state_); }

    /** Advance on the actual @p outcome (0 or 1). */
    void
    update(int outcome)
    {
        assert(outcome == 0 || outcome == 1);
        state_ = table_->next(state_, outcome);
    }

    /** Return to the machine's start state. */
    void reset() { state_ = table_->start(); }

    int state() const { return state_; }
    int numStates() const { return table_->numStates(); }
    const FsmTable &table() const { return *table_; }
    std::shared_ptr<const FsmTable> sharedTable() const { return table_; }

  private:
    std::shared_ptr<const FsmTable> table_;
    int state_;
};

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_PREDICTOR_FSM_HH
