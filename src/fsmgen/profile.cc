#include "fsmgen/profile.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.hh"
#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Profiling instrumentation, registered once. */
struct ProfileTelemetry
{
    obs::Counter runs;
    obs::Counter observations;
    obs::Counter warmupObservations;
    obs::Histogram countMillis;
    obs::Histogram foldMillis;
    obs::Histogram replayMillis;
    obs::Gauge distinctHistories;
    obs::Gauge tableBytes;
};

ProfileTelemetry &
profileTelemetry()
{
    static ProfileTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        ProfileTelemetry t;
        t.runs = registry.counter("autofsm_profile_runs_total",
                                  "Multi-order profiling passes finished.");
        t.observations = registry.counter(
            "autofsm_profile_observations_total",
            "Max-order (foldable) outcomes counted by the profiler.");
        t.warmupObservations = registry.counter(
            "autofsm_profile_warmup_observations_total",
            "Warm-up edge outcomes replayed per derived order.");
        const std::vector<double> buckets =
            obs::defaultLatencyBucketsMillis();
        t.countMillis = registry.histogram(
            "autofsm_profile_stage_millis",
            "Wall-clock of one profiling stage.", buckets,
            {{"stage", "count"}});
        t.foldMillis = registry.histogram(
            "autofsm_profile_stage_millis",
            "Wall-clock of one profiling stage.", buckets,
            {{"stage", "fold"}});
        t.replayMillis = registry.histogram(
            "autofsm_profile_stage_millis",
            "Wall-clock of one profiling stage.", buckets,
            {{"stage", "replay"}});
        t.distinctHistories = registry.gauge(
            "autofsm_profile_distinct_histories",
            "Distinct histories in the most recently built or merged "
            "Markov table (largest order of a profile).");
        t.tableBytes = registry.gauge(
            "autofsm_profile_table_bytes",
            "Approximate heap bytes of the most recently built or "
            "merged Markov table (largest order of a profile).");
        return t;
    }();
    return telemetry;
}

} // anonymous namespace

void
publishMarkovTableGauges(const MarkovModel &model)
{
    if (!obs::globalMetrics().enabled())
        return;
    ProfileTelemetry &telemetry = profileTelemetry();
    telemetry.distinctHistories.set(
        static_cast<double>(model.distinctHistories()));
    telemetry.tableBytes.set(
        static_cast<double>(model.approxTableBytes()));
}

size_t
MultiOrderProfile::indexOf(int order) const
{
    for (size_t i = 0; i < orders_.size(); ++i) {
        if (orders_[i] == order)
            return i;
    }
    throw std::invalid_argument("MultiOrderProfile: order " +
                                std::to_string(order) +
                                " was not requested from finish()");
}

const MarkovModel &
MultiOrderProfile::model(int order) const
{
    return models_[indexOf(order)];
}

MarkovModel
MultiOrderProfile::takeModel(int order)
{
    return std::move(models_[indexOf(order)]);
}

MultiOrderCounter::MultiOrderCounter(int max_order)
    : maxOrder_(max_order),
      mask_(lowMask(max_order)),
      flat_(max_order <= kMaxFlatOrder)
{
    assert(max_order >= 1 && max_order <= 24);
    if (flat_)
        dense_.assign(size_t{1} << max_order, HistoryCounts{});
}

void
MultiOrderCounter::consume(const std::vector<int> &bits)
{
    AUTOFSM_FAILPOINT("profile.count");
    const auto start = std::chrono::steady_clock::now();
    const size_t n = bits.size();
    const size_t warm = std::min(static_cast<size_t>(maxOrder_), n);
    uint32_t h = 0;
    for (size_t i = 0; i < warm; ++i) {
        const auto bit = static_cast<uint32_t>(bits[i]);
        assert(bit <= 1);
        if (i > 0) {
            warmup_.push_back({h, static_cast<uint8_t>(i),
                               static_cast<uint8_t>(bit)});
        }
        h = ((h << 1) | bit) & mask_;
    }
    if (flat_) {
        HistoryCounts *counts = dense_.data();
        for (size_t i = warm; i < n; ++i) {
            const auto bit = static_cast<uint32_t>(bits[i]);
            assert(bit <= 1);
            HistoryCounts &entry = counts[h];
            entry.total += 1;
            entry.ones += bit;
            h = ((h << 1) | bit) & mask_;
        }
    } else {
        for (size_t i = warm; i < n; ++i) {
            const auto bit = static_cast<uint32_t>(bits[i]);
            HistoryCounts &entry = sparse_[h];
            entry.total += 1;
            entry.ones += bit;
            h = ((h << 1) | bit) & mask_;
        }
    }
    observations_ += n - warm;
    countMillis_ += millisSince(start);
}

void
MultiOrderCounter::consumeWords(const uint64_t *words, size_t bits)
{
    AUTOFSM_FAILPOINT("profile.count");
    const auto start = std::chrono::steady_clock::now();
    const size_t warm = std::min(static_cast<size_t>(maxOrder_), bits);
    uint32_t h = 0;
    for (size_t i = 0; i < warm; ++i) {
        const auto bit =
            static_cast<uint32_t>((words[i >> 6] >> (i & 63)) & 1ULL);
        if (i > 0) {
            warmup_.push_back({h, static_cast<uint8_t>(i),
                               static_cast<uint8_t>(bit)});
        }
        h = ((h << 1) | bit) & mask_;
    }
    // Hot loop: one word load per 64 outcomes, then shift out bits.
    size_t i = warm;
    if (flat_) {
        HistoryCounts *counts = dense_.data();
        while (i < bits) {
            uint64_t word = words[i >> 6] >> (i & 63);
            const size_t take = std::min<size_t>(64 - (i & 63), bits - i);
            for (size_t k = 0; k < take; ++k, word >>= 1) {
                const auto bit = static_cast<uint32_t>(word & 1ULL);
                HistoryCounts &entry = counts[h];
                entry.total += 1;
                entry.ones += bit;
                h = ((h << 1) | bit) & mask_;
            }
            i += take;
        }
    } else {
        while (i < bits) {
            uint64_t word = words[i >> 6] >> (i & 63);
            const size_t take = std::min<size_t>(64 - (i & 63), bits - i);
            for (size_t k = 0; k < take; ++k, word >>= 1) {
                const auto bit = static_cast<uint32_t>(word & 1ULL);
                HistoryCounts &entry = sparse_[h];
                entry.total += 1;
                entry.ones += bit;
                h = ((h << 1) | bit) & mask_;
            }
            i += take;
        }
    }
    observations_ += bits - warm;
    countMillis_ += millisSince(start);
}

MultiOrderProfile
MultiOrderCounter::finish(const std::vector<int> &orders)
{
    AUTOFSM_FAILPOINT("profile.fold");
    MultiOrderProfile profile;
    profile.orders_ = orders;
    std::sort(profile.orders_.begin(), profile.orders_.end(),
              std::greater<int>());
    profile.orders_.erase(
        std::unique(profile.orders_.begin(), profile.orders_.end()),
        profile.orders_.end());
    if (profile.orders_.empty())
        throw std::invalid_argument("MultiOrderCounter: no orders");
    if (profile.orders_.front() > maxOrder_ || profile.orders_.back() < 1) {
        throw std::invalid_argument(
            "MultiOrderCounter: order outside [1, " +
            std::to_string(maxOrder_) + "]");
    }
    profile.models_.reserve(profile.orders_.size());

    // Fold down the order ladder: the table of order o-1 is the table of
    // order o with the oldest history bit (bit o-1) marginalized out.
    // Valid for every max-order observation; warm-up edges are replayed
    // below.
    const auto fold_start = std::chrono::steady_clock::now();
    const int lowest = profile.orders_.back();
    size_t next = 0;
    if (flat_) {
        std::vector<HistoryCounts> cur = std::move(dense_);
        for (int o = maxOrder_; o >= lowest; --o) {
            if (next < profile.orders_.size() &&
                profile.orders_[next] == o) {
                MarkovModel model(o);
                const size_t space = size_t{1} << o;
                for (size_t h = 0; h < space; ++h) {
                    if (cur[h].total > 0) {
                        model.addCounts(static_cast<uint32_t>(h),
                                        cur[h].ones, cur[h].total);
                    }
                }
                profile.models_.push_back(std::move(model));
                ++next;
            }
            if (o > lowest) {
                const size_t half = size_t{1} << (o - 1);
                for (size_t h = 0; h < half; ++h) {
                    cur[h].ones += cur[h + half].ones;
                    cur[h].total += cur[h + half].total;
                }
                cur.resize(half);
            }
        }
    } else {
        std::unordered_map<uint32_t, HistoryCounts> cur =
            std::move(sparse_);
        for (int o = maxOrder_; o >= lowest; --o) {
            if (next < profile.orders_.size() &&
                profile.orders_[next] == o) {
                MarkovModel model(o);
                for (const auto &[history, counts] : cur)
                    model.addCounts(history, counts.ones, counts.total);
                profile.models_.push_back(std::move(model));
                ++next;
            }
            if (o > lowest) {
                std::unordered_map<uint32_t, HistoryCounts> folded;
                folded.reserve(cur.size());
                const uint32_t low = lowMask(o - 1);
                for (const auto &[history, counts] : cur) {
                    HistoryCounts &entry = folded[history & low];
                    entry.ones += counts.ones;
                    entry.total += counts.total;
                }
                cur = std::move(folded);
            }
        }
    }
    profile.stats_.foldMillis = millisSince(fold_start);

    // Replay the warm-up edges: an outcome with `seen` real predecessors
    // is observed by exactly the orders <= seen (direct training warms
    // each window independently). orders_ is descending, so walk it from
    // the back (smallest first) and stop at the first order too wide.
    const auto replay_start = std::chrono::steady_clock::now();
    uint64_t replayed = 0;
    for (const WarmupEntry &entry : warmup_) {
        for (size_t i = profile.orders_.size(); i-- > 0;) {
            const int o = profile.orders_[i];
            if (o > entry.seen)
                break;
            profile.models_[i].observe(entry.history & lowMask(o),
                                       entry.outcome);
            ++replayed;
        }
    }
    profile.stats_.replayMillis = millisSince(replay_start);

    profile.stats_.countMillis = countMillis_;
    profile.stats_.flat = flat_;
    profile.stats_.observations = observations_;
    profile.stats_.warmupObservations = warmup_.size();

    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (registry.enabled()) {
        ProfileTelemetry &telemetry = profileTelemetry();
        telemetry.runs.inc();
        telemetry.observations.inc(observations_);
        telemetry.warmupObservations.inc(replayed);
        telemetry.countMillis.observe(countMillis_);
        telemetry.foldMillis.observe(profile.stats_.foldMillis);
        telemetry.replayMillis.observe(profile.stats_.replayMillis);
    }
    publishMarkovTableGauges(profile.models_.front());
    return profile;
}

MultiOrderProfile
profileBits(const std::vector<int> &bits, const std::vector<int> &orders)
{
    assert(!orders.empty());
    MultiOrderCounter counter(*std::max_element(orders.begin(),
                                                orders.end()));
    counter.consume(bits);
    return counter.finish(orders);
}

MultiOrderProfile
profileWords(const uint64_t *words, size_t bits,
             const std::vector<int> &orders)
{
    assert(!orders.empty());
    MultiOrderCounter counter(*std::max_element(orders.begin(),
                                                orders.end()));
    counter.consumeWords(words, bits);
    return counter.finish(orders);
}

MarkovModel
trainMarkovModel(const std::vector<int> &trace, int order)
{
    MultiOrderCounter counter(order);
    counter.consume(trace);
    return counter.finish({order}).takeModel(order);
}

MarkovModel
trainMarkovModelWords(const uint64_t *words, size_t bits, int order)
{
    MultiOrderCounter counter(order);
    counter.consumeWords(words, bits);
    return counter.finish({order}).takeModel(order);
}

} // namespace autofsm
