#include "fsmgen/designer.hh"

#include <cassert>

namespace autofsm
{

FsmDesignResult
designFsm(const MarkovModel &model, const FsmDesignOptions &options)
{
    assert(model.order() == options.order);

    FsmDesignResult result;
    result.patterns = definePatterns(model, options.patterns);

    const TruthTable table = result.patterns.toTruthTable();
    result.cover = minimize(table, options.minimizer);

    if (result.cover.empty()) {
        // Nothing to predict 1 on: the constant machine. (Hopcroft would
        // reduce the general pipeline to this anyway; short-circuiting
        // avoids building an NFA for the empty language.)
        result.regexText = "(empty)";
        result.beforeReduction = Dfa::constant(0);
        result.fsm = result.beforeReduction;
        result.statesSubset = 1;
        result.statesHopcroft = 1;
        result.statesFinal = 1;
        return result;
    }

    const Regex regex = regexFromCover(result.cover);
    result.regexText = regex.toString();

    const Nfa nfa = Nfa::fromRegex(regex);
    const Dfa raw = Dfa::fromNfa(nfa);
    result.statesSubset = raw.numStates();

    result.beforeReduction = raw.minimizeHopcroft();
    result.statesHopcroft = result.beforeReduction.numStates();

    if (options.keepStartupStates) {
        result.fsm = result.beforeReduction;
    } else {
        result.fsm = result.beforeReduction.steadyStateReduce();
    }
    result.statesFinal = result.fsm.numStates();
    return result;
}

FsmDesignResult
designFromTrace(const std::vector<int> &trace,
                const FsmDesignOptions &options)
{
    MarkovModel model(options.order);
    model.train(trace);
    return designFsm(model, options);
}

} // namespace autofsm
