#include "fsmgen/patterns.hh"

#include <algorithm>
#include <cassert>

namespace autofsm
{

TruthTable
PatternSets::toTruthTable() const
{
    TruthTable table(order);
    for (uint32_t h : predictOne)
        table.addOn(h);
    for (uint32_t h : dontCare)
        table.addDontCare(h);
    // predictZero histories are the implicit OFF-set.
    return table;
}

PatternSets
definePatterns(const MarkovModel &model, const PatternOptions &options)
{
    assert(options.threshold >= 0.0 && options.threshold <= 1.0);
    assert(options.dontCareMass >= 0.0 && options.dontCareMass < 1.0);

    PatternSets sets;
    sets.order = model.order();

    // Select the rare histories to sacrifice: least-seen first, while
    // their cumulative observation count stays within the allowed mass.
    // The budget prefix is usually a tiny fraction of the table (1% of
    // the observation mass), so instead of fully sorting every history
    // just to read off a short prefix, partial_sort a growing head until
    // the budget is exhausted inside it. Membership in the rare set is
    // all that matters downstream: every output set is re-sorted below.
    std::vector<std::pair<uint32_t, uint64_t>> seen;
    seen.reserve(model.table().size());
    for (const auto &[history, counts] : model.table())
        seen.emplace_back(history, counts.total);
    const auto least_seen_first = [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second < b.second;
        return a.first < b.first; // deterministic tie-break
    };

    const auto budget = static_cast<uint64_t>(
        options.dontCareMass *
        static_cast<double>(model.totalObservations()));
    size_t rare_count = 0;
    if (budget > 0 && !seen.empty()) {
        size_t head = std::min<size_t>(seen.size(), 64);
        for (;;) {
            std::partial_sort(seen.begin(), seen.begin() + head,
                              seen.end(), least_seen_first);
            uint64_t used = 0;
            rare_count = head;
            for (size_t i = 0; i < head; ++i) {
                if (used + seen[i].second > budget) {
                    rare_count = i;
                    break;
                }
                used += seen[i].second;
            }
            // Done once the budget ran out inside the sorted head (the
            // prefix is final: everything beyond it is seen at least as
            // often) or the head already covers the whole table.
            if (rare_count < head || head == seen.size())
                break;
            head = std::min(seen.size(), head * 4);
        }
    }

    for (size_t i = 0; i < seen.size(); ++i) {
        const uint32_t history = seen[i].first;
        if (i < rare_count) {
            sets.dontCare.push_back(history);
        } else if (model.probabilityOne(history) >= options.threshold) {
            sets.predictOne.push_back(history);
        } else {
            sets.predictZero.push_back(history);
        }
    }

    if (options.unseenAreDontCare) {
        const uint64_t space = 1ULL << model.order();
        if (model.table().size() < space) {
            for (uint32_t h = 0; h < space; ++h) {
                if (model.counts(h).total == 0)
                    sets.dontCare.push_back(h);
            }
        }
    } else {
        // Unseen histories default to "predict 0" (they fall into the
        // implicit OFF-set by not being listed anywhere).
    }

    // Deterministic ordering for downstream stages and tests.
    std::sort(sets.predictOne.begin(), sets.predictOne.end());
    std::sort(sets.predictZero.begin(), sets.predictZero.end());
    std::sort(sets.dontCare.begin(), sets.dontCare.end());
    return sets;
}

} // namespace autofsm
