/**
 * @file
 * Nth-order Markov model of a binary behavior trace (Section 4.2).
 *
 * The model records, for each length-N history actually seen in the
 * trace, how often the next bit was 1. Storage is sparse: per-branch
 * models see only a tiny fraction of the 2^N possible histories (the
 * paper compresses its tables the same way, "only storing non-zero
 * entries").
 */

#ifndef AUTOFSM_FSMGEN_MARKOV_HH
#define AUTOFSM_FSMGEN_MARKOV_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/bits.hh"
#include "support/history.hh"

namespace autofsm
{

/** Counts attached to one history pattern. */
struct HistoryCounts
{
    uint64_t ones = 0;  ///< times the next bit was 1
    uint64_t total = 0; ///< times the history was seen with a next bit
};

/** Sparse Nth-order Markov model over the binary alphabet. */
class MarkovModel
{
  public:
    /** @param order History length N, in [1, 24]. */
    explicit MarkovModel(int order);

    int order() const { return order_; }

    /**
     * Record that @p history (packed, bit 0 = most recent outcome) was
     * followed by @p outcome.
     */
    void observe(uint32_t history, int outcome);

    /**
     * Convenience trainer: slide a length-N window across @p trace and
     * observe every (history, next-bit) pair. The first N bits only warm
     * the window up, exactly as in the paper's worked example.
     */
    void train(const std::vector<int> &trace);

    /** P[next = 1 | history]; 0.5 for histories never observed. */
    double probabilityOne(uint32_t history) const;

    /** Counts for @p history; zeros if never observed. */
    HistoryCounts counts(uint32_t history) const;

    /** Number of distinct histories observed. */
    size_t distinctHistories() const { return table_.size(); }

    /** Total observations across all histories. */
    uint64_t totalObservations() const { return total_; }

    /** Merge another model of the same order into this one. */
    void merge(const MarkovModel &other);

    /** Read-only view of the sparse table. */
    const std::unordered_map<uint32_t, HistoryCounts> &
    table() const
    {
        return table_;
    }

  private:
    int order_;
    uint64_t total_ = 0;
    std::unordered_map<uint32_t, HistoryCounts> table_;
};

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_MARKOV_HH
