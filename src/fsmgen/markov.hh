/**
 * @file
 * Nth-order Markov model of a binary behavior trace (Section 4.2).
 *
 * The model records, for each length-N history actually seen in the
 * trace, how often the next bit was 1. Storage is sparse: per-branch
 * models see only a tiny fraction of the 2^N possible histories (the
 * paper compresses its tables the same way, "only storing non-zero
 * entries").
 */

#ifndef AUTOFSM_FSMGEN_MARKOV_HH
#define AUTOFSM_FSMGEN_MARKOV_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/bits.hh"
#include "support/history.hh"

namespace autofsm
{

/** Counts attached to one history pattern. */
struct HistoryCounts
{
    uint64_t ones = 0;  ///< times the next bit was 1
    uint64_t total = 0; ///< times the history was seen with a next bit
};

/** Sparse Nth-order Markov model over the binary alphabet. */
class MarkovModel
{
  public:
    /** @param order History length N, in [1, 24]. */
    explicit MarkovModel(int order);

    int order() const { return order_; }

    /**
     * Record that @p history (packed, bit 0 = most recent outcome) was
     * followed by @p outcome.
     */
    void observe(uint32_t history, int outcome);

    /**
     * Bulk form of observe: add @p ones one-outcomes out of @p total
     * observations of @p history in one step. Used by the profiling
     * engine (fsmgen/profile.hh) to convert dense count arrays into the
     * sparse table; a no-op when total is zero.
     */
    void addCounts(uint32_t history, uint64_t ones, uint64_t total);

    /**
     * Convenience trainer: slide a length-N window across @p trace and
     * observe every (history, next-bit) pair. The first N bits only warm
     * the window up, exactly as in the paper's worked example.
     */
    void train(const std::vector<int> &trace);

    /** P[next = 1 | history]; 0.5 for histories never observed. */
    double probabilityOne(uint32_t history) const;

    /** Counts for @p history; zeros if never observed. */
    HistoryCounts counts(uint32_t history) const;

    /** Number of distinct histories observed. */
    size_t distinctHistories() const { return table_.size(); }

    /** Total observations across all histories. */
    uint64_t totalObservations() const { return total_; }

    /**
     * Approximate heap footprint of the sparse table, bytes (buckets
     * plus nodes). Feeds the autofsm_profile_table_bytes gauge.
     */
    size_t
    approxTableBytes() const
    {
        // Node-based map: one bucket pointer per bucket plus, per entry,
        // the payload pair and roughly two pointers of node overhead.
        return table_.bucket_count() * sizeof(void *) +
            table_.size() *
            (sizeof(std::pair<const uint32_t, HistoryCounts>) +
             2 * sizeof(void *));
    }

    /** Merge another model of the same order into this one. */
    void merge(const MarkovModel &other);

    /** Read-only view of the sparse table. */
    const std::unordered_map<uint32_t, HistoryCounts> &
    table() const
    {
        return table_;
    }

  private:
    int order_;
    uint64_t total_ = 0;
    std::unordered_map<uint32_t, HistoryCounts> table_;
};

/**
 * Publish the autofsm_profile_distinct_histories and
 * autofsm_profile_table_bytes gauges for @p model, making profiling
 * memory visible in the metrics export. Implemented in profile.cc
 * (where the profiling telemetry lives); called by merge() and by the
 * multi-order profiler when it finishes a table.
 */
void publishMarkovTableGauges(const MarkovModel &model);

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_MARKOV_HH
