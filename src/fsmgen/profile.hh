/**
 * @file
 * Single-pass multi-order trace profiling (the fast path of Section 4.2).
 *
 * `MarkovModel::train` walks a `std::vector<int>` doing one hash-map
 * lookup per outcome, and an order sweep (figure2/figure4/figure5 train
 * orders 2-10) re-walks the same trace once per order. This engine
 * collapses that cost along two axes:
 *
 *  - **Flat counting kernels.** For order N <= kMaxFlatOrder the counts
 *    live in a dense `2^N` array of `HistoryCounts` indexed by the packed
 *    sliding window, so the hot loop is an array increment: no hashing,
 *    no node allocation, and the window can be extracted directly from
 *    packed 64-outcomes-per-word streams without expanding to a
 *    `vector<int>`. Orders above the cap fall back to the sparse map.
 *
 *  - **Fold-derived order sweeps.** One pass counts at the maximum order
 *    Nmax; every lower order k is then obtained by marginalizing out the
 *    oldest history bit (`counts[h] += counts[h | 1 << (k-1)]`). The fold
 *    identity holds for every position i >= Nmax (whenever the order-Nmax
 *    window is warm, so is every shorter window); the handful of
 *    positions k <= i < Nmax that only the shorter windows observe are
 *    recorded during the pass and replayed exactly in `finish`, so the
 *    derived tables are bit-identical to per-order training.
 *
 * The public `MarkovModel` API (sparse `table()` view included) is
 * unchanged: profiling produces ordinary models, it just builds them
 * faster.
 */

#ifndef AUTOFSM_FSMGEN_PROFILE_HH
#define AUTOFSM_FSMGEN_PROFILE_HH

#include <cstdint>
#include <vector>

#include "fsmgen/markov.hh"
#include "support/bits.hh"

namespace autofsm
{

/** Largest order counted into a dense 2^N array (16 MiB at N = 20). */
constexpr int kMaxFlatOrder = 20;

/** How one profile was built and where its time went. */
struct ProfileBuildStats
{
    double countMillis = 0.0;  ///< counting pass(es) over the trace
    double foldMillis = 0.0;   ///< marginalization down the order ladder
    double replayMillis = 0.0; ///< warm-up edge replay
    bool flat = false;         ///< dense kernel (vs sparse fallback)
    uint64_t observations = 0;       ///< max-order (foldable) observations
    uint64_t warmupObservations = 0; ///< recorded warm-up edge outcomes
};

/**
 * The trained models of one multi-order profiling pass, one per
 * requested order, each bit-identical to `MarkovModel::train` at that
 * order over the same stream(s).
 */
class MultiOrderProfile
{
  public:
    MultiOrderProfile() = default;

    /** The distinct orders available, in decreasing order. */
    const std::vector<int> &orders() const { return orders_; }

    /** The trained model for @p order; asserts it was requested. */
    const MarkovModel &model(int order) const;

    /** Move the model for @p order out of the profile. */
    MarkovModel takeModel(int order);

    const ProfileBuildStats &stats() const { return stats_; }

  private:
    friend class MultiOrderCounter;

    size_t indexOf(int order) const;

    std::vector<int> orders_;
    std::vector<MarkovModel> models_;
    ProfileBuildStats stats_;
};

/**
 * Accumulates outcome streams at a maximum order, then derives the
 * table of every requested lower order by folding.
 *
 * Feed it either whole streams (`consume` / `consumeWords`) or
 * individual outcomes (`observe`, for interleaved streams such as the
 * per-entry correctness histories of the confidence trainer), then call
 * `finish` once. Multiple streams accumulate like training one model on
 * each stream and merging: every stream warms up independently.
 */
class MultiOrderCounter
{
  public:
    /** @param max_order The top of the order ladder, in [1, 24]. */
    explicit MultiOrderCounter(int max_order);

    int maxOrder() const { return maxOrder_; }

    /**
     * Record one outcome whose preceding stream history is @p history
     * (packed, bit 0 = most recent) of which @p seen outcomes are real
     * (saturate seen at maxOrder()). Outcomes with seen < maxOrder()
     * are warm-up edges: only orders <= seen observe them, so they are
     * kept aside and replayed per order in finish().
     */
    void
    observe(uint32_t history, int seen, int outcome)
    {
        if (seen >= maxOrder_) {
            HistoryCounts &entry = flat_
                ? dense_[history & mask_]
                : sparse_[history & mask_];
            entry.total += 1;
            entry.ones += static_cast<uint64_t>(outcome);
            ++observations_;
        } else if (seen > 0) {
            warmup_.push_back({history & lowMask(seen),
                               static_cast<uint8_t>(seen),
                               static_cast<uint8_t>(outcome)});
        }
    }

    /** Count one whole stream given as 0/1 ints. */
    void consume(const std::vector<int> &bits);

    /**
     * Count one whole stream given packed 64 outcomes per word, bit
     * (i & 63) of word (i >> 6) being outcome i (a `PackedTrace`'s
     * `takenWords()` layout). This is the no-expansion hot path.
     */
    void consumeWords(const uint64_t *words, size_t bits);

    /**
     * Fold the accumulated counts down to every order of @p orders
     * (each in [1, maxOrder()]; duplicates collapse) and replay the
     * warm-up edges. Terminal: the counter's counts are consumed.
     */
    MultiOrderProfile finish(const std::vector<int> &orders);

  private:
    struct WarmupEntry
    {
        uint32_t history; ///< packed, already masked to `seen` bits
        uint8_t seen;     ///< real outcomes preceding this one
        uint8_t outcome;  ///< 0 or 1
    };

    int maxOrder_;
    uint32_t mask_;
    bool flat_;
    uint64_t observations_ = 0;
    double countMillis_ = 0.0;
    std::vector<HistoryCounts> dense_;
    std::unordered_map<uint32_t, HistoryCounts> sparse_;
    std::vector<WarmupEntry> warmup_;
};

/**
 * One-call sweep: profile @p bits once at max(orders) and return the
 * per-order models (each bit-identical to training that order alone).
 */
MultiOrderProfile profileBits(const std::vector<int> &bits,
                              const std::vector<int> &orders);

/** One-call sweep over a packed outcome stream (takenWords layout). */
MultiOrderProfile profileWords(const uint64_t *words, size_t bits,
                               const std::vector<int> &orders);

/**
 * Flat-kernel replacement for `MarkovModel(order).train(trace)`:
 * returns a bit-identical model, counted through the dense kernel.
 */
MarkovModel trainMarkovModel(const std::vector<int> &trace, int order);

/** Flat-kernel single-order training over a packed outcome stream. */
MarkovModel trainMarkovModelWords(const uint64_t *words, size_t bits,
                                  int order);

} // namespace autofsm

#endif // AUTOFSM_FSMGEN_PROFILE_HH
