#include "logicmin/quine_mccluskey.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

/** Pack a cube into a single hashable word. */
uint64_t
keyOf(const Cube &cube)
{
    return (static_cast<uint64_t>(cube.mask) << 32) | cube.value;
}

} // anonymous namespace

std::vector<Cube>
primeImplicants(const TruthTable &table)
{
    // Generation 0: all ON and DC minterms as fully-specified cubes.
    std::vector<Cube> current;
    current.reserve(table.onSet().size() + table.dontCareSet().size());
    for (uint32_t m : table.onSet())
        current.push_back(Cube::minterm(m, table.numVars()));
    for (uint32_t m : table.dontCareSet())
        current.push_back(Cube::minterm(m, table.numVars()));

    std::vector<Cube> primes;
    while (!current.empty()) {
        // Bucket cubes by (mask, ones-count) so only adjacent buckets
        // need pairwise comparison.
        std::map<std::pair<uint32_t, int>, std::vector<size_t>> buckets;
        for (size_t i = 0; i < current.size(); ++i) {
            buckets[{current[i].mask, popcount(current[i].value)}]
                .push_back(i);
        }

        std::vector<bool> combined(current.size(), false);
        std::vector<Cube> next;
        std::unordered_set<uint64_t> next_seen;

        for (const auto &[key, indices] : buckets) {
            const auto other = buckets.find({key.first, key.second + 1});
            if (other == buckets.end())
                continue;
            for (size_t i : indices) {
                for (size_t j : other->second) {
                    Cube merged;
                    if (!Cube::tryMerge(current[i], current[j], merged))
                        continue;
                    combined[i] = true;
                    combined[j] = true;
                    if (next_seen.insert(keyOf(merged)).second)
                        next.push_back(merged);
                }
            }
        }

        std::unordered_set<uint64_t> prime_seen;
        for (const auto &prime : primes)
            prime_seen.insert(keyOf(prime));
        for (size_t i = 0; i < current.size(); ++i) {
            if (!combined[i] && prime_seen.insert(keyOf(current[i])).second)
                primes.push_back(current[i]);
        }
        current = std::move(next);
    }
    return primes;
}

Cover
minimizeQuineMcCluskey(const TruthTable &table)
{
    AUTOFSM_FAILPOINT("logicmin.qm");
    Cover cover(table.numVars());
    const auto &on = table.onSet();
    if (on.empty())
        return cover;

    const std::vector<Cube> primes = primeImplicants(table);

    // Prime implicant chart over the ON-set only: DC minterms need not be
    // covered, they only helped grow the primes.
    std::vector<std::vector<size_t>> covering(on.size());
    for (size_t m = 0; m < on.size(); ++m) {
        for (size_t p = 0; p < primes.size(); ++p) {
            if (primes[p].contains(on[m]))
                covering[m].push_back(p);
        }
        assert(!covering[m].empty() && "every ON minterm has a prime");
    }

    std::vector<size_t> gain(primes.size(), 0);
    for (size_t m = 0; m < on.size(); ++m) {
        for (size_t p : covering[m])
            ++gain[p];
    }

    std::vector<bool> chosen(primes.size(), false);
    std::vector<bool> done(on.size(), false);
    size_t remaining = on.size();

    // Gains are maintained incrementally: covering a minterm reduces
    // the gain of every prime containing it.
    auto absorb = [&](size_t prime_idx) {
        chosen[prime_idx] = true;
        for (size_t m = 0; m < on.size(); ++m) {
            if (!done[m] && primes[prime_idx].contains(on[m])) {
                done[m] = true;
                --remaining;
                for (size_t p : covering[m])
                    --gain[p];
            }
        }
    };

    // Essential primes: sole cover of some ON minterm.
    for (size_t m = 0; m < on.size(); ++m) {
        if (covering[m].size() == 1 && !chosen[covering[m][0]])
            absorb(covering[m][0]);
    }

    // Complete the cover greedily: most new minterms, then fewest
    // literals, then lowest index for determinism.
    while (remaining > 0) {
        size_t best = primes.size();
        for (size_t p = 0; p < primes.size(); ++p) {
            if (chosen[p] || gain[p] == 0)
                continue;
            if (best == primes.size() || gain[p] > gain[best] ||
                (gain[p] == gain[best] &&
                 primes[p].literals() < primes[best].literals())) {
                best = p;
            }
        }
        assert(best != primes.size());
        absorb(best);
    }

    for (size_t p = 0; p < primes.size(); ++p) {
        if (chosen[p])
            cover.add(primes[p]);
    }

    assert(cover.implements(table));
    return cover;
}

} // namespace autofsm
