/**
 * @file
 * Front door of the logic-minimization substrate.
 *
 * The design flow (Section 4.4) calls this to compress the pattern sets;
 * it dispatches between the exact and heuristic engines.
 */

#ifndef AUTOFSM_LOGICMIN_MINIMIZE_HH
#define AUTOFSM_LOGICMIN_MINIMIZE_HH

#include "logicmin/cover.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/** Engine selection for minimize(). */
enum class MinimizeAlgo
{
    /** Exact QM for small inputs, Espresso heuristic otherwise. */
    Auto,
    /** Always exact Quine-McCluskey. */
    Exact,
    /** Always the Espresso-style heuristic. */
    Heuristic,
};

/** Resource limits for one minimize() call; zero means unlimited. */
struct MinimizeLimits
{
    /** Max EXPAND/IRREDUNDANT/REDUCE iterations (espresso engine). */
    int maxEspressoIterations = 0;
    /** Max ON+DC minterms the call will accept before starting. */
    size_t maxMinterms = 0;
};

/**
 * Minimize the incompletely-specified function in @p table.
 *
 * @param table ON/DC specification (OFF is implicit).
 * @param algo Engine selection; Auto uses the exact engine up to
 *        8 variables and the heuristic beyond that.
 * @param limits Optional resource budget; exceeding it raises a
 *        FlowError{"minimize", BudgetExceeded} (flow/budget.hh) so
 *        callers can degrade instead of stalling on a huge function.
 * @return A cover verified to implement the function.
 */
Cover minimize(const TruthTable &table, MinimizeAlgo algo = MinimizeAlgo::Auto,
               const MinimizeLimits &limits = {});

/**
 * The degenerate rock-bottom "minimization": one fully-specified cube
 * per ON minterm. Exact, never fails, and needs no iteration — the last
 * rung of the flow's fallback ladder when both real engines are out.
 */
Cover unminimizedCover(const TruthTable &table);

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_MINIMIZE_HH
