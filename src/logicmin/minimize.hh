/**
 * @file
 * Front door of the logic-minimization substrate.
 *
 * The design flow (Section 4.4) calls this to compress the pattern sets;
 * it dispatches between the exact and heuristic engines.
 */

#ifndef AUTOFSM_LOGICMIN_MINIMIZE_HH
#define AUTOFSM_LOGICMIN_MINIMIZE_HH

#include "logicmin/cover.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/** Engine selection for minimize(). */
enum class MinimizeAlgo
{
    /** Exact QM for small inputs, Espresso heuristic otherwise. */
    Auto,
    /** Always exact Quine-McCluskey. */
    Exact,
    /** Always the Espresso-style heuristic. */
    Heuristic,
};

/**
 * Minimize the incompletely-specified function in @p table.
 *
 * @param table ON/DC specification (OFF is implicit).
 * @param algo Engine selection; Auto uses the exact engine up to
 *        8 variables and the heuristic beyond that.
 * @return A cover verified to implement the function.
 */
Cover minimize(const TruthTable &table, MinimizeAlgo algo = MinimizeAlgo::Auto);

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_MINIMIZE_HH
