/**
 * @file
 * Exact two-level minimization via the Quine-McCluskey procedure.
 *
 * This plays the role Espresso [Rudell 87] plays in the paper's design
 * flow (Section 4.4): compress the "predict 1" set, folding the
 * "don't care" set into whichever output minimizes the number of terms.
 * Prime implicants are generated exactly; the covering step selects all
 * essential primes and completes the cover greedily (largest uncovered
 * gain, then fewest literals), which is exact on the small charts the
 * predictor flow produces and near-minimal otherwise.
 */

#ifndef AUTOFSM_LOGICMIN_QUINE_MCCLUSKEY_HH
#define AUTOFSM_LOGICMIN_QUINE_MCCLUSKEY_HH

#include "logicmin/cover.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/**
 * Compute all prime implicants of the function (ON plus DC sets).
 * Exposed separately for tests and for the covering ablation.
 */
std::vector<Cube> primeImplicants(const TruthTable &table);

/**
 * Minimize @p table exactly.
 *
 * @return A cover that implements the function (verified against ON and
 *         OFF sets); empty when the ON-set is empty.
 */
Cover minimizeQuineMcCluskey(const TruthTable &table);

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_QUINE_MCCLUSKEY_HH
