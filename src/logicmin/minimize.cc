#include "logicmin/minimize.hh"

#include <string>

#include "flow/budget.hh"
#include "logicmin/espresso.hh"
#include "logicmin/quine_mccluskey.hh"

namespace autofsm
{

Cover
minimize(const TruthTable &table, MinimizeAlgo algo,
         const MinimizeLimits &limits)
{
    if (limits.maxMinterms > 0) {
        const size_t minterms =
            table.onSet().size() + table.dontCareSet().size();
        if (minterms > limits.maxMinterms) {
            throw FlowError("minimize", ErrorKind::BudgetExceeded,
                            std::to_string(minterms) +
                                " ON+DC minterms > budget " +
                                std::to_string(limits.maxMinterms));
        }
    }

    EspressoOptions espresso;
    if (limits.maxEspressoIterations > 0)
        espresso.maxIterations = limits.maxEspressoIterations;

    switch (algo) {
      case MinimizeAlgo::Exact:
        return minimizeQuineMcCluskey(table);
      case MinimizeAlgo::Heuristic:
        return minimizeEspresso(table, espresso);
      case MinimizeAlgo::Auto:
      default:
        // QM's prime generation can blow up with many ON+DC minterms at
        // higher variable counts; 8 variables (256 minterms) is well
        // inside its comfort zone and covers most per-branch models.
        if (table.numVars() <= 8)
            return minimizeQuineMcCluskey(table);
        return minimizeEspresso(table, espresso);
    }
}

Cover
unminimizedCover(const TruthTable &table)
{
    Cover cover(table.numVars());
    for (uint32_t m : table.onSet())
        cover.add(Cube::minterm(m, table.numVars()));
    return cover;
}

} // namespace autofsm
