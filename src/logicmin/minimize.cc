#include "logicmin/minimize.hh"

#include "logicmin/espresso.hh"
#include "logicmin/quine_mccluskey.hh"

namespace autofsm
{

Cover
minimize(const TruthTable &table, MinimizeAlgo algo)
{
    switch (algo) {
      case MinimizeAlgo::Exact:
        return minimizeQuineMcCluskey(table);
      case MinimizeAlgo::Heuristic:
        return minimizeEspresso(table);
      case MinimizeAlgo::Auto:
      default:
        // QM's prime generation can blow up with many ON+DC minterms at
        // higher variable counts; 8 variables (256 minterms) is well
        // inside its comfort zone and covers most per-branch models.
        if (table.numVars() <= 8)
            return minimizeQuineMcCluskey(table);
        return minimizeEspresso(table);
    }
}

} // namespace autofsm
