#include "logicmin/espresso.hh"

#include <algorithm>
#include <cassert>

#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

/** True iff @p cube contains any minterm of the explicit @p off set. */
bool
hitsOffSet(const Cube &cube, const std::vector<uint32_t> &off)
{
    for (uint32_t m : off) {
        if (cube.contains(m))
            return true;
    }
    return false;
}

/**
 * EXPAND one cube: greedily drop literals while the cube stays inside
 * ON plus DC. Dropping a literal only grows the cube, so a literal that
 * cannot be dropped now can never be dropped later; one pass per cube
 * yields a maximal expansion for the chosen order.
 */
Cube
expand(Cube cube, const std::vector<uint32_t> &off, int num_vars)
{
    for (int bit = 0; bit < num_vars; ++bit) {
        const uint32_t flag = 1U << bit;
        if (!(cube.mask & flag))
            continue;
        Cube widened(cube.value & ~flag, cube.mask & ~flag);
        if (!hitsOffSet(widened, off))
            cube = widened;
    }
    return cube;
}

/**
 * IRREDUNDANT: keep cubes that uniquely cover some ON minterm, then
 * greedily complete coverage of the rest.
 *
 * Gains are maintained incrementally (when a minterm becomes covered,
 * only the cubes containing it lose gain), keeping the whole pass
 * near-linear in the size of the coverage relation instead of
 * rescanning every (cube, minterm) pair per pick.
 */
std::vector<Cube>
irredundant(const std::vector<Cube> &cubes, const std::vector<uint32_t> &on)
{
    std::vector<std::vector<size_t>> covering(on.size());
    std::vector<size_t> gain(cubes.size(), 0);
    for (size_t m = 0; m < on.size(); ++m) {
        for (size_t c = 0; c < cubes.size(); ++c) {
            if (cubes[c].contains(on[m])) {
                covering[m].push_back(c);
                ++gain[c];
            }
        }
        assert(!covering[m].empty());
    }

    std::vector<bool> keep(cubes.size(), false);
    std::vector<bool> done(on.size(), false);
    size_t remaining = on.size();

    auto absorb = [&](size_t cube_idx) {
        keep[cube_idx] = true;
        for (size_t m = 0; m < on.size(); ++m) {
            if (!done[m] && cubes[cube_idx].contains(on[m])) {
                done[m] = true;
                --remaining;
                for (size_t c : covering[m])
                    --gain[c];
            }
        }
    };

    for (size_t m = 0; m < on.size(); ++m) {
        if (covering[m].size() == 1 && !keep[covering[m][0]])
            absorb(covering[m][0]);
    }

    while (remaining > 0) {
        size_t best = cubes.size();
        for (size_t c = 0; c < cubes.size(); ++c) {
            if (keep[c] || gain[c] == 0)
                continue;
            if (best == cubes.size() || gain[c] > gain[best])
                best = c;
        }
        // A cube with positive gain always exists while minterms remain
        // uncovered, because EXPAND/REDUCE preserve coverage; guard
        // against regressions even in NDEBUG builds rather than spin.
        assert(best != cubes.size());
        if (best == cubes.size())
            break;
        absorb(best);
    }

    std::vector<Cube> kept;
    for (size_t c = 0; c < cubes.size(); ++c) {
        if (keep[c])
            kept.push_back(cubes[c]);
    }
    return kept;
}

/**
 * REDUCE: shrink each cube to the supercube of the ON minterms only it
 * covers, freeing room for the next EXPAND to head in a different
 * direction. Cubes with no uniquely-covered minterm are dropped.
 */
std::vector<Cube>
reduce(const std::vector<Cube> &cubes, const std::vector<uint32_t> &on,
       int num_vars)
{
    // Sequential (order-dependent) reduction, as in classic Espresso:
    // each cube shrinks to the supercube of the ON minterms no *other
    // current* cube covers. Processing cubes one at a time against the
    // live cover keeps every ON minterm covered throughout - shrinking
    // two cubes "simultaneously" away from a minterm they share would
    // break the cover and deadlock the next IRREDUNDANT pass.
    std::vector<int> cover_count(on.size(), 0);
    for (size_t m = 0; m < on.size(); ++m) {
        for (const auto &cube : cubes)
            cover_count[m] += cube.contains(on[m]);
    }

    std::vector<Cube> current = cubes;
    std::vector<bool> removed(cubes.size(), false);
    for (size_t c = 0; c < current.size(); ++c) {
        bool any = false;
        uint32_t all_and = 0, all_or = 0;
        for (size_t m = 0; m < on.size(); ++m) {
            if (cover_count[m] != 1 || !current[c].contains(on[m]))
                continue;
            if (!any) {
                all_and = on[m];
                all_or = on[m];
                any = true;
            } else {
                all_and &= on[m];
                all_or |= on[m];
            }
        }

        Cube replacement;
        if (any) {
            // Smallest cube containing the collected minterms: specify
            // the variables on which they all agree.
            const uint32_t agree = ~(all_and ^ all_or) & lowMask(num_vars);
            replacement = Cube(all_and & agree, agree);
        } else {
            removed[c] = true;
        }

        // Update live coverage counts for the shrink before moving on.
        for (size_t m = 0; m < on.size(); ++m) {
            if (!current[c].contains(on[m]))
                continue;
            const bool still = !removed[c] && replacement.contains(on[m]);
            if (!still)
                --cover_count[m];
        }
        if (!removed[c])
            current[c] = replacement;
    }

    std::vector<Cube> out;
    for (size_t c = 0; c < current.size(); ++c) {
        if (!removed[c])
            out.push_back(current[c]);
    }
    return out;
}

/** Total literal count of a cube list. */
int
costOf(const std::vector<Cube> &cubes)
{
    int cost = 0;
    for (const auto &cube : cubes)
        cost += cube.literals();
    return cost;
}

} // anonymous namespace

Cover
minimizeEspresso(const TruthTable &table, const EspressoOptions &options)
{
    AUTOFSM_FAILPOINT("logicmin.espresso");
    Cover cover(table.numVars());
    const auto &on = table.onSet();
    if (on.empty())
        return cover;

    const std::vector<uint32_t> off = table.offSet();

    std::vector<Cube> cubes;
    cubes.reserve(on.size());
    for (uint32_t m : on)
        cubes.push_back(Cube::minterm(m, table.numVars()));

    std::vector<Cube> best;
    int best_cost = -1;
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        for (auto &cube : cubes)
            cube = expand(cube, off, table.numVars());
        cubes = irredundant(cubes, on);

        const int cost = costOf(cubes);
        if (best_cost < 0 || cost < best_cost ||
            (cost == best_cost && cubes.size() < best.size())) {
            best = cubes;
            best_cost = cost;
        } else {
            break; // converged: no improvement this round
        }

        cubes = reduce(cubes, on, table.numVars());
    }

    for (const auto &cube : best)
        cover.add(cube);

    // Functional safety net (also active in NDEBUG builds): if a
    // regression ever produced a wrong cover, fall back to the trivial
    // minterm cover rather than return an incorrect function.
    if (!cover.implements(table)) {
        assert(false && "espresso produced a non-implementing cover");
        Cover fallback(table.numVars());
        for (uint32_t m : on)
            fallback.add(Cube::minterm(m, table.numVars()));
        return fallback;
    }
    return cover;
}

} // namespace autofsm
