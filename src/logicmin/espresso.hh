/**
 * @file
 * Espresso-style heuristic two-level minimizer.
 *
 * Implements the classic EXPAND / IRREDUNDANT / REDUCE loop over an
 * explicit OFF-set. It does not guarantee minimality (neither does
 * Espresso) but produces covers close to the exact Quine-McCluskey result
 * at much lower cost on dense functions, and is the default for larger
 * history lengths. Both minimizers share the same contract: the returned
 * cover implements the incompletely-specified function.
 */

#ifndef AUTOFSM_LOGICMIN_ESPRESSO_HH
#define AUTOFSM_LOGICMIN_ESPRESSO_HH

#include "logicmin/cover.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/** Tunables for the heuristic loop. */
struct EspressoOptions
{
    /** Maximum EXPAND/IRREDUNDANT/REDUCE iterations. */
    int maxIterations = 4;
};

/**
 * Minimize @p table heuristically.
 *
 * @return A verified cover; empty when the ON-set is empty.
 */
Cover minimizeEspresso(const TruthTable &table,
                       const EspressoOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_ESPRESSO_HH
