#include "logicmin/truth_table.hh"

#include <cassert>

namespace autofsm
{

TruthTable::TruthTable(int num_vars)
    : numVars_(num_vars)
{
    assert(num_vars >= 1 && num_vars <= MaxBits);
    // The dense tag map keeps membership queries O(1); pattern-definition
    // only ever builds tables up to the Markov order (N <= ~12), so the
    // 2^N bytes are cheap.
    assert(num_vars <= 24 && "dense truth table would be too large");
    tag_.assign(1ULL << num_vars, 0);
}

void
TruthTable::addOn(uint32_t minterm)
{
    assert(minterm < tag_.size());
    assert(!(tag_[minterm] & TagDc) && "minterm is already a don't-care");
    if (tag_[minterm] & TagOn)
        return;
    tag_[minterm] |= TagOn;
    on_.push_back(minterm);
}

void
TruthTable::addDontCare(uint32_t minterm)
{
    assert(minterm < tag_.size());
    assert(!(tag_[minterm] & TagOn) && "minterm is already in the ON-set");
    if (tag_[minterm] & TagDc)
        return;
    tag_[minterm] |= TagDc;
    dc_.push_back(minterm);
}

std::vector<uint32_t>
TruthTable::offSet() const
{
    std::vector<uint32_t> off;
    off.reserve(tag_.size() - on_.size() - dc_.size());
    for (uint32_t m = 0; m < tag_.size(); ++m) {
        if (tag_[m] == 0)
            off.push_back(m);
    }
    return off;
}

bool
TruthTable::isOn(uint32_t minterm) const
{
    assert(minterm < tag_.size());
    return tag_[minterm] & TagOn;
}

bool
TruthTable::isDontCare(uint32_t minterm) const
{
    assert(minterm < tag_.size());
    return tag_[minterm] & TagDc;
}

} // namespace autofsm
