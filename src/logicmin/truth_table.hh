/**
 * @file
 * Incompletely-specified single-output boolean function.
 *
 * This is the interface between pattern definition (Section 4.3 of the
 * paper) and logic minimization (Section 4.4): the ON-set holds the
 * "predict 1" histories, the DC-set the "don't care" histories, and every
 * remaining input is implicitly in the OFF-set ("predict 0").
 */

#ifndef AUTOFSM_LOGICMIN_TRUTH_TABLE_HH
#define AUTOFSM_LOGICMIN_TRUTH_TABLE_HH

#include <cstdint>
#include <vector>

#include "support/bits.hh"

namespace autofsm
{

/** ON/DC specification of a boolean function of up to 32 variables. */
class TruthTable
{
  public:
    explicit TruthTable(int num_vars);

    /** Number of input variables. */
    int numVars() const { return numVars_; }

    /** Add @p minterm to the ON-set (must not already be DC). */
    void addOn(uint32_t minterm);

    /** Add @p minterm to the DC-set (must not already be ON). */
    void addDontCare(uint32_t minterm);

    /** ON-set minterms in insertion order. */
    const std::vector<uint32_t> &onSet() const { return on_; }

    /** DC-set minterms in insertion order. */
    const std::vector<uint32_t> &dontCareSet() const { return dc_; }

    /**
     * Enumerate the OFF-set: every minterm not in ON or DC.
     * Cost is O(2^numVars); callers cap numVars accordingly.
     */
    std::vector<uint32_t> offSet() const;

    /** True iff @p minterm is in the ON-set. */
    bool isOn(uint32_t minterm) const;

    /** True iff @p minterm is in the DC-set. */
    bool isDontCare(uint32_t minterm) const;

  private:
    int numVars_;
    std::vector<uint32_t> on_;
    std::vector<uint32_t> dc_;
    /** Membership bitmap, 2 bits of info per minterm: on and dc. */
    std::vector<uint8_t> tag_;

    static constexpr uint8_t TagOn = 1;
    static constexpr uint8_t TagDc = 2;
};

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_TRUTH_TABLE_HH
