/**
 * @file
 * Sum-of-products cover and functional checks against a TruthTable.
 */

#ifndef AUTOFSM_LOGICMIN_COVER_HH
#define AUTOFSM_LOGICMIN_COVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "logicmin/cube.hh"
#include "logicmin/truth_table.hh"

namespace autofsm
{

/** A disjunction of cubes: the compact "predict 1" set description. */
class Cover
{
  public:
    explicit Cover(int num_vars) : numVars_(num_vars) {}

    /**
     * Named constructor: an empty cover over @p num_vars input variables.
     * Prefer this at call sites where `Cover{n}` would read as "a cover
     * containing n" rather than "a cover of n-bit inputs".
     */
    static Cover
    forInputs(int num_vars)
    {
        return Cover(num_vars);
    }

    int numVars() const { return numVars_; }

    void add(const Cube &cube) { cubes_.push_back(cube); }

    const std::vector<Cube> &cubes() const { return cubes_; }

    size_t size() const { return cubes_.size(); }

    bool empty() const { return cubes_.empty(); }

    /** Total literal count across all cubes (two-level cost metric). */
    int literalCount() const;

    /** Evaluate the function at a fully-specified input. */
    bool evaluate(uint32_t minterm) const;

    /**
     * Check that the cover implements the incompletely-specified function:
     * every ON minterm evaluates to 1 and every OFF minterm to 0
     * (DC minterms may go either way). O(2^numVars).
     */
    bool implements(const TruthTable &table) const;

    /**
     * Exhaustively compare against @p other on all 2^numVars inputs.
     */
    bool equivalent(const Cover &other) const;

    /** Drop cubes single-cube-contained by another cube in the cover. */
    void removeContained();

    /**
     * Render as the paper's pattern list, e.g. "1x | x1".
     * Returns "0" for an empty cover.
     */
    std::string toString() const;

  private:
    int numVars_;
    std::vector<Cube> cubes_;
};

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_COVER_HH
