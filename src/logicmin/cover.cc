#include "logicmin/cover.hh"

#include <cassert>

namespace autofsm
{

int
Cover::literalCount() const
{
    int total = 0;
    for (const auto &cube : cubes_)
        total += cube.literals();
    return total;
}

bool
Cover::evaluate(uint32_t minterm) const
{
    for (const auto &cube : cubes_) {
        if (cube.contains(minterm))
            return true;
    }
    return false;
}

bool
Cover::implements(const TruthTable &table) const
{
    assert(table.numVars() == numVars_);
    const uint32_t limit = 1U << numVars_;
    for (uint32_t m = 0; m < limit; ++m) {
        if (table.isDontCare(m))
            continue;
        if (evaluate(m) != table.isOn(m))
            return false;
    }
    return true;
}

bool
Cover::equivalent(const Cover &other) const
{
    if (other.numVars_ != numVars_)
        return false;
    const uint32_t limit = 1U << numVars_;
    for (uint32_t m = 0; m < limit; ++m) {
        if (evaluate(m) != other.evaluate(m))
            return false;
    }
    return true;
}

void
Cover::removeContained()
{
    std::vector<Cube> kept;
    for (size_t i = 0; i < cubes_.size(); ++i) {
        bool contained = false;
        for (size_t j = 0; j < cubes_.size() && !contained; ++j) {
            if (i == j)
                continue;
            // Break ties (equal cubes) by keeping the earlier one.
            if (cubes_[j].covers(cubes_[i]) &&
                !(cubes_[i] == cubes_[j] && i < j)) {
                contained = true;
            }
        }
        if (!contained)
            kept.push_back(cubes_[i]);
    }
    cubes_ = std::move(kept);
}

std::string
Cover::toString() const
{
    if (cubes_.empty())
        return "0";
    std::string out;
    for (size_t i = 0; i < cubes_.size(); ++i) {
        if (i)
            out += " | ";
        out += cubes_[i].toPattern(numVars_);
    }
    return out;
}

} // namespace autofsm
