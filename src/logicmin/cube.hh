/**
 * @file
 * Cube representation for two-level logic minimization.
 *
 * A cube is a product term over up to 32 binary variables. Variable i is
 * represented by bit i of two packed words: `mask` selects the variables
 * the cube cares about (1 = specified), and `value` gives the required
 * polarity of each specified variable. Unspecified variables ("don't care
 * inputs", written `x` in the paper's sum-of-products notation) match both
 * 0 and 1.
 */

#ifndef AUTOFSM_LOGICMIN_CUBE_HH
#define AUTOFSM_LOGICMIN_CUBE_HH

#include <cassert>
#include <cstdint>
#include <string>

#include "support/bits.hh"

namespace autofsm
{

/** A product term over @c numVars binary variables. */
struct Cube
{
    /** Required polarity of each specified variable; subset of mask. */
    uint32_t value = 0;
    /** Bit i set iff variable i is specified (a literal of the term). */
    uint32_t mask = 0;

    Cube() = default;

    Cube(uint32_t value_, uint32_t mask_)
        : value(value_ & mask_), mask(mask_)
    {}

    /** Full minterm cube (all variables specified). */
    static Cube
    minterm(uint32_t bits, int num_vars)
    {
        return Cube(bits, lowMask(num_vars));
    }

    /** Number of literals (specified variables) in the term. */
    int literals() const { return popcount(mask); }

    /** True iff the cube matches the fully-specified input @p minterm. */
    bool
    contains(uint32_t minterm) const
    {
        return (minterm & mask) == value;
    }

    /** True iff every input matched by @p other is matched by this cube. */
    bool
    covers(const Cube &other) const
    {
        return (mask & other.mask) == mask &&
            (other.value & mask) == value;
    }

    /** True iff some fully-specified input is matched by both cubes. */
    bool
    intersects(const Cube &other) const
    {
        return ((value ^ other.value) & mask & other.mask) == 0;
    }

    bool
    operator==(const Cube &other) const
    {
        return value == other.value && mask == other.mask;
    }

    /**
     * Quine-McCluskey merge step: two cubes with identical masks whose
     * values differ in exactly one variable combine into one cube with
     * that variable dropped.
     *
     * @param a First cube.
     * @param b Second cube (same mask as @p a for a merge to be possible).
     * @param[out] merged The combined cube on success.
     * @return True iff the cubes are adjacent and were merged.
     */
    static bool
    tryMerge(const Cube &a, const Cube &b, Cube &merged)
    {
        if (a.mask != b.mask)
            return false;
        const uint32_t diff = a.value ^ b.value;
        if (popcount(diff) != 1)
            return false;
        merged = Cube(a.value & ~diff, a.mask & ~diff);
        return true;
    }

    /**
     * Render as a pattern string over @p num_vars variables, most
     * significant variable first, using '0', '1' and 'x'. With the
     * history convention (bit 0 = most recent outcome) this prints
     * oldest-to-newest, matching the paper's pattern notation.
     */
    std::string
    toPattern(int num_vars) const
    {
        assert(num_vars >= 1 && num_vars <= MaxBits);
        std::string out(static_cast<size_t>(num_vars), 'x');
        for (int i = 0; i < num_vars; ++i) {
            if (!bitOf(mask, num_vars - 1 - i))
                continue;
            out[static_cast<size_t>(i)] =
                bitOf(value, num_vars - 1 - i) ? '1' : '0';
        }
        return out;
    }

    /**
     * Parse a pattern string of '0'/'1'/'x' (MSB-first) into a cube.
     */
    static Cube
    fromPattern(const std::string &text)
    {
        assert(text.size() <= static_cast<size_t>(MaxBits));
        Cube cube;
        const int n = static_cast<int>(text.size());
        for (int i = 0; i < n; ++i) {
            const char c = text[static_cast<size_t>(i)];
            const int bit = n - 1 - i;
            assert(c == '0' || c == '1' || c == 'x' || c == 'X');
            if (c == '0' || c == '1') {
                cube.mask |= 1U << bit;
                if (c == '1')
                    cube.value |= 1U << bit;
            }
        }
        return cube;
    }
};

} // namespace autofsm

#endif // AUTOFSM_LOGICMIN_CUBE_HH
