/**
 * @file
 * Plain-text serialization of predictor machines.
 *
 * A customized processor flow needs to hand generated machines between
 * tools (profiler, synthesizer, simulator); this is the interchange
 * format. One header line `fsm <states> <start>` followed by one line
 * per state: `<output> <next0> <next1>`.
 */

#ifndef AUTOFSM_AUTOMATA_DFA_IO_HH
#define AUTOFSM_AUTOMATA_DFA_IO_HH

#include <iosfwd>
#include <string>

#include "automata/dfa.hh"

namespace autofsm
{

/** Serialize @p fsm to the text format. */
std::string dfaToText(const Dfa &fsm);

/**
 * Parse a machine serialized by dfaToText.
 *
 * @throws std::invalid_argument on malformed input (bad header, counts,
 *         out-of-range transitions or outputs).
 */
Dfa dfaFromText(const std::string &text);

} // namespace autofsm

#endif // AUTOFSM_AUTOMATA_DFA_IO_HH
