/**
 * @file
 * Non-deterministic finite automata via Thompson's construction.
 *
 * Section 4.6: the regular expression is first turned into an NFA by
 * "a fairly straight forward process of enumerating paths", i.e.
 * Thompson's construction, and then determinized by subset construction.
 */

#ifndef AUTOFSM_AUTOMATA_NFA_HH
#define AUTOFSM_AUTOMATA_NFA_HH

#include <cstdint>
#include <vector>

#include "automata/regex.hh"

namespace autofsm
{

/**
 * NFA over the alphabet {0,1} with epsilon transitions.
 *
 * Thompson fragments guarantee one accept state overall; we keep a
 * generic accepting set anyway so hand-built NFAs can be tested.
 */
class Nfa
{
  public:
    struct State
    {
        /** Epsilon-successors. */
        std::vector<int> eps;
        /** Successors on symbol 0 and 1. */
        std::vector<int> next[2];
    };

    /** Add a fresh state and return its index. */
    int addState();

    /** Add an epsilon transition. */
    void addEpsilon(int from, int to);

    /** Add a transition on @p symbol (0 or 1). */
    void addEdge(int from, int symbol, int to);

    void setStart(int state) { start_ = state; }
    void markAccepting(int state);

    int start() const { return start_; }
    int numStates() const { return static_cast<int>(states_.size()); }
    const State &state(int idx) const { return states_[static_cast<size_t>(idx)]; }
    bool accepting(int idx) const { return accepting_[static_cast<size_t>(idx)]; }

    /**
     * Epsilon-closure of @p set, as a sorted state-index vector.
     */
    std::vector<int> closure(std::vector<int> set) const;

    /** True iff the NFA accepts the bit string @p input. */
    bool accepts(const std::vector<int> &input) const;

    /** Thompson-construct an NFA from @p regex (must be non-empty). */
    static Nfa fromRegex(const Regex &regex);

  private:
    std::vector<State> states_;
    std::vector<bool> accepting_;
    int start_ = 0;

    /**
     * Scratch for closure(): states whose entry equals the current
     * epoch are in the working set, so a bump of markEpoch_ clears all
     * marks at once instead of zeroing a bitmap per call. Subset
     * construction calls closure() once per (subset, symbol), which
     * made that per-call allocation + clear the dominant cost.
     * Mutating scratch makes closure() non-reentrant: concurrent calls
     * on the *same* Nfa would race. Each design flow owns its automata
     * privately, so this holds throughout the codebase.
     */
    mutable std::vector<uint64_t> markScratch_;
    mutable uint64_t markEpoch_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_AUTOMATA_NFA_HH
