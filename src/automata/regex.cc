#include "automata/regex.hh"

#include <cassert>

namespace autofsm
{

int
Regex::addNode(RegexNode node)
{
    nodes_.push_back(node);
    return static_cast<int>(nodes_.size()) - 1;
}

namespace
{

void
render(const std::vector<RegexNode> &nodes, int idx, std::string &out)
{
    assert(idx >= 0);
    const RegexNode &node = nodes[static_cast<size_t>(idx)];
    switch (node.kind) {
      case RegexKind::Epsilon:
        out += "eps";
        break;
      case RegexKind::Zero:
        out += '0';
        break;
      case RegexKind::One:
        out += '1';
        break;
      case RegexKind::AnySym:
        out += "{0|1}";
        break;
      case RegexKind::Concat:
        render(nodes, node.lhs, out);
        render(nodes, node.rhs, out);
        break;
      case RegexKind::Alt:
        out += "{ ";
        render(nodes, node.lhs, out);
        out += " | ";
        render(nodes, node.rhs, out);
        out += " }";
        break;
      case RegexKind::Star:
        render(nodes, node.lhs, out);
        out += '*';
        break;
    }
}

} // anonymous namespace

std::string
Regex::toString() const
{
    if (root_ < 0)
        return "(empty)";
    std::string out;
    render(nodes_, root_, out);
    return out;
}

Regex
regexFromCover(const Cover &cover)
{
    Regex regex;
    if (cover.empty())
        return regex;

    const int n = cover.numVars();

    // One concatenated term per cube, oldest history position first.
    // History bit (n-1) is the oldest outcome, bit 0 the most recent, so
    // the regex consumes bits from high index down to 0.
    int terms = -1;
    for (const auto &cube : cover.cubes()) {
        int term = -1;
        for (int bit = n - 1; bit >= 0; --bit) {
            int sym;
            if (!bitOf(cube.mask, bit))
                sym = regex.anySym();
            else if (bitOf(cube.value, bit))
                sym = regex.one();
            else
                sym = regex.zero();
            term = term < 0 ? sym : regex.concat(term, sym);
        }
        if (term < 0)
            term = regex.epsilon(); // n == 0 cannot happen; defensive
        terms = terms < 0 ? term : regex.alt(terms, term);
    }

    // Prefix: any number of leading symbols, so the machine recognizes
    // every string *ending* in one of the patterns.
    const int prefix = regex.star(regex.anySym());
    regex.setRoot(regex.concat(prefix, terms));
    return regex;
}

} // namespace autofsm
