#include "automata/dfa_io.hh"

#include <sstream>
#include <stdexcept>

namespace autofsm
{

std::string
dfaToText(const Dfa &fsm)
{
    std::ostringstream out;
    out << "fsm " << fsm.numStates() << " " << fsm.start() << "\n";
    for (int s = 0; s < fsm.numStates(); ++s) {
        out << fsm.output(s) << " " << fsm.next(s, 0) << " "
            << fsm.next(s, 1) << "\n";
    }
    return out.str();
}

Dfa
dfaFromText(const std::string &text)
{
    std::istringstream in(text);
    std::string magic;
    int num_states = 0, start = 0;
    if (!(in >> magic >> num_states >> start) || magic != "fsm")
        throw std::invalid_argument("dfaFromText: bad header");
    if (num_states < 1)
        throw std::invalid_argument("dfaFromText: no states");
    if (start < 0 || start >= num_states)
        throw std::invalid_argument("dfaFromText: start out of range");

    Dfa fsm;
    struct Row
    {
        int output, next0, next1;
    };
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(num_states));
    for (int s = 0; s < num_states; ++s) {
        Row row{};
        if (!(in >> row.output >> row.next0 >> row.next1))
            throw std::invalid_argument("dfaFromText: truncated body");
        if (row.output != 0 && row.output != 1)
            throw std::invalid_argument("dfaFromText: bad output");
        if (row.next0 < 0 || row.next0 >= num_states || row.next1 < 0 ||
            row.next1 >= num_states) {
            throw std::invalid_argument(
                "dfaFromText: transition out of range");
        }
        rows.push_back(row);
    }

    for (const Row &row : rows)
        fsm.addState(row.output);
    for (int s = 0; s < num_states; ++s) {
        fsm.setEdge(s, 0, rows[static_cast<size_t>(s)].next0);
        fsm.setEdge(s, 1, rows[static_cast<size_t>(s)].next1);
    }
    fsm.setStart(start);
    return fsm;
}

} // namespace autofsm
