#include "automata/dfa.hh"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>

#include "flow/budget.hh"

namespace autofsm
{

int
Dfa::addState(int output)
{
    assert(output == 0 || output == 1);
    State s;
    s.output = output;
    states_.push_back(s);
    return static_cast<int>(states_.size()) - 1;
}

void
Dfa::setEdge(int from, int symbol, int to)
{
    assert(symbol == 0 || symbol == 1);
    assert(from >= 0 && from < numStates());
    assert(to >= 0 && to < numStates());
    states_[static_cast<size_t>(from)].next[static_cast<size_t>(symbol)] = to;
}

void
Dfa::setOutput(int state, int output)
{
    assert(output == 0 || output == 1);
    states_[static_cast<size_t>(state)].output = output;
}

int
Dfa::next(int state, int symbol) const
{
    assert(symbol == 0 || symbol == 1);
    return states_[static_cast<size_t>(state)].next[static_cast<size_t>(symbol)];
}

int
Dfa::output(int state) const
{
    return states_[static_cast<size_t>(state)].output;
}

int
Dfa::run(const std::vector<int> &input) const
{
    int state = start_;
    for (int symbol : input)
        state = next(state, symbol);
    return state;
}

int
Dfa::predictAfter(const std::vector<int> &input) const
{
    return output(run(input));
}

bool
Dfa::equivalent(const Dfa &other) const
{
    // BFS over the product machine: every reachable pair must agree on
    // output.
    std::set<std::pair<int, int>> seen;
    std::deque<std::pair<int, int>> queue;
    queue.emplace_back(start_, other.start_);
    seen.insert({start_, other.start_});
    while (!queue.empty()) {
        const auto [a, b] = queue.front();
        queue.pop_front();
        if (output(a) != other.output(b))
            return false;
        for (int symbol = 0; symbol < 2; ++symbol) {
            const std::pair<int, int> succ{next(a, symbol),
                                           other.next(b, symbol)};
            if (seen.insert(succ).second)
                queue.push_back(succ);
        }
    }
    return true;
}

bool
Dfa::identical(const Dfa &other) const
{
    if (start_ != other.start_ || states_.size() != other.states_.size())
        return false;
    for (size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].next != other.states_[i].next ||
            states_[i].output != other.states_[i].output) {
            return false;
        }
    }
    return true;
}

Dfa
Dfa::trimUnreachable() const
{
    std::vector<int> remap(states_.size(), -1);
    std::vector<int> order;
    std::deque<int> queue;
    queue.push_back(start_);
    remap[static_cast<size_t>(start_)] = 0;
    order.push_back(start_);
    while (!queue.empty()) {
        const int s = queue.front();
        queue.pop_front();
        for (int symbol = 0; symbol < 2; ++symbol) {
            const int t = next(s, symbol);
            if (remap[static_cast<size_t>(t)] < 0) {
                remap[static_cast<size_t>(t)] =
                    static_cast<int>(order.size());
                order.push_back(t);
                queue.push_back(t);
            }
        }
    }

    Dfa out;
    for (int old : order)
        out.addState(output(old));
    for (size_t i = 0; i < order.size(); ++i) {
        for (int symbol = 0; symbol < 2; ++symbol) {
            out.setEdge(static_cast<int>(i), symbol,
                        remap[static_cast<size_t>(next(order[i], symbol))]);
        }
    }
    out.setStart(0);
    return out;
}

Dfa
Dfa::minimizeHopcroft() const
{
    const Dfa trimmed = trimUnreachable();
    const int n = trimmed.numStates();

    // Inverse transition function.
    std::vector<std::vector<int>> preds[2];
    preds[0].assign(static_cast<size_t>(n), {});
    preds[1].assign(static_cast<size_t>(n), {});
    for (int s = 0; s < n; ++s) {
        for (int symbol = 0; symbol < 2; ++symbol) {
            preds[symbol][static_cast<size_t>(trimmed.next(s, symbol))]
                .push_back(s);
        }
    }

    // Initial partition: by Moore output.
    std::vector<int> block_of(static_cast<size_t>(n), 0);
    std::vector<std::vector<int>> blocks;
    {
        std::vector<int> zeros, ones;
        for (int s = 0; s < n; ++s)
            (trimmed.output(s) ? ones : zeros).push_back(s);
        if (!zeros.empty()) {
            for (int s : zeros)
                block_of[static_cast<size_t>(s)] =
                    static_cast<int>(blocks.size());
            blocks.push_back(std::move(zeros));
        }
        if (!ones.empty()) {
            for (int s : ones)
                block_of[static_cast<size_t>(s)] =
                    static_cast<int>(blocks.size());
            blocks.push_back(std::move(ones));
        }
    }

    // Hopcroft worklist of (block, symbol) splitters.
    std::deque<std::pair<int, int>> worklist;
    for (size_t b = 0; b < blocks.size(); ++b) {
        worklist.emplace_back(static_cast<int>(b), 0);
        worklist.emplace_back(static_cast<int>(b), 1);
    }

    // Per-state / per-block mark scratch, reused across splitters. A
    // refinement never has more blocks than states, so size n covers
    // every block index the loop can mint.
    std::vector<char> state_touched(static_cast<size_t>(n), 0);
    std::vector<char> block_touched(static_cast<size_t>(n), 0);
    std::vector<int> touched_blocks;

    while (!worklist.empty()) {
        const auto [splitter, symbol] = worklist.front();
        worklist.pop_front();

        // States with a `symbol`-edge into the splitter block.
        std::vector<int> incoming;
        for (int t : blocks[static_cast<size_t>(splitter)]) {
            const auto &ps = preds[symbol][static_cast<size_t>(t)];
            incoming.insert(incoming.end(), ps.begin(), ps.end());
        }
        if (incoming.empty())
            continue;

        // Mark incoming states and collect the blocks they live in.
        touched_blocks.clear();
        for (int s : incoming) {
            state_touched[static_cast<size_t>(s)] = 1;
            const int b = block_of[static_cast<size_t>(s)];
            if (!block_touched[static_cast<size_t>(b)]) {
                block_touched[static_cast<size_t>(b)] = 1;
                touched_blocks.push_back(b);
            }
        }
        // Ascending block order keeps the split/worklist sequence (and
        // hence state numbering) identical to the ordered-map version.
        std::sort(touched_blocks.begin(), touched_blocks.end());

        for (int block_idx : touched_blocks) {
            block_touched[static_cast<size_t>(block_idx)] = 0;
            auto &block = blocks[static_cast<size_t>(block_idx)];

            // Split `block` into touched and untouched parts. Blocks
            // stay sorted (the initial partition is in state order and
            // both halves of a split preserve it), so a single ordered
            // pass replaces the old sort + binary_search.
            std::vector<int> members, untouched;
            for (int s : block)
                (state_touched[static_cast<size_t>(s)] ? members
                                                       : untouched)
                    .push_back(s);
            if (untouched.empty())
                continue; // no split: all of the block was touched

            const int new_idx = static_cast<int>(blocks.size());
            // Keep the smaller part as the new block (Hopcroft's trick).
            std::vector<int> *small = &members, *large = &untouched;
            if (small->size() > large->size())
                std::swap(small, large);
            block = *large;
            for (int s : *small)
                block_of[static_cast<size_t>(s)] = new_idx;
            blocks.push_back(*small);

            worklist.emplace_back(new_idx, 0);
            worklist.emplace_back(new_idx, 1);
        }

        for (int s : incoming)
            state_touched[static_cast<size_t>(s)] = 0;
    }

    // Build the quotient machine.
    Dfa out;
    for (const auto &block : blocks)
        out.addState(trimmed.output(block.front()));
    for (size_t b = 0; b < blocks.size(); ++b) {
        const int repr = blocks[b].front();
        for (int symbol = 0; symbol < 2; ++symbol) {
            out.setEdge(static_cast<int>(b), symbol,
                        block_of[static_cast<size_t>(
                            trimmed.next(repr, symbol))]);
        }
    }
    out.setStart(block_of[static_cast<size_t>(trimmed.start())]);
    return out.trimUnreachable();
}

Dfa
Dfa::steadyStateReduce() const
{
    const int n = numStates();
    // Eventual-image fixpoint: S_{k+1} = delta(S_k, {0,1}). Because
    // S_1 = delta(Q) is a subset of S_0 = Q, the chain is monotonically
    // decreasing and must converge within n iterations.
    std::vector<bool> core(static_cast<size_t>(n), true);
    for (;;) {
        std::vector<bool> image(static_cast<size_t>(n), false);
        for (int s = 0; s < n; ++s) {
            if (!core[static_cast<size_t>(s)])
                continue;
            image[static_cast<size_t>(next(s, 0))] = true;
            image[static_cast<size_t>(next(s, 1))] = true;
        }
        if (image == core)
            break;
        core = std::move(image);
    }

    // Re-root: walk 0-inputs from the old start until inside the core.
    // Termination: iterating any input sequence eventually enters the
    // eventual image.
    int new_start = start_;
    for (int step = 0; step <= n && !core[static_cast<size_t>(new_start)];
         ++step) {
        new_start = next(new_start, 0);
    }
    assert(core[static_cast<size_t>(new_start)]);

    Dfa out = *this;
    out.setStart(new_start);
    return out.trimUnreachable();
}

std::string
Dfa::toDot(const std::string &name) const
{
    std::ostringstream out;
    out << "digraph " << name << " {\n";
    out << "    rankdir=LR;\n";
    out << "    init [shape=point];\n";
    for (int s = 0; s < numStates(); ++s) {
        out << "    s" << s << " [shape=circle, label=\"s" << s
            << "\\n[" << output(s) << "]\"];\n";
    }
    out << "    init -> s" << start_ << ";\n";
    for (int s = 0; s < numStates(); ++s) {
        for (int symbol = 0; symbol < 2; ++symbol) {
            out << "    s" << s << " -> s" << next(s, symbol)
                << " [label=\"" << symbol << "\"];\n";
        }
    }
    out << "}\n";
    return out.str();
}

namespace
{

/** FNV-1a over the packed state indices of a (sorted) subset. */
struct SubsetHash
{
    size_t
    operator()(const std::vector<int> &subset) const
    {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (int s : subset) {
            h ^= static_cast<uint32_t>(s);
            h *= 0x100000001b3ULL;
        }
        return static_cast<size_t>(h);
    }
};

} // anonymous namespace

Dfa
Dfa::fromNfa(const Nfa &nfa, int max_states)
{
    Dfa dfa;
    // DFA state numbering is fixed by the BFS discovery order below,
    // not by map iteration, so hashing keeps output bit-identical.
    std::unordered_map<std::vector<int>, int, SubsetHash> subset_ids;
    std::deque<std::vector<int>> queue;

    auto checkBudget = [max_states, &dfa] {
        if (max_states > 0 && dfa.numStates() > max_states) {
            throw FlowError("subset", ErrorKind::BudgetExceeded,
                            "subset construction minted more than " +
                                std::to_string(max_states) + " states");
        }
    };

    auto accepting = [&nfa](const std::vector<int> &subset) {
        for (int s : subset) {
            if (nfa.accepting(s))
                return true;
        }
        return false;
    };

    const std::vector<int> start_subset = nfa.closure({nfa.start()});
    subset_ids[start_subset] = dfa.addState(accepting(start_subset) ? 1 : 0);
    queue.push_back(start_subset);
    checkBudget();

    // A sink for subsets that die (cannot happen with the (0|1)* prefix
    // regexes, but hand-built NFAs may be partial).
    int sink = -1;

    while (!queue.empty()) {
        const std::vector<int> subset = queue.front();
        queue.pop_front();
        const int from = subset_ids.at(subset);

        for (int symbol = 0; symbol < 2; ++symbol) {
            std::vector<int> moved;
            for (int s : subset) {
                const auto &succ = nfa.state(s).next[symbol];
                moved.insert(moved.end(), succ.begin(), succ.end());
            }
            const std::vector<int> target = nfa.closure(std::move(moved));

            int to;
            if (target.empty()) {
                if (sink < 0) {
                    sink = dfa.addState(0);
                    dfa.setEdge(sink, 0, sink);
                    dfa.setEdge(sink, 1, sink);
                }
                to = sink;
            } else {
                const auto it = subset_ids.find(target);
                if (it == subset_ids.end()) {
                    to = dfa.addState(accepting(target) ? 1 : 0);
                    checkBudget();
                    subset_ids.emplace(target, to);
                    queue.push_back(target);
                } else {
                    to = it->second;
                }
            }
            dfa.setEdge(from, symbol, to);
        }
    }

    dfa.setStart(0);
    return dfa;
}

Dfa
Dfa::constant(int output)
{
    Dfa dfa;
    const int s = dfa.addState(output);
    dfa.setEdge(s, 0, s);
    dfa.setEdge(s, 1, s);
    dfa.setStart(s);
    return dfa;
}

Dfa
Dfa::saturatingCounter(int bits)
{
    assert(bits >= 1 && bits <= 8);
    const int n = 1 << bits;
    Dfa dfa;
    for (int s = 0; s < n; ++s)
        dfa.addState(s >= n / 2 ? 1 : 0);
    for (int s = 0; s < n; ++s) {
        dfa.setEdge(s, 0, std::max(s - 1, 0));
        dfa.setEdge(s, 1, std::min(s + 1, n - 1));
    }
    dfa.setStart(n / 2 - 1);
    return dfa;
}

} // namespace autofsm
