#include "automata/nfa.hh"

#include <algorithm>
#include <cassert>

namespace autofsm
{

int
Nfa::addState()
{
    states_.emplace_back();
    accepting_.push_back(false);
    return static_cast<int>(states_.size()) - 1;
}

void
Nfa::addEpsilon(int from, int to)
{
    states_[static_cast<size_t>(from)].eps.push_back(to);
}

void
Nfa::addEdge(int from, int symbol, int to)
{
    assert(symbol == 0 || symbol == 1);
    states_[static_cast<size_t>(from)].next[symbol].push_back(to);
}

void
Nfa::markAccepting(int state)
{
    accepting_[static_cast<size_t>(state)] = true;
}

std::vector<int>
Nfa::closure(std::vector<int> set) const
{
    if (markScratch_.size() < states_.size())
        markScratch_.resize(states_.size(), 0);
    const uint64_t epoch = ++markEpoch_;

    std::vector<int> stack;
    for (int s : set) {
        if (markScratch_[static_cast<size_t>(s)] != epoch) {
            markScratch_[static_cast<size_t>(s)] = epoch;
            stack.push_back(s);
        }
    }
    std::vector<int> out;
    while (!stack.empty()) {
        const int s = stack.back();
        stack.pop_back();
        out.push_back(s);
        for (int t : states_[static_cast<size_t>(s)].eps) {
            if (markScratch_[static_cast<size_t>(t)] != epoch) {
                markScratch_[static_cast<size_t>(t)] = epoch;
                stack.push_back(t);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
Nfa::accepts(const std::vector<int> &input) const
{
    std::vector<int> current = closure({start_});
    for (int symbol : input) {
        std::vector<int> next;
        for (int s : current) {
            const auto &succ = states_[static_cast<size_t>(s)]
                .next[symbol];
            next.insert(next.end(), succ.begin(), succ.end());
        }
        current = closure(std::move(next));
        if (current.empty())
            return false;
    }
    for (int s : current) {
        if (accepting_[static_cast<size_t>(s)])
            return true;
    }
    return false;
}

namespace
{

/** A Thompson fragment: entry and exit states. */
struct Fragment
{
    int entry;
    int exit;
};

Fragment
build(Nfa &nfa, const std::vector<RegexNode> &nodes, int idx)
{
    const RegexNode &node = nodes[static_cast<size_t>(idx)];
    switch (node.kind) {
      case RegexKind::Epsilon: {
        const int a = nfa.addState();
        const int b = nfa.addState();
        nfa.addEpsilon(a, b);
        return {a, b};
      }
      case RegexKind::Zero:
      case RegexKind::One: {
        const int a = nfa.addState();
        const int b = nfa.addState();
        nfa.addEdge(a, node.kind == RegexKind::One ? 1 : 0, b);
        return {a, b};
      }
      case RegexKind::AnySym: {
        const int a = nfa.addState();
        const int b = nfa.addState();
        nfa.addEdge(a, 0, b);
        nfa.addEdge(a, 1, b);
        return {a, b};
      }
      case RegexKind::Concat: {
        const Fragment lhs = build(nfa, nodes, node.lhs);
        const Fragment rhs = build(nfa, nodes, node.rhs);
        nfa.addEpsilon(lhs.exit, rhs.entry);
        return {lhs.entry, rhs.exit};
      }
      case RegexKind::Alt: {
        const Fragment lhs = build(nfa, nodes, node.lhs);
        const Fragment rhs = build(nfa, nodes, node.rhs);
        const int entry = nfa.addState();
        const int exit = nfa.addState();
        nfa.addEpsilon(entry, lhs.entry);
        nfa.addEpsilon(entry, rhs.entry);
        nfa.addEpsilon(lhs.exit, exit);
        nfa.addEpsilon(rhs.exit, exit);
        return {entry, exit};
      }
      case RegexKind::Star: {
        const Fragment inner = build(nfa, nodes, node.lhs);
        const int entry = nfa.addState();
        const int exit = nfa.addState();
        nfa.addEpsilon(entry, inner.entry);
        nfa.addEpsilon(entry, exit);
        nfa.addEpsilon(inner.exit, inner.entry);
        nfa.addEpsilon(inner.exit, exit);
        return {entry, exit};
      }
    }
    assert(false && "unreachable");
    return {0, 0};
}

} // anonymous namespace

Nfa
Nfa::fromRegex(const Regex &regex)
{
    assert(!regex.empty());
    Nfa nfa;
    const Fragment frag = build(nfa, regex.nodes(), regex.root());
    nfa.setStart(frag.entry);
    nfa.markAccepting(frag.exit);
    return nfa;
}

} // namespace autofsm
