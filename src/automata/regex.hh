/**
 * @file
 * Regular expressions over the binary alphabet {0,1}.
 *
 * Section 4.5 of the paper builds, from the minimized sum-of-products
 * cover, the expression `(0|1)* ( term_1 | ... | term_k )`: any input
 * string whose trailing N bits match one of the minimized patterns is in
 * the language "predict 1". This module provides the small AST needed to
 * represent such expressions, the builder from a Cover, and a printer
 * that matches the paper's notation.
 */

#ifndef AUTOFSM_AUTOMATA_REGEX_HH
#define AUTOFSM_AUTOMATA_REGEX_HH

#include <string>
#include <vector>

#include "logicmin/cover.hh"

namespace autofsm
{

/** Node kinds of the regex AST. */
enum class RegexKind
{
    Epsilon, ///< empty string
    Zero,    ///< literal symbol 0
    One,     ///< literal symbol 1
    AnySym,  ///< (0|1), a "don't care" input position
    Concat,  ///< lhs . rhs
    Alt,     ///< lhs | rhs
    Star,    ///< lhs*
};

/** One AST node; children are indices into Regex's node arena. */
struct RegexNode
{
    RegexKind kind;
    int lhs = -1;
    int rhs = -1;
};

/**
 * An immutable regular expression, stored as an arena of nodes.
 *
 * Construction goes through the static factories which append to the
 * arena; the final expression is identified by its root index.
 */
class Regex
{
  public:
    Regex() = default;

    /** @name Node factories; each returns the new node's index. */
    /// @{
    int epsilon() { return addNode({RegexKind::Epsilon, -1, -1}); }
    int zero() { return addNode({RegexKind::Zero, -1, -1}); }
    int one() { return addNode({RegexKind::One, -1, -1}); }
    int anySym() { return addNode({RegexKind::AnySym, -1, -1}); }
    int concat(int lhs, int rhs) { return addNode({RegexKind::Concat, lhs, rhs}); }
    int alt(int lhs, int rhs) { return addNode({RegexKind::Alt, lhs, rhs}); }
    int star(int operand) { return addNode({RegexKind::Star, operand, -1}); }
    /// @}

    /** Set which node is the root of the expression. */
    void setRoot(int root) { root_ = root; }

    int root() const { return root_; }

    const std::vector<RegexNode> &nodes() const { return nodes_; }

    bool empty() const { return root_ < 0; }

    /**
     * Render in the paper's notation, e.g.
     * "{0|1}* { 1{0|1} | {0|1}1 }".
     */
    std::string toString() const;

  private:
    int addNode(RegexNode node);

    std::vector<RegexNode> nodes_;
    int root_ = -1;
};

/**
 * Build the predictor language for @p cover:
 * `(0|1)* ( pattern_1 | ... | pattern_k )`, where each pattern spells its
 * cube MSB-first (oldest history bit first), with `x` positions becoming
 * `(0|1)`.
 *
 * An empty cover yields an empty regex (the "always predict 0" language);
 * callers special-case it.
 */
Regex regexFromCover(const Cover &cover);

} // namespace autofsm

#endif // AUTOFSM_AUTOMATA_REGEX_HH
