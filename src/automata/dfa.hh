/**
 * @file
 * Deterministic finite automata over {0,1} with one output bit per state.
 *
 * This is the Moore-machine form the paper's predictors take: the state's
 * output is the prediction of the next input bit. Provides subset
 * construction (Section 4.6), Hopcroft minimization, the paper's
 * start-state reduction (Section 4.7), reachability trimming, equivalence
 * checking and Graphviz output.
 */

#ifndef AUTOFSM_AUTOMATA_DFA_HH
#define AUTOFSM_AUTOMATA_DFA_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "automata/nfa.hh"

namespace autofsm
{

/** A complete DFA / 1-bit-output Moore machine. */
class Dfa
{
  public:
    struct State
    {
        /** Successor on input 0 and 1. */
        std::array<int, 2> next = {0, 0};
        /** Moore output: the prediction made while in this state. */
        int output = 0;
    };

    /** Add a state with @p output; returns its index. */
    int addState(int output);

    void setStart(int state) { start_ = state; }
    void setEdge(int from, int symbol, int to);
    void setOutput(int state, int output);

    int start() const { return start_; }
    int numStates() const { return static_cast<int>(states_.size()); }
    int next(int state, int symbol) const;
    int output(int state) const;

    /** Run from the start state over @p input; returns the final state. */
    int run(const std::vector<int> &input) const;

    /** Output of the state reached by @p input (the prediction). */
    int predictAfter(const std::vector<int> &input) const;

    /** Exhaustive output-equivalence against @p other (product BFS). */
    bool equivalent(const Dfa &other) const;

    /**
     * Bit-identical structural equality: same start state and the exact
     * same numbered states, edges and outputs (stronger than
     * equivalent(); used to check that parallel design reproduces the
     * serial result verbatim).
     */
    bool identical(const Dfa &other) const;

    /**
     * Drop states unreachable from the start state, renumbering the
     * survivors (stable order).
     */
    Dfa trimUnreachable() const;

    /**
     * Hopcroft's partition-refinement minimization. The input must be a
     * complete DFA; the result is the unique minimal machine with the
     * same output behavior from the start state.
     */
    Dfa minimizeHopcroft() const;

    /**
     * The paper's start-state reduction (Section 4.7): remove the
     * transient start-up states that can only be visited before N inputs
     * have been seen. Computed as the *eventual image* fixpoint
     * S_0 = Q, S_{k+1} = delta(S_k, {0,1}); the chain is monotonically
     * decreasing and its limit is the steady-state core. The start state
     * is re-rooted onto the core by walking inputs of 0 until the core is
     * entered (any in-core state is behaviorally valid past warm-up).
     */
    Dfa steadyStateReduce() const;

    /** Graphviz DOT rendering; states labelled "sN [output]". */
    std::string toDot(const std::string &name = "fsm") const;

    /**
     * Subset construction over @p nfa; accepting subsets output 1.
     *
     * @param max_states Optional budget on the number of DFA states
     *        minted (0 = unlimited). Subset construction is worst-case
     *        exponential in NFA size, so the bound is checked inside
     *        the construction loop; exceeding it raises a
     *        FlowError{"subset", BudgetExceeded} (flow/budget.hh).
     */
    static Dfa fromNfa(const Nfa &nfa, int max_states = 0);

    /**
     * The trivial one-state machine with constant @p output, used when a
     * pattern set is empty (always predict 0 or always predict 1).
     */
    static Dfa constant(int output);

    /**
     * The classic 2^bits-state saturating up/down counter predictor
     * (Smith, ISCA 1981): state s outputs 1 in the upper half, a taken
     * outcome saturates up, a not-taken outcome saturates down. The
     * design flow falls back to this machine when a custom FSM cannot
     * be designed within budget. Start state: the weakly-not-taken
     * state just below the prediction threshold.
     */
    static Dfa saturatingCounter(int bits = 2);

  private:
    std::vector<State> states_;
    int start_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_AUTOMATA_DFA_HH
