/**
 * @file
 * Driver for the Figure 5 experiment: misprediction rate vs estimated
 * area for the XScale baseline, gshare, the local/global chooser and
 * the customized architecture (custom-same and custom-diff curves).
 */

#ifndef AUTOFSM_SIM_FIGURE5_HH
#define AUTOFSM_SIM_FIGURE5_HH

#include <string>
#include <vector>

#include "bpred/trainer.hh"
#include "sim/packed_trace.hh"

namespace autofsm
{

/** One (area, misprediction-rate) point. */
struct AreaMissPoint
{
    double area = 0.0;
    double missRate = 0.0;
    std::string label;
};

/** One labelled predictor family curve. */
struct AreaMissSeries
{
    std::string label;
    std::vector<AreaMissPoint> points;
};

/** Figure 5 panel for one benchmark. */
struct Fig5Benchmark
{
    std::string name;
    AreaMissPoint xscale;
    AreaMissSeries gshare;
    AreaMissSeries lgc;
    AreaMissSeries customSame;
    AreaMissSeries customDiff;
    /** The trained branches backing the custom curves (for Figure 4). */
    std::vector<TrainedBranch> trained;
};

/** Experiment knobs. */
struct Fig5Options
{
    /** Dynamic branches simulated per run. */
    size_t branchesPerRun = 400000;
    /** gshare table sizes (log2 counters). */
    std::vector<int> gshareLog2 = {8, 10, 12, 14, 16};
    /** LGC sizes (log2 entries per structure). */
    std::vector<int> lgcLog2 = {8, 10, 12, 13};
    /** Custom-curve training knobs (history 9, as in the paper). */
    CustomTrainingOptions training;
    /**
     * Worker threads runFigure5All uses to fan benchmarks out
     * (0 = one per hardware core). Per-benchmark results are independent
     * and collected in name order, so output is thread-count invariant.
     */
    unsigned threads = 0;
    /**
     * Worker threads for the intra-benchmark sweep (independent sweep
     * points and custom-machine replays; 0 = one per hardware core).
     * Results are bit-identical for any value. runFigure5All pins this
     * to 1 so benchmark- and sweep-level parallelism don't multiply.
     */
    unsigned sweepThreads = 0;
    /**
     * Trace shards for the custom-machine replays (the bit-sliced
     * engine's sharded evaluation; 0 = auto from sweepThreads,
     * 1 = unsharded). Tallies are bit-identical for any value.
     */
    size_t replayShards = 0;
};

/**
 * Run the Figure 5 experiment for one benchmark of
 * branchBenchmarkNames(). Custom FSMs are trained on the Train input;
 * custom-diff evaluates them on the Test input, custom-same on the
 * Train input itself.
 */
Fig5Benchmark runFigure5(const std::string &benchmark,
                         const Fig5Options &options = {});

/**
 * Evaluation half of runFigure5 (everything but trace acquisition and
 * FSM training): replay the sweep and the custom curves for already-
 * trained machines over the given traces via the sweep engine
 * (sim/sweep.hh). Exposed so benches can time the sweep in isolation;
 * `result.trained` is copied from @p trained.
 */
Fig5Benchmark evaluateFigure5(const std::string &benchmark,
                              const BranchTrace &train,
                              const BranchTrace &test,
                              const std::vector<TrainedBranch> &trained,
                              const Fig5Options &options = {});

/**
 * Same evaluation over already-packed traces (sim/packed_trace.hh), for
 * callers that share packings across experiments via cachedPackedTrace.
 * The BranchTrace overload packs and delegates here.
 *
 * When @p train_profile carries a valid baseline profile of
 * @p packed_train (from trainCustomPredictors over the same trace and
 * BTB config), the custom-same curve reuses the training pass's tallies
 * and branch positions instead of re-simulating the baseline BTB; the
 * output is bit-identical either way.
 */
Fig5Benchmark evaluateFigure5(const std::string &benchmark,
                              const PackedTrace &packed_train,
                              const PackedTrace &packed_test,
                              const std::vector<TrainedBranch> &trained,
                              const Fig5Options &options = {},
                              const BaselineBtbProfile *train_profile =
                                  nullptr);

/** Run all six benchmarks. */
std::vector<Fig5Benchmark> runFigure5All(const Fig5Options &options = {});

} // namespace autofsm

#endif // AUTOFSM_SIM_FIGURE5_HH
