/**
 * @file
 * Driver for the Figure 2 experiment: value-prediction confidence,
 * accuracy vs coverage, SUD counter sweep against cross-trained custom
 * FSM curves for history lengths 2-10.
 */

#ifndef AUTOFSM_SIM_FIGURE2_HH
#define AUTOFSM_SIM_FIGURE2_HH

#include <string>
#include <vector>

#include "vpred/conf_sim.hh"

namespace autofsm
{

/** One accuracy/coverage point. */
struct ParetoPoint
{
    double accuracy = 0.0;
    double coverage = 0.0;
    std::string label;
};

/** One labelled series of points (e.g. "custom w/ hist=4"). */
struct ParetoSeries
{
    std::string label;
    std::vector<ParetoPoint> points;
};

/** Figure 2 panel for one benchmark. */
struct Fig2Benchmark
{
    std::string name;
    /** Scatter of saturating up/down counter configurations. */
    std::vector<ParetoPoint> sudPoints;
    /** One curve per FSM history length, swept over the threshold. */
    std::vector<ParetoSeries> fsmCurves;
};

/** Experiment knobs. */
struct Fig2Options
{
    /** Dynamic loads simulated per benchmark run. */
    size_t loadsPerBenchmark = 200000;
    /** FSM history lengths (the paper plots 2, 4, 6, 8, 10). */
    std::vector<int> histories = {2, 4, 6, 8, 10};
    /** Predict-1 thresholds swept to trace each FSM curve. */
    std::vector<double> thresholds = {0.50, 0.60, 0.70, 0.80,
                                      0.90, 0.95, 0.98};
    /** SUD sweep: paper's max values, decrements and thresholds. */
    std::vector<int> sudMax = {5, 10, 20, 40};
    /** Decrements; -1 encodes "full" (reset). */
    std::vector<int> sudDecrement = {1, 2, 5, 10, -1};
    std::vector<double> sudThresholdFrac = {0.5, 0.8, 0.9};
    StrideConfig stride;
};

/**
 * Run the Figure 2 experiment for @p benchmark (one of
 * valueBenchmarkNames()). FSM estimators are cross-trained: the Markov
 * models aggregate every *other* benchmark's per-entry correctness
 * streams, never the reported benchmark's own.
 */
Fig2Benchmark runFigure2(const std::string &benchmark,
                         const Fig2Options &options = {});

/** Run all five benchmarks. */
std::vector<Fig2Benchmark> runFigure2All(const Fig2Options &options = {});

} // namespace autofsm

#endif // AUTOFSM_SIM_FIGURE2_HH
