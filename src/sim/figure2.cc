#include "sim/figure2.hh"

#include <algorithm>
#include <sstream>

#include "fsmgen/designer.hh"
#include "workloads/value_workloads.hh"

namespace autofsm
{

namespace
{

std::string
formatPct(double frac)
{
    std::ostringstream out;
    out.precision(1);
    out << std::fixed << frac * 100.0 << "%";
    return out.str();
}

} // anonymous namespace

Fig2Benchmark
runFigure2(const std::string &benchmark, const Fig2Options &options)
{
    Fig2Benchmark result;
    result.name = benchmark;

    const ValueTrace own =
        makeValueTrace(benchmark, options.loadsPerBenchmark);

    // --- SUD counter scatter -------------------------------------------
    for (int max : options.sudMax) {
        for (int dec : options.sudDecrement) {
            for (double frac : options.sudThresholdFrac) {
                SudConfig config;
                config.max = max;
                config.increment = 1;
                config.decrement = dec < 0 ? max + 1 : dec;
                config.threshold =
                    std::max(1, static_cast<int>(frac * max + 0.5));
                SudConfidence estimator(
                    static_cast<size_t>(options.stride.entries), config);
                const ConfidenceResult r =
                    simulateConfidence(own, options.stride, estimator);
                result.sudPoints.push_back(
                    {r.accuracy(), r.coverage(), estimator.name()});
            }
        }
    }

    // --- Cross-trained FSM curves --------------------------------------
    // Aggregate per-entry correctness Markov models over every other
    // benchmark (Section 6.3's leave-one-out methodology).
    std::vector<MarkovModel> models;
    models.reserve(options.histories.size());
    for (int order : options.histories)
        models.emplace_back(order);

    for (const std::string &other : valueBenchmarkNames()) {
        if (other == benchmark)
            continue;
        const ValueTrace trace =
            makeValueTrace(other, options.loadsPerBenchmark);
        std::vector<MarkovModel *> pointers;
        for (auto &model : models)
            pointers.push_back(&model);
        collectConfidenceModels(trace, options.stride, pointers);
    }

    for (size_t i = 0; i < models.size(); ++i) {
        ParetoSeries series;
        series.label =
            "custom w/ hist=" + std::to_string(options.histories[i]);
        for (double threshold : options.thresholds) {
            FsmDesignOptions design;
            design.order = options.histories[i];
            design.patterns.threshold = threshold;
            design.patterns.dontCareMass = 0.01;
            const FsmDesignResult designed = designFsm(models[i], design);

            FsmConfidence estimator(
                static_cast<size_t>(options.stride.entries), designed.fsm,
                series.label + " thr=" + formatPct(threshold));
            const ConfidenceResult r =
                simulateConfidence(own, options.stride, estimator);
            series.points.push_back({r.accuracy(), r.coverage(),
                                     "thr=" + formatPct(threshold)});
        }
        result.fsmCurves.push_back(std::move(series));
    }
    return result;
}

std::vector<Fig2Benchmark>
runFigure2All(const Fig2Options &options)
{
    std::vector<Fig2Benchmark> all;
    for (const std::string &name : valueBenchmarkNames())
        all.push_back(runFigure2(name, options));
    return all;
}

} // namespace autofsm
