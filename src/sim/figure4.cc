#include "sim/figure4.hh"

#include <memory>

#include "bpred/trainer.hh"
#include "obs/metrics.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{

Fig4Result
runFigure4(const Fig4Options &options)
{
    const std::vector<std::string> names = branchBenchmarkNames();

    // Fan the benchmarks out across cores. Each benchmark draws its
    // sampling decisions from its own seed-derived RNG stream, so the
    // sampled set does not depend on scheduling order.
    std::vector<std::vector<AreaEstimate>> sampled(names.size());
    parallelFor(
        names.size(),
        [&](size_t b) {
            Rng rng(options.seed +
                    0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(b + 1));
            const std::shared_ptr<const BranchTrace> trace =
                cachedBranchTrace(names[b], WorkloadInput::Train,
                                  options.branchesPerRun);
            CustomTrainingOptions training;
            training.historyLength = options.historyLength;
            training.maxCustomBranches = options.fsmsPerBenchmark;
            // The per-branch designs inside one benchmark run serially;
            // parallelism lives at the benchmark level here.
            training.threads = 1;
            const auto trained = trainCustomPredictors(*trace, training);
            for (const auto &branch : trained) {
                // Strict <: uniform() is in [0, 1), so a fraction of 0.0
                // must admit nothing (<= let a 0.0 draw through) and a
                // fraction of 1.0 still admits everything.
                if (rng.uniform() < options.sampleFraction)
                    sampled[b].push_back(branch.fsmArea);
            }
        },
        options.threads);

    Fig4Result result;
    for (const auto &per_benchmark : sampled)
        result.samples.insert(result.samples.end(), per_benchmark.begin(),
                              per_benchmark.end());
    result.fit = fitAreaLine(result.samples);

    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (registry.enabled()) {
        registry
            .counter("autofsm_fig4_samples_total",
                     "FSM area samples feeding the Figure-4 fit.")
            .inc(result.samples.size());
        registry
            .gauge("autofsm_fig4_fit_slope",
                   "Fitted area-per-state slope from the last Figure-4 run.")
            .set(result.fit.slope);
        registry
            .gauge("autofsm_fig4_fit_intercept",
                   "Fitted area intercept from the last Figure-4 run.")
            .set(result.fit.intercept);
    }
    return result;
}

} // namespace autofsm
