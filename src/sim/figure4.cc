#include "sim/figure4.hh"

#include "bpred/trainer.hh"
#include "support/rng.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{

Fig4Result
runFigure4(const Fig4Options &options)
{
    Fig4Result result;
    Rng rng(options.seed);

    for (const std::string &name : branchBenchmarkNames()) {
        const BranchTrace trace = makeBranchTrace(
            name, WorkloadInput::Train, options.branchesPerRun);
        CustomTrainingOptions training;
        training.historyLength = options.historyLength;
        training.maxCustomBranches = options.fsmsPerBenchmark;
        const auto trained = trainCustomPredictors(trace, training);
        for (const auto &branch : trained) {
            if (rng.uniform() <= options.sampleFraction)
                result.samples.push_back(
                    estimateFsmArea(branch.design.fsm));
        }
    }

    result.fit = fitAreaLine(result.samples);
    return result;
}

} // namespace autofsm
