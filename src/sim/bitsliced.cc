#include "sim/bitsliced.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "support/thread_pool.hh"

#if !defined(AUTOFSM_NO_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define AUTOFSM_BITSLICED_AVX2 1
#include <immintrin.h>
#endif

namespace autofsm
{

namespace
{

/** Largest machine a lane can hold (state ids fit a byte). */
constexpr int kMaxLaneStates = 256;
/** Lanes per group: one per bit of the outcome machine word. */
constexpr size_t kLanesPerGroup = 64;
/** Don't shard below this many words per shard (warm-up amortization). */
constexpr size_t kMinWordsPerShard = 512;
/** Warm-up window escalation ladder, in words before the boundary. */
constexpr std::array<size_t, 4> kWarmupWindowWords = {4, 16, 64, 256};

/**
 * One machine compiled for lane replay. `nib[(m * 16 + c) * states + s]`
 * packs the state reached from s after the 4 outcomes of nibble c
 * (LSB-first) in bits 0-7 and, in bits 8-15, the number of
 * mispredictions along that walk counted only at the bits set in the
 * 4-bit sample mask m. The m = 0 planes are the sweep engine's plain
 * nibble composition table (pure advance); m = 0xf is predict-every-bit
 * (dense counting); intermediate masks let sparse position lists ride
 * the same word-at-a-time lookup instead of falling back to bit
 * stepping — one plane shape serves every replay mode.
 */
struct LaneTables
{
    int states = 0;
    int start = 0;
    uint32_t log2Stride = 0;    ///< Plane stride = 1 << log2Stride.
    std::vector<uint8_t> out;   ///< Moore output per state.
    std::vector<uint8_t> next8; ///< next[2*s + bit].
    std::vector<uint16_t> nib;  ///< next | (missInc << 8), 256 planes.
};

LaneTables
buildLaneTables(const Dfa &dfa)
{
    LaneTables t;
    t.states = dfa.numStates();
    t.start = dfa.start();
    const auto states = static_cast<size_t>(t.states);
    t.out.resize(states);
    t.next8.resize(states * 2);
    for (int s = 0; s < t.states; ++s) {
        t.out[static_cast<size_t>(s)] =
            static_cast<uint8_t>(dfa.output(s) ? 1 : 0);
        t.next8[static_cast<size_t>(s) * 2 + 0] =
            static_cast<uint8_t>(dfa.next(s, 0));
        t.next8[static_cast<size_t>(s) * 2 + 1] =
            static_cast<uint8_t>(dfa.next(s, 1));
    }
    // Planes are padded to a power-of-two stride so the kernels index
    // them with a shift instead of a per-lane multiply; the pad entries
    // are never addressed (state ids stay below `states`).
    t.log2Stride = 0;
    while ((size_t{1} << t.log2Stride) < states)
        ++t.log2Stride;
    const size_t stride = size_t{1} << t.log2Stride;
    t.nib.assign(256 * stride, 0);
    for (unsigned mc = 0; mc < 256; ++mc) {
        const unsigned m = mc >> 4; // sample mask nibble
        const unsigned c = mc & 15; // outcome nibble
        for (int s = 0; s < t.states; ++s) {
            uint32_t state = static_cast<uint32_t>(s);
            uint32_t miss = 0;
            for (int bit = 0; bit < 4; ++bit) {
                const uint32_t b = (c >> bit) & 1;
                if (((m >> bit) & 1) != 0)
                    miss += static_cast<uint32_t>(t.out[state] != b);
                state = t.next8[state * 2 + b];
            }
            t.nib[mc * stride + static_cast<size_t>(s)] =
                static_cast<uint16_t>(state | (miss << 8));
        }
    }
    return t;
}

/** The padding machine: one state, output 0, never counted. */
const LaneTables &
dummyLane()
{
    static const LaneTables dummy = buildLaneTables(Dfa::constant(0));
    return dummy;
}

/**
 * One lane group compiled for replay: up to 64 machines side by side,
 * padded to a multiple of 8 lanes with the dummy machine so the AVX2
 * kernel needs no tail masking. The nibble planes of every lane live in
 * one buffer (`nib`), addressed as `nib[off[j] + c * stride[j] + s]` —
 * the flat form the gather path indexes directly.
 */
struct GroupRun
{
    int laneCount = 0; ///< Real lanes.
    int kPad = 0;      ///< Padded lane count (multiple of 8).
    std::vector<LaneTables> tables;
    std::vector<uint16_t> nib; ///< Concatenated planes (+2 pad entries).
    std::vector<uint32_t> off;
    std::vector<uint32_t> stride;      ///< Plane stride, 1 << log2Stride.
    std::vector<uint32_t> log2Stride;  ///< Kernels shift instead of *.
    std::vector<uint32_t> laneStates;  ///< Real state count per lane.
    /** Per-word sample-mask seed: ~0 for dense lanes, 0 otherwise. */
    std::vector<uint64_t> baseMask;
    /** baseMask as a MaskBlock word-row pair (low half row then high
     *  half row) — the memcpy template for buildBlockMasks. */
    alignas(32) uint32_t baseRow[2 * kLanesPerGroup] = {};
    std::vector<const uint16_t *> nibPtr;
    std::vector<const uint8_t *> next8Ptr;
    std::vector<const uint8_t *> outPtr;
    std::vector<const uint32_t *> posPtr; ///< nullptr = dense or dummy.
    std::vector<uint32_t> posCount;
    std::vector<int> startState;
    std::vector<size_t> machineIndex; ///< Real lanes only.
};

/** Words per mask block: kernels run this many words per call with
 *  lane states held in registers, and sample masks are scattered into
 *  a block-sized buffer in one pass over the position lists. */
constexpr size_t kMaskBlockWords = 64;

/** Mutable per-(group, shard) replay state. */
struct GroupState
{
    alignas(32) uint32_t state[kLanesPerGroup];
    uint32_t cursor[kLanesPerGroup];
    uint64_t miss[kLanesPerGroup];
};

/**
 * Per-block sample masks: two rows of 32-bit halves per word (low half
 * then high half, adjacent) so the position scatter picks the half by
 * address arithmetic — `bit >> 5` — instead of an unpredictable branch.
 */
struct MaskBlock
{
    alignas(32) uint32_t m[kMaskBlockWords * 2 * kLanesPerGroup];
};

std::unique_ptr<GroupRun>
buildGroup(const std::vector<BitslicedMachine> &machines,
           const std::vector<size_t> &laneMachines, size_t from, size_t to)
{
    auto group = std::make_unique<GroupRun>();
    GroupRun &run = *group;
    run.laneCount = static_cast<int>(to - from);
    run.kPad = static_cast<int>((static_cast<size_t>(run.laneCount) + 7) &
                                ~size_t{7});

    run.tables.reserve(static_cast<size_t>(run.laneCount));
    for (size_t lane = from; lane < to; ++lane)
        run.tables.push_back(
            buildLaneTables(*machines[laneMachines[lane]].fsm));

    const auto kPad = static_cast<size_t>(run.kPad);
    run.off.resize(kPad);
    run.stride.resize(kPad);
    run.log2Stride.resize(kPad);
    run.laneStates.resize(kPad);
    run.baseMask.resize(kPad, 0);
    run.nibPtr.resize(kPad);
    run.next8Ptr.resize(kPad);
    run.outPtr.resize(kPad);
    run.posPtr.resize(kPad, nullptr);
    run.posCount.resize(kPad, 0);
    run.startState.resize(kPad, 0);
    run.machineIndex.resize(static_cast<size_t>(run.laneCount));

    size_t total = 0;
    for (size_t j = 0; j < kPad; ++j) {
        const LaneTables &t =
            j < run.tables.size() ? run.tables[j] : dummyLane();
        run.off[j] = static_cast<uint32_t>(total);
        run.stride[j] = uint32_t{1} << t.log2Stride;
        run.log2Stride[j] = t.log2Stride;
        run.laneStates[j] = static_cast<uint32_t>(t.states);
        total += t.nib.size();
    }
    // Two pad entries so a 4-byte gather at the last element stays in
    // bounds.
    run.nib.assign(total + 2, 0);
    for (size_t j = 0; j < kPad; ++j) {
        const LaneTables &t =
            j < run.tables.size() ? run.tables[j] : dummyLane();
        std::copy(t.nib.begin(), t.nib.end(), run.nib.begin() + run.off[j]);
        run.nibPtr[j] = run.nib.data() + run.off[j];
        run.next8Ptr[j] = t.next8.data();
        run.outPtr[j] = t.out.data();
        run.startState[j] = t.start;
        if (j < static_cast<size_t>(run.laneCount)) {
            const size_t mi = laneMachines[from + j];
            run.machineIndex[j] = mi;
            const std::vector<uint32_t> *positions = machines[mi].positions;
            if (positions == nullptr) {
                run.baseMask[j] = ~uint64_t{0};
                run.baseRow[j] = ~uint32_t{0};
                run.baseRow[kLanesPerGroup + j] = ~uint32_t{0};
            } else {
                run.posPtr[j] = positions->data();
                run.posCount[j] = static_cast<uint32_t>(positions->size());
            }
        }
    }
    return group;
}

/**
 * Bit-step lane @p j over records [b0, b1): predict at its positions
 * (or every record when dense), step on every outcome. The exact-edge
 * path: dirty words, trace tails and warm-up edges all land here.
 */
void
stepLaneBits(const GroupRun &run, GroupState &st, int j,
             const uint64_t *words, size_t b0, size_t b1)
{
    const auto lane = static_cast<size_t>(j);
    uint32_t s = st.state[lane];
    const uint8_t *next8 = run.next8Ptr[lane];
    const uint8_t *out = run.outPtr[lane];
    const uint32_t *pos = run.posPtr[lane];
    uint32_t cur = st.cursor[lane];
    const uint32_t posEnd = run.posCount[lane];
    const bool dense = pos == nullptr && run.baseMask[lane] != 0;
    uint64_t miss = st.miss[lane];
    for (size_t i = b0; i < b1; ++i) {
        const auto bit =
            static_cast<uint32_t>((words[i >> 6] >> (i & 63)) & 1ULL);
        if (dense) {
            miss += static_cast<uint64_t>(out[s] != bit);
        } else if (pos != nullptr && cur < posEnd && pos[cur] == i) {
            miss += static_cast<uint64_t>(out[s] != bit);
            ++cur;
        }
        s = next8[s * 2 + bit];
    }
    st.state[lane] = s;
    st.cursor[lane] = cur;
    st.miss[lane] = miss;
}

/**
 * Assemble the sample-mask rows for words [w0, w0 + wCount): every row
 * starts as the baseMask template (all-ones halves for dense lanes,
 * zero for sparse and padding lanes), then one pass over each sparse
 * lane's position list scatters its bits — no per-word cursor
 * branching, the scatter touches exactly one entry per position.
 */
void
buildBlockMasks(const GroupRun &run, GroupState &st, MaskBlock &block,
                size_t w0, size_t wCount)
{
    for (size_t r = 0; r < wCount; ++r)
        std::memcpy(block.m + r * 2 * kLanesPerGroup, run.baseRow,
                    sizeof(run.baseRow));
    const size_t wLimit = w0 + wCount;
    for (int j = 0; j < run.laneCount; ++j) {
        const auto lane = static_cast<size_t>(j);
        const uint32_t *pos = run.posPtr[lane];
        if (pos == nullptr)
            continue;
        uint32_t cur = st.cursor[lane];
        const uint32_t posEnd = run.posCount[lane];
        while (cur < posEnd && (pos[cur] >> 6) < wLimit) {
            const size_t row = (pos[cur] >> 6) - w0;
            const uint32_t bit = pos[cur] & 63;
            block.m[(row * 2 + (bit >> 5)) * kLanesPerGroup + lane] |=
                uint32_t{1} << (bit & 31);
            ++cur;
        }
        st.cursor[lane] = cur;
    }
}

/**
 * Scalar block kernel: word-major so the per-lane lookup chains are
 * independent within each word and the out-of-order core overlaps them
 * — this cross-lane parallelism is the engine's speedup. Each nibble
 * step indexes the (maskNibble, outcomeNibble) plane, so sparse
 * prediction positions cost the same lookup as a plain advance.
 */
void
processBlockScalar(const GroupRun &run, GroupState &st,
                   const uint64_t *words, size_t wCount,
                   const MaskBlock &block)
{
    const int kPad = run.kPad;
    for (size_t w = 0; w < wCount; ++w) {
        const uint64_t x = words[w];
        const uint32_t *lo = block.m + w * 2 * kLanesPerGroup;
        const uint32_t *hi = lo + kLanesPerGroup;
        for (int j = 0; j < kPad; ++j) {
            const auto lane = static_cast<size_t>(j);
            const uint16_t *t = run.nibPtr[lane];
            const uint32_t shift = run.log2Stride[lane];
            uint32_t s = st.state[lane];
            uint64_t m = lo[lane] | (uint64_t{hi[lane]} << 32);
            uint64_t xx = x;
            uint32_t acc = 0;
            for (int r = 0; r < 16; ++r) {
                const size_t plane = ((m & 15) << 4) | (xx & 15);
                const uint16_t e = t[(plane << shift) + s];
                s = e & 0xff;
                acc += e >> 8;
                xx >>= 4;
                m >>= 4;
            }
            st.state[lane] = s;
            st.miss[lane] += acc;
        }
    }
}

#ifdef AUTOFSM_BITSLICED_AVX2

/**
 * AVX2 block kernel: lane states, plane offsets and miss accumulators
 * live in ymm registers across the whole block; each nibble advances 8
 * lanes per VPGATHERDD from the shared plane buffer (uint16 entries,
 * scale-2 gather; the next state is the low byte of the loaded dword,
 * the miss increment the next). Sample masks stream in from the block
 * rows, low word half first, shifting a nibble per step in step with
 * the outcomes. The 32-bit accumulators can't overflow within a block
 * (at most 64 * kMaskBlockWords misses) and spill once per call.
 */
__attribute__((target("avx2"))) void
processBlockAvx2(const GroupRun &run, GroupState &st,
                 const uint64_t *words, size_t wCount,
                 const MaskBlock &block)
{
    const int nv = run.kPad / 8;
    const int *base = reinterpret_cast<const int *>(run.nib.data());
    const __m256i low8 = _mm256_set1_epi32(0xff);
    const __m256i low4 = _mm256_set1_epi32(0xf);
    __m256i state[8];
    __m256i acc[8];
    __m256i off[8];
    __m256i shift[8];
    for (int v = 0; v < nv; ++v) {
        state[v] = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(st.state + 8 * v));
        acc[v] = _mm256_setzero_si256();
        off[v] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(run.off.data() + 8 * v));
        shift[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
            run.log2Stride.data() + 8 * v));
    }
    for (size_t w = 0; w < wCount; ++w) {
        uint64_t x = words[w];
        for (int half = 0; half < 2; ++half) {
            const uint32_t *mrow =
                block.m +
                (w * 2 + static_cast<size_t>(half)) * kLanesPerGroup;
            __m256i mask[8];
            for (int v = 0; v < nv; ++v)
                mask[v] = _mm256_load_si256(
                    reinterpret_cast<const __m256i *>(mrow + 8 * v));
            for (int r = 0; r < 8; ++r) {
                const __m256i c =
                    _mm256_set1_epi32(static_cast<int>(x & 15));
                x >>= 4;
                for (int v = 0; v < nv; ++v) {
                    const __m256i plane = _mm256_or_si256(
                        _mm256_slli_epi32(_mm256_and_si256(mask[v], low4),
                                          4),
                        c);
                    const __m256i idx = _mm256_add_epi32(
                        _mm256_add_epi32(
                            off[v], _mm256_sllv_epi32(plane, shift[v])),
                        state[v]);
                    const __m256i g = _mm256_i32gather_epi32(base, idx, 2);
                    state[v] = _mm256_and_si256(g, low8);
                    acc[v] = _mm256_add_epi32(
                        acc[v],
                        _mm256_and_si256(_mm256_srli_epi32(g, 8), low8));
                    mask[v] = _mm256_srli_epi32(mask[v], 4);
                }
            }
        }
    }
    for (int v = 0; v < nv; ++v) {
        _mm256_store_si256(reinterpret_cast<__m256i *>(st.state + 8 * v),
                           state[v]);
        alignas(32) uint32_t tmp[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp), acc[v]);
        for (int t = 0; t < 8; ++t)
            st.miss[static_cast<size_t>(8 * v + t)] += tmp[t];
    }
}

#endif // AUTOFSM_BITSLICED_AVX2

/**
 * Advance a group over bit range [bitBegin, bitEnd) — bitBegin word-
 * aligned, bitEnd arbitrary (the trace tail). Every full word takes a
 * word-parallel kernel under its per-lane sample masks; only the
 * partial final word of the whole trace is bit-stepped.
 */
void
advanceGroupShard(const GroupRun &run, GroupState &st,
                  const uint64_t *words, size_t bitBegin, size_t bitEnd,
                  [[maybe_unused]] bool simd)
{
    const size_t wEnd = bitEnd >> 6;
    auto block = std::make_unique<MaskBlock>();
    for (size_t w = bitBegin >> 6; w < wEnd; w += kMaskBlockWords) {
        const size_t wCount = std::min(kMaskBlockWords, wEnd - w);
        buildBlockMasks(run, st, *block, w, wCount);
#ifdef AUTOFSM_BITSLICED_AVX2
        if (simd) {
            processBlockAvx2(run, st, words + w, wCount, *block);
            continue;
        }
#endif
        processBlockScalar(run, st, words + w, wCount, *block);
    }
    if ((wEnd << 6) < bitEnd) {
        for (int j = 0; j < run.laneCount; ++j)
            stepLaneBits(run, st, j, words, wEnd << 6, bitEnd);
    }
}

/** Replay one known state over [b0, b1) without counting (warm-up). */
uint32_t
advanceSingleState(const GroupRun &run, size_t lane, uint32_t s,
                   const uint64_t *words, size_t b0, size_t b1)
{
    const uint8_t *next8 = run.next8Ptr[lane];
    const uint16_t *t = run.nibPtr[lane];
    const uint32_t stride = run.stride[lane];
    while (b0 < b1 && (b0 & 63) != 0) {
        const auto bit =
            static_cast<uint32_t>((words[b0 >> 6] >> (b0 & 63)) & 1ULL);
        s = next8[s * 2 + bit];
        ++b0;
    }
    while (b0 + 64 <= b1) {
        uint64_t x = words[b0 >> 6];
        for (int r = 0; r < 16; ++r) {
            s = t[static_cast<size_t>(x & 15) * stride + s] & 0xff;
            x >>= 4;
        }
        b0 += 64;
    }
    while (b0 < b1) {
        const auto bit =
            static_cast<uint32_t>((words[b0 >> 6] >> (b0 & 63)) & 1ULL);
        s = next8[s * 2 + bit];
        ++b0;
    }
    return s;
}

/**
 * The exact machine state of lane @p lane at word-aligned @p boundaryBit,
 * or -1 when no warm-up window synchronizes.
 *
 * Correctness: replay *every* state over a window ending at the
 * boundary. The true state at the window's start is some member of that
 * set, so if all members converge to one state, that state is the true
 * boundary state. Non-synchronizing machines (permutation automata like
 * a parity counter) can defeat every window; the caller falls back to
 * one unsharded replay for those.
 */
int
exactBoundaryState(const GroupRun &run, size_t lane, const uint64_t *words,
                   size_t boundaryBit)
{
    if (boundaryBit == 0)
        return run.startState[lane];
    const uint32_t states = run.laneStates[lane];
    const uint32_t stride = run.stride[lane];
    const uint16_t *t = run.nibPtr[lane];
    for (const size_t window : kWarmupWindowWords) {
        const size_t windowBits = window * 64;
        if (windowBits >= boundaryBit) {
            // The window reaches the trace start: replay exactly from
            // the known start state instead.
            return static_cast<int>(advanceSingleState(
                run, lane,
                static_cast<uint32_t>(run.startState[lane]), words, 0,
                boundaryBit));
        }
        std::vector<uint8_t> sv(states);
        for (uint32_t i = 0; i < states; ++i)
            sv[i] = static_cast<uint8_t>(i);
        const size_t wEnd = boundaryBit >> 6;
        for (size_t w = (boundaryBit - windowBits) >> 6; w < wEnd; ++w) {
            uint64_t x = words[w];
            for (int r = 0; r < 16; ++r) {
                const size_t c = static_cast<size_t>(x & 15) * stride;
                for (uint32_t i = 0; i < states; ++i)
                    sv[i] = static_cast<uint8_t>(t[c + sv[i]] & 0xff);
                x >>= 4;
            }
            bool converged = true;
            for (uint32_t i = 1; i < states; ++i) {
                if (sv[i] != sv[0]) {
                    converged = false;
                    break;
                }
            }
            if (converged) {
                return static_cast<int>(advanceSingleState(
                    run, lane, sv[0], words, (w + 1) << 6, boundaryBit));
            }
        }
    }
    return -1;
}

/**
 * Reference serial replay straight off the Dfa — the fallback for
 * machines too big for a lane and for non-synchronizing machines, and
 * the semantics every sliced path must match bit for bit.
 */
uint64_t
replayReference(const Dfa &dfa, const uint64_t *words, size_t records,
                const std::vector<uint32_t> *positions)
{
    const int states = dfa.numStates();
    std::vector<int32_t> next(static_cast<size_t>(states) * 2);
    std::vector<uint8_t> out(static_cast<size_t>(states));
    for (int s = 0; s < states; ++s) {
        next[static_cast<size_t>(s) * 2 + 0] = dfa.next(s, 0);
        next[static_cast<size_t>(s) * 2 + 1] = dfa.next(s, 1);
        out[static_cast<size_t>(s)] =
            static_cast<uint8_t>(dfa.output(s) ? 1 : 0);
    }
    auto s = static_cast<uint32_t>(dfa.start());
    uint64_t miss = 0;
    if (positions == nullptr) {
        for (size_t i = 0; i < records; ++i) {
            const auto bit = static_cast<uint32_t>(
                (words[i >> 6] >> (i & 63)) & 1ULL);
            miss += static_cast<uint64_t>(out[s] != bit);
            s = static_cast<uint32_t>(next[s * 2 + bit]);
        }
        return miss;
    }
    size_t cur = 0;
    const size_t posEnd = positions->size();
    for (size_t i = 0; i < records; ++i) {
        const auto bit =
            static_cast<uint32_t>((words[i >> 6] >> (i & 63)) & 1ULL);
        if (cur < posEnd && (*positions)[cur] == i) {
            miss += static_cast<uint64_t>(out[s] != bit);
            ++cur;
        }
        s = static_cast<uint32_t>(next[s * 2 + bit]);
    }
    return miss;
}

} // anonymous namespace

bool
bitslicedSimdCompiled()
{
#ifdef AUTOFSM_BITSLICED_AVX2
    return true;
#else
    return false;
#endif
}

bool
bitslicedSimdAvailable()
{
#ifdef AUTOFSM_BITSLICED_AVX2
    static const bool available = __builtin_cpu_supports("avx2") != 0;
    return available;
#else
    return false;
#endif
}

std::vector<uint64_t>
packOutcomeWords(const std::vector<int> &outcomes)
{
    std::vector<uint64_t> words((outcomes.size() + 63) / 64, 0);
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i] != 0)
            words[i >> 6] |= 1ULL << (i & 63);
    }
    return words;
}

std::vector<uint64_t>
replayMachinesBitsliced(const std::vector<BitslicedMachine> &machines,
                        const uint64_t *words, size_t records,
                        const BitslicedOptions &options,
                        BitslicedReplayStats *stats)
{
    const size_t k = machines.size();
    std::vector<uint64_t> result(k, 0);
    if (stats != nullptr)
        *stats = BitslicedReplayStats{};
    for (const BitslicedMachine &machine : machines) {
        if (machine.fsm == nullptr)
            throw std::invalid_argument(
                "replayMachinesBitsliced: null machine");
        const int states = machine.fsm->numStates();
        if (states < 1 || machine.fsm->start() < 0 ||
            machine.fsm->start() >= states)
            throw std::invalid_argument(
                "replayMachinesBitsliced: malformed machine");
    }
    if (k == 0)
        return result;

    std::vector<size_t> laneMachines;
    std::vector<size_t> wideMachines;
    laneMachines.reserve(k);
    for (size_t i = 0; i < k; ++i) {
        if (machines[i].fsm->numStates() <= kMaxLaneStates)
            laneMachines.push_back(i);
        else
            wideMachines.push_back(i);
    }

    const size_t fullWords = records >> 6;
    const unsigned resolvedThreads =
        options.pool != nullptr
            ? options.pool->threadCount()
            : (options.threads != 0 ? options.threads
                                    : ThreadPool::defaultThreadCount());
    size_t shardCount = options.shards;
    if (shardCount == 0) {
        shardCount = resolvedThreads <= 1
                         ? 1
                         : std::min<size_t>(
                               resolvedThreads,
                               std::max<size_t>(
                                   1, fullWords / kMinWordsPerShard));
    }
    shardCount = std::max<size_t>(
        1, std::min(shardCount, std::max<size_t>(fullWords, 1)));

    // Word-aligned shard boundaries; the last shard absorbs the tail
    // bits of a partial final word.
    std::vector<size_t> shardWord(shardCount + 1, 0);
    for (size_t s = 0; s <= shardCount; ++s)
        shardWord[s] = fullWords * s / shardCount;

    const size_t groupCount =
        (laneMachines.size() + kLanesPerGroup - 1) / kLanesPerGroup;
    std::vector<std::unique_ptr<GroupRun>> groups;
    groups.reserve(groupCount);
    for (size_t g = 0; g < groupCount; ++g) {
        const size_t from = g * kLanesPerGroup;
        const size_t to =
            std::min(laneMachines.size(), from + kLanesPerGroup);
        groups.push_back(buildGroup(machines, laneMachines, from, to));
    }

    const bool useSimd = options.allowSimd && bitslicedSimdAvailable();
    std::vector<std::atomic<uint8_t>> fallback(k);
    std::vector<uint64_t> tallies(groupCount * shardCount *
                                      kLanesPerGroup,
                                  0);

    const auto runTask = [&](size_t task) {
        const size_t g = task / shardCount;
        const size_t shard = task % shardCount;
        const GroupRun &run = *groups[g];
        const size_t bitBegin = shardWord[shard] << 6;
        const size_t bitEnd =
            shard + 1 == shardCount ? records : shardWord[shard + 1] << 6;
        if (bitBegin >= bitEnd)
            return;
        GroupState st;
        for (int j = 0; j < run.kPad; ++j) {
            const auto lane = static_cast<size_t>(j);
            st.miss[lane] = 0;
            st.cursor[lane] = 0;
            if (j >= run.laneCount) {
                st.state[lane] = 0;
                continue;
            }
            int s0 = run.startState[lane];
            if (bitBegin != 0) {
                s0 = exactBoundaryState(run, lane, words, bitBegin);
                if (s0 < 0) {
                    // Non-synchronizing machine: its sharded tallies
                    // are meaningless; flag it for one serial replay.
                    fallback[run.machineIndex[lane]].store(
                        1, std::memory_order_relaxed);
                    s0 = run.startState[lane];
                }
            }
            st.state[lane] = static_cast<uint32_t>(s0);
            const uint32_t *pos = run.posPtr[lane];
            if (pos != nullptr) {
                st.cursor[lane] = static_cast<uint32_t>(
                    std::lower_bound(pos, pos + run.posCount[lane],
                                     static_cast<uint32_t>(bitBegin)) -
                    pos);
            }
        }
        advanceGroupShard(run, st, words, bitBegin, bitEnd, useSimd);
        uint64_t *out =
            tallies.data() + (g * shardCount + shard) * kLanesPerGroup;
        for (int j = 0; j < run.laneCount; ++j)
            out[j] = st.miss[static_cast<size_t>(j)];
    };

    const size_t taskCount = groupCount * shardCount;
    if (options.pool != nullptr)
        parallelForOn(*options.pool, taskCount, runTask);
    else
        parallelFor(taskCount, runTask, resolvedThreads);

    // Deterministic merge: each machine's shard tallies partition its
    // predictions exactly, so plain summation reproduces the serial
    // count for any shard split.
    std::vector<size_t> serialMachines = wideMachines;
    for (size_t g = 0; g < groupCount; ++g) {
        const GroupRun &run = *groups[g];
        for (int j = 0; j < run.laneCount; ++j) {
            const size_t mi = run.machineIndex[static_cast<size_t>(j)];
            if (fallback[mi].load(std::memory_order_relaxed) != 0) {
                serialMachines.push_back(mi);
                continue;
            }
            uint64_t sum = 0;
            for (size_t shard = 0; shard < shardCount; ++shard)
                sum += tallies[(g * shardCount + shard) * kLanesPerGroup +
                               static_cast<size_t>(j)];
            result[mi] = sum;
        }
    }

    const auto runSerial = [&](size_t i) {
        const size_t mi = serialMachines[i];
        result[mi] = replayReference(*machines[mi].fsm, words, records,
                                     machines[mi].positions);
    };
    if (options.pool != nullptr)
        parallelForOn(*options.pool, serialMachines.size(), runSerial);
    else
        parallelFor(serialMachines.size(), runSerial, resolvedThreads);

    if (stats != nullptr) {
        stats->groups = groupCount;
        stats->shards = shardCount;
        stats->simd = useSimd && groupCount > 0;
        stats->serialFallbacks = serialMachines.size();
    }
    return result;
}

std::vector<uint64_t>
replayMachinesBitsliced(const std::vector<BitslicedMachine> &machines,
                        const PackedTrace &trace,
                        const BitslicedOptions &options,
                        BitslicedReplayStats *stats)
{
    return replayMachinesBitsliced(machines, trace.takenWords().data(),
                                   trace.size(), options, stats);
}

} // namespace autofsm
