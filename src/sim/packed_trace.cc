#include "sim/packed_trace.hh"

#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace autofsm
{

PackedTrace::PackedTrace(const BranchTrace &trace)
{
    const size_t n = trace.size();
    pcs_.resize(n);
    taken_.assign((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
        pcs_[i] = trace[i].pc;
        if (trace[i].taken)
            taken_[i >> 6] |= 1ULL << (i & 63);
    }
}

namespace
{

using PackedPtr = std::shared_ptr<const PackedTrace>;

struct PackCache
{
    struct Entry
    {
        /** Pins the source so the pointer key cannot be recycled. */
        std::shared_ptr<const BranchTrace> trace;
        std::shared_future<PackedPtr> packed;
    };

    std::mutex mutex;
    std::unordered_map<const BranchTrace *, Entry> entries;
};

PackCache &
packCache()
{
    static PackCache instance;
    return instance;
}

} // anonymous namespace

std::shared_ptr<const PackedTrace>
cachedPackedTrace(const std::shared_ptr<const BranchTrace> &trace)
{
    PackCache &c = packCache();

    std::shared_future<PackedPtr> future;
    std::promise<PackedPtr> promise;
    bool creator = false;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        const auto it = c.entries.find(trace.get());
        if (it != c.entries.end()) {
            future = it->second.packed;
        } else {
            future = promise.get_future().share();
            c.entries.emplace(trace.get(), PackCache::Entry{trace, future});
            creator = true;
        }
    }

    if (creator) {
        // Packing is pure, so build outside the lock; concurrent
        // callers for the same trace wait on the future instead of
        // packing again.
        promise.set_value(std::make_shared<const PackedTrace>(*trace));
    }
    return future.get();
}

void
clearPackedTraceCache()
{
    PackCache &c = packCache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
}

} // namespace autofsm
