#include "sim/packed_trace.hh"

#include <chrono>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hh"

namespace autofsm
{

PackedTrace::PackedTrace(const BranchTrace &trace)
{
    const size_t n = trace.size();
    auto storage = std::make_shared<Storage>();
    storage->pcs.resize(n);
    storage->taken.assign((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
        storage->pcs[i] = trace[i].pc;
        if (trace[i].taken)
            storage->taken[i >> 6] |= 1ULL << (i & 63);
    }
    pcs_ = storage->pcs;
    taken_ = storage->taken;
    owner_ = std::move(storage);
}

PackedTrace::PackedTrace(const store::TraceBlob &blob)
    : pcs_(blob.pcs), taken_(blob.takenWords), owner_(blob.owner)
{
}

namespace
{

using PackedPtr = std::shared_ptr<const PackedTrace>;

struct PackCache
{
    struct Entry
    {
        /** Pins the source so the pointer key cannot be recycled. */
        std::shared_ptr<const BranchTrace> trace;
        std::shared_future<PackedPtr> packed;
        /** Logical clock of the last lookup, for LRU eviction. */
        uint64_t lastUse = 0;
    };

    std::mutex mutex;
    std::unordered_map<const BranchTrace *, Entry> entries;
    uint64_t evictions = 0;
    uint64_t clock = 0;
    size_t capacity = 32;
};

PackCache &
packCache()
{
    static PackCache instance;
    return instance;
}

/**
 * Drop LRU completed packings until the map fits the cap. Caller holds
 * the lock; in-flight packings are never evicted (the dedup contract),
 * so the map can transiently exceed the cap while builds race.
 */
size_t
evictPackingsOverCap(PackCache &c)
{
    size_t dropped = 0;
    while (c.capacity != 0 && c.entries.size() > c.capacity) {
        auto victim = c.entries.end();
        for (auto it = c.entries.begin(); it != c.entries.end(); ++it) {
            if (it->second.packed.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
                continue;
            }
            if (victim == c.entries.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == c.entries.end())
            break;
        c.entries.erase(victim);
        ++c.evictions;
        ++dropped;
    }
    return dropped;
}

void
publishPackEvictions(size_t dropped)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (dropped == 0 || !registry.enabled())
        return;
    // Shared with workloads/trace_cache.cc: one counter covers both
    // process-wide trace caches.
    registry
        .counter("autofsm_tracecache_evictions_total",
                 "Completed entries dropped by the LRU caps of the "
                 "process-wide trace caches (branch traces and packed "
                 "conversions).")
        .inc(dropped);
}

} // anonymous namespace

std::shared_ptr<const PackedTrace>
cachedPackedTrace(const std::shared_ptr<const BranchTrace> &trace)
{
    PackCache &c = packCache();

    std::shared_future<PackedPtr> future;
    std::promise<PackedPtr> promise;
    bool creator = false;
    size_t dropped = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        const auto it = c.entries.find(trace.get());
        if (it != c.entries.end()) {
            it->second.lastUse = ++c.clock;
            future = it->second.packed;
        } else {
            future = promise.get_future().share();
            c.entries.emplace(
                trace.get(), PackCache::Entry{trace, future, ++c.clock});
            dropped = evictPackingsOverCap(c);
            creator = true;
        }
    }
    publishPackEvictions(dropped);

    if (creator) {
        // Packing is pure, so build outside the lock; concurrent
        // callers for the same trace wait on the future instead of
        // packing again.
        promise.set_value(std::make_shared<const PackedTrace>(*trace));
    }
    return future.get();
}

PackedTraceCacheStats
packedTraceCacheStats()
{
    PackCache &c = packCache();
    PackedTraceCacheStats stats;
    std::lock_guard<std::mutex> lock(c.mutex);
    stats.entries = c.entries.size();
    stats.evictions = c.evictions;
    stats.capacity = c.capacity;
    return stats;
}

size_t
setPackedTraceCacheCapacity(size_t capacity)
{
    PackCache &c = packCache();
    size_t dropped = 0;
    size_t previous = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        previous = c.capacity;
        c.capacity = capacity;
        dropped = evictPackingsOverCap(c);
    }
    publishPackEvictions(dropped);
    return previous;
}

void
clearPackedTraceCache()
{
    PackCache &c = packCache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.evictions = 0;
}

} // namespace autofsm
