/**
 * @file
 * Nested-index sweep engine: every gshare/LGC/BTB sweep point of one
 * size family serviced by a single pass over the packed trace.
 *
 * The PR 3 batch path (sweepKernelBatch) already shares the trace read
 * across one family's sweep points, but each predictor still computes
 * its own table index per record and every point lives on one serial
 * dependency chain. This engine transposes the remaining per-config
 * work:
 *
 *  - **Index nesting (gshare).** The gshare index at table size 2^L is
 *    ((pc >> 2) ^ (h & lowMask(hb))) & (2^L - 1). Let
 *    hb* = max_i min(hb_i, L_i) over the sweep. When every config
 *    satisfies min(hb_i, L_i) == min(hb*, L_i) — true of any sweep that
 *    ties history length to table size, like Figure 5's — the single
 *    stream F_i = (pc_i >> 2) ^ (h_i & lowMask(hb*)) yields *every*
 *    config's index as F_i & (2^L - 1): one history update and one pc
 *    hash per branch instead of one per (branch x config). Sweeps that
 *    break the precondition fall back to sweepKernelBatch unchanged.
 *  - **SoA counter planes + AVX2 gather.** Per-config 2-bit counters
 *    are laid structure-of-arrays in one concatenated byte plane, so
 *    the per-branch counter reads across all sweep points become one
 *    vpgatherdd (CPUID-dispatched, mirroring bitsliced.cc; scalar
 *    fallback compiled under AUTOFSM_NO_AVX2).
 *  - **Exact residue-class sharding.** Predictions never feed table
 *    indices, so the index stream is a function of the trace alone and
 *    every table cell is an independent 2-bit automaton stepped by the
 *    outcomes at its own positions. Partitioning *cells* by index
 *    residue — class of F = (F & (2^Lmin - 1)) % shards, which every
 *    config's cell index agrees on because the masks nest — splits the
 *    pass into disjoint-state tasks whose tallies sum exactly: results
 *    are bit-identical to the serial kernel for ANY shard count, with
 *    no warm-up at all. The BTB shards the same way on its pc index
 *    residue (entries are independent tag+counter automata).
 *  - **Exact history recovery at trace shards.** The F build itself
 *    shards over word-aligned trace chunks: the gshare history register
 *    at record i is exactly the previous hb* outcomes, read straight
 *    out of the packed outcome words — the degenerate (window = hb*,
 *    always-synchronizing) case of bitsliced.hh's warm-up replay.
 *  - **Branchless LGC.** The local/global chooser's local-history
 *    coupling defeats both index nesting and cell sharding (pattern
 *    counters are indexed by history *values* shared across pc
 *    classes), so LGC points run one per task — but on a branchless
 *    replica of LgcKernel::step (saturating bumps via
 *    detail::kCounterStep instead of compare-branches), which removes
 *    the data-dependent branch mispredicts that dominated the batch
 *    path's LGC cost.
 *
 * Every point's decisions, tallies, name and area are bit-exact
 * replicas of the per-config sweepKernel path (sweep_test and
 * bench_sweep_nested enforce it across shard counts, thread counts,
 * and the scalar/AVX2 kernels).
 */

#ifndef AUTOFSM_SIM_NESTED_SWEEP_HH
#define AUTOFSM_SIM_NESTED_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "sim/packed_trace.hh"
#include "synth/area.hh"

namespace autofsm
{

class ThreadPool;

/** The size families one nested pass services. Any family may be
 *  empty; points are returned in the order given here. */
struct NestedSweepRequest
{
    std::vector<GshareConfig> gshare;
    std::vector<LgcConfig> lgc;
    std::vector<BtbConfig> btb;
};

/** Engine knobs; defaults match the calling context's resources. */
struct NestedSweepOptions
{
    /** Worker threads (0 = one per hardware core; 1 = inline serial).
     *  Ignored when @ref pool is set. */
    unsigned threads = 0;
    /** Residue classes per shardable family (0 = auto from threads;
     *  1 = unsharded). Any value yields bit-identical tallies. */
    size_t shards = 0;
    /** Permit the AVX2 gather when compiled in and CPUID-approved.
     *  False forces the scalar kernel (for differential tests). */
    bool allowSimd = true;
    /** Run tasks on this pool instead of a transient one. */
    ThreadPool *pool = nullptr;
};

/** One evaluated sweep point (same name/area as the kernel replica). */
struct NestedSweepPoint
{
    std::string name;
    double area = 0.0;
    BpredSimResult result;
    /** BTB points only: the lookup/hit tallies BtbKernel keeps. */
    uint64_t lookups = 0;
    uint64_t hits = 0;
};

/** Facts about one engine run, for benches and tests. */
struct NestedSweepStats
{
    /** Whether the AVX2 gather kernel ran (gshare counter stage). */
    bool simd = false;
    /** False when the gshare configs failed the nesting precondition
     *  and the family fell back to sweepKernelBatch. */
    bool gshareNested = true;
    /** Residue classes the gshare counter stage used. */
    size_t gshareShards = 0;
    /** Residue classes the BTB stage used. */
    size_t btbShards = 0;
    /** Word-aligned trace chunks of the F-stream build. */
    size_t historyShards = 0;
    /** Sweep points serviced by this pass (all families). */
    size_t pointsPerPass = 0;
};

/** The request's points, evaluated; per-family vectors parallel the
 *  request's config vectors. */
struct NestedSweepResult
{
    std::vector<NestedSweepPoint> gshare;
    std::vector<NestedSweepPoint> lgc;
    std::vector<NestedSweepPoint> btb;
    NestedSweepStats stats;
};

/** True when the AVX2 gather kernel is compiled in. */
bool nestedSweepSimdCompiled();

/** True when the AVX2 gather kernel is compiled in and CPU-supported. */
bool nestedSweepSimdAvailable();

/**
 * True when @p configs share one index stream (see the file comment):
 * with hb* = max_i min(historyBits_i, log2Entries_i), every config must
 * satisfy min(historyBits_i, log2Entries_i) == min(hb*, log2Entries_i).
 * Trivially true for empty and single-config sweeps.
 */
bool gshareConfigsNest(const std::vector<GshareConfig> &configs);

/**
 * Evaluate every requested sweep point over @p trace in one engine
 * pass. Publishes the same per-run telemetry as the per-config
 * sweepKernel path (publishBpredRun per point, publishBtbMetrics per
 * BTB point) plus the nested-engine sweep-point timings.
 *
 * Results are bit-identical to per-config sweepKernel runs for every
 * (threads, shards, allowSimd) combination.
 *
 * @throws std::length_error like LgcKernel for log2Entries > 16.
 */
NestedSweepResult nestedSweep(const NestedSweepRequest &request,
                              const PackedTrace &trace,
                              const AreaCosts &costs = {},
                              const NestedSweepOptions &options = {});

} // namespace autofsm

#endif // AUTOFSM_SIM_NESTED_SWEEP_HH
