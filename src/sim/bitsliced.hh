/**
 * @file
 * Bit-sliced multi-machine FSM replay over a packed outcome bitstream.
 *
 * The sweep engine (sim/sweep.hh) replays trained machines one at a
 * time: each replay is a single dependent chain of table lookups, so a
 * core spends most of the loop waiting on L1 latency. This engine
 * transposes the problem: machines are packed into *lane groups* of up
 * to 64 (one lane per bit of the machine word), their 4-outcome nibble
 * composition tables are laid side by side in one plane, and a single
 * pass over the `PackedTrace` outcome words advances every lane of a
 * group per word. The per-lane chains are independent, so the
 * out-of-order window overlaps dozens of lookups where the scalar path
 * had one in flight — that cross-machine parallelism, not vector
 * arithmetic, is where the throughput comes from. An AVX2 path
 * (runtime-dispatched via CPUID, compile-time guarded by
 * AUTOFSM_NO_AVX2) additionally performs the state-indexed table walk
 * as 8-lane gathers.
 *
 * Each lane replays in one of two modes, and both take the same
 * word-parallel lookup: a lane's composition table holds one plane per
 * (4-bit sample mask, 4-bit outcome nibble) pair, each entry packing
 * the next state with the number of mispredictions counted only at the
 * masked bits. Per word, each lane derives a 64-bit sample mask —
 *
 *  - **sparse** — bits set at the lane's branch positions inside the
 *    word, exactly replayCustomMachines' counting;
 *  - **dense** — all-ones (`positions == nullptr`), used by the batch
 *    evaluation stage to predict at every record
 *
 * — so prediction positions cost the same nibble lookups as a plain
 * advance and no word ever falls back to per-bit stepping (only the
 * trace's partial final word does).
 *
 * Long traces additionally shard across the ThreadPool: word-aligned
 * shards, each started from the *exact* machine state at its boundary.
 * The boundary state is recovered by replaying an all-states vector
 * over a warm-up window ending at the boundary — if every start state
 * converges to one state, that state must equal the true one (the true
 * pre-window state is among the starts), and the window grows
 * geometrically until convergence. Machines that never converge
 * (non-synchronizing automata, e.g. parity counters) fall back to one
 * unsharded replay. Per-shard tallies merge by plain summation over an
 * exact partition of the trace, so results are bit-identical to the
 * serial path for every shard and thread count.
 */

#ifndef AUTOFSM_SIM_BITSLICED_HH
#define AUTOFSM_SIM_BITSLICED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "automata/dfa.hh"
#include "sim/packed_trace.hh"

namespace autofsm
{

class ThreadPool;

/** One machine to replay over the shared outcome bitstream. */
struct BitslicedMachine
{
    const Dfa *fsm = nullptr;
    /**
     * Trace positions (ascending record indices) where this machine
     * predicts; nullptr selects dense mode (predict at every record).
     * An empty vector is a valid sparse machine that never predicts.
     */
    const std::vector<uint32_t> *positions = nullptr;
};

/** Replay knobs; the defaults match the calling context's resources. */
struct BitslicedOptions
{
    /** Worker threads (0 = one per hardware core; 1 = inline serial).
     *  Ignored when @ref pool is set. */
    unsigned threads = 0;
    /** Trace shards (0 = auto from threads and length; 1 = unsharded).
     *  Any value yields bit-identical tallies. */
    size_t shards = 0;
    /** Permit the AVX2 kernel when compiled in and CPUID-approved.
     *  False forces the scalar lane kernel (for differential tests). */
    bool allowSimd = true;
    /** Run shard/group tasks on this pool instead of a transient one. */
    ThreadPool *pool = nullptr;
};

/** Facts about one engine run, for benches and tests. */
struct BitslicedReplayStats
{
    /** Lane groups formed (ceil(lanes / 64)). */
    size_t groups = 0;
    /** Shards the trace was split into. */
    size_t shards = 0;
    /** Whether the AVX2 kernel ran. */
    bool simd = false;
    /** Machines replayed serially instead: too many states for a lane
     *  (> 256) or warm-up never converged (non-synchronizing). */
    size_t serialFallbacks = 0;
};

/** True when the AVX2 kernel is compiled in (not AUTOFSM_NO_AVX2). */
bool bitslicedSimdCompiled();

/** True when the AVX2 kernel is compiled in and this CPU supports it. */
bool bitslicedSimdAvailable();

/**
 * Replay every machine over the packed outcome words (bit i of word
 * i>>6 is record i's outcome, trailing bits of the last word zero) and
 * return per-machine miss counts in input order. Counts are
 * bit-identical to stepping each machine serially record by record,
 * for every (threads, shards, allowSimd) combination.
 *
 * @throws std::invalid_argument on a null fsm or an empty machine.
 */
std::vector<uint64_t>
replayMachinesBitsliced(const std::vector<BitslicedMachine> &machines,
                        const uint64_t *words, size_t records,
                        const BitslicedOptions &options = {},
                        BitslicedReplayStats *stats = nullptr);

/** Convenience overload over a PackedTrace's outcome bitvector. */
std::vector<uint64_t>
replayMachinesBitsliced(const std::vector<BitslicedMachine> &machines,
                        const PackedTrace &trace,
                        const BitslicedOptions &options = {},
                        BitslicedReplayStats *stats = nullptr);

/**
 * Pack a 0/1 outcome stream into the engine's word form (64 outcomes
 * per word, LSB-first; trailing bits zero). The inline-outcome form of
 * DesignRequest feeds the evaluation stage through this.
 */
std::vector<uint64_t> packOutcomeWords(const std::vector<int> &outcomes);

} // namespace autofsm

#endif // AUTOFSM_SIM_BITSLICED_HH
