#include "sim/sweep.hh"

#include "obs/metrics.hh"
#include "sim/bitsliced.hh"
#include "support/thread_pool.hh"

namespace autofsm
{

namespace
{

constexpr const char *kSweepPointHelp =
    "Kernel time of one sweep point (one predictor replay, one batched "
    "replay, or one fused nested-index pass), by engine.";

obs::Histogram &
sweepPointHistogram(SweepEngine engine)
{
    static obs::Histogram serial = obs::globalMetrics().histogram(
        "autofsm_sweep_point_millis", kSweepPointHelp,
        obs::defaultLatencyBucketsMillis(), {{"engine", "serial"}});
    static obs::Histogram batch = obs::globalMetrics().histogram(
        "autofsm_sweep_point_millis", kSweepPointHelp,
        obs::defaultLatencyBucketsMillis(), {{"engine", "batch"}});
    static obs::Histogram nested = obs::globalMetrics().histogram(
        "autofsm_sweep_point_millis", kSweepPointHelp,
        obs::defaultLatencyBucketsMillis(), {{"engine", "nested"}});
    switch (engine) {
      case SweepEngine::Batch:
        return batch;
      case SweepEngine::Nested:
        return nested;
      case SweepEngine::Serial:
        break;
    }
    return serial;
}

obs::Gauge &
sweepPointsPerPassGauge()
{
    static obs::Gauge gauge = obs::globalMetrics().gauge(
        "autofsm_sweep_points_per_pass",
        "Sweep points serviced by the most recent fused sweep pass.");
    return gauge;
}

} // anonymous namespace

void
BtbKernel::publishMetrics() const
{
    publishBtbMetrics(name(), lookups_, hits_);
}

void
observeSweepPointMillis(double millis, SweepEngine engine)
{
    if (!obs::globalMetrics().enabled())
        return;
    sweepPointHistogram(engine).observe(millis);
}

void
observeSweepPointsPerPass(size_t points)
{
    if (!obs::globalMetrics().enabled())
        return;
    sweepPointsPerPassGauge().set(static_cast<double>(points));
}

SweepPointTimer::SweepPointTimer(SweepEngine engine) : engine_(engine)
{
    if (obs::globalMetrics().enabled()) {
        active_ = true;
        start_ = std::chrono::steady_clock::now();
    }
}

SweepPointTimer::~SweepPointTimer()
{
    if (!active_)
        return;
    observeSweepPointMillis(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count(),
        engine_);
}

CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace, const BtbConfig &btb_config,
                     const AreaCosts &costs, unsigned threads,
                     size_t shards)
{
    CustomReplayCounts counts;
    const size_t k = machines.size();
    counts.btbMisses.assign(k, 0);
    counts.fsmMisses.assign(k, 0);

    BtbKernel btb(btb_config, costs);
    counts.btbArea = btb.area();
    counts.btbName = btb.name();

    // The machine set is tiny (a dozen worst branches), so pc -> machine
    // resolution uses a flat power-of-two probe table instead of an
    // unordered_map: one multiply-hash and usually one (empty) slot read
    // per record, no bucket pointer chase.
    size_t slots = 16;
    while (slots < k * 4)
        slots *= 2;
    const size_t slot_mask = slots - 1;
    std::vector<uint64_t> slot_pc(slots, 0);
    std::vector<int32_t> slot_machine(slots, -1);
    const auto slotOf = [slot_mask](uint64_t pc) {
        return static_cast<size_t>(((pc >> 2) * 0x9e3779b97f4a7c15ULL) &
                                   slot_mask);
    };
    for (size_t m = 0; m < k; ++m) {
        size_t s = slotOf(machines[m].pc);
        while (slot_machine[s] >= 0)
            s = (s + 1) & slot_mask;
        slot_pc[s] = machines[m].pc;
        slot_machine[s] = static_cast<int32_t>(m);
    }

    // Baseline pass: the BTB is one stateful chain, so this stays
    // serial; it doubles as the collection pass for each machine's
    // branch positions so the parallel replays need no pc lookups.
    std::vector<std::vector<uint32_t>> positions(k);
    const size_t n = trace.size();
    const uint64_t *pcs = trace.pcs().data();
    const uint64_t *words = trace.takenWords().data();
    {
        SweepPointTimer timer(SweepEngine::Batch);
        for (size_t i = 0; i < n; ++i) {
            const bool taken = (words[i >> 6] >> (i & 63)) & 1ULL;
            if (i + detail::kPrefetchDistance < n)
                btb.prefetch(pcs[i + detail::kPrefetchDistance]);
            const bool wrong = btb.step(pcs[i], taken);
            counts.btbMissesTotal += static_cast<uint64_t>(wrong);
            for (size_t s = slotOf(pcs[i]); slot_machine[s] >= 0;
                 s = (s + 1) & slot_mask) {
                if (slot_pc[s] != pcs[i])
                    continue;
                const auto m = static_cast<size_t>(slot_machine[s]);
                counts.btbMisses[m] += static_cast<uint64_t>(wrong);
                positions[m].push_back(static_cast<uint32_t>(i));
                break;
            }
        }
    }
    btb.publishMetrics();
    counts.btbLookups = btb.lookups();
    counts.btbHits = btb.hits();

    {
        SweepPointTimer timer(SweepEngine::Batch);
        std::vector<BitslicedMachine> sliced(k);
        for (size_t m = 0; m < k; ++m)
            sliced[m] = BitslicedMachine{machines[m].fsm, &positions[m]};
        BitslicedOptions options;
        options.threads = threads;
        options.shards = shards;
        counts.fsmMisses =
            replayMachinesBitsliced(sliced, words, n, options);
    }

    return counts;
}

CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace,
                     const CustomBaselineProfile &baseline, unsigned threads,
                     size_t shards)
{
    CustomReplayCounts counts;
    const size_t k = machines.size();
    counts.btbMissesTotal = baseline.btbMissesTotal;
    counts.btbMisses = baseline.btbMisses;
    counts.btbMisses.resize(k, 0);
    counts.fsmMisses.assign(k, 0);
    counts.btbArea = baseline.btbArea;
    counts.btbName = baseline.btbName;
    counts.btbLookups = baseline.btbLookups;
    counts.btbHits = baseline.btbHits;
    // Telemetry parity with the pass-driven overload, which publishes
    // its BTB tallies after the (here skipped) baseline chain.
    publishBtbMetrics(baseline.btbName, baseline.btbLookups,
                      baseline.btbHits);

    const size_t n = trace.size();
    const uint64_t *words = trace.takenWords().data();
    static const std::vector<uint32_t> no_positions;
    {
        SweepPointTimer timer(SweepEngine::Batch);
        std::vector<BitslicedMachine> sliced(k);
        for (size_t m = 0; m < k; ++m) {
            // An absent positions list means "this machine never
            // predicts" (sparse-empty), not dense mode.
            const std::vector<uint32_t> *positions =
                m < baseline.positions.size() && baseline.positions[m]
                    ? baseline.positions[m]
                    : &no_positions;
            sliced[m] = BitslicedMachine{machines[m].fsm, positions};
        }
        BitslicedOptions options;
        options.threads = threads;
        options.shards = shards;
        counts.fsmMisses =
            replayMachinesBitsliced(sliced, words, n, options);
    }

    return counts;
}

} // namespace autofsm
