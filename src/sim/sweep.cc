#include "sim/sweep.hh"

#include "obs/metrics.hh"
#include "support/thread_pool.hh"

namespace autofsm
{

namespace
{

obs::Histogram &
sweepPointHistogram()
{
    static obs::Histogram histogram = obs::globalMetrics().histogram(
        "autofsm_sweep_point_millis",
        "Kernel time of one sweep point (one predictor replay or one "
        "custom machine replay).",
        obs::defaultLatencyBucketsMillis());
    return histogram;
}

/**
 * A trained FSM flattened for replay: Moore outputs plus a dense
 * `next[2*state + outcome]` table. Machines small enough for 8-bit
 * state ids (the common case by far; Figure 4 machines top out well
 * below 256 states) additionally get a byte-composition table:
 * `chunk[c * states + s]` is the state reached from s after applying
 * the 8 outcomes of byte c LSB-first, letting the replay consume the
 * outcome bitstream a byte at a time between predictions.
 */
struct FlatFsm
{
    explicit FlatFsm(const Dfa &dfa)
        : states(dfa.numStates()), start(dfa.start())
    {
        out.resize(static_cast<size_t>(states));
        for (int s = 0; s < states; ++s)
            out[static_cast<size_t>(s)] =
                static_cast<uint8_t>(dfa.output(s) ? 1 : 0);

        if (states <= 256) {
            next8.resize(static_cast<size_t>(states) * 2);
            for (int s = 0; s < states; ++s) {
                next8[static_cast<size_t>(s) * 2 + 0] =
                    static_cast<uint8_t>(dfa.next(s, 0));
                next8[static_cast<size_t>(s) * 2 + 1] =
                    static_cast<uint8_t>(dfa.next(s, 1));
            }
        } else {
            nextWide.resize(static_cast<size_t>(states) * 2);
            for (int s = 0; s < states; ++s) {
                nextWide[static_cast<size_t>(s) * 2 + 0] = dfa.next(s, 0);
                nextWide[static_cast<size_t>(s) * 2 + 1] = dfa.next(s, 1);
            }
        }

        // The composition table costs 2048*states steps to build and
        // 256*states bytes to hold; only worth it (and L1-resident)
        // for small machines.
        if (states <= 64) {
            chunk.resize(256 * static_cast<size_t>(states));
            for (unsigned c = 0; c < 256; ++c) {
                for (int s = 0; s < states; ++s) {
                    uint32_t state = static_cast<uint32_t>(s);
                    for (int bit = 0; bit < 8; ++bit)
                        state = next8[state * 2 + ((c >> bit) & 1)];
                    chunk[c * static_cast<size_t>(states) +
                          static_cast<size_t>(s)] =
                        static_cast<uint8_t>(state);
                }
            }
        }

        // The 4-outcome table is 16x cheaper to build and at most 4 KiB,
        // so every byte-indexable machine gets one; it both serves
        // machines too big for the byte table and mops up the sub-byte
        // gaps between predictions for machines that have it.
        if (states <= 256) {
            nibble.resize(16 * static_cast<size_t>(states));
            for (unsigned c = 0; c < 16; ++c) {
                for (int s = 0; s < states; ++s) {
                    uint32_t state = static_cast<uint32_t>(s);
                    for (int bit = 0; bit < 4; ++bit)
                        state = next8[state * 2 + ((c >> bit) & 1)];
                    nibble[c * static_cast<size_t>(states) +
                           static_cast<size_t>(s)] =
                        static_cast<uint8_t>(state);
                }
            }
        }
    }

    int states;
    int start;
    std::vector<uint8_t> out;
    std::vector<uint8_t> next8;  ///< states <= 256
    std::vector<int> nextWide;   ///< states > 256
    std::vector<uint8_t> chunk;  ///< 8-outcome composition (states <= 64)
    std::vector<uint8_t> nibble; ///< 4-outcome composition (states <= 256)
};

/**
 * Replay one machine over the outcome bitstream: predict (and count a
 * miss) at each of its branch's positions, step on every outcome. The
 * next-state table is indexed through @p next so the narrow and wide
 * layouts share one loop.
 */
template <typename NextTable>
uint64_t
replayStream(const FlatFsm &fsm, const NextTable &next,
             const uint64_t *words, size_t n,
             const std::vector<uint32_t> &positions)
{
    uint64_t misses = 0;
    uint32_t state = static_cast<uint32_t>(fsm.start);
    const bool chunked = !fsm.chunk.empty();
    const bool nibbled = !fsm.nibble.empty();
    const size_t states = static_cast<size_t>(fsm.states);
    size_t p = 0;
    const size_t npos = positions.size();
    size_t i = 0;
    while (i < n) {
        const size_t next_match = p < npos ? positions[p] : n;
        if (chunked && (i & 7) == 0 && i + 8 <= n && next_match >= i + 8) {
            const uint8_t c = static_cast<uint8_t>(
                (words[i >> 6] >> (i & 63)) & 0xff);
            state = fsm.chunk[static_cast<size_t>(c) * states + state];
            i += 8;
            continue;
        }
        if (nibbled && (i & 3) == 0 && i + 4 <= n && next_match >= i + 4) {
            const uint8_t c = static_cast<uint8_t>(
                (words[i >> 6] >> (i & 63)) & 0xf);
            state = fsm.nibble[static_cast<size_t>(c) * states + state];
            i += 4;
            continue;
        }
        const uint8_t bit = static_cast<uint8_t>(
            (words[i >> 6] >> (i & 63)) & 1ULL);
        if (i == next_match) {
            misses += static_cast<uint64_t>(fsm.out[state] != bit);
            ++p;
        }
        state = static_cast<uint32_t>(next[state * 2 + bit]);
        ++i;
    }
    return misses;
}

uint64_t
replayOne(const FlatFsm &fsm, const uint64_t *words, size_t n,
          const std::vector<uint32_t> &positions)
{
    if (!fsm.next8.empty())
        return replayStream(fsm, fsm.next8, words, n, positions);
    return replayStream(fsm, fsm.nextWide, words, n, positions);
}

} // anonymous namespace

void
BtbKernel::publishMetrics() const
{
    publishBtbMetrics(name(), lookups_, hits_);
}

void
observeSweepPointMillis(double millis)
{
    if (!obs::globalMetrics().enabled())
        return;
    sweepPointHistogram().observe(millis);
}

SweepPointTimer::SweepPointTimer()
{
    if (obs::globalMetrics().enabled()) {
        active_ = true;
        start_ = std::chrono::steady_clock::now();
    }
}

SweepPointTimer::~SweepPointTimer()
{
    if (!active_)
        return;
    observeSweepPointMillis(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count());
}

CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace, const BtbConfig &btb_config,
                     const AreaCosts &costs, unsigned threads)
{
    CustomReplayCounts counts;
    const size_t k = machines.size();
    counts.btbMisses.assign(k, 0);
    counts.fsmMisses.assign(k, 0);

    BtbKernel btb(btb_config, costs);
    counts.btbArea = btb.area();
    counts.btbName = btb.name();

    // The machine set is tiny (a dozen worst branches), so pc -> machine
    // resolution uses a flat power-of-two probe table instead of an
    // unordered_map: one multiply-hash and usually one (empty) slot read
    // per record, no bucket pointer chase.
    size_t slots = 16;
    while (slots < k * 4)
        slots *= 2;
    const size_t slot_mask = slots - 1;
    std::vector<uint64_t> slot_pc(slots, 0);
    std::vector<int32_t> slot_machine(slots, -1);
    const auto slotOf = [slot_mask](uint64_t pc) {
        return static_cast<size_t>(((pc >> 2) * 0x9e3779b97f4a7c15ULL) &
                                   slot_mask);
    };
    for (size_t m = 0; m < k; ++m) {
        size_t s = slotOf(machines[m].pc);
        while (slot_machine[s] >= 0)
            s = (s + 1) & slot_mask;
        slot_pc[s] = machines[m].pc;
        slot_machine[s] = static_cast<int32_t>(m);
    }

    // Baseline pass: the BTB is one stateful chain, so this stays
    // serial; it doubles as the collection pass for each machine's
    // branch positions so the parallel replays need no pc lookups.
    std::vector<std::vector<uint32_t>> positions(k);
    const size_t n = trace.size();
    const uint64_t *pcs = trace.pcs().data();
    const uint64_t *words = trace.takenWords().data();
    {
        SweepPointTimer timer;
        for (size_t i = 0; i < n; ++i) {
            const bool taken = (words[i >> 6] >> (i & 63)) & 1ULL;
            if (i + detail::kPrefetchDistance < n)
                btb.prefetch(pcs[i + detail::kPrefetchDistance]);
            const bool wrong = btb.step(pcs[i], taken);
            counts.btbMissesTotal += static_cast<uint64_t>(wrong);
            for (size_t s = slotOf(pcs[i]); slot_machine[s] >= 0;
                 s = (s + 1) & slot_mask) {
                if (slot_pc[s] != pcs[i])
                    continue;
                const auto m = static_cast<size_t>(slot_machine[s]);
                counts.btbMisses[m] += static_cast<uint64_t>(wrong);
                positions[m].push_back(static_cast<uint32_t>(i));
                break;
            }
        }
    }
    btb.publishMetrics();
    counts.btbLookups = btb.lookups();
    counts.btbHits = btb.hits();

    parallelFor(
        k,
        [&](size_t m) {
            SweepPointTimer timer;
            const FlatFsm flat(*machines[m].fsm);
            counts.fsmMisses[m] = replayOne(flat, words, n, positions[m]);
        },
        threads);

    return counts;
}

CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace,
                     const CustomBaselineProfile &baseline, unsigned threads)
{
    CustomReplayCounts counts;
    const size_t k = machines.size();
    counts.btbMissesTotal = baseline.btbMissesTotal;
    counts.btbMisses = baseline.btbMisses;
    counts.btbMisses.resize(k, 0);
    counts.fsmMisses.assign(k, 0);
    counts.btbArea = baseline.btbArea;
    counts.btbName = baseline.btbName;
    counts.btbLookups = baseline.btbLookups;
    counts.btbHits = baseline.btbHits;
    // Telemetry parity with the pass-driven overload, which publishes
    // its BTB tallies after the (here skipped) baseline chain.
    publishBtbMetrics(baseline.btbName, baseline.btbLookups,
                      baseline.btbHits);

    const size_t n = trace.size();
    const uint64_t *words = trace.takenWords().data();
    static const std::vector<uint32_t> no_positions;
    parallelFor(
        k,
        [&](size_t m) {
            SweepPointTimer timer;
            const FlatFsm flat(*machines[m].fsm);
            const std::vector<uint32_t> *positions =
                m < baseline.positions.size() && baseline.positions[m]
                    ? baseline.positions[m]
                    : &no_positions;
            counts.fsmMisses[m] = replayOne(flat, words, n, *positions);
        },
        threads);

    return counts;
}

} // namespace autofsm
