#include "sim/figure5.hh"

#include <algorithm>
#include <memory>

#include "bpred/custom.hh"
#include "sim/nested_sweep.hh"
#include "sim/packed_trace.hh"
#include "sim/sweep.hh"
#include "support/thread_pool.hh"
#include "synth/area.hh"
#include "workloads/trace_cache.hh"

namespace autofsm
{

namespace
{

/**
 * Assemble a custom curve from one transposed replay's counts. Custom
 * entries are independent of the BTB and of each other (they only read
 * the global outcome stream), so per-machine replays yield every
 * k-entry configuration: the k-entry design's mispredictions are the
 * baseline's, minus the savings of the first k machines.
 */
AreaMissSeries
customSeries(const std::vector<TrainedBranch> &trained,
             const CustomReplayCounts &counts, size_t trace_size,
             const std::string &label, const AreaCosts &costs)
{
    const double total = static_cast<double>(trace_size ? trace_size : 1);
    const CustomEntryConfig entry_config;

    AreaMissSeries series;
    series.label = label;
    double area = counts.btbArea;
    uint64_t misses = counts.btbMissesTotal;
    for (size_t k = 0; k < trained.size(); ++k) {
        // Adding machine k replaces the BTB's prediction for its branch.
        misses -= counts.btbMisses[k];
        misses += counts.fsmMisses[k];
        // trained[k].fsmArea holds the training-time synthesis estimate
        // (default AreaCosts, which is what this experiment uses too).
        area += entry_config.tagBits * costs.camBit +
            entry_config.targetBits * costs.sramBit +
            trained[k].fsmArea.area;
        series.points.push_back(
            {area, static_cast<double>(misses) / total,
             std::to_string(k + 1) + " fsm"});
    }
    return series;
}

} // anonymous namespace

Fig5Benchmark
evaluateFigure5(const std::string &benchmark, const BranchTrace &train,
                const BranchTrace &test,
                const std::vector<TrainedBranch> &trained,
                const Fig5Options &options)
{
    const PackedTrace packed_train(train);
    const PackedTrace packed_test(test);
    return evaluateFigure5(benchmark, packed_train, packed_test, trained,
                           options);
}

Fig5Benchmark
evaluateFigure5(const std::string &benchmark,
                const PackedTrace &packed_train,
                const PackedTrace &packed_test,
                const std::vector<TrainedBranch> &trained,
                const Fig5Options &options,
                const BaselineBtbProfile *train_profile)
{
    const AreaCosts costs;
    Fig5Benchmark result;
    result.name = benchmark;
    result.trained = trained;

    const size_t num_gshare = options.gshareLog2.size();
    const size_t num_lgc = options.lgcLog2.size();
    result.gshare.label = "gshare";
    result.gshare.points.resize(num_gshare);
    result.lgc.label = "lgc";
    result.lgc.points.resize(num_lgc);

    auto gshare_config = [&](size_t i) {
        GshareConfig config;
        config.log2Entries = options.gshareLog2[i];
        config.historyBits = std::min(options.gshareLog2[i], 16);
        return config;
    };
    auto lgc_config = [&](size_t i) {
        LgcConfig config;
        config.log2Entries = options.lgcLog2[i];
        return config;
    };

    const unsigned sweep_threads = options.sweepThreads
        ? options.sweepThreads
        : ThreadPool::defaultThreadCount();

    std::vector<CustomSweepMachine> machines;
    machines.reserve(trained.size());
    for (const auto &branch : trained)
        machines.push_back({branch.pc, &branch.design.fsm});

    // The custom-diff baseline and the XScale sweep point are the same
    // BTB config chained over the same test trace, so one replay serves
    // both: the point is read off the counts, and the run/BTB telemetry
    // the dedicated point simulation would have published is exported
    // from the same tallies.
    const CustomReplayCounts diff_counts =
        replayCustomMachines(machines, packed_test,
                             options.training.baseline, costs,
                             sweep_threads, options.replayShards);
    {
        BpredSimResult r;
        r.branches = packed_test.size();
        r.mispredicts = diff_counts.btbMissesTotal;
        publishBpredRun(diff_counts.btbName, r);
        publishBtbMetrics(diff_counts.btbName, diff_counts.btbLookups,
                          diff_counts.btbHits);
        result.xscale = {diff_counts.btbArea, r.missRate(),
                         diff_counts.btbName};
    }

    {
        // One fused engine pass services every gshare and LGC sweep
        // point (sim/nested_sweep.hh): the gshare sizes share a single
        // nested index stream, the LGC points run as branchless side
        // tasks, and residue-class sharding spreads the counter work
        // across sweep_threads - serial (sweep_threads == 1) and
        // parallel runs produce bit-identical tallies.
        NestedSweepRequest request;
        request.gshare.reserve(num_gshare);
        for (size_t i = 0; i < num_gshare; ++i)
            request.gshare.push_back(gshare_config(i));
        request.lgc.reserve(num_lgc);
        for (size_t i = 0; i < num_lgc; ++i)
            request.lgc.push_back(lgc_config(i));
        NestedSweepOptions sweep_options;
        sweep_options.threads = sweep_threads;
        sweep_options.shards = options.replayShards;
        const NestedSweepResult swept =
            nestedSweep(request, packed_test, costs, sweep_options);
        for (size_t i = 0; i < num_gshare; ++i)
            result.gshare.points[i] = {swept.gshare[i].area,
                                       swept.gshare[i].result.missRate(),
                                       swept.gshare[i].name};
        for (size_t i = 0; i < num_lgc; ++i)
            result.lgc.points[i] = {swept.lgc[i].area,
                                    swept.lgc[i].result.missRate(),
                                    swept.lgc[i].name};
    }

    // Custom curves: machines were trained on the Train input only. The
    // training pass already simulated the baseline over the train trace
    // and recorded each branch's positions, so when the caller hands
    // that profile over, the custom-same replay skips its BTB pass.
    CustomReplayCounts same_counts;
    if (train_profile && train_profile->valid) {
        CustomBaselineProfile baseline;
        baseline.btbMissesTotal = train_profile->mispredicts;
        baseline.btbLookups = train_profile->lookups;
        baseline.btbHits = train_profile->hits;
        baseline.btbArea = train_profile->area;
        baseline.btbName = train_profile->name;
        baseline.btbMisses.reserve(trained.size());
        baseline.positions.reserve(trained.size());
        for (const auto &branch : trained) {
            baseline.btbMisses.push_back(branch.baselineMisses);
            baseline.positions.push_back(&branch.trainPositions);
        }
        same_counts = replayCustomMachines(machines, packed_train,
                                           baseline, sweep_threads,
                                           options.replayShards);
    } else {
        same_counts = replayCustomMachines(machines, packed_train,
                                           options.training.baseline,
                                           costs, sweep_threads,
                                           options.replayShards);
    }
    result.customSame = customSeries(trained, same_counts,
                                     packed_train.size(), "custom-same",
                                     costs);
    result.customDiff = customSeries(trained, diff_counts,
                                     packed_test.size(), "custom-diff",
                                     costs);
    return result;
}

Fig5Benchmark
runFigure5(const std::string &benchmark, const Fig5Options &options)
{
    const std::shared_ptr<const BranchTrace> train = cachedBranchTrace(
        benchmark, WorkloadInput::Train, options.branchesPerRun);
    const std::shared_ptr<const BranchTrace> test = cachedBranchTrace(
        benchmark, WorkloadInput::Test, options.branchesPerRun);

    BaselineBtbProfile profile;
    const std::vector<TrainedBranch> trained =
        trainCustomPredictors(*train, options.training, &profile);
    return evaluateFigure5(benchmark, *cachedPackedTrace(train),
                           *cachedPackedTrace(test), trained, options,
                           &profile);
}

std::vector<Fig5Benchmark>
runFigure5All(const Fig5Options &options)
{
    const std::vector<std::string> names = branchBenchmarkNames();
    std::vector<Fig5Benchmark> all(names.size());
    // One benchmark per task; the per-branch design fan-out and the
    // sweep inside each benchmark stay serial to avoid nested
    // oversubscription.
    Fig5Options per_benchmark = options;
    per_benchmark.training.threads = 1;
    per_benchmark.sweepThreads = 1;
    parallelFor(
        names.size(),
        [&](size_t i) { all[i] = runFigure5(names[i], per_benchmark); },
        options.threads);
    return all;
}

} // namespace autofsm
