#include "sim/figure5.hh"

#include <algorithm>
#include <unordered_map>

#include "bpred/btb.hh"
#include "bpred/custom.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "support/thread_pool.hh"
#include "synth/area.hh"
#include "workloads/branch_workloads.hh"

namespace autofsm
{

namespace
{

/**
 * Evaluate the whole custom curve in one pass. Custom entries are
 * independent of the BTB and of each other (they only read the global
 * outcome stream), so one simulation with all K machines live yields
 * every k-entry configuration: the k-entry design's mispredictions are
 * the baseline's, minus the savings of the first k machines.
 */
AreaMissSeries
customCurve(const std::vector<TrainedBranch> &trained,
            const BranchTrace &trace, const BtbConfig &btb_config,
            const std::string &label, const AreaCosts &costs)
{
    XScaleBtb btb(btb_config, costs);
    std::vector<PredictorFsm> machines;
    std::unordered_map<uint64_t, size_t> machine_of;
    machines.reserve(trained.size());
    for (size_t i = 0; i < trained.size(); ++i) {
        machines.emplace_back(trained[i].design.fsm);
        machine_of.emplace(trained[i].pc, i);
    }

    uint64_t btb_misses_total = 0;
    std::vector<uint64_t> btb_misses(trained.size(), 0);
    std::vector<uint64_t> fsm_misses(trained.size(), 0);

    for (const auto &record : trace) {
        const bool btb_pred = btb.predict(record.pc);
        const bool btb_wrong = btb_pred != record.taken;
        btb_misses_total += btb_wrong;

        const auto it = machine_of.find(record.pc);
        if (it != machine_of.end()) {
            btb_misses[it->second] += btb_wrong;
            const bool fsm_pred =
                machines[it->second].predict() != 0;
            fsm_misses[it->second] += fsm_pred != record.taken;
        }

        btb.update(record.pc, record.taken);
        for (auto &machine : machines)
            machine.update(record.taken ? 1 : 0);
    }
    publishBtbMetrics(btb);

    const double total =
        static_cast<double>(trace.size() ? trace.size() : 1);
    const CustomEntryConfig entry_config;

    AreaMissSeries series;
    series.label = label;
    double area = btb.area();
    uint64_t misses = btb_misses_total;
    for (size_t k = 0; k < trained.size(); ++k) {
        // Adding machine k replaces the BTB's prediction for its branch.
        misses -= btb_misses[k];
        misses += fsm_misses[k];
        area += entry_config.tagBits * costs.camBit +
            entry_config.targetBits * costs.sramBit +
            estimateFsmArea(trained[k].design.fsm, costs).area;
        series.points.push_back(
            {area, static_cast<double>(misses) / total,
             std::to_string(k + 1) + " fsm"});
    }
    return series;
}

} // anonymous namespace

Fig5Benchmark
runFigure5(const std::string &benchmark, const Fig5Options &options)
{
    const AreaCosts costs;
    Fig5Benchmark result;
    result.name = benchmark;

    const BranchTrace train = makeBranchTrace(
        benchmark, WorkloadInput::Train, options.branchesPerRun);
    const BranchTrace test = makeBranchTrace(
        benchmark, WorkloadInput::Test, options.branchesPerRun);

    // Baseline XScale point (reported on the test input).
    {
        XScaleBtb btb(options.training.baseline, costs);
        const BpredSimResult r = simulateBranchPredictor(btb, test);
        publishBtbMetrics(btb);
        result.xscale = {btb.area(), r.missRate(), btb.name()};
    }

    // gshare size sweep.
    result.gshare.label = "gshare";
    for (int log2 : options.gshareLog2) {
        GshareConfig config;
        config.log2Entries = log2;
        config.historyBits = std::min(log2, 16);
        Gshare predictor(config, costs);
        const BpredSimResult r = simulateBranchPredictor(predictor, test);
        result.gshare.points.push_back(
            {predictor.area(), r.missRate(), predictor.name()});
    }

    // LGC size sweep.
    result.lgc.label = "lgc";
    for (int log2 : options.lgcLog2) {
        LgcConfig config;
        config.log2Entries = log2;
        LocalGlobalChooser predictor(config, costs);
        const BpredSimResult r = simulateBranchPredictor(predictor, test);
        result.lgc.points.push_back(
            {predictor.area(), r.missRate(), predictor.name()});
    }

    // Custom curves: train on the Train input only.
    result.trained = trainCustomPredictors(train, options.training);
    result.customSame = customCurve(result.trained, train,
                                    options.training.baseline,
                                    "custom-same", costs);
    result.customDiff = customCurve(result.trained, test,
                                    options.training.baseline,
                                    "custom-diff", costs);
    return result;
}

std::vector<Fig5Benchmark>
runFigure5All(const Fig5Options &options)
{
    const std::vector<std::string> names = branchBenchmarkNames();
    std::vector<Fig5Benchmark> all(names.size());
    // One benchmark per task; the per-branch design fan-out inside each
    // benchmark stays serial to avoid nested oversubscription.
    Fig5Options per_benchmark = options;
    per_benchmark.training.threads = 1;
    parallelFor(
        names.size(),
        [&](size_t i) { all[i] = runFigure5(names[i], per_benchmark); },
        options.threads);
    return all;
}

} // namespace autofsm
