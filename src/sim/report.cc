#include "sim/report.hh"

#include <iomanip>
#include <ostream>

namespace autofsm
{

namespace
{

void
printSeriesHeader(std::ostream &out, const std::string &title)
{
    out << "-- " << title << " --\n";
}

} // anonymous namespace

void
printFig2(std::ostream &out, const Fig2Benchmark &benchmark)
{
    out << "== Figure 2: value prediction confidence [" << benchmark.name
        << "] ==\n";
    printSeriesHeader(out, "saturating up/down counters");
    out << std::fixed << std::setprecision(2);
    out << std::setw(34) << "config" << std::setw(12) << "accuracy"
        << std::setw(12) << "coverage" << "\n";
    for (const auto &point : benchmark.sudPoints) {
        out << std::setw(34) << point.label << std::setw(11)
            << point.accuracy * 100.0 << "%" << std::setw(11)
            << point.coverage * 100.0 << "%\n";
    }
    for (const auto &series : benchmark.fsmCurves) {
        printSeriesHeader(out, series.label);
        out << std::setw(34) << "threshold" << std::setw(12) << "accuracy"
            << std::setw(12) << "coverage" << "\n";
        for (const auto &point : series.points) {
            out << std::setw(34) << point.label << std::setw(11)
                << point.accuracy * 100.0 << "%" << std::setw(11)
                << point.coverage * 100.0 << "%\n";
        }
    }
    out << "\n";
}

void
printFig4(std::ostream &out, const Fig4Result &result)
{
    out << "== Figure 4: area vs number of states ==\n";
    out << std::setw(10) << "states" << std::setw(10) << "flops"
        << std::setw(10) << "terms" << std::setw(10) << "literals"
        << std::setw(12) << "area" << "\n";
    out << std::fixed << std::setprecision(1);
    for (const auto &sample : result.samples) {
        out << std::setw(10) << sample.states << std::setw(10)
            << sample.flops << std::setw(10) << sample.terms
            << std::setw(10) << sample.literals << std::setw(12)
            << sample.area << "\n";
    }
    out << std::setprecision(3);
    out << "linear fit: area = " << result.fit.slope << " * states + "
        << result.fit.intercept << "  (r^2 = " << result.fit.r2 << ")\n\n";
}

void
printFig5(std::ostream &out, const Fig5Benchmark &benchmark)
{
    out << "== Figure 5: misprediction rate vs estimated area ["
        << benchmark.name << "] ==\n";
    out << std::fixed << std::setprecision(2);
    out << std::setw(16) << "series" << std::setw(18) << "config"
        << std::setw(12) << "area" << std::setw(12) << "miss" << "\n";

    auto row = [&out](const std::string &series, const AreaMissPoint &p) {
        out << std::setw(16) << series << std::setw(18) << p.label
            << std::setw(12) << std::setprecision(0) << p.area
            << std::setw(11) << std::setprecision(2) << p.missRate * 100.0
            << "%\n";
    };

    row("xscale", benchmark.xscale);
    for (const auto &p : benchmark.gshare.points)
        row(benchmark.gshare.label, p);
    for (const auto &p : benchmark.lgc.points)
        row(benchmark.lgc.label, p);
    for (const auto &p : benchmark.customSame.points)
        row(benchmark.customSame.label, p);
    for (const auto &p : benchmark.customDiff.points)
        row(benchmark.customDiff.label, p);
    out << "\n";
}

} // namespace autofsm
