#include "sim/report.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/json.hh"

namespace autofsm
{

namespace
{

void
printSeriesHeader(std::ostream &out, const std::string &title)
{
    out << "-- " << title << " --\n";
}

void
jsonParetoPoints(JsonWriter &json, const std::vector<ParetoPoint> &points)
{
    json.beginArray();
    for (const auto &point : points) {
        json.beginObject();
        json.key("label").value(point.label);
        json.key("accuracy").value(point.accuracy);
        json.key("coverage").value(point.coverage);
        json.endObject();
    }
    json.endArray();
}

void
jsonAreaMissPoint(JsonWriter &json, const AreaMissPoint &point)
{
    json.beginObject();
    json.key("label").value(point.label);
    json.key("area").value(point.area);
    json.key("missRate").value(point.missRate);
    json.endObject();
}

void
jsonAreaMissSeries(JsonWriter &json, const AreaMissSeries &series)
{
    json.beginObject();
    json.key("label").value(series.label);
    json.key("points").beginArray();
    for (const auto &point : series.points)
        jsonAreaMissPoint(json, point);
    json.endArray();
    json.endObject();
}

} // anonymous namespace

std::string
Report::toText() const
{
    std::ostringstream out;
    renderText(out);
    return out.str();
}

std::string
Report::toJson() const
{
    std::ostringstream out;
    renderJson(out);
    return out.str();
}

void
Fig2Report::renderText(std::ostream &out) const
{
    const Fig2Benchmark &benchmark = data_;
    out << "== Figure 2: value prediction confidence [" << benchmark.name
        << "] ==\n";
    printSeriesHeader(out, "saturating up/down counters");
    out << std::fixed << std::setprecision(2);
    out << std::setw(34) << "config" << std::setw(12) << "accuracy"
        << std::setw(12) << "coverage" << "\n";
    for (const auto &point : benchmark.sudPoints) {
        out << std::setw(34) << point.label << std::setw(11)
            << point.accuracy * 100.0 << "%" << std::setw(11)
            << point.coverage * 100.0 << "%\n";
    }
    for (const auto &series : benchmark.fsmCurves) {
        printSeriesHeader(out, series.label);
        out << std::setw(34) << "threshold" << std::setw(12) << "accuracy"
            << std::setw(12) << "coverage" << "\n";
        for (const auto &point : series.points) {
            out << std::setw(34) << point.label << std::setw(11)
                << point.accuracy * 100.0 << "%" << std::setw(11)
                << point.coverage * 100.0 << "%\n";
        }
    }
    out << "\n";
}

void
Fig2Report::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.key("kind").value(kind());
    json.key("benchmark").value(data_.name);
    json.key("sud");
    jsonParetoPoints(json, data_.sudPoints);
    json.key("fsmCurves").beginArray();
    for (const auto &series : data_.fsmCurves) {
        json.beginObject();
        json.key("label").value(series.label);
        json.key("points");
        jsonParetoPoints(json, series.points);
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
Fig4Report::renderText(std::ostream &out) const
{
    const Fig4Result &result = data_;
    out << "== Figure 4: area vs number of states ==\n";
    out << std::setw(10) << "states" << std::setw(10) << "flops"
        << std::setw(10) << "terms" << std::setw(10) << "literals"
        << std::setw(12) << "area" << "\n";
    out << std::fixed << std::setprecision(1);
    for (const auto &sample : result.samples) {
        out << std::setw(10) << sample.states << std::setw(10)
            << sample.flops << std::setw(10) << sample.terms
            << std::setw(10) << sample.literals << std::setw(12)
            << sample.area << "\n";
    }
    out << std::setprecision(3);
    out << "linear fit: area = " << result.fit.slope << " * states + "
        << result.fit.intercept << "  (r^2 = " << result.fit.r2 << ")\n\n";
}

void
Fig4Report::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.key("kind").value(kind());
    json.key("samples").beginArray();
    for (const auto &sample : data_.samples) {
        json.beginObject();
        json.key("states").value(sample.states);
        json.key("flops").value(sample.flops);
        json.key("terms").value(sample.terms);
        json.key("literals").value(sample.literals);
        json.key("area").value(sample.area);
        json.endObject();
    }
    json.endArray();
    json.key("fit").beginObject();
    json.key("slope").value(data_.fit.slope);
    json.key("intercept").value(data_.fit.intercept);
    json.key("r2").value(data_.fit.r2);
    json.endObject();
    json.endObject();
}

void
Fig5Report::renderText(std::ostream &out) const
{
    const Fig5Benchmark &benchmark = data_;
    out << "== Figure 5: misprediction rate vs estimated area ["
        << benchmark.name << "] ==\n";
    out << std::fixed << std::setprecision(2);
    out << std::setw(16) << "series" << std::setw(18) << "config"
        << std::setw(12) << "area" << std::setw(12) << "miss" << "\n";

    auto row = [&out](const std::string &series, const AreaMissPoint &p) {
        out << std::setw(16) << series << std::setw(18) << p.label
            << std::setw(12) << std::setprecision(0) << p.area
            << std::setw(11) << std::setprecision(2) << p.missRate * 100.0
            << "%\n";
    };

    row("xscale", benchmark.xscale);
    for (const auto &p : benchmark.gshare.points)
        row(benchmark.gshare.label, p);
    for (const auto &p : benchmark.lgc.points)
        row(benchmark.lgc.label, p);
    for (const auto &p : benchmark.customSame.points)
        row(benchmark.customSame.label, p);
    for (const auto &p : benchmark.customDiff.points)
        row(benchmark.customDiff.label, p);
    out << "\n";
}

void
Fig5Report::renderJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.key("kind").value(kind());
    json.key("benchmark").value(data_.name);
    json.key("xscale");
    jsonAreaMissPoint(json, data_.xscale);
    json.key("series").beginArray();
    jsonAreaMissSeries(json, data_.gshare);
    jsonAreaMissSeries(json, data_.lgc);
    jsonAreaMissSeries(json, data_.customSame);
    jsonAreaMissSeries(json, data_.customDiff);
    json.endArray();
    // Per-branch design pipeline observations (states + stage timings)
    // for the machines behind the custom curves.
    json.key("trained").beginArray();
    for (const auto &branch : data_.trained) {
        json.beginObject();
        json.key("pc").value(branch.pc);
        json.key("baselineMisses").value(branch.baselineMisses);
        json.key("states").value(branch.design.statesFinal);
        json.key("designMillis").value(branch.trace.totalMillis());
        json.key("stages").beginArray();
        for (const auto &stage : branch.trace.stages()) {
            json.beginObject();
            json.key("stage").value(flowStageName(stage.stage));
            json.key("millis").value(stage.millis);
            json.key("metric").value(stage.metric);
            json.key("metricName").value(stage.metricName);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

void
printFig2(std::ostream &out, const Fig2Benchmark &benchmark)
{
    Fig2Report(benchmark).renderText(out);
}

void
printFig4(std::ostream &out, const Fig4Result &result)
{
    Fig4Report(result).renderText(out);
}

void
printFig5(std::ostream &out, const Fig5Benchmark &benchmark)
{
    Fig5Report(benchmark).renderText(out);
}

} // namespace autofsm
