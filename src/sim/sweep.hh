/**
 * @file
 * Single-pass sweep simulation engine.
 *
 * The Figure 5 evaluation replays the same dynamic trace once per sweep
 * point (every gshare size, every LGC size, the XScale baseline) and
 * once per custom machine. The seed path drove every replay through the
 * `BranchPredictor` virtual interface over the AoS trace; this engine
 * replaces the hot loops with:
 *
 *  - `sweepKernel<P>`: a templated replay over a PackedTrace whose
 *    predict/update calls bind statically (the concrete predictors are
 *    `final`, so the compiler devirtualizes and inlines them). The
 *    virtual API remains available as the compatibility instantiation
 *    `sweepKernel<BranchPredictor>`.
 *  - `sweepKernelBatch<P>`: every predictor of one *kind* live in a
 *    single trace pass (one trace read for a whole gshare size sweep).
 *  - `BtbKernel` / `GshareKernel` / `LgcKernel`: compact kernel-state
 *    replicas of XScaleBtb, Gshare and LocalGlobalChooser. The predictor
 *    classes keep a 20-byte SudCounter object (value plus its own copy
 *    of the config) per 2-bit counter and tally BTB lookups through
 *    atomics; the replicas store at most one byte per counter (a
 *    gshare-2^16 table shrinks from 1.25 MB to 64 KB; LGC packs its
 *    counters tighter still), fuse predict+update into one `step` over
 *    a single table access, and their bodies live in this header so
 *    the templated kernels inline them. Decision sequences, names and
 *    areas are bit-exact replicas of the classes (sweep_test proves it
 *    against the virtual path on every benchmark).
 *  - `replayCustomMachines`: the transposed custom-curve evaluation -
 *    instead of stepping every trained FSM on every record, machines are
 *    compiled into lane groups and replayed together over the packed
 *    outcome bitstream by the bit-sliced engine (sim/bitsliced.hh),
 *    which also shards long traces across workers with exact
 *    warm-up-edge replay at the shard boundaries.
 *
 * Results are bit-identical to the serial seed path; sweep_test and
 * bench_sim_sweep assert this.
 */

#ifndef AUTOFSM_SIM_SWEEP_HH
#define AUTOFSM_SIM_SWEEP_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "automata/dfa.hh"
#include "bpred/btb.hh"
#include "bpred/gshare.hh"
#include "bpred/local_global.hh"
#include "bpred/simulate.hh"
#include "sim/packed_trace.hh"
#include "support/bits.hh"
#include "synth/area.hh"

namespace autofsm
{

/** Saturating 2-bit counter step, the byte form of SudConfig::twoBit. */
inline void
bumpTwoBit(uint8_t &value, bool up)
{
    if (up) {
        if (value < 3)
            ++value;
    } else if (value > 0) {
        --value;
    }
}

/** bumpTwoBit on a 0..3 value passed by value. */
constexpr uint8_t
bumpedTwoBit(uint8_t value, bool up)
{
    if (up)
        return value < 3 ? static_cast<uint8_t>(value + 1) : value;
    return value > 0 ? static_cast<uint8_t>(value - 1) : value;
}

/**
 * Kernel-state replica of XScaleBtb: same geometry, same decision
 * sequence, same lookup/hit tallies, but plain integers instead of
 * per-predict atomics and a packed entry instead of a SudCounter.
 */
class BtbKernel final
{
  public:
    explicit BtbKernel(const BtbConfig &config = {},
                       const AreaCosts &costs = {})
        : config_(config), costs_(costs),
          entries_(static_cast<size_t>(config.entries)),
          indexMask_(static_cast<uint64_t>(config.entries - 1)),
          tagShift_(2 + ceilLog2(static_cast<uint32_t>(config.entries))),
          tagMask_(lowMask(config.tagBits))
    {}

    bool
    predict(uint64_t pc)
    {
        ++lookups_;
        const Entry &entry = entries_[indexOf(pc)];
        if (!entry.valid || entry.tag != tagOf(pc))
            return false; // BTB miss: predict not-taken
        ++hits_;
        return entry.counter >= 2;
    }

    void
    update(uint64_t pc, bool taken)
    {
        Entry &entry = entries_[indexOf(pc)];
        const uint64_t tag = tagOf(pc);
        if (entry.valid && entry.tag == tag) {
            bumpTwoBit(entry.counter, taken);
            return;
        }
        entry.valid = true;
        entry.tag = tag;
        entry.counter = taken ? 2 : 1;
    }

    /**
     * Fused predict-then-update over one shared entry load; returns
     * whether the prediction was wrong. Same decisions and tallies as
     * predict(pc) followed by update(pc, taken), but branch-free: the
     * hit/miss outcome is data-dependent and mispredicts heavily as a
     * branch, so both paths are computed and selected. Writing back
     * valid and tag unconditionally is a no-op on hits.
     */
    bool
    step(uint64_t pc, bool taken)
    {
        ++lookups_;
        Entry &entry = entries_[indexOf(pc)];
        const uint64_t tag = tagOf(pc);
        const bool hit = entry.valid & (entry.tag == tag);
        hits_ += static_cast<uint64_t>(hit);
        const bool prediction = hit & (entry.counter >= 2);
        entry.counter = hit ? bumpedTwoBit(entry.counter, taken)
                            : static_cast<uint8_t>(taken ? 2 : 1);
        entry.valid = true;
        entry.tag = tag;
        return prediction != taken;
    }

    double
    area() const
    {
        return tableArea(
            static_cast<double>(config_.tagBits + config_.targetBits + 2) *
                config_.entries,
            costs_);
    }

    std::string
    name() const
    {
        return "xscale-btb" + std::to_string(config_.entries);
    }

    uint64_t lookups() const { return lookups_; }
    uint64_t hits() const { return hits_; }

    /** Hint the entry a future record at @p pc will touch. */
    void
    prefetch(uint64_t pc) const
    {
        __builtin_prefetch(&entries_[indexOf(pc)], 1);
    }

    /** Export the tallies like publishBtbMetrics(const XScaleBtb &). */
    void publishMetrics() const;

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint8_t counter = 1;
        bool valid = false;
    };

    size_t
    indexOf(uint64_t pc) const
    {
        return static_cast<size_t>((pc >> 2) & indexMask_);
    }

    uint64_t tagOf(uint64_t pc) const { return (pc >> tagShift_) & tagMask_; }

    BtbConfig config_;
    AreaCosts costs_;
    std::vector<Entry> entries_;
    uint64_t indexMask_;
    int tagShift_;
    uint64_t tagMask_;
    uint64_t lookups_ = 0;
    uint64_t hits_ = 0;
};

/** Kernel-state replica of Gshare: one byte per 2-bit counter. */
namespace detail
{

/**
 * Fused 2-bit counter step: entry [(taken << 2) | counter] holds the
 * bumped counter in bits 0-1 and the pre-bump prediction (counter >= 2)
 * in bit 4, so a predict-then-train pair is one 8-byte table load
 * instead of a compare plus a saturating bump.
 */
constexpr std::array<uint8_t, 8>
makeCounterStepTable()
{
    std::array<uint8_t, 8> table{};
    for (unsigned t = 0; t < 2; ++t) {
        for (unsigned c = 0; c < 4; ++c) {
            const auto counter = static_cast<uint8_t>(c);
            table[(t << 2) | c] = static_cast<uint8_t>(
                (static_cast<unsigned>(counter >= 2) << 4) |
                bumpedTwoBit(counter, t != 0));
        }
    }
    return table;
}

inline constexpr std::array<uint8_t, 8> kCounterStep =
    makeCounterStepTable();

} // namespace detail

class GshareKernel final
{
  public:
    explicit GshareKernel(const GshareConfig &config = {},
                          const AreaCosts &costs = {})
        : config_(config), costs_(costs),
          table_(size_t{1} << config.log2Entries, 1),
          indexMask_((uint64_t{1} << config.log2Entries) - 1),
          historyMask_((uint64_t{1} << config.historyBits) - 1)
    {}

    bool predict(uint64_t pc) const { return table_[indexOf(pc)] >= 2; }

    void
    update(uint64_t pc, bool taken)
    {
        bumpTwoBit(table_[indexOf(pc)], taken);
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

    /**
     * Fused predict-then-update: one shared counter load, stepped
     * through detail::kCounterStep.
     */
    bool
    step(uint64_t pc, bool taken)
    {
        uint8_t &counter = table_[indexOf(pc)];
        const uint8_t stepped = detail::kCounterStep
            [(static_cast<size_t>(taken) << 2) | counter];
        counter = stepped & 3;
        history_ = (history_ << 1) | (taken ? 1 : 0);
        return ((stepped & 0x10) != 0) != taken;
    }

    double
    area() const
    {
        return tableArea(2.0 * static_cast<double>(table_.size()) +
                             config_.btbBits,
                         costs_);
    }

    std::string
    name() const
    {
        return "gshare-2^" + std::to_string(config_.log2Entries);
    }

  private:
    size_t
    indexOf(uint64_t pc) const
    {
        return static_cast<size_t>(((pc >> 2) ^ (history_ & historyMask_)) &
                                   indexMask_);
    }

    GshareConfig config_;
    AreaCosts costs_;
    std::vector<uint8_t> table_;
    uint64_t indexMask_;
    uint64_t historyMask_;
    uint64_t history_ = 0;
};

/**
 * Kernel-state replica of LocalGlobalChooser. The global counter and
 * the chooser counter are always read and trained at the same index
 * (the global history), so they share one byte (global in bits 0-1,
 * chooser in bits 2-3): one load and one store where the class does
 * four. Local pattern counters pack four per byte.
 */
namespace detail
{

/**
 * The LGC global-counter/chooser pair is a 4-bit automaton whose next
 * state and prediction depend only on (state, outcome, local component
 * prediction) - 64 combinations in total. Precomputing them turns the
 * hot-loop's bump-and-select arithmetic into one load from a 64-byte
 * (single cache line) table. Entry layout: bits 0-3 next packed state
 * (global counter in 0-1, chooser in 2-3), bit 4 the prediction made
 * before training. Semantics match the scalar code exactly: the
 * chooser trains only when the components disagree, towards whichever
 * was right.
 */
constexpr std::array<uint8_t, 64>
makeLgcGcStepTable()
{
    std::array<uint8_t, 64> table{};
    for (unsigned gc = 0; gc < 16; ++gc) {
        for (unsigned t = 0; t < 2; ++t) {
            for (unsigned lp = 0; lp < 2; ++lp) {
                const bool taken = t != 0;
                const bool local_pred = lp != 0;
                uint8_t global_counter = gc & 3;
                uint8_t chooser = (gc >> 2) & 3;
                const bool global_pred = global_counter >= 2;
                const bool prediction =
                    chooser >= 2 ? global_pred : local_pred;
                if (local_pred != global_pred)
                    chooser = bumpedTwoBit(chooser, global_pred == taken);
                global_counter = bumpedTwoBit(global_counter, taken);
                table[(gc << 2) | (t << 1) | lp] = static_cast<uint8_t>(
                    (static_cast<unsigned>(prediction) << 4) |
                    (chooser << 2) | global_counter);
            }
        }
    }
    return table;
}

inline constexpr std::array<uint8_t, 64> kLgcGcStep = makeLgcGcStepTable();

} // namespace detail

class LgcKernel final
{
  public:
    explicit LgcKernel(const LgcConfig &config = {},
                       const AreaCosts &costs = {})
        : config_(config), costs_(costs),
          localHistory_(size_t{1} << config.log2Entries, 0),
          localTable_(((size_t{1} << config.log2Entries) + 3) / 4, 0x55),
          globalChooser_(size_t{1} << config.log2Entries, 0x05),
          mask_((uint64_t{1} << config.log2Entries) - 1)
    {
        // Local histories are log2Entries bits (LgcConfig ties history
        // length to table size), so uint16 entries are lossless for any
        // geometry this replica supports.
        if (config.log2Entries > 16)
            throw std::length_error(
                "LgcKernel supports log2Entries <= 16");
    }

    bool
    predict(uint64_t pc) const
    {
        const uint8_t gc = globalChooser_[globalIndex()];
        return ((gc >> 2) & 3) >= 2 ? (gc & 3) >= 2 : localPredict(pc);
    }

    void
    update(uint64_t pc, bool taken)
    {
        step(pc, taken);
    }

    /**
     * Fused predict-then-update: the component indices and their
     * counters are loaded once instead of once for the prediction and
     * again for the training, and the whole global/chooser decision -
     * select, train-on-disagreement, bump - collapses to one lookup in
     * detail::kLgcGcStep. Decision order matches predict+update.
     */
    bool
    step(uint64_t pc, bool taken)
    {
        const size_t pc_idx = pcIndex(pc);
        const size_t global_idx = globalIndex();
        const uint64_t local_hist = localHistory_[pc_idx] & mask_;
        const size_t local_idx = static_cast<size_t>(local_hist);

        uint8_t &local_byte = localTable_[local_idx >> 2];
        const unsigned local_shift = (local_idx & 3) * 2;
        const uint8_t local_counter = (local_byte >> local_shift) & 3;
        const bool local_pred = local_counter >= 2;

        const uint8_t gc_byte = globalChooser_[global_idx];
        const uint8_t stepped = detail::kLgcGcStep
            [(static_cast<size_t>(gc_byte) << 2) |
             (static_cast<size_t>(taken) << 1) |
             static_cast<size_t>(local_pred)];
        globalChooser_[global_idx] = stepped & 0xf;
        const bool prediction = (stepped & 0x10) != 0;

        local_byte = static_cast<uint8_t>(
            (local_byte & ~(3u << local_shift)) |
            (static_cast<unsigned>(bumpedTwoBit(local_counter, taken))
             << local_shift));

        localHistory_[pc_idx] = static_cast<uint16_t>(
            ((local_hist << 1) | (taken ? 1 : 0)) & mask_);
        history_ = (history_ << 1) | (taken ? 1 : 0);
        return prediction != taken;
    }

    /**
     * Hint the local history a future record at @p pc will touch - the
     * head of the step's dependent load chain (history, then pattern
     * counter). The history-indexed tables can't be prefetched: their
     * indices depend on outcomes not yet consumed.
     */
    void
    prefetch(uint64_t pc) const
    {
        __builtin_prefetch(&localHistory_[pcIndex(pc)], 1);
    }

    double
    area() const
    {
        const double n =
            static_cast<double>(uint64_t{1} << config_.log2Entries);
        const double bits =
            n * config_.log2Entries + 3.0 * 2.0 * n + config_.btbBits;
        return tableArea(bits, costs_);
    }

    std::string
    name() const
    {
        return "lgc-2^" + std::to_string(config_.log2Entries);
    }

  private:
    size_t
    pcIndex(uint64_t pc) const
    {
        return static_cast<size_t>((pc >> 2) & mask_);
    }

    size_t globalIndex() const { return static_cast<size_t>(history_ & mask_); }

    bool
    localPredict(uint64_t pc) const
    {
        const auto hist =
            static_cast<size_t>(localHistory_[pcIndex(pc)] & mask_);
        return ((localTable_[hist >> 2] >> ((hist & 3) * 2)) & 3) >= 2;
    }

    LgcConfig config_;
    AreaCosts costs_;
    std::vector<uint16_t> localHistory_;
    /** Local pattern counters, packed four per byte. */
    std::vector<uint8_t> localTable_;
    /** Byte i: global counter (bits 0-1), chooser (bits 2-3). */
    std::vector<uint8_t> globalChooser_;
    uint64_t mask_;
    uint64_t history_ = 0;
};

namespace detail
{

/**
 * Detects a fused `bool step(pc, taken)` on a predictor type. The
 * kernels prefer it over predict+update so shared table loads happen
 * once; predictors without one (including the virtual BranchPredictor
 * compatibility instantiation) take the two-call path.
 */
template <class P, class = void>
struct HasFusedStep : std::false_type
{};

template <class P>
struct HasFusedStep<P, std::void_t<decltype(static_cast<bool>(
                           std::declval<P &>().step(uint64_t{}, true)))>>
    : std::true_type
{};

/** Detects a `prefetch(pc)` hint for pc-indexed predictor state. */
template <class P, class = void>
struct HasPrefetch : std::false_type
{};

template <class P>
struct HasPrefetch<
    P, std::void_t<decltype(std::declval<const P &>().prefetch(uint64_t{}))>>
    : std::true_type
{};

/** How many records ahead the kernels hint pc-indexed state. */
inline constexpr size_t kPrefetchDistance = 16;

} // namespace detail

/**
 * Which replay engine serviced a timed sweep point; becomes the
 * `engine` label on autofsm_sweep_point_millis so the obs layer can
 * attribute sweep time per path.
 */
enum class SweepEngine
{
    Serial, ///< one predictor per trace pass (sweepKernel)
    Batch,  ///< one predictor kind per pass (sweepKernelBatch, replays)
    Nested, ///< the nested-index engine (sim/nested_sweep.hh)
};

/** Record one finished sweep point in autofsm_sweep_point_millis. */
void observeSweepPointMillis(double millis,
                             SweepEngine engine = SweepEngine::Serial);

/**
 * Record in the autofsm_sweep_points_per_pass gauge how many sweep
 * points the most recent fused pass serviced (1 for a serial replay).
 */
void observeSweepPointsPerPass(size_t points);

/**
 * RAII timer feeding the per-sweep-point kernel-time histogram. Inert
 * when telemetry is disabled or compiled out.
 */
class SweepPointTimer
{
  public:
    explicit SweepPointTimer(SweepEngine engine = SweepEngine::Serial);
    ~SweepPointTimer();

    SweepPointTimer(const SweepPointTimer &) = delete;
    SweepPointTimer &operator=(const SweepPointTimer &) = delete;

  private:
    std::chrono::steady_clock::time_point start_;
    SweepEngine engine_ = SweepEngine::Serial;
    bool active_ = false;
};

/**
 * Replay @p trace through @p predictor (predict, then update, per
 * record), without publishing telemetry. Instantiated with a concrete
 * `final` predictor type the calls devirtualize; instantiated with
 * `BranchPredictor` it is the compatibility wrapper over the virtual
 * API. Identical decision sequence to simulateBranchPredictor.
 */
template <class P>
BpredSimResult
sweepKernelRaw(P &predictor, const PackedTrace &trace)
{
    BpredSimResult result;
    const size_t n = trace.size();
    result.branches = n;
    const uint64_t *pcs = trace.pcs().data();
    const uint64_t *words = trace.takenWords().data();
    uint64_t mispredicts = 0;
    for (size_t i = 0; i < n; ++i) {
        const bool taken = (words[i >> 6] >> (i & 63)) & 1ULL;
        if constexpr (detail::HasPrefetch<P>::value) {
            if (i + detail::kPrefetchDistance < n)
                predictor.prefetch(pcs[i + detail::kPrefetchDistance]);
        }
        if constexpr (detail::HasFusedStep<P>::value) {
            mispredicts +=
                static_cast<uint64_t>(predictor.step(pcs[i], taken));
        } else {
            mispredicts +=
                static_cast<uint64_t>(predictor.predict(pcs[i]) != taken);
            predictor.update(pcs[i], taken);
        }
    }
    result.mispredicts = mispredicts;
    return result;
}

/** sweepKernelRaw plus the per-run telemetry simulateBranchPredictor
 *  publishes, so engine and seed paths export the same counters. */
template <class P>
BpredSimResult
sweepKernel(P &predictor, const PackedTrace &trace)
{
    const BpredSimResult result = sweepKernelRaw(predictor, trace);
    publishBpredRun(predictor.name(), result);
    return result;
}

/**
 * Evaluate every predictor of one kind in a single trace pass: the
 * trace is read once while all sweep points step side by side. Each
 * predictor sees exactly the decision sequence it would see alone
 * (they share nothing), so results match per-point sweepKernel runs
 * bit for bit.
 */
template <class P>
std::vector<BpredSimResult>
sweepKernelBatch(std::vector<P> &predictors, const PackedTrace &trace)
{
    const size_t n = trace.size();
    const size_t k = predictors.size();
    std::vector<BpredSimResult> results(k);
    for (auto &result : results)
        result.branches = n;
    const uint64_t *pcs = trace.pcs().data();
    const uint64_t *words = trace.takenWords().data();
    for (size_t i = 0; i < n; ++i) {
        const bool taken = (words[i >> 6] >> (i & 63)) & 1ULL;
        const uint64_t pc = pcs[i];
        if constexpr (detail::HasPrefetch<P>::value) {
            if (i + detail::kPrefetchDistance < n) {
                const uint64_t ahead = pcs[i + detail::kPrefetchDistance];
                for (size_t j = 0; j < k; ++j)
                    predictors[j].prefetch(ahead);
            }
        }
        for (size_t j = 0; j < k; ++j) {
            if constexpr (detail::HasFusedStep<P>::value) {
                results[j].mispredicts += static_cast<uint64_t>(
                    predictors[j].step(pc, taken));
            } else {
                results[j].mispredicts += static_cast<uint64_t>(
                    predictors[j].predict(pc) != taken);
                predictors[j].update(pc, taken);
            }
        }
    }
    for (size_t j = 0; j < k; ++j)
        publishBpredRun(predictors[j].name(), results[j]);
    observeSweepPointsPerPass(k);
    return results;
}

/** One trained machine to replay: its branch and its final FSM. */
struct CustomSweepMachine
{
    uint64_t pc = 0;
    const Dfa *fsm = nullptr;
};

/** Counts feeding a custom area/miss curve (see replayCustomMachines). */
struct CustomReplayCounts
{
    /** Baseline BTB mispredictions over the whole trace. */
    uint64_t btbMissesTotal = 0;
    /** Baseline mispredictions at machine k's branch. */
    std::vector<uint64_t> btbMisses;
    /** Machine k's mispredictions at its branch. */
    std::vector<uint64_t> fsmMisses;
    /** Area of the baseline BTB the counts were taken against. */
    double btbArea = 0.0;
    /** The baseline BTB's name and lookup/hit tallies over the pass.
     *  When the baseline config is also a sweep point over the same
     *  trace, callers derive that point from these instead of running
     *  the BTB chain a second time. */
    std::string btbName;
    uint64_t btbLookups = 0;
    uint64_t btbHits = 0;
};

/**
 * Transposed custom-curve evaluation. One serial baseline pass drives
 * the BTB (a single stateful chain) and records, per machine, where its
 * branch executes and how often the baseline missed it; the machines
 * then replay together over the packed outcome bitstream through the
 * bit-sliced engine (up to 64 per word-op, trace sharded across
 * @p threads workers; @p shards 0 picks a shard count automatically,
 * any value is tally-identical).
 *
 * Counts are bit-identical to the seed loop that stepped every machine
 * on every record.
 */
CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace, const BtbConfig &btb_config,
                     const AreaCosts &costs, unsigned threads = 0,
                     size_t shards = 0);

/**
 * Baseline-pass artifacts recorded by an earlier profiling stage over
 * the same trace and BTB config (e.g. trainCustomPredictors on the
 * training trace), letting replayCustomMachines skip the serial BTB
 * chain entirely. positions[k] must list machine k's branch positions
 * in trace order; btbMisses[k] its baseline mispredictions there.
 */
struct CustomBaselineProfile
{
    uint64_t btbMissesTotal = 0;
    uint64_t btbLookups = 0;
    uint64_t btbHits = 0;
    double btbArea = 0.0;
    std::string btbName;
    std::vector<uint64_t> btbMisses;
    std::vector<const std::vector<uint32_t> *> positions;
};

/**
 * replayCustomMachines with the baseline pass replaced by recorded
 * artifacts: only the per-machine FSM replays run. Counts are identical
 * to the pass-driven overload because branch positions and baseline
 * misses are functions of the trace and BTB config alone; the BTB
 * telemetry the skipped pass would have published is exported from the
 * recorded tallies.
 */
CustomReplayCounts
replayCustomMachines(const std::vector<CustomSweepMachine> &machines,
                     const PackedTrace &trace,
                     const CustomBaselineProfile &baseline,
                     unsigned threads = 0, size_t shards = 0);

} // namespace autofsm

#endif // AUTOFSM_SIM_SWEEP_HH
