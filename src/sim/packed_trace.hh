/**
 * @file
 * Structure-of-arrays form of a BranchTrace for sweep simulation.
 *
 * The AoS BranchTrace (16 bytes per record after padding) is what the
 * workload models produce and what single-run tooling consumes; the
 * sweep engine replays the same trace many times (once per sweep point,
 * once per custom machine), so it converts once to a packed layout:
 * a contiguous pc array plus outcomes packed 64 per machine word. A
 * full 400k-branch trace shrinks from ~6.4 MB to ~3.3 MB and the
 * outcome stream alone - all a custom FSM replay needs - to ~50 KB.
 */

#ifndef AUTOFSM_SIM_PACKED_TRACE_HH
#define AUTOFSM_SIM_PACKED_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "store/store.hh"
#include "trace/branch_trace.hh"

namespace autofsm
{

/**
 * Immutable SoA view of one dynamic branch trace.
 *
 * The arrays live behind a shared owner, so the view is cheap to copy
 * and can borrow storage it did not build: packing a BranchTrace
 * allocates fresh arrays, while the store::TraceBlob constructor wraps
 * an mmap'd container file in place — a disk load is zero-copy.
 */
class PackedTrace
{
  public:
    PackedTrace() = default;
    explicit PackedTrace(const BranchTrace &trace);

    /**
     * Borrow a stored trace's sections without copying. @p blob must be
     * internally consistent (the store validates before handing one
     * out); its owner keeps the mapping alive for this view's lifetime.
     */
    explicit PackedTrace(const store::TraceBlob &blob);

    size_t size() const { return pcs_.size(); }
    bool empty() const { return pcs_.empty(); }

    uint64_t pc(size_t i) const { return pcs_[i]; }

    /** Outcome of record @p i (true = taken). */
    bool
    taken(size_t i) const
    {
        return (taken_[i >> 6] >> (i & 63)) & 1ULL;
    }

    /** The contiguous pc array (size() entries). */
    std::span<const uint64_t> pcs() const { return pcs_; }

    /**
     * The outcome bitvector: bit (i & 63) of word (i >> 6) is record
     * i's direction. Trailing bits of the last word are zero.
     */
    std::span<const uint64_t> takenWords() const { return taken_; }

  private:
    /** Freshly packed arrays (the BranchTrace-conversion path). */
    struct Storage
    {
        std::vector<uint64_t> pcs;
        std::vector<uint64_t> taken;
    };

    std::span<const uint64_t> pcs_;
    std::span<const uint64_t> taken_;
    /** Whatever keeps the spans alive (Storage or a store mapping). */
    std::shared_ptr<const void> owner_;
};

/**
 * Process-wide memo of packed conversions, keyed by trace identity. The
 * returned packing of @p trace is shared by every caller holding the
 * same underlying BranchTrace (in practice: traces handed out by
 * cachedBranchTrace), so a trace replayed by many experiments in one
 * process is converted once. Entries pin their source trace, which
 * keeps the pointer key unambiguous for the life of the cache.
 * Thread-safe; concurrent callers for one trace share a single build.
 *
 * The memo is capped (setPackedTraceCacheCapacity): past the cap the
 * least-recently-used completed packing (and its trace pin) is
 * dropped, counted in autofsm_tracecache_evictions_total — the counter
 * shared with workloads/trace_cache.hh. Outstanding shared_ptrs stay
 * valid; in-flight packings are never evicted.
 */
std::shared_ptr<const PackedTrace>
cachedPackedTrace(const std::shared_ptr<const BranchTrace> &trace);

/** Point-in-time tallies of the packing memo. */
struct PackedTraceCacheStats
{
    size_t entries = 0;
    /** Completed packings dropped by the LRU cap. */
    uint64_t evictions = 0;
    /** The current cap (entries; 0 = unlimited). */
    size_t capacity = 0;
};

/** Current memo tallies. */
PackedTraceCacheStats packedTraceCacheStats();

/**
 * Cap the memo at @p capacity packings (0 = unlimited). Lowering the
 * cap evicts LRU completed entries immediately. Returns the previous
 * cap; the default is 32.
 */
size_t setPackedTraceCacheCapacity(size_t capacity);

/** Drop every memoized packing (and the trace pins). */
void clearPackedTraceCache();

} // namespace autofsm

#endif // AUTOFSM_SIM_PACKED_TRACE_HH
