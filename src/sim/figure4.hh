/**
 * @file
 * Driver for the Figure 4 experiment: implementation area vs state
 * count over a random sample of the custom FSM predictors generated
 * across all branch benchmarks, plus the linear fit the paper reuses
 * for all later area numbers.
 */

#ifndef AUTOFSM_SIM_FIGURE4_HH
#define AUTOFSM_SIM_FIGURE4_HH

#include <vector>

#include "support/stats.hh"
#include "synth/area.hh"

namespace autofsm
{

/** Figure 4 data: the sampled machines and the fitted trend line. */
struct Fig4Result
{
    std::vector<AreaEstimate> samples;
    LineFit fit;
};

/** Experiment knobs. */
struct Fig4Options
{
    /** Dynamic branches per training run. */
    size_t branchesPerRun = 400000;
    /** FSMs trained per benchmark (all are candidates for sampling). */
    int fsmsPerBenchmark = 12;
    /**
     * Fraction of generated machines to synthesize. The paper samples
     * 10% of a large population; with our smaller population the
     * default keeps every machine.
     */
    double sampleFraction = 1.0;
    /** Sampling seed. */
    uint64_t seed = 0xF16;
    /** Global history length for training (paper: 9). */
    int historyLength = 9;
    /**
     * Worker threads for the per-benchmark fan-out (0 = one per hardware
     * core). Each benchmark samples from its own seed-derived RNG stream,
     * so results are deterministic for any thread count.
     */
    unsigned threads = 0;
};

/**
 * Train custom FSMs for every branch benchmark, sample them, and
 * estimate each sampled machine's area with the synthesis cost model.
 */
Fig4Result runFigure4(const Fig4Options &options = {});

} // namespace autofsm

#endif // AUTOFSM_SIM_FIGURE4_HH
