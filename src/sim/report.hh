/**
 * @file
 * Plain-text reporting of the experiment results: fixed-width tables
 * whose rows/series mirror the paper's figures, consumed by the bench
 * binaries and examples.
 */

#ifndef AUTOFSM_SIM_REPORT_HH
#define AUTOFSM_SIM_REPORT_HH

#include <iosfwd>

#include "sim/figure2.hh"
#include "sim/figure4.hh"
#include "sim/figure5.hh"

namespace autofsm
{

/** Print one Figure 2 panel (accuracy/coverage table). */
void printFig2(std::ostream &out, const Fig2Benchmark &benchmark);

/** Print the Figure 4 scatter and fitted line. */
void printFig4(std::ostream &out, const Fig4Result &result);

/** Print one Figure 5 panel (area / miss-rate series). */
void printFig5(std::ostream &out, const Fig5Benchmark &benchmark);

} // namespace autofsm

#endif // AUTOFSM_SIM_REPORT_HH
