/**
 * @file
 * Reporting of the experiment results.
 *
 * A `Report` wraps one figure's data and renders it two ways: the
 * historical fixed-width text tables (renderText) and a machine-diffable
 * JSON document (renderJson / toJson), so bench output can be consumed by
 * scripts and compared across runs. The legacy `printFig2/4/5` free
 * functions remain as one-release compatibility wrappers over the text
 * renderer.
 */

#ifndef AUTOFSM_SIM_REPORT_HH
#define AUTOFSM_SIM_REPORT_HH

#include <iosfwd>
#include <string>
#include <utility>

#include "sim/figure2.hh"
#include "sim/figure4.hh"
#include "sim/figure5.hh"

namespace autofsm
{

/** Dual-format (text + JSON) renderer of one experiment result. */
class Report
{
  public:
    virtual ~Report() = default;

    /** Short machine-readable identifier, e.g. "figure5". */
    virtual std::string kind() const = 0;

    /** The historical fixed-width table rendering. */
    virtual void renderText(std::ostream &out) const = 0;

    /** One self-contained JSON object describing the result. */
    virtual void renderJson(std::ostream &out) const = 0;

    /** renderText into a string. */
    std::string toText() const;

    /** renderJson into a string. */
    std::string toJson() const;
};

/** Figure 2 (accuracy/coverage) report for one benchmark. */
class Fig2Report final : public Report
{
  public:
    explicit Fig2Report(Fig2Benchmark data) : data_(std::move(data)) {}

    std::string kind() const override { return "figure2"; }
    void renderText(std::ostream &out) const override;
    void renderJson(std::ostream &out) const override;

    const Fig2Benchmark &data() const { return data_; }

  private:
    Fig2Benchmark data_;
};

/** Figure 4 (area vs states scatter + fit) report. */
class Fig4Report final : public Report
{
  public:
    explicit Fig4Report(Fig4Result data) : data_(std::move(data)) {}

    std::string kind() const override { return "figure4"; }
    void renderText(std::ostream &out) const override;
    void renderJson(std::ostream &out) const override;

    const Fig4Result &data() const { return data_; }

  private:
    Fig4Result data_;
};

/** Figure 5 (miss rate vs area) report for one benchmark. */
class Fig5Report final : public Report
{
  public:
    explicit Fig5Report(Fig5Benchmark data) : data_(std::move(data)) {}

    std::string kind() const override { return "figure5"; }
    void renderText(std::ostream &out) const override;
    void renderJson(std::ostream &out) const override;

    const Fig5Benchmark &data() const { return data_; }

  private:
    Fig5Benchmark data_;
};

/** @name Legacy printers (deprecated one-release wrappers).
 *  Equivalent to FigNReport(benchmark).renderText(out). */
/// @{
void printFig2(std::ostream &out, const Fig2Benchmark &benchmark);
void printFig4(std::ostream &out, const Fig4Result &result);
void printFig5(std::ostream &out, const Fig5Benchmark &benchmark);
/// @}

} // namespace autofsm

#endif // AUTOFSM_SIM_REPORT_HH
