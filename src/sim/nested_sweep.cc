#include "sim/nested_sweep.hh"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "sim/sweep.hh"
#include "support/thread_pool.hh"

#if !defined(AUTOFSM_NO_AVX2) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define AUTOFSM_NESTED_AVX2 1
#include <immintrin.h>
#endif

namespace autofsm
{

namespace
{

/** Residue classes are derived from at most this many low index bits,
 *  so the residue lookup table stays a small always-resident array. */
constexpr int kMaxClassBits = 16;

/** Payload words carry the shared index in bits 0-30 and the branch
 *  outcome in bit 31, so class tasks never re-touch the trace. */
constexpr uint32_t kPayloadIndexMask = 0x7fffffffu;
constexpr int kMaxNestedLog2 = 30;

uint64_t
lowMask64(int n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** History bits that actually reach the index (the index mask drops
 *  the rest), matching GshareKernel::indexOf. */
int
effectiveHistoryBits(const GshareConfig &config)
{
    return std::min(config.historyBits, config.log2Entries);
}

bool
isPowerOfTwo(int value)
{
    return value > 0 && (value & (value - 1)) == 0;
}

/**
 * Branchless kernel-state replica of LgcKernel::step: identical loads,
 * stores and decision order, but the local pattern counter bumps
 * through detail::kCounterStep instead of compare-branches. LGC is the
 * one family the nested engine cannot transpose (pattern counters are
 * indexed by history *values* shared across pc classes), so its win is
 * removing the data-dependent branches that dominate the batch path.
 */
struct NestedLgcState
{
    std::vector<uint16_t> localHistory;
    std::vector<uint8_t> localTable;
    std::vector<uint8_t> globalChooser;
    uint64_t mask;
    uint64_t history = 0;
    uint64_t mispredicts = 0;

    explicit NestedLgcState(int log2_entries)
        : localHistory(size_t{1} << log2_entries, 0),
          localTable(((size_t{1} << log2_entries) + 3) / 4, 0x55),
          globalChooser(size_t{1} << log2_entries, 0x05),
          mask((uint64_t{1} << log2_entries) - 1)
    {}

    inline void
    step(uint64_t pc, size_t taken)
    {
        const auto pc_idx = static_cast<size_t>((pc >> 2) & mask);
        const auto global_idx = static_cast<size_t>(history & mask);
        const uint64_t local_hist = localHistory[pc_idx] & mask;
        const auto local_idx = static_cast<size_t>(local_hist);

        uint8_t &local_byte = localTable[local_idx >> 2];
        const unsigned local_shift = (local_idx & 3) * 2;
        const uint8_t local_counter = (local_byte >> local_shift) & 3;
        const size_t local_pred = local_counter >> 1;

        const uint8_t gc_byte = globalChooser[global_idx];
        const uint8_t stepped = detail::kLgcGcStep
            [(static_cast<size_t>(gc_byte) << 2) | (taken << 1) |
             local_pred];
        globalChooser[global_idx] = stepped & 0xf;

        const uint8_t bumped =
            detail::kCounterStep[(taken << 2) | local_counter] & 3;
        local_byte = static_cast<uint8_t>(
            (local_byte & ~(3u << local_shift)) |
            (static_cast<unsigned>(bumped) << local_shift));

        localHistory[pc_idx] =
            static_cast<uint16_t>(((local_hist << 1) | taken) & mask);
        history = (history << 1) | taken;
        mispredicts += ((stepped >> 4) & 1) ^ taken;
    }
};

/**
 * One residue class of the gshare counter stage, scalar: every config's
 * counter is the shared index masked into its own byte plane, stepped
 * through detail::kCounterStep exactly like GshareKernel::step.
 */
void
runGshareClassScalar(const uint32_t *payloads, size_t count,
                     const uint32_t *masks, const uint32_t *offsets,
                     size_t config_count, uint8_t *planes,
                     uint64_t *tallies)
{
    for (size_t p = 0; p < count; ++p) {
        const uint32_t payload = payloads[p];
        const uint32_t f = payload & kPayloadIndexMask;
        const size_t taken = payload >> 31;
        for (size_t j = 0; j < config_count; ++j) {
            uint8_t &counter = planes[offsets[j] + (f & masks[j])];
            const uint8_t stepped =
                detail::kCounterStep[(taken << 2) | counter];
            counter = stepped & 3;
            tallies[j] += ((stepped >> 4) & 1) ^ taken;
        }
    }
}

#if AUTOFSM_NESTED_AVX2

/**
 * AVX2 form of runGshareClassScalar: up to eight configs' counters per
 * branch come back in one vpgatherdd over the concatenated byte planes
 * (scale 1; lanes read 4 bytes, only the low byte is the counter), the
 * predict/bump pair is computed branch-free in epi32 lanes, and the
 * write-back is one byte store per live lane. Lane accumulators are
 * 32-bit, which the engine guarantees cannot overflow (it refuses
 * traces of 2^31 records or more). Bit-identical to the scalar loop.
 */
__attribute__((target("avx2"))) void
runGshareClassAvx2(const uint32_t *payloads, size_t count,
                   const uint32_t *masks, const uint32_t *offsets,
                   size_t config_count, uint8_t *planes, uint64_t *tallies)
{
    for (size_t group = 0; group < config_count; group += 8) {
        const size_t lanes = std::min<size_t>(8, config_count - group);
        alignas(32) uint32_t mask_arr[8] = {};
        alignas(32) uint32_t off_arr[8] = {};
        alignas(32) int32_t live_arr[8] = {};
        for (size_t l = 0; l < lanes; ++l) {
            mask_arr[l] = masks[group + l];
            off_arr[l] = offsets[group + l];
            live_arr[l] = -1;
        }
        const __m256i vmask =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(mask_arr));
        const __m256i voff =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(off_arr));
        const __m256i vlive =
            _mm256_load_si256(reinterpret_cast<const __m256i *>(live_arr));
        const __m256i vzero = _mm256_setzero_si256();
        const __m256i vone = _mm256_set1_epi32(1);
        const __m256i vthree = _mm256_set1_epi32(3);
        __m256i vacc = vzero;
        alignas(32) uint32_t idx_arr[8];
        alignas(32) uint32_t cnt_arr[8];
        for (size_t p = 0; p < count; ++p) {
            const uint32_t payload = payloads[p];
            const auto taken = static_cast<int>(payload >> 31);
            const __m256i vf = _mm256_set1_epi32(
                static_cast<int>(payload & kPayloadIndexMask));
            const __m256i vidx =
                _mm256_add_epi32(_mm256_and_si256(vf, vmask), voff);
            const __m256i raw = _mm256_i32gather_epi32(
                reinterpret_cast<const int *>(planes), vidx, 1);
            const __m256i cnt = _mm256_and_si256(raw, vthree);
            const __m256i pred =
                _mm256_and_si256(_mm256_srli_epi32(cnt, 1), vone);
            const __m256i vtaken = _mm256_set1_epi32(taken);
            vacc = _mm256_add_epi32(
                vacc,
                _mm256_and_si256(_mm256_xor_si256(pred, vtaken), vlive));
            // inc lane = -1 iff taken && cnt < 3; dec lane = -1 iff
            // !taken && cnt > 0; next = cnt - inc + dec saturates both
            // directions without a branch.
            const __m256i inc = _mm256_and_si256(
                _mm256_cmpgt_epi32(vthree, cnt),
                _mm256_sub_epi32(vzero, vtaken));
            const __m256i dec = _mm256_and_si256(
                _mm256_cmpgt_epi32(cnt, vzero),
                _mm256_sub_epi32(vtaken, vone));
            const __m256i next =
                _mm256_add_epi32(_mm256_sub_epi32(cnt, inc), dec);
            _mm256_store_si256(reinterpret_cast<__m256i *>(idx_arr), vidx);
            _mm256_store_si256(reinterpret_cast<__m256i *>(cnt_arr), next);
            for (size_t l = 0; l < lanes; ++l)
                planes[idx_arr[l]] = static_cast<uint8_t>(cnt_arr[l]);
        }
        alignas(32) uint32_t acc_arr[8];
        _mm256_store_si256(reinterpret_cast<__m256i *>(acc_arr), vacc);
        for (size_t l = 0; l < lanes; ++l)
            tallies[group + l] += acc_arr[l];
    }
}

#endif // AUTOFSM_NESTED_AVX2

} // anonymous namespace

bool
nestedSweepSimdCompiled()
{
#if AUTOFSM_NESTED_AVX2
    return true;
#else
    return false;
#endif
}

bool
nestedSweepSimdAvailable()
{
#if AUTOFSM_NESTED_AVX2
    static const bool available = __builtin_cpu_supports("avx2") != 0;
    return available;
#else
    return false;
#endif
}

bool
gshareConfigsNest(const std::vector<GshareConfig> &configs)
{
    int hb_star = 0;
    for (const GshareConfig &config : configs)
        hb_star = std::max(hb_star, effectiveHistoryBits(config));
    for (const GshareConfig &config : configs) {
        if (effectiveHistoryBits(config) !=
            std::min(hb_star, config.log2Entries))
            return false;
    }
    return true;
}

NestedSweepResult
nestedSweep(const NestedSweepRequest &request, const PackedTrace &trace,
            const AreaCosts &costs, const NestedSweepOptions &options)
{
    NestedSweepResult out;
    const size_t n = trace.size();
    const uint64_t *pcs = trace.pcs().data();
    const uint64_t *words = trace.takenWords().data();

    const size_t gshare_k = request.gshare.size();
    const size_t lgc_k = request.lgc.size();
    const size_t btb_k = request.btb.size();
    out.stats.pointsPerPass = gshare_k + lgc_k + btb_k;

    // Names, areas and geometry validation come from transient kernel
    // replicas, so labels cannot drift from the per-config path and
    // LgcKernel's length_error for unsupported geometries is inherited
    // before any work starts.
    out.gshare.resize(gshare_k);
    for (size_t j = 0; j < gshare_k; ++j) {
        const GshareKernel kernel(request.gshare[j], costs);
        out.gshare[j].name = kernel.name();
        out.gshare[j].area = kernel.area();
        out.gshare[j].result.branches = n;
    }
    out.lgc.resize(lgc_k);
    for (size_t j = 0; j < lgc_k; ++j) {
        const LgcKernel kernel(request.lgc[j], costs);
        out.lgc[j].name = kernel.name();
        out.lgc[j].area = kernel.area();
        out.lgc[j].result.branches = n;
    }
    out.btb.resize(btb_k);
    for (size_t j = 0; j < btb_k; ++j) {
        const BtbKernel kernel(request.btb[j], costs);
        out.btb[j].name = kernel.name();
        out.btb[j].area = kernel.area();
        out.btb[j].result.branches = n;
    }

    SweepPointTimer timer(SweepEngine::Nested);

    ThreadPool *pool = options.pool;
    std::unique_ptr<ThreadPool> owned;
    const unsigned thread_count =
        pool ? std::max(1u, pool->threadCount())
             : (options.threads ? options.threads
                                : ThreadPool::defaultThreadCount());
    if (!pool && thread_count > 1 && n > 0) {
        owned = std::make_unique<ThreadPool>(thread_count);
        pool = owned.get();
    }
    const auto runParallel = [&](size_t count, const auto &fn) {
        if (pool) {
            parallelForOn(*pool, count, fn);
        } else {
            for (size_t i = 0; i < count; ++i)
                fn(i);
        }
    };

    // Position lists and SIMD lane accumulators are 32-bit; refuse the
    // transposed paths (falling back to the batch kernels) rather than
    // overflow on absurdly long traces.
    const bool trace_fits =
        n < static_cast<size_t>(std::numeric_limits<int32_t>::max());

    // --- Gshare nesting feasibility -------------------------------
    bool gshare_nested =
        gshare_k > 0 && trace_fits && gshareConfigsNest(request.gshare);
    int hb_star = 0;
    int max_log2 = 0;
    int min_log2 = kMaxNestedLog2;
    size_t plane_bytes = 0;
    if (gshare_nested) {
        for (const GshareConfig &config : request.gshare) {
            hb_star = std::max(hb_star, effectiveHistoryBits(config));
            max_log2 = std::max(max_log2, config.log2Entries);
            min_log2 = std::min(min_log2, config.log2Entries);
            if (config.log2Entries < 0 ||
                config.log2Entries > kMaxNestedLog2) {
                gshare_nested = false;
                break;
            }
            plane_bytes += size_t{1} << config.log2Entries;
        }
        if (plane_bytes > (size_t{1} << 31))
            gshare_nested = false;
    }
    out.stats.gshareNested = gshare_k == 0 || gshare_nested;

    if (gshare_k > 0 && !gshare_nested) {
        // Non-nesting size sweep: the PR 3 batch path is already the
        // right shape for it (one pass, per-config indices).
        std::vector<GshareKernel> kernels;
        kernels.reserve(gshare_k);
        for (const GshareConfig &config : request.gshare)
            kernels.emplace_back(config, costs);
        const std::vector<BpredSimResult> results =
            sweepKernelBatch(kernels, trace);
        for (size_t j = 0; j < gshare_k; ++j)
            out.gshare[j].result = results[j];
    }

    const bool do_gshare = gshare_nested && gshare_k > 0 && n > 0;

    // --- Residue-class geometry -----------------------------------
    // class(index) = (index & classMask) % shards. Every config's cell
    // index agrees on the low classBits bits (the masks nest), so each
    // cell belongs to exactly one class and per-class tallies sum to
    // the serial kernel's exactly, for ANY shard count.
    const size_t auto_shards =
        thread_count <= 1 ? 1 : size_t{thread_count} * 2;
    const size_t requested_shards =
        options.shards ? options.shards : auto_shards;

    size_t gshare_shards = 1;
    int g_class_bits = 0;
    if (do_gshare) {
        g_class_bits = std::min(min_log2, kMaxClassBits);
        gshare_shards = std::min<size_t>(requested_shards,
                                         size_t{1} << g_class_bits);
        gshare_shards = std::max<size_t>(gshare_shards, 1);
    }

    bool btb_shardable = btb_k > 0 && trace_fits;
    int btb_min_entries = 0;
    if (btb_shardable) {
        btb_min_entries = request.btb[0].entries;
        for (const BtbConfig &config : request.btb) {
            if (!isPowerOfTwo(config.entries))
                btb_shardable = false;
            btb_min_entries = std::min(btb_min_entries, config.entries);
        }
    }
    size_t btb_shards = 1;
    size_t b_class_size = 1;
    if (btb_shardable && n > 0) {
        b_class_size = std::min<size_t>(
            static_cast<size_t>(btb_min_entries),
            size_t{1} << kMaxClassBits);
        btb_shards = std::max<size_t>(
            std::min(requested_shards, b_class_size), 1);
    }
    const bool partition_btb = btb_k > 0 && n > 0 && btb_shards > 1;

    // --- Stage A: shared-index stream + residue counts -------------
    // One word-aligned chunked pass builds the payload stream (shared
    // index + outcome) and counts class members per chunk. The gshare
    // history register at a chunk start is exactly the previous hb*
    // outcomes, read straight out of the packed outcome words.
    const size_t word_count = (n + 63) / 64;
    size_t chunk_count = 1;
    if ((do_gshare || partition_btb) && pool)
        chunk_count = std::max<size_t>(
            std::min(word_count, size_t{thread_count} * 4), 1);
    out.stats.historyShards = do_gshare ? chunk_count : 0;
    out.stats.gshareShards = do_gshare ? gshare_shards : 0;
    out.stats.btbShards = (btb_k > 0 && n > 0) ? btb_shards : 0;

    const uint64_t hist_mask = lowMask64(hb_star);
    const uint64_t index_keep = lowMask64(max_log2);
    const uint32_t g_class_mask = static_cast<uint32_t>(
        (size_t{1} << g_class_bits) - 1);
    const uint64_t b_class_mask = static_cast<uint64_t>(b_class_size - 1);

    std::vector<uint32_t> payload(do_gshare ? n : 0);
    std::vector<uint16_t> g_lut;
    if (do_gshare && gshare_shards > 1) {
        g_lut.resize(size_t{1} << g_class_bits);
        for (size_t r = 0; r < g_lut.size(); ++r)
            g_lut[r] = static_cast<uint16_t>(r % gshare_shards);
    }
    std::vector<uint16_t> b_lut;
    if (partition_btb) {
        b_lut.resize(b_class_size);
        for (size_t r = 0; r < b_class_size; ++r)
            b_lut[r] = static_cast<uint16_t>(r % btb_shards);
    }

    const bool count_gshare = do_gshare && gshare_shards > 1;
    std::vector<uint32_t> g_counts(
        count_gshare ? chunk_count * gshare_shards : 0, 0);
    std::vector<uint32_t> b_counts(
        partition_btb ? chunk_count * btb_shards : 0, 0);

    const auto chunkBounds = [&](size_t t, size_t &begin, size_t &end) {
        begin = (word_count * t / chunk_count) * 64;
        end = std::min(n, (word_count * (t + 1) / chunk_count) * 64);
    };

    if (do_gshare || partition_btb) {
        runParallel(chunk_count, [&](size_t t) {
            size_t begin = 0;
            size_t end = 0;
            chunkBounds(t, begin, end);
            if (do_gshare) {
                uint64_t h = 0;
                const size_t depth =
                    std::min(static_cast<size_t>(hb_star), begin);
                for (size_t b = 0; b < depth; ++b) {
                    const size_t i = begin - 1 - b;
                    h |= ((words[i >> 6] >> (i & 63)) & 1ULL) << b;
                }
                uint32_t *counts_row =
                    count_gshare ? g_counts.data() + t * gshare_shards
                                 : nullptr;
                for (size_t i = begin; i < end; ++i) {
                    const uint64_t taken =
                        (words[i >> 6] >> (i & 63)) & 1ULL;
                    const uint64_t f = (pcs[i] >> 2) ^ (h & hist_mask);
                    payload[i] =
                        static_cast<uint32_t>(f & index_keep) |
                        (static_cast<uint32_t>(taken) << 31);
                    h = (h << 1) | taken;
                    if (counts_row)
                        ++counts_row[g_lut[static_cast<uint32_t>(f) &
                                           g_class_mask]];
                }
            }
            if (partition_btb) {
                uint32_t *counts_row = b_counts.data() + t * btb_shards;
                for (size_t i = begin; i < end; ++i)
                    ++counts_row[b_lut[(pcs[i] >> 2) & b_class_mask]];
            }
        });
    }

    // --- Stage B+C: class-major position/payload lists -------------
    // A chunked counting sort: exclusive prefixes give each (class,
    // chunk) its slice, so the scatter is write-disjoint and the class
    // streams come out in trace order.
    std::vector<uint32_t> g_class_base(gshare_shards + 1, 0);
    std::vector<uint32_t> g_start;
    std::vector<uint32_t> g_order;
    if (count_gshare) {
        g_start.resize(chunk_count * gshare_shards);
        uint32_t running = 0;
        for (size_t c = 0; c < gshare_shards; ++c) {
            g_class_base[c] = running;
            for (size_t t = 0; t < chunk_count; ++t) {
                g_start[t * gshare_shards + c] = running;
                running += g_counts[t * gshare_shards + c];
            }
        }
        g_class_base[gshare_shards] = running;
        g_order.resize(n);
    }
    std::vector<uint32_t> b_class_base(btb_shards + 1, 0);
    std::vector<uint32_t> b_start;
    std::vector<uint32_t> b_order;
    if (partition_btb) {
        b_start.resize(chunk_count * btb_shards);
        uint32_t running = 0;
        for (size_t c = 0; c < btb_shards; ++c) {
            b_class_base[c] = running;
            for (size_t t = 0; t < chunk_count; ++t) {
                b_start[t * btb_shards + c] = running;
                running += b_counts[t * btb_shards + c];
            }
        }
        b_class_base[btb_shards] = running;
        b_order.resize(n);
    }

    if (count_gshare || partition_btb) {
        runParallel(chunk_count, [&](size_t t) {
            size_t begin = 0;
            size_t end = 0;
            chunkBounds(t, begin, end);
            if (count_gshare) {
                std::vector<uint32_t> cursor(
                    g_start.begin() +
                        static_cast<ptrdiff_t>(t * gshare_shards),
                    g_start.begin() +
                        static_cast<ptrdiff_t>((t + 1) * gshare_shards));
                for (size_t i = begin; i < end; ++i) {
                    const uint32_t p = payload[i];
                    g_order[cursor[g_lut[p & g_class_mask]]++] = p;
                }
            }
            if (partition_btb) {
                std::vector<uint32_t> cursor(
                    b_start.begin() +
                        static_cast<ptrdiff_t>(t * btb_shards),
                    b_start.begin() +
                        static_cast<ptrdiff_t>((t + 1) * btb_shards));
                for (size_t i = begin; i < end; ++i)
                    b_order[cursor[b_lut[(pcs[i] >> 2) &
                                         b_class_mask]]++] =
                        static_cast<uint32_t>(i);
            }
        });
    }

    // --- Stage D: the task pool -----------------------------------
    // LGC solo chains first (the longest tasks), then gshare residue
    // classes, then BTB classes; dynamic index claiming balances the
    // tails.
    std::vector<uint32_t> g_masks(gshare_k);
    std::vector<uint32_t> g_offsets(gshare_k);
    if (do_gshare) {
        uint32_t offset = 0;
        for (size_t j = 0; j < gshare_k; ++j) {
            g_masks[j] = static_cast<uint32_t>(
                (uint64_t{1} << request.gshare[j].log2Entries) - 1);
            g_offsets[j] = offset;
            offset += uint32_t{1} << request.gshare[j].log2Entries;
        }
    }

#if AUTOFSM_NESTED_AVX2
    const bool use_simd =
        do_gshare && options.allowSimd && nestedSweepSimdAvailable();
#else
    const bool use_simd = false;
#endif
    out.stats.simd = use_simd;

    std::vector<uint64_t> lgc_mis(lgc_k, 0);
    std::vector<uint64_t> g_tally(gshare_shards * gshare_k, 0);
    std::vector<uint64_t> b_mis(btb_shards * btb_k, 0);
    std::vector<uint64_t> b_lookups(btb_shards * btb_k, 0);
    std::vector<uint64_t> b_hits(btb_shards * btb_k, 0);

    std::vector<std::function<void()>> tasks;
    for (size_t j = 0; j < lgc_k; ++j) {
        if (n == 0)
            break;
        tasks.push_back([&, j] {
            NestedLgcState state(request.lgc[j].log2Entries);
            for (size_t i = 0; i < n; ++i) {
                const size_t taken =
                    (words[i >> 6] >> (i & 63)) & 1ULL;
                state.step(pcs[i], taken);
            }
            lgc_mis[j] = state.mispredicts;
        });
    }
    if (do_gshare) {
        for (size_t c = 0; c < gshare_shards; ++c) {
            tasks.push_back([&, c] {
                // Each class task steps a private copy of the planes:
                // it only ever touches its own class's cells, so the
                // untouched rest costs a little init and buys freedom
                // from any cross-task memory traffic.
                std::vector<uint8_t> planes(plane_bytes + 8, 1);
                const uint32_t *stream =
                    count_gshare ? g_order.data() + g_class_base[c]
                                 : payload.data();
                const size_t count =
                    count_gshare ? g_class_base[c + 1] - g_class_base[c]
                                 : n;
                uint64_t *tally = g_tally.data() + c * gshare_k;
#if AUTOFSM_NESTED_AVX2
                if (use_simd) {
                    runGshareClassAvx2(stream, count, g_masks.data(),
                                       g_offsets.data(), gshare_k,
                                       planes.data(), tally);
                    return;
                }
#endif
                runGshareClassScalar(stream, count, g_masks.data(),
                                     g_offsets.data(), gshare_k,
                                     planes.data(), tally);
            });
        }
    }
    if (btb_k > 0 && n > 0) {
        for (size_t c = 0; c < btb_shards; ++c) {
            tasks.push_back([&, c] {
                for (size_t j = 0; j < btb_k; ++j) {
                    BtbKernel kernel(request.btb[j], costs);
                    uint64_t mispredicts = 0;
                    if (partition_btb) {
                        const uint32_t *order =
                            b_order.data() + b_class_base[c];
                        const size_t count =
                            b_class_base[c + 1] - b_class_base[c];
                        for (size_t p = 0; p < count; ++p) {
                            const size_t i = order[p];
                            const bool taken =
                                (words[i >> 6] >> (i & 63)) & 1ULL;
                            mispredicts += static_cast<uint64_t>(
                                kernel.step(pcs[i], taken));
                        }
                    } else {
                        for (size_t i = 0; i < n; ++i) {
                            const bool taken =
                                (words[i >> 6] >> (i & 63)) & 1ULL;
                            if (i + detail::kPrefetchDistance < n)
                                kernel.prefetch(
                                    pcs[i + detail::kPrefetchDistance]);
                            mispredicts += static_cast<uint64_t>(
                                kernel.step(pcs[i], taken));
                        }
                    }
                    b_mis[c * btb_k + j] = mispredicts;
                    b_lookups[c * btb_k + j] = kernel.lookups();
                    b_hits[c * btb_k + j] = kernel.hits();
                }
            });
        }
    }
    runParallel(tasks.size(), [&](size_t i) { tasks[i](); });

    // --- Assembly + telemetry parity ------------------------------
    if (do_gshare || (gshare_nested && gshare_k > 0)) {
        for (size_t j = 0; j < gshare_k; ++j) {
            uint64_t mispredicts = 0;
            for (size_t c = 0; c < gshare_shards; ++c)
                mispredicts += g_tally[c * gshare_k + j];
            out.gshare[j].result.mispredicts = mispredicts;
            publishBpredRun(out.gshare[j].name, out.gshare[j].result);
        }
    }
    for (size_t j = 0; j < lgc_k; ++j) {
        out.lgc[j].result.mispredicts = lgc_mis[j];
        publishBpredRun(out.lgc[j].name, out.lgc[j].result);
    }
    for (size_t j = 0; j < btb_k; ++j) {
        uint64_t mispredicts = 0;
        uint64_t lookups = 0;
        uint64_t hits = 0;
        for (size_t c = 0; c < btb_shards; ++c) {
            mispredicts += b_mis[c * btb_k + j];
            lookups += b_lookups[c * btb_k + j];
            hits += b_hits[c * btb_k + j];
        }
        out.btb[j].result.mispredicts = mispredicts;
        out.btb[j].lookups = lookups;
        out.btb[j].hits = hits;
        publishBpredRun(out.btb[j].name, out.btb[j].result);
        publishBtbMetrics(out.btb[j].name, lookups, hits);
    }
    observeSweepPointsPerPass(out.stats.pointsPerPass);

    return out;
}

} // namespace autofsm
