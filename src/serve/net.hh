/**
 * @file
 * Minimal POSIX TCP helpers for the serve daemon and client.
 *
 * Deliberately tiny: a move-only RAII `Socket`, loopback-only listen /
 * connect, and looped full-buffer send. The daemon serves co-located
 * tooling (benches, CI, a designer's workstation), so binding beyond
 * 127.0.0.1 is out of scope here — put a real proxy in front for that.
 */

#ifndef AUTOFSM_SERVE_NET_HH
#define AUTOFSM_SERVE_NET_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace autofsm::serve
{

/** A socket-layer failure (connect refused, bind in use, ...). */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &what)
        : std::runtime_error("net: " + what)
    {
    }
};

/** Move-only owner of a file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /**
     * Shut down both directions without closing the descriptor:
     * unblocks a thread sitting in recv/accept on this socket, which is
     * how the server interrupts its connection threads on shutdown
     * while they still own the fd.
     */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
};

/**
 * Listen on 127.0.0.1:@p port (0 picks a free port). The actually bound
 * port is stored in @p boundPort.
 *
 * @throws NetError on socket/bind/listen failure.
 */
Socket listenOn(uint16_t port, uint16_t *boundPort);

/**
 * Connect to @p host:@p port.
 *
 * @throws NetError on resolution or connect failure.
 */
Socket connectTo(const std::string &host, uint16_t port);

/**
 * Block until a client connects to @p listener and return its socket.
 * Returns an invalid Socket when the listener was shut down or closed
 * (the server's stop signal), never throws.
 */
Socket acceptConnection(const Socket &listener);

/**
 * Arm SO_RCVTIMEO / SO_SNDTIMEO with @p millis (0 leaves the socket
 * blocking forever). A timed-out recv surfaces as recvSome() returning
 * false, i.e. like a closed connection — the caller's retry path.
 */
void setSocketTimeouts(const Socket &socket, long millis);

/**
 * Write all of @p bytes, looping over short sends.
 *
 * @throws NetError when the peer went away mid-write.
 */
void sendAll(const Socket &socket, std::string_view bytes);

/**
 * Read up to @p capacity bytes into @p out (resized to what arrived).
 *
 * @return false on orderly EOF or a reset connection.
 */
bool recvSome(const Socket &socket, std::string &out,
              size_t capacity = 64 * 1024);

} // namespace autofsm::serve

#endif // AUTOFSM_SERVE_NET_HH
