/**
 * @file
 * Length-prefixed binary framing of the serve protocol.
 *
 * Every message on an autofsm-serve connection is one frame:
 *
 *     byte 0      protocol version (kFrameVersion)
 *     byte 1      frame type (FrameType)
 *     bytes 2-5   payload length, u32 little-endian
 *     bytes 6-9   CRC32 (IEEE) of the payload, u32 little-endian
 *     bytes 10+   payload (JSON, flow/api.hh schema)
 *
 * The decoder rejects wrong versions, unknown types, oversized lengths
 * and CRC mismatches with a typed `FrameError` — in the spirit of the
 * trace_io hardening, a process boundary validates before it trusts. A
 * merely *incomplete* frame is not an error: `next()` returns nullopt
 * until more bytes arrive, so the decoder drives a plain streaming
 * socket read loop.
 */

#ifndef AUTOFSM_SERVE_FRAME_HH
#define AUTOFSM_SERVE_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace autofsm::serve
{

/** Protocol version carried in byte 0 of every frame. */
constexpr uint8_t kFrameVersion = 1;

/** Fixed header size: version, type, length, CRC32. */
constexpr size_t kFrameHeaderBytes = 10;

/** Default cap on one frame's payload (inline traces can be large). */
constexpr uint32_t kDefaultMaxPayloadBytes = 16u << 20;

/** What a frame carries. */
enum class FrameType : uint8_t
{
    DesignRequest = 1,   ///< client -> server: DesignRequest JSON
    DesignResponse = 2,  ///< server -> client: DesignResponse JSON
    MetricsRequest = 3,  ///< client -> server: empty payload
    MetricsResponse = 4, ///< server -> client: Prometheus text
    Error = 5,           ///< server -> client: protocol-level error text
    DebugRequest = 6,    ///< client -> server: empty payload
    DebugResponse = 7,   ///< server -> client: slow-request ring JSON
};

/** True when @p type is a defined FrameType value. */
bool frameTypeKnown(uint8_t type);

/** Stable lower-case name of @p type ("design-request", ...). */
const char *frameTypeName(FrameType type);

/** A malformed frame (wrong version, bad CRC, oversized, unknown type). */
class FrameError : public std::runtime_error
{
  public:
    explicit FrameError(const std::string &what)
        : std::runtime_error("frame: " + what)
    {
    }
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/** CRC32 (IEEE 802.3, reflected); crc32("123456789") == 0xCBF43926. */
uint32_t crc32(std::string_view bytes);

/** Encode one frame: header + payload, ready to write to a socket. */
std::string encodeFrame(FrameType type, std::string_view payload);

/**
 * Incremental frame decoder over a byte stream.
 *
 * Feed arbitrary chunks with `feed`, then drain complete frames with
 * `next` until it returns nullopt. Malformed input throws `FrameError`
 * and poisons the decoder (the connection is beyond resync once framing
 * is corrupt — the server drops it).
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(uint32_t max_payload = kDefaultMaxPayloadBytes)
        : maxPayload_(max_payload)
    {
    }

    /** Append @p bytes to the internal buffer. */
    void feed(std::string_view bytes);

    /**
     * Decode the next complete frame, or nullopt if more bytes are
     * needed.
     *
     * @throws FrameError on wrong version, unknown type, payload length
     *         over the cap, or CRC mismatch.
     */
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    uint32_t maxPayload_;
    std::string buffer_;
    size_t consumed_ = 0;
};

} // namespace autofsm::serve

#endif // AUTOFSM_SERVE_FRAME_HH
