#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace autofsm::serve
{

namespace
{

/** Retry connectTo with capped exponential backoff between attempts. */
Socket
connectWithRetries(const std::string &host, uint16_t port,
                   const ClientOptions &options)
{
    const int attempts = std::max(1, options.connectAttempts);
    long backoff = std::max<long>(1, options.backoffInitialMs);
    for (int attempt = 1;; ++attempt) {
        try {
            return connectTo(host, port);
        } catch (const NetError &) {
            if (attempt >= attempts)
                throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, std::max<long>(
                                            backoff, options.backoffMaxMs));
    }
}

} // anonymous namespace

Client::Client(const std::string &host, uint16_t port,
               uint32_t maxPayloadBytes)
    : socket_(connectTo(host, port)), decoder_(maxPayloadBytes)
{
}

Client::Client(const std::string &host, uint16_t port,
               const ClientOptions &options)
    : socket_(connectWithRetries(host, port, options)),
      decoder_(options.maxPayloadBytes)
{
    setSocketTimeouts(socket_, options.timeoutMs);
}

Frame
Client::roundTrip(FrameType type, std::string_view payload, FrameType want)
{
    sendAll(socket_, encodeFrame(type, payload));
    std::string chunk;
    for (;;) {
        while (std::optional<Frame> frame = decoder_.next()) {
            if (frame->type == FrameType::Error)
                throw ServerError(frame->payload);
            if (frame->type == want)
                return std::move(*frame);
            // A frame we did not ask for; skip it (future-proofing).
        }
        if (!recvSome(socket_, chunk)) {
            throw NetError(
                "connection closed while waiting for a response");
        }
        decoder_.feed(chunk);
    }
}

DesignResponse
Client::design(const DesignRequest &request)
{
    const Frame reply = roundTrip(FrameType::DesignRequest,
                                  toJson(request),
                                  FrameType::DesignResponse);
    return designResponseFromJson(reply.payload);
}

std::string
Client::fetchMetrics()
{
    return roundTrip(FrameType::MetricsRequest, {},
                     FrameType::MetricsResponse)
        .payload;
}

std::string
Client::fetchDebug()
{
    return roundTrip(FrameType::DebugRequest, {},
                     FrameType::DebugResponse)
        .payload;
}

} // namespace autofsm::serve
