#include "serve/net.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace autofsm::serve
{

namespace
{

[[noreturn]] void
failErrno(const std::string &what)
{
    throw NetError(what + ": " + std::strerror(errno));
}

} // anonymous namespace

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket
listenOn(uint16_t port, uint16_t *boundPort)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        failErrno("bind to 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(sock.fd(), 64) != 0)
        failErrno("listen");

    if (boundPort != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0) {
            failErrno("getsockname");
        }
        *boundPort = ntohs(bound.sin_port);
    }
    return sock;
}

Socket
connectTo(const std::string &host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw NetError("cannot parse IPv4 address '" + host + "'");

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket");
    if (::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        failErrno("connect to " + host + ":" + std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

Socket
acceptConnection(const Socket &listener)
{
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            Socket sock(fd);
            const int one = 1;
            ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return sock;
        }
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        return Socket(); // listener shut down (or fatally broken)
    }
}

void
setSocketTimeouts(const Socket &socket, long millis)
{
    if (millis <= 0 || !socket.valid())
        return;
    timeval tv{};
    tv.tv_sec = millis / 1000;
    tv.tv_usec = (millis % 1000) * 1000;
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void
sendAll(const Socket &socket, std::string_view bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the
        // daemon with SIGPIPE.
        const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failErrno("send");
        }
        sent += static_cast<size_t>(n);
    }
}

bool
recvSome(const Socket &socket, std::string &out, size_t capacity)
{
    out.resize(capacity);
    for (;;) {
        const ssize_t n = ::recv(socket.fd(), out.data(), capacity, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            out.clear();
            return false; // reset/shutdown: treat like EOF
        }
        out.resize(static_cast<size_t>(n));
        return n > 0;
    }
}

} // namespace autofsm::serve
