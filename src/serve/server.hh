/**
 * @file
 * The autofsm-serve daemon: design-as-a-service over framed TCP.
 *
 * Architecture (one process, all in-library so tests can drive it):
 *
 *     accept thread ──▶ connection threads (one per client)
 *                             │  decode frames, admission control
 *                             ▼
 *                 bounded per-class queues (interactive ▶ batch ▶ bulk)
 *                             │
 *                             ▼
 *          dispatcher thread ──▶ BatchDesigner on the shared ThreadPool
 *                             │
 *                             ▼
 *               response frames (per-connection write mutex)
 *
 * Admission maps a request's class onto a FlowBudget (budgetForClass)
 * unless the request carries its own finite budget, and rejects — with
 * a structured DesignResponse, not a dropped connection — when the
 * queue is at maxQueueDepth or the server is draining. The dispatcher
 * pops interactive work first and coalesces up to maxDispatchBatch
 * jobs per BatchDesigner call, so identical concurrent requests hit
 * the batch memo.
 *
 * Shutdown is a drain, mirroring the ThreadPool's drain-on-destruct
 * semantics: new admissions are refused immediately, every admitted
 * request still gets its response, then connections close.
 */

#ifndef AUTOFSM_SERVE_SERVER_HH
#define AUTOFSM_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/api.hh"
#include "flow/batch.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "serve/frame.hh"
#include "serve/net.hh"
#include "support/thread_pool.hh"

namespace autofsm::serve
{

/** Daemon knobs. */
struct ServeOptions
{
    /** TCP port on 127.0.0.1; 0 picks a free one (see Server::port). */
    uint16_t port = 0;
    /** Design worker threads; 0 means ThreadPool::defaultThreadCount(). */
    unsigned workers = 0;
    /** Admission bound: queued-but-undispatched requests across classes. */
    size_t maxQueueDepth = 256;
    /** Frame payload cap handed to every connection's decoder. */
    uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes;
    /** Max requests coalesced into one BatchDesigner dispatch. */
    size_t maxDispatchBatch = 16;
    /** Per-request retry policy of the dispatcher's BatchDesigner. */
    RetryPolicy retry;
    /**
     * Map request classes onto budgets at admission (budgetForClass). A
     * request carrying its own finite budget always keeps it; disabling
     * this serves every unlimited request unlimited — the test path for
     * comparing daemon artifacts against the direct library path.
     */
    bool applyClassBudgets = true;
    /**
     * A request is "slow" — captured into the debug ring with its full
     * span tree — when its admission-to-response wall clock reaches this
     * fraction of its effective deadline. Requests with no deadline are
     * never slow.
     */
    double slowRequestFraction = 0.75;
    /**
     * Retained slow-request captures (obs::SlowRequestRing), scrapable
     * over the DebugRequest frame. 0 disables the ring — and with it the
     * always-on sampling of untraced requests.
     */
    size_t slowRingCapacity = 32;
    /**
     * Persistent artifact/trace store directory (--store-dir); empty
     * disables the disk tier. start() opens it — which runs the
     * crash-recovery pass: stale temps swept, every entry validated,
     * corrupt ones quarantined — and installs it process-wide
     * (store::setGlobalStore), so the design memo and trace cache read
     * and write through it. Warm-start effectiveness is scrapable as
     * autofsm_store_warm_hits_total in /metrics.
     */
    std::string storeDir;
    /** Store payload cap in bytes (LRU-evicted past it); 0 = unlimited. */
    uint64_t storeMaxBytes = 0;
};

/**
 * The outcome of admission control for one request: either admitted,
 * with the effective (possibly class-budgeted) options the design will
 * run under, or refused with a machine-readable reason.
 */
struct AdmissionDecision
{
    bool admitted = false;
    /** errorKindName-style reason when refused ("budget-exceeded"). */
    std::string reason;
    /** Human detail when refused ("queue full", "draining"). */
    std::string detail;
    /** The options the request will actually run under when admitted. */
    FsmDesignOptions options;
};

/** The class → budget mapping plus the queue/drain refusals. */
class AdmissionController
{
  public:
    explicit AdmissionController(const ServeOptions &options)
        : options_(options)
    {
    }

    /**
     * Decide for @p request given the current @p queueDepth and whether
     * the server is @p draining. Pure: no state is touched, so the unit
     * test drives it without a socket in sight.
     */
    AdmissionDecision admit(const DesignRequest &request, size_t queueDepth,
                            bool draining) const;

  private:
    ServeOptions options_;
};

/**
 * The daemon proper. `start()` binds and spins up the accept,
 * connection and dispatcher threads; `shutdown()` drains and joins.
 * Both are idempotent. The destructor shuts down.
 */
class Server
{
  public:
    explicit Server(ServeOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind 127.0.0.1 and start serving. @throws NetError on bind. */
    void start();

    /** The bound port (useful with options.port = 0). */
    uint16_t port() const { return port_; }

    /**
     * Drain and stop: refuse new admissions, answer everything already
     * admitted, then close every connection and join every thread.
     */
    void shutdown();

    /** Queued-but-undispatched requests right now (for tests/metrics). */
    size_t queueDepth() const;

  private:
    struct Connection;

    /** One admitted request waiting for the dispatcher. */
    struct QueuedRequest
    {
        /** The request, options already mapped by admission; carries the
         *  TraceContext minted at admission in request.obsContext. */
        DesignRequest request;
        std::shared_ptr<Connection> connection;
        /** Admission time (queue-wait and total-duration baseline). */
        std::chrono::steady_clock::time_point admitted;
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> connection);
    void dispatchLoop();
    void handleFrame(const std::shared_ptr<Connection> &connection,
                     Frame frame);
    void sendResponse(const std::shared_ptr<Connection> &connection,
                      const DesignRequest &request,
                      const DesignResponse &response);
    void noteOutcome(const DesignRequest &request,
                     const DesignResponse &response);
    void observeRejected(RequestClass klass,
                         std::chrono::steady_clock::time_point received);
    void setQueueDepthGauge(size_t depth);

    ServeOptions options_;
    AdmissionController admission_;
    /** The daemon's private tracer: request spans land here (not in
     *  globalTracer()) so the dispatcher can drain them destructively. */
    obs::Tracer tracer_;
    obs::SlowRequestRing slowRing_;
    uint16_t port_ = 0;

    Socket listener_;
    std::unique_ptr<ThreadPool> pool_;
    std::thread acceptThread_;
    std::thread dispatchThread_;

    mutable std::mutex mutex_;
    std::condition_variable dispatchWake_;
    /** One deque per RequestClass, indexed by its enum value. */
    std::deque<QueuedRequest> queues_[3];
    size_t queued_ = 0;
    bool draining_ = false;
    bool started_ = false;
    std::vector<std::shared_ptr<Connection>> connections_;
};

/**
 * Install the synthetic branch-workload resolver as the process's
 * TraceRefResolver: "compress" (or "compress:train" / "compress:test")
 * resolves through the workloads trace cache to that benchmark's taken
 * stream. Called by the daemon and bench mains; the flow library itself
 * stays independent of the workloads layer.
 */
void installWorkloadTraceResolver();

} // namespace autofsm::serve

#endif // AUTOFSM_SERVE_SERVER_HH
