/**
 * @file
 * Thin synchronous client of the autofsm-serve protocol.
 *
 * One `Client` owns one connection and is single-threaded by design:
 * it writes a frame, then reads until the matching reply. Concurrency
 * tests and the CLI fan out by opening one Client per thread — the
 * daemon's per-connection reader makes that the natural unit.
 */

#ifndef AUTOFSM_SERVE_CLIENT_HH
#define AUTOFSM_SERVE_CLIENT_HH

#include <cstdint>
#include <string>

#include "flow/api.hh"
#include "serve/frame.hh"
#include "serve/net.hh"

namespace autofsm::serve
{

/** The server answered with an Error frame (protocol-level failure). */
class ServerError : public std::runtime_error
{
  public:
    explicit ServerError(const std::string &what)
        : std::runtime_error("server: " + what)
    {
    }
};

/** Connection-robustness knobs (defaults match the old behavior). */
struct ClientOptions
{
    /** Connect attempts before the constructor gives up (>= 1). */
    int connectAttempts = 1;
    /** Backoff before the first reconnect; doubles per attempt. */
    long backoffInitialMs = 50;
    /** Backoff cap. */
    long backoffMaxMs = 2000;
    /** Per-IO timeout (SO_RCVTIMEO/SO_SNDTIMEO); 0 waits forever. A
     *  timed-out read surfaces as a NetError from design(). */
    long timeoutMs = 0;
    uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes;
};

class Client
{
  public:
    /** Connect immediately. @throws NetError when nobody listens. */
    Client(const std::string &host, uint16_t port,
           uint32_t maxPayloadBytes = kDefaultMaxPayloadBytes);

    /**
     * Connect with retries: up to options.connectAttempts tries with
     * capped exponential backoff between them, then the configured IO
     * timeouts armed on the winning socket.
     *
     * @throws NetError carrying the last attempt's failure when every
     *         attempt fails.
     */
    Client(const std::string &host, uint16_t port,
           const ClientOptions &options);

    /**
     * Submit @p request and block for its DesignResponse. Admission
     * refusals come back as a response with `ok == false` (inspect
     * `error`), not an exception.
     *
     * @throws ServerError on an Error frame, NetError / FrameError when
     *         the connection broke.
     */
    DesignResponse design(const DesignRequest &request);

    /** Scrape the daemon's metrics (Prometheus text exposition). */
    std::string fetchMetrics();

    /** Scrape the slow-request debug ring (slowRequestsToJson bytes). */
    std::string fetchDebug();

  private:
    Frame roundTrip(FrameType type, std::string_view payload,
                    FrameType want);

    Socket socket_;
    FrameDecoder decoder_;
};

} // namespace autofsm::serve

#endif // AUTOFSM_SERVE_CLIENT_HH
