/**
 * @file
 * The autofsm-serve executable.
 *
 *     autofsm-serve [--port=N] [--workers=N] [--queue-depth=N]
 *                   [--no-class-budgets] [--retries=N]
 *                   [--slow-ring=N] [--slow-fraction-pct=N]
 *                   [--store-dir=PATH] [--store-max-mb=N]
 *
 * Serves the framed DesignRequest protocol on 127.0.0.1 until SIGTERM
 * or SIGINT, then drains (every admitted request is answered) and
 * exits 0. Prints one "listening on 127.0.0.1:<port>" line to stdout
 * once ready, which is what the smoke job and the quickstart wait for;
 * structured JSON-lines logs go to stderr.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string_view>

#include <unistd.h>

#include "obs/log.hh"
#include "serve/server.hh"

namespace
{

/** Self-pipe written by the signal handler, read by main. */
int g_signalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    // write(2) is async-signal-safe; best effort on a full pipe.
    [[maybe_unused]] const ssize_t n = write(g_signalPipe[1], &byte, 1);
}

bool
flagValue(std::string_view arg, std::string_view prefix, long *out)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    *out = std::strtol(std::string(arg.substr(prefix.size())).c_str(),
                       nullptr, 10);
    return true;
}

bool
flagText(std::string_view arg, std::string_view prefix, std::string *out)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    *out = std::string(arg.substr(prefix.size()));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    autofsm::serve::ServeOptions options;
    options.port = 7421;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        long value = 0;
        if (arg == "-h" || arg == "--help") {
            std::cout << "usage: " << argv[0]
                      << " [--port=N] [--workers=N] [--queue-depth=N]\n"
                         "  [--no-class-budgets] [--retries=N]\n"
                         "  [--slow-ring=N] [--slow-fraction-pct=N]\n"
                         "  [--store-dir=PATH] [--store-max-mb=N]\n";
            return 0;
        } else if (flagText(arg, "--store-dir=", &options.storeDir)) {
        } else if (flagValue(arg, "--store-max-mb=", &value)) {
            options.storeMaxBytes =
                static_cast<uint64_t>(value) * 1024 * 1024;
        } else if (flagValue(arg, "--port=", &value)) {
            options.port = static_cast<uint16_t>(value);
        } else if (flagValue(arg, "--workers=", &value)) {
            options.workers = static_cast<unsigned>(value);
        } else if (flagValue(arg, "--queue-depth=", &value)) {
            options.maxQueueDepth = static_cast<size_t>(value);
        } else if (flagValue(arg, "--retries=", &value)) {
            options.retry.maxAttempts = static_cast<int>(value) + 1;
        } else if (flagValue(arg, "--slow-ring=", &value)) {
            options.slowRingCapacity = static_cast<size_t>(value);
        } else if (flagValue(arg, "--slow-fraction-pct=", &value)) {
            options.slowRequestFraction =
                static_cast<double>(value) / 100.0;
        } else if (arg == "--no-class-budgets") {
            options.applyClassBudgets = false;
        } else {
            autofsm::obs::logError("serve.main", "unknown flag",
                                   {{"flag", std::string(arg)}});
            return 2;
        }
    }

    if (pipe(g_signalPipe) != 0) {
        std::perror("pipe");
        return 1;
    }
    struct sigaction action{};
    action.sa_handler = onSignal;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
    signal(SIGPIPE, SIG_IGN);

    autofsm::serve::installWorkloadTraceResolver();
    autofsm::serve::Server server(options);
    try {
        server.start();
    } catch (const std::exception &e) {
        autofsm::obs::logError("serve.main", "failed to start",
                               {{"detail", e.what()}});
        return 1;
    }
    autofsm::obs::logInfo(
        "serve.start", "listening",
        {{"addr", "127.0.0.1:" + std::to_string(server.port())},
         {"pid", static_cast<int64_t>(getpid())},
         {"build", autofsm::obs::buildInfo()},
         {"workers", static_cast<uint64_t>(options.workers)},
         {"slowRing", static_cast<uint64_t>(options.slowRingCapacity)}});
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

    // Block until a signal arrives.
    char byte = 0;
    while (read(g_signalPipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::cout << "draining..." << std::endl;
    server.shutdown();
    std::cout << "drained, bye" << std::endl;
    return 0;
}
