#include "serve/frame.hh"

#include "support/crc32.hh"

namespace autofsm::serve
{

namespace
{

void
putU32Le(std::string &out, uint32_t value)
{
    out += static_cast<char>(value & 0xff);
    out += static_cast<char>((value >> 8) & 0xff);
    out += static_cast<char>((value >> 16) & 0xff);
    out += static_cast<char>((value >> 24) & 0xff);
}

uint32_t
getU32Le(const char *bytes)
{
    const auto b = [bytes](int i) {
        return static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

} // anonymous namespace

bool
frameTypeKnown(uint8_t type)
{
    return type >= static_cast<uint8_t>(FrameType::DesignRequest) &&
        type <= static_cast<uint8_t>(FrameType::DebugResponse);
}

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::DesignRequest: return "design-request";
      case FrameType::DesignResponse: return "design-response";
      case FrameType::MetricsRequest: return "metrics-request";
      case FrameType::MetricsResponse: return "metrics-response";
      case FrameType::Error: return "error";
      case FrameType::DebugRequest: return "debug-request";
      case FrameType::DebugResponse: return "debug-response";
    }
    return "?";
}

uint32_t
crc32(std::string_view bytes)
{
    // The store and the wire protocol share one checksum (support/crc32).
    return crc32Ieee(bytes);
}

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    out += static_cast<char>(kFrameVersion);
    out += static_cast<char>(type);
    putU32Le(out, static_cast<uint32_t>(payload.size()));
    putU32Le(out, crc32(payload));
    out.append(payload);
    return out;
}

void
FrameDecoder::feed(std::string_view bytes)
{
    // Compact lazily: drop consumed bytes once they dominate the buffer
    // so a long-lived connection does not grow without bound.
    if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(bytes);
}

std::optional<Frame>
FrameDecoder::next()
{
    if (buffered() < kFrameHeaderBytes)
        return std::nullopt;
    const char *header = buffer_.data() + consumed_;
    const uint8_t version = static_cast<unsigned char>(header[0]);
    if (version != kFrameVersion) {
        throw FrameError("unsupported version " + std::to_string(version) +
                         " (want " + std::to_string(kFrameVersion) + ")");
    }
    const uint8_t type = static_cast<unsigned char>(header[1]);
    if (!frameTypeKnown(type))
        throw FrameError("unknown frame type " + std::to_string(type));
    const uint32_t length = getU32Le(header + 2);
    if (length > maxPayload_) {
        throw FrameError("payload length " + std::to_string(length) +
                         " exceeds cap " + std::to_string(maxPayload_));
    }
    const uint32_t wantCrc = getU32Le(header + 6);
    if (buffered() < kFrameHeaderBytes + length)
        return std::nullopt; // incomplete, not malformed
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes, length);
    const uint32_t gotCrc = crc32(frame.payload);
    if (gotCrc != wantCrc) {
        throw FrameError("payload CRC mismatch (got " +
                         std::to_string(gotCrc) + ", header says " +
                         std::to_string(wantCrc) + ")");
    }
    consumed_ += kFrameHeaderBytes + length;
    return frame;
}

} // namespace autofsm::serve
