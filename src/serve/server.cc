#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <unordered_map>
#include <utility>

#include "obs/export.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "store/store.hh"
#include "support/failpoint.hh"
#include "workloads/trace_cache.hh"

namespace autofsm::serve
{

namespace
{

/** Outcome labels of the request-duration histograms, index-stable. */
constexpr const char *kOutcomeNames[] = {"ok", "degraded", "error",
                                         "rejected"};
constexpr size_t kOutcomeCount = 4;
constexpr size_t kClassCount = 3;

/** Index into kOutcomeNames for a finished response. */
size_t
outcomeIndex(const DesignResponse &response)
{
    if (!response.ok)
        return 2;
    return response.degraded ? 1 : 0;
}

/** Unlabeled serve instrumentation, registered once. */
struct ServeTelemetry
{
    obs::Gauge queueDepth;
    obs::Counter frameErrors;
    obs::Counter acceptFaults;
    obs::Counter droppedResponses;
    obs::Histogram dispatchBatch;
    /** SLO latency: admission-to-response seconds by class and outcome.
     *  Pre-registered so the hot path never hits the labeled-metric
     *  registration (which can throw on slot exhaustion). */
    obs::Histogram requestDuration[kClassCount][kOutcomeCount];
    /** The queue-wait vs. service-time split of the same wall clock. */
    obs::Histogram queueSeconds[kClassCount];
    obs::Histogram serviceSeconds[kClassCount];
};

ServeTelemetry &
serveTelemetry()
{
    static ServeTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        ServeTelemetry t;
        t.queueDepth = registry.gauge(
            "autofsm_serve_queue_depth",
            "Admitted requests waiting for the dispatcher.");
        t.frameErrors = registry.counter(
            "autofsm_serve_frame_errors_total",
            "Connections dropped for malformed framing.");
        t.acceptFaults = registry.counter(
            "autofsm_serve_accept_faults_total",
            "Recovered faults in the accept loop (serve.accept).");
        t.droppedResponses = registry.counter(
            "autofsm_serve_dropped_responses_total",
            "Responses whose client had already disconnected.");
        t.dispatchBatch = registry.histogram(
            "autofsm_serve_dispatch_batch_size",
            "Requests coalesced into one BatchDesigner dispatch.",
            {1, 2, 4, 8, 16, 32, 64});
        for (size_t c = 0; c < kClassCount; ++c) {
            const char *klass =
                requestClassName(static_cast<RequestClass>(c));
            for (size_t o = 0; o < kOutcomeCount; ++o) {
                t.requestDuration[c][o] = registry.histogram(
                    "autofsm_serve_request_duration_seconds",
                    "Admission-to-response latency by class and outcome.",
                    obs::defaultLatencyBucketsSeconds(),
                    {{"class", klass}, {"outcome", kOutcomeNames[o]}});
            }
            t.queueSeconds[c] = registry.histogram(
                "autofsm_serve_request_queue_seconds",
                "Time an admitted request waited for the dispatcher.",
                obs::defaultLatencyBucketsSeconds(),
                {{"class", klass}});
            t.serviceSeconds[c] = registry.histogram(
                "autofsm_serve_request_service_seconds",
                "Time a request spent in its dispatch batch.",
                obs::defaultLatencyBucketsSeconds(),
                {{"class", klass}});
        }
        return t;
    }();
    return telemetry;
}

double
secondsSince(std::chrono::steady_clock::time_point start,
             std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - start).count();
}

/**
 * Bump autofsm_serve_requests_total{tenant,class,outcome}. Labeled
 * registration can throw (slot exhaustion under hostile tenant
 * cardinality); losing a counter tick must never take a request down
 * with it.
 */
void
countRequest(const std::string &tenant, RequestClass klass,
             const char *outcome)
{
    try {
        obs::globalMetrics()
            .counter("autofsm_serve_requests_total",
                     "Serve requests by tenant, class and outcome.",
                     {{"class", requestClassName(klass)},
                      {"outcome", outcome},
                      {"tenant", tenant}})
            .inc();
    } catch (const std::exception &) {
        // out of metric slots: drop the tick, keep serving
    }
}

std::vector<int>
resolveWorkloadTrace(const std::string &ref, uint64_t approxBranches)
{
    std::string name = ref;
    WorkloadInput input = WorkloadInput::Train;
    if (const size_t colon = ref.find(':'); colon != std::string::npos) {
        name = ref.substr(0, colon);
        const std::string which = ref.substr(colon + 1);
        if (which == "train") {
            input = WorkloadInput::Train;
        } else if (which == "test") {
            input = WorkloadInput::Test;
        } else {
            throw std::invalid_argument("traceRef '" + ref +
                                        "': input must be train or test");
        }
    }
    const std::shared_ptr<const BranchTrace> trace = cachedBranchTrace(
        name, input, static_cast<size_t>(approxBranches));
    std::vector<int> outcomes;
    outcomes.reserve(trace->size());
    for (const BranchRecord &record : *trace)
        outcomes.push_back(record.taken ? 1 : 0);
    return outcomes;
}

} // anonymous namespace

void
installWorkloadTraceResolver()
{
    setTraceRefResolver(&resolveWorkloadTrace);
}

AdmissionDecision
AdmissionController::admit(const DesignRequest &request, size_t queueDepth,
                           bool draining) const
{
    AdmissionDecision decision;
    decision.options = request.options;
    try {
        request.validate();
    } catch (const std::invalid_argument &e) {
        decision.reason = errorKindName(ErrorKind::InvalidInput);
        decision.detail = e.what();
        return decision;
    }
    if (draining) {
        // Retryable by taxonomy: another replica (or a later restart)
        // can serve what this instance is refusing.
        decision.reason = errorKindName(ErrorKind::BudgetExceeded);
        decision.detail = "draining: not accepting new requests";
        return decision;
    }
    if (queueDepth >= options_.maxQueueDepth) {
        decision.reason = errorKindName(ErrorKind::BudgetExceeded);
        decision.detail = "queue full (depth " +
            std::to_string(queueDepth) + " >= " +
            std::to_string(options_.maxQueueDepth) + ")";
        return decision;
    }
    if (options_.applyClassBudgets && request.options.budget.unlimited())
        decision.options.budget = budgetForClass(request.requestClass);
    decision.admitted = true;
    return decision;
}

/** One client connection; shared between its reader and the dispatcher. */
struct Server::Connection
{
    Socket socket;
    /** Serializes response frames (dispatcher vs metrics replies). */
    std::mutex writeMutex;
    std::thread reader;
};

Server::Server(ServeOptions options)
    : options_(options), admission_(options),
      slowRing_(options.slowRingCapacity)
{
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    if (!options_.storeDir.empty()) {
        // Opening the store IS the recovery pass: stale temp files from
        // a killed writer are swept, every entry is CRC-validated and
        // corrupt ones are quarantined, before anything can read them.
        store::StoreOptions storeOptions;
        storeOptions.dir = options_.storeDir;
        storeOptions.maxBytes = options_.storeMaxBytes;
        store::setGlobalStore(
            std::make_shared<store::ArtifactStore>(storeOptions));
    }
    listener_ = listenOn(options_.port, &port_);
    pool_ = std::make_unique<ThreadPool>(options_.workers);
    // The private tracer is always armed: traced requests need spans on
    // demand and slow requests are only identified after the fact.
    tracer_.enable(true);
    draining_ = false;
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    dispatchThread_ = std::thread([this] { dispatchLoop(); });
}

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_)
            return;
        started_ = false;
        draining_ = true;
    }
    dispatchWake_.notify_all();
    // Stop accepting first: shutdown unblocks the accept(2) call.
    listener_.shutdownBoth();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // The dispatcher drains the queue — every admitted request is
    // answered — before it exits.
    if (dispatchThread_.joinable())
        dispatchThread_.join();
    // Now unblock and join the connection readers. Clients racing a
    // request in right now get a draining rejection, not silence.
    std::vector<std::shared_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
    }
    for (const auto &connection : connections)
        connection->socket.shutdownBoth();
    for (const auto &connection : connections) {
        if (connection->reader.joinable())
            connection->reader.join();
    }
    listener_.close();
    pool_.reset(); // drain-on-destruct
    setQueueDepthGauge(0);
}

size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

void
Server::setQueueDepthGauge(size_t depth)
{
    serveTelemetry().queueDepth.set(static_cast<double>(depth));
}

void
Server::acceptLoop()
{
    for (;;) {
        try {
            AUTOFSM_FAILPOINT("serve.accept");
        } catch (const InjectedFault &e) {
            // Transient accept-path fault: count it and keep serving.
            serveTelemetry().acceptFaults.inc();
            obs::logWarn("serve.accept", "recovered accept-loop fault",
                         {{"detail", e.what()}});
            continue;
        }
        Socket socket = acceptConnection(listener_);
        if (!socket.valid())
            return; // listener shut down
        auto connection = std::make_shared<Connection>();
        connection->socket = std::move(socket);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (draining_) {
                // Raced shutdown: drop the socket; no admission happened.
                connection->socket.shutdownBoth();
                continue;
            }
            connections_.push_back(connection);
        }
        connection->reader = std::thread(
            [this, connection] { connectionLoop(connection); });
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> connection)
{
    FrameDecoder decoder(options_.maxPayloadBytes);
    std::string chunk;
    while (recvSome(connection->socket, chunk)) {
        try {
            decoder.feed(chunk);
            while (std::optional<Frame> frame = decoder.next())
                handleFrame(connection, std::move(*frame));
        } catch (const FrameError &e) {
            // Framing is unrecoverable per connection: report, drop the
            // connection, and the daemon keeps serving everyone else.
            serveTelemetry().frameErrors.inc();
            obs::logWarn("serve.frame",
                         "dropping connection on malformed frame",
                         {{"detail", e.what()}});
            try {
                std::lock_guard<std::mutex> lock(connection->writeMutex);
                sendAll(connection->socket,
                        encodeFrame(FrameType::Error, e.what()));
            } catch (const NetError &) {
            }
            break;
        }
    }
    connection->socket.shutdownBoth();
}

void
Server::handleFrame(const std::shared_ptr<Connection> &connection,
                    Frame frame)
{
    if (frame.type == FrameType::MetricsRequest) {
        const std::string text = obs::renderPrometheus();
        try {
            std::lock_guard<std::mutex> lock(connection->writeMutex);
            sendAll(connection->socket,
                    encodeFrame(FrameType::MetricsResponse, text));
        } catch (const NetError &) {
            serveTelemetry().droppedResponses.inc();
        }
        return;
    }
    if (frame.type == FrameType::DebugRequest) {
        const std::string text = obs::slowRequestsToJson(
            slowRing_.snapshot(), slowRing_.capacity(),
            slowRing_.dropped());
        try {
            std::lock_guard<std::mutex> lock(connection->writeMutex);
            sendAll(connection->socket,
                    encodeFrame(FrameType::DebugResponse, text));
        } catch (const NetError &) {
            serveTelemetry().droppedResponses.inc();
        }
        return;
    }
    if (frame.type != FrameType::DesignRequest) {
        try {
            std::lock_guard<std::mutex> lock(connection->writeMutex);
            sendAll(connection->socket,
                    encodeFrame(FrameType::Error,
                                std::string("unexpected frame type ") +
                                    frameTypeName(frame.type)));
        } catch (const NetError &) {
        }
        return;
    }

    const auto received = std::chrono::steady_clock::now();
    DesignRequest request;
    try {
        request = designRequestFromJson(frame.payload);
    } catch (const std::invalid_argument &e) {
        DesignResponse response;
        response.error = {"serve.parse",
                          errorKindName(ErrorKind::InvalidInput), e.what()};
        // Count before sending: a synchronous client that scrapes
        // metrics right after its response must see its own tick.
        countRequest(request.tenant, request.requestClass, "rejected");
        observeRejected(request.requestClass, received);
        sendResponse(connection, request, response);
        return;
    }

    AdmissionDecision decision;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        decision = admission_.admit(request, queued_, draining_);
        if (decision.admitted) {
            QueuedRequest item;
            item.request = request;
            item.request.options = decision.options;
            item.connection = connection;
            item.admitted = received;
            // Mint the request's observability identity. Untraced
            // requests are sampled too while the slow ring is armed: a
            // slow request is only identified after it finished, so its
            // spans must already exist by then.
            obs::TraceContext &context = item.request.obsContext;
            context.requestId = request.id;
            context.tenant = request.tenant;
            context.requestClass = requestClassName(request.requestClass);
            context.sampled = item.request.trace ||
                (options_.slowRingCapacity > 0 && tracer_.enabled());
            if (context.sampled)
                context.rootSpan = tracer_.openSpan("serve.request");
            queues_[static_cast<size_t>(request.requestClass)].push_back(
                std::move(item));
            ++queued_;
            setQueueDepthGauge(queued_);
        }
    }
    if (decision.admitted) {
        dispatchWake_.notify_one();
        return;
    }
    DesignResponse response;
    response.id = request.id;
    response.error = {"serve.admit", decision.reason, decision.detail};
    countRequest(request.tenant, request.requestClass, "rejected");
    observeRejected(request.requestClass, received);
    sendResponse(connection, request, response);
}

void
Server::observeRejected(RequestClass klass,
                        std::chrono::steady_clock::time_point received)
{
    serveTelemetry()
        .requestDuration[static_cast<size_t>(klass)][3]
        .observe(secondsSince(received, std::chrono::steady_clock::now()));
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<QueuedRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            dispatchWake_.wait(
                lock, [this] { return queued_ > 0 || draining_; });
            if (queued_ == 0) {
                if (draining_)
                    return; // drained: every admitted request answered
                continue;
            }
            // Strict priority: interactive first, then batch, then bulk.
            for (auto &queue : queues_) {
                while (!queue.empty() &&
                       batch.size() < options_.maxDispatchBatch) {
                    batch.push_back(std::move(queue.front()));
                    queue.pop_front();
                    --queued_;
                }
                if (batch.size() >= options_.maxDispatchBatch)
                    break;
            }
            setQueueDepthGauge(queued_);
        }
        serveTelemetry().dispatchBatch.observe(
            static_cast<double>(batch.size()));
        const auto dispatch_start = std::chrono::steady_clock::now();

        // Per-job dispatch failpoint: an injected fault fails that job
        // with a structured (retryable) error instead of losing it.
        // Failed items keep their response slot so the span/metrics
        // accounting below covers them uniformly.
        std::vector<DesignResponse> responses(batch.size());
        std::vector<size_t> live;
        std::vector<DesignRequest> requests;
        live.reserve(batch.size());
        requests.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            try {
                AUTOFSM_FAILPOINT("serve.dispatch");
            } catch (const InjectedFault &e) {
                responses[i].id = batch[i].request.id;
                responses[i].error = {"serve.dispatch",
                                      errorKindName(ErrorKind::Injected),
                                      e.what()};
                continue;
            }
            live.push_back(i);
            requests.push_back(batch[i].request);
        }

        if (!requests.empty()) {
            BatchOptions batchOptions;
            batchOptions.retry = options_.retry;
            batchOptions.pool = pool_.get();
            BatchDesigner designer({}, batchOptions);
            // Bind the daemon's tracer so the batch engine (and the
            // design flows it fans across the pool) records here.
            obs::TracerBinding bind(&tracer_);
            const std::vector<BatchItemResult> results =
                designer.designRequests(requests);
            for (size_t r = 0; r < results.size(); ++r) {
                responses[live[r]] = designResponseFromItem(
                    batch[live[r]].request, results[r]);
            }
        }

        // Close every request's root span, then consume everything this
        // batch recorded and partition it per owning request. Parents
        // are always allocated before children, so one forward pass
        // over the id-sorted drain resolves each span's root; spans
        // reaching no request root (the shared batch bookkeeping,
        // unsampled strays) are discarded here.
        for (const QueuedRequest &item : batch)
            tracer_.closeSpan(item.request.obsContext.rootSpan);
        const std::vector<obs::SpanRecord> drained = tracer_.drain();
        std::unordered_map<uint64_t, std::vector<obs::SpanRecord>> byRoot;
        for (const QueuedRequest &item : batch) {
            if (item.request.obsContext.rootSpan != 0)
                byRoot.emplace(item.request.obsContext.rootSpan,
                               std::vector<obs::SpanRecord>());
        }
        std::unordered_map<uint64_t, uint64_t> rootOf;
        for (const obs::SpanRecord &span : drained) {
            uint64_t root = 0;
            if (byRoot.count(span.id)) {
                root = span.id;
            } else if (span.parent != 0) {
                const auto it = rootOf.find(span.parent);
                if (it != rootOf.end())
                    root = it->second;
            }
            rootOf.emplace(span.id, root);
            if (root != 0)
                byRoot[root].push_back(span);
        }

        const auto finish = std::chrono::steady_clock::now();
        ServeTelemetry &telemetry = serveTelemetry();
        for (size_t i = 0; i < batch.size(); ++i) {
            const QueuedRequest &item = batch[i];
            DesignResponse &response = responses[i];
            const size_t klass =
                static_cast<size_t>(item.request.requestClass);
            const double queue_s =
                secondsSince(item.admitted, dispatch_start);
            const double total_s = secondsSince(item.admitted, finish);
            telemetry.queueSeconds[klass].observe(queue_s);
            telemetry.serviceSeconds[klass].observe(total_s - queue_s);
            telemetry.requestDuration[klass][outcomeIndex(response)]
                .observe(total_s);

            const uint64_t root = item.request.obsContext.rootSpan;
            std::vector<obs::SpanRecord> *spans = nullptr;
            if (root != 0) {
                const auto it = byRoot.find(root);
                if (it != byRoot.end())
                    spans = &it->second;
            }
            if (item.request.trace && spans != nullptr)
                response.trace = *spans;

            const double deadline =
                item.request.options.budget.deadlineMillis;
            const double total_ms = total_s * 1000.0;
            if (deadline > 0.0 &&
                total_ms >= options_.slowRequestFraction * deadline) {
                obs::SlowRequestCapture capture;
                capture.requestId = item.request.id;
                capture.tenant = item.request.tenant;
                capture.requestClass =
                    requestClassName(item.request.requestClass);
                capture.outcome = kOutcomeNames[outcomeIndex(response)];
                capture.totalMillis = total_ms;
                capture.queueMillis = queue_s * 1000.0;
                capture.deadlineMillis = deadline;
                capture.degraded = response.degraded;
                capture.fallbacks = response.fallbacks;
                capture.errorStage = response.error.stage;
                capture.errorKind = response.error.kind;
                capture.errorDetail = response.error.detail;
                if (spans != nullptr)
                    capture.spans = *spans;
                slowRing_.add(std::move(capture));
                obs::logWarn(
                    "serve.slow", "request blew its deadline fraction",
                    {{"requestId", item.request.id},
                     {"tenant", item.request.tenant},
                     {"class",
                      requestClassName(item.request.requestClass)},
                     {"totalMillis", total_ms},
                     {"deadlineMillis", deadline},
                     {"outcome",
                      kOutcomeNames[outcomeIndex(response)]}});
            }

            noteOutcome(item.request, response);
            sendResponse(item.connection, item.request, response);
        }
    }
}

void
Server::sendResponse(const std::shared_ptr<Connection> &connection,
                     const DesignRequest &request,
                     const DesignResponse &response)
{
    try {
        std::lock_guard<std::mutex> lock(connection->writeMutex);
        sendAll(connection->socket,
                encodeFrame(FrameType::DesignResponse, toJson(response)));
    } catch (const NetError &e) {
        serveTelemetry().droppedResponses.inc();
        obs::logWarn("serve.send",
                     "dropping response for a gone client",
                     {{"requestId", request.id},
                      {"tenant", request.tenant},
                      {"detail", e.what()}});
    }
}

void
Server::noteOutcome(const DesignRequest &request,
                    const DesignResponse &response)
{
    const char *outcome = !response.ok ? "error"
        : response.degraded          ? "degraded"
                                     : "ok";
    countRequest(request.tenant, request.requestClass, outcome);
}

} // namespace autofsm::serve
