#include "serve/server.hh"

#include <algorithm>
#include <exception>
#include <utility>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "support/failpoint.hh"
#include "workloads/trace_cache.hh"

namespace autofsm::serve
{

namespace
{

/** Unlabeled serve instrumentation, registered once. */
struct ServeTelemetry
{
    obs::Gauge queueDepth;
    obs::Counter frameErrors;
    obs::Counter acceptFaults;
    obs::Counter droppedResponses;
    obs::Histogram dispatchBatch;
};

ServeTelemetry &
serveTelemetry()
{
    static ServeTelemetry telemetry = [] {
        obs::MetricsRegistry &registry = obs::globalMetrics();
        ServeTelemetry t;
        t.queueDepth = registry.gauge(
            "autofsm_serve_queue_depth",
            "Admitted requests waiting for the dispatcher.");
        t.frameErrors = registry.counter(
            "autofsm_serve_frame_errors_total",
            "Connections dropped for malformed framing.");
        t.acceptFaults = registry.counter(
            "autofsm_serve_accept_faults_total",
            "Recovered faults in the accept loop (serve.accept).");
        t.droppedResponses = registry.counter(
            "autofsm_serve_dropped_responses_total",
            "Responses whose client had already disconnected.");
        t.dispatchBatch = registry.histogram(
            "autofsm_serve_dispatch_batch_size",
            "Requests coalesced into one BatchDesigner dispatch.",
            {1, 2, 4, 8, 16, 32, 64});
        return t;
    }();
    return telemetry;
}

/**
 * Bump autofsm_serve_requests_total{tenant,class,outcome}. Labeled
 * registration can throw (slot exhaustion under hostile tenant
 * cardinality); losing a counter tick must never take a request down
 * with it.
 */
void
countRequest(const std::string &tenant, RequestClass klass,
             const char *outcome)
{
    try {
        obs::globalMetrics()
            .counter("autofsm_serve_requests_total",
                     "Serve requests by tenant, class and outcome.",
                     {{"class", requestClassName(klass)},
                      {"outcome", outcome},
                      {"tenant", tenant}})
            .inc();
    } catch (const std::exception &) {
        // out of metric slots: drop the tick, keep serving
    }
}

std::vector<int>
resolveWorkloadTrace(const std::string &ref, uint64_t approxBranches)
{
    std::string name = ref;
    WorkloadInput input = WorkloadInput::Train;
    if (const size_t colon = ref.find(':'); colon != std::string::npos) {
        name = ref.substr(0, colon);
        const std::string which = ref.substr(colon + 1);
        if (which == "train") {
            input = WorkloadInput::Train;
        } else if (which == "test") {
            input = WorkloadInput::Test;
        } else {
            throw std::invalid_argument("traceRef '" + ref +
                                        "': input must be train or test");
        }
    }
    const std::shared_ptr<const BranchTrace> trace = cachedBranchTrace(
        name, input, static_cast<size_t>(approxBranches));
    std::vector<int> outcomes;
    outcomes.reserve(trace->size());
    for (const BranchRecord &record : *trace)
        outcomes.push_back(record.taken ? 1 : 0);
    return outcomes;
}

} // anonymous namespace

void
installWorkloadTraceResolver()
{
    setTraceRefResolver(&resolveWorkloadTrace);
}

AdmissionDecision
AdmissionController::admit(const DesignRequest &request, size_t queueDepth,
                           bool draining) const
{
    AdmissionDecision decision;
    decision.options = request.options;
    try {
        request.validate();
    } catch (const std::invalid_argument &e) {
        decision.reason = errorKindName(ErrorKind::InvalidInput);
        decision.detail = e.what();
        return decision;
    }
    if (draining) {
        // Retryable by taxonomy: another replica (or a later restart)
        // can serve what this instance is refusing.
        decision.reason = errorKindName(ErrorKind::BudgetExceeded);
        decision.detail = "draining: not accepting new requests";
        return decision;
    }
    if (queueDepth >= options_.maxQueueDepth) {
        decision.reason = errorKindName(ErrorKind::BudgetExceeded);
        decision.detail = "queue full (depth " +
            std::to_string(queueDepth) + " >= " +
            std::to_string(options_.maxQueueDepth) + ")";
        return decision;
    }
    if (options_.applyClassBudgets && request.options.budget.unlimited())
        decision.options.budget = budgetForClass(request.requestClass);
    decision.admitted = true;
    return decision;
}

/** One client connection; shared between its reader and the dispatcher. */
struct Server::Connection
{
    Socket socket;
    /** Serializes response frames (dispatcher vs metrics replies). */
    std::mutex writeMutex;
    std::thread reader;
};

Server::Server(ServeOptions options)
    : options_(options), admission_(options)
{
}

Server::~Server()
{
    shutdown();
}

void
Server::start()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_)
        return;
    listener_ = listenOn(options_.port, &port_);
    pool_ = std::make_unique<ThreadPool>(options_.workers);
    draining_ = false;
    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    dispatchThread_ = std::thread([this] { dispatchLoop(); });
}

void
Server::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_)
            return;
        started_ = false;
        draining_ = true;
    }
    dispatchWake_.notify_all();
    // Stop accepting first: shutdown unblocks the accept(2) call.
    listener_.shutdownBoth();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // The dispatcher drains the queue — every admitted request is
    // answered — before it exits.
    if (dispatchThread_.joinable())
        dispatchThread_.join();
    // Now unblock and join the connection readers. Clients racing a
    // request in right now get a draining rejection, not silence.
    std::vector<std::shared_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
    }
    for (const auto &connection : connections)
        connection->socket.shutdownBoth();
    for (const auto &connection : connections) {
        if (connection->reader.joinable())
            connection->reader.join();
    }
    listener_.close();
    pool_.reset(); // drain-on-destruct
    setQueueDepthGauge(0);
}

size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queued_;
}

void
Server::setQueueDepthGauge(size_t depth)
{
    serveTelemetry().queueDepth.set(static_cast<double>(depth));
}

void
Server::acceptLoop()
{
    for (;;) {
        try {
            AUTOFSM_FAILPOINT("serve.accept");
        } catch (const InjectedFault &) {
            // Transient accept-path fault: count it and keep serving.
            serveTelemetry().acceptFaults.inc();
            continue;
        }
        Socket socket = acceptConnection(listener_);
        if (!socket.valid())
            return; // listener shut down
        auto connection = std::make_shared<Connection>();
        connection->socket = std::move(socket);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (draining_) {
                // Raced shutdown: drop the socket; no admission happened.
                connection->socket.shutdownBoth();
                continue;
            }
            connections_.push_back(connection);
        }
        connection->reader = std::thread(
            [this, connection] { connectionLoop(connection); });
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> connection)
{
    FrameDecoder decoder(options_.maxPayloadBytes);
    std::string chunk;
    while (recvSome(connection->socket, chunk)) {
        try {
            decoder.feed(chunk);
            while (std::optional<Frame> frame = decoder.next())
                handleFrame(connection, std::move(*frame));
        } catch (const FrameError &e) {
            // Framing is unrecoverable per connection: report, drop the
            // connection, and the daemon keeps serving everyone else.
            serveTelemetry().frameErrors.inc();
            try {
                std::lock_guard<std::mutex> lock(connection->writeMutex);
                sendAll(connection->socket,
                        encodeFrame(FrameType::Error, e.what()));
            } catch (const NetError &) {
            }
            break;
        }
    }
    connection->socket.shutdownBoth();
}

void
Server::handleFrame(const std::shared_ptr<Connection> &connection,
                    Frame frame)
{
    if (frame.type == FrameType::MetricsRequest) {
        const std::string text = obs::renderPrometheus();
        try {
            std::lock_guard<std::mutex> lock(connection->writeMutex);
            sendAll(connection->socket,
                    encodeFrame(FrameType::MetricsResponse, text));
        } catch (const NetError &) {
            serveTelemetry().droppedResponses.inc();
        }
        return;
    }
    if (frame.type != FrameType::DesignRequest) {
        try {
            std::lock_guard<std::mutex> lock(connection->writeMutex);
            sendAll(connection->socket,
                    encodeFrame(FrameType::Error,
                                std::string("unexpected frame type ") +
                                    frameTypeName(frame.type)));
        } catch (const NetError &) {
        }
        return;
    }

    DesignRequest request;
    try {
        request = designRequestFromJson(frame.payload);
    } catch (const std::invalid_argument &e) {
        DesignResponse response;
        response.error = {"serve.parse",
                          errorKindName(ErrorKind::InvalidInput), e.what()};
        // Count before sending: a synchronous client that scrapes
        // metrics right after its response must see its own tick.
        countRequest(request.tenant, request.requestClass, "rejected");
        sendResponse(connection, request, response);
        return;
    }

    AdmissionDecision decision;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        decision = admission_.admit(request, queued_, draining_);
        if (decision.admitted) {
            QueuedRequest item;
            item.request = request;
            item.request.options = decision.options;
            item.connection = connection;
            queues_[static_cast<size_t>(request.requestClass)].push_back(
                std::move(item));
            ++queued_;
            setQueueDepthGauge(queued_);
        }
    }
    if (decision.admitted) {
        dispatchWake_.notify_one();
        return;
    }
    DesignResponse response;
    response.id = request.id;
    response.error = {"serve.admit", decision.reason, decision.detail};
    countRequest(request.tenant, request.requestClass, "rejected");
    sendResponse(connection, request, response);
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<QueuedRequest> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            dispatchWake_.wait(
                lock, [this] { return queued_ > 0 || draining_; });
            if (queued_ == 0) {
                if (draining_)
                    return; // drained: every admitted request answered
                continue;
            }
            // Strict priority: interactive first, then batch, then bulk.
            for (auto &queue : queues_) {
                while (!queue.empty() &&
                       batch.size() < options_.maxDispatchBatch) {
                    batch.push_back(std::move(queue.front()));
                    queue.pop_front();
                    --queued_;
                }
                if (batch.size() >= options_.maxDispatchBatch)
                    break;
            }
            setQueueDepthGauge(queued_);
        }
        serveTelemetry().dispatchBatch.observe(
            static_cast<double>(batch.size()));

        // Per-job dispatch failpoint: an injected fault fails that job
        // with a structured (retryable) error instead of losing it.
        std::vector<size_t> live;
        std::vector<DesignRequest> requests;
        live.reserve(batch.size());
        requests.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            try {
                AUTOFSM_FAILPOINT("serve.dispatch");
            } catch (const InjectedFault &e) {
                DesignResponse response;
                response.id = batch[i].request.id;
                response.error = {"serve.dispatch",
                                  errorKindName(ErrorKind::Injected),
                                  e.what()};
                noteOutcome(batch[i].request, response);
                sendResponse(batch[i].connection, batch[i].request,
                             response);
                continue;
            }
            live.push_back(i);
            requests.push_back(batch[i].request);
        }
        if (requests.empty())
            continue;

        BatchOptions batchOptions;
        batchOptions.retry = options_.retry;
        batchOptions.pool = pool_.get();
        BatchDesigner designer({}, batchOptions);
        const std::vector<BatchItemResult> results =
            designer.designRequests(requests);
        for (size_t r = 0; r < results.size(); ++r) {
            const QueuedRequest &item = batch[live[r]];
            const DesignResponse response =
                designResponseFromItem(item.request, results[r]);
            noteOutcome(item.request, response);
            sendResponse(item.connection, item.request, response);
        }
    }
}

void
Server::sendResponse(const std::shared_ptr<Connection> &connection,
                     const DesignRequest &request,
                     const DesignResponse &response)
{
    (void)request;
    try {
        std::lock_guard<std::mutex> lock(connection->writeMutex);
        sendAll(connection->socket,
                encodeFrame(FrameType::DesignResponse, toJson(response)));
    } catch (const NetError &) {
        serveTelemetry().droppedResponses.inc();
    }
}

void
Server::noteOutcome(const DesignRequest &request,
                    const DesignResponse &response)
{
    const char *outcome = !response.ok ? "error"
        : response.degraded          ? "degraded"
                                     : "ok";
    countRequest(request.tenant, request.requestClass, outcome);
}

} // namespace autofsm::serve
