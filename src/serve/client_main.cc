/**
 * @file
 * The autofsm-client executable.
 *
 *     autofsm-client [--host=IP] [--port=N] [--count=N]
 *                    [--class=interactive|batch|bulk|mix]
 *                    [--trace-ref=NAME] [--branches=N] [--order=N]
 *                    [--tenant=NAME] [--request-file=FILE] [--metrics]
 *
 * Drives the autofsm-serve daemon: sends --count design requests (class
 * "mix" cycles interactive/batch/bulk, the smoke job's load), prints a
 * one-line summary per response, and exits nonzero if any request
 * failed or returned an empty artifact. --metrics scrapes and prints
 * the daemon's Prometheus text instead. --request-file replays a JSON
 * array of DesignRequests (the flow/api.hh schema).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "serve/client.hh"

namespace
{

bool
flagText(std::string_view arg, std::string_view prefix, std::string *out)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    *out = std::string(arg.substr(prefix.size()));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace autofsm;
    std::string host = "127.0.0.1";
    long port = 7421;
    long count = 1;
    std::string klass = "interactive";
    std::string traceRef = "compress";
    long branches = 20000;
    long order = 2;
    std::string tenant = "cli";
    std::string requestFile;
    bool metrics = false;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string text;
        if (arg == "-h" || arg == "--help") {
            std::cout
                << "usage: " << argv[0]
                << " [--host=IP] [--port=N] [--count=N]\n"
                   "  [--class=interactive|batch|bulk|mix] "
                   "[--trace-ref=NAME]\n"
                   "  [--branches=N] [--order=N] [--tenant=NAME]\n"
                   "  [--request-file=FILE] [--metrics]\n";
            return 0;
        } else if (arg == "--metrics") {
            metrics = true;
        } else if (flagText(arg, "--host=", &host) ||
                   flagText(arg, "--class=", &klass) ||
                   flagText(arg, "--trace-ref=", &traceRef) ||
                   flagText(arg, "--tenant=", &tenant) ||
                   flagText(arg, "--request-file=", &requestFile)) {
        } else if (flagText(arg, "--port=", &text)) {
            port = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--count=", &text)) {
            count = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--branches=", &text)) {
            branches = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--order=", &text)) {
            order = std::strtol(text.c_str(), nullptr, 10);
        } else {
            std::cerr << argv[0] << ": unknown flag '" << arg << "'\n";
            return 2;
        }
    }

    try {
        serve::Client client(host, static_cast<uint16_t>(port));
        if (metrics) {
            std::cout << client.fetchMetrics();
            return 0;
        }

        std::vector<DesignRequest> requests;
        if (!requestFile.empty()) {
            std::ifstream in(requestFile);
            if (!in) {
                std::cerr << argv[0] << ": cannot open " << requestFile
                          << "\n";
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            requests = designRequestsFromJson(text.str());
        } else {
            static const char *kMix[] = {"interactive", "batch", "bulk"};
            for (long i = 0; i < count; ++i) {
                DesignRequest request;
                request.id = static_cast<uint64_t>(i + 1);
                request.tenant = tenant;
                const std::string name =
                    klass == "mix" ? kMix[i % 3] : klass;
                const auto parsed = requestClassFromName(name);
                if (!parsed) {
                    std::cerr << argv[0] << ": unknown class '" << name
                              << "'\n";
                    return 2;
                }
                request.requestClass = *parsed;
                request.traceRef = traceRef;
                request.traceBranches = static_cast<uint64_t>(branches);
                request.options.order = static_cast<int>(order);
                requests.push_back(std::move(request));
            }
        }

        int failures = 0;
        for (const DesignRequest &request : requests) {
            const DesignResponse response = client.design(request);
            if (response.ok && !response.artifact.empty()) {
                std::cout << "id=" << response.id << " ok states="
                          << response.statesFinal << " millis="
                          << response.designMillis
                          << (response.degraded ? " degraded" : "")
                          << (response.fromCache ? " cached" : "") << "\n";
            } else {
                ++failures;
                std::cout << "id=" << response.id << " FAILED ["
                          << response.error.stage << " "
                          << response.error.kind << "] "
                          << response.error.detail << "\n";
            }
        }
        if (failures > 0) {
            std::cerr << failures << " of " << requests.size()
                      << " requests failed\n";
            return 1;
        }
    } catch (const std::exception &e) {
        std::cerr << argv[0] << ": " << e.what() << "\n";
        return 1;
    }
    return 0;
}
