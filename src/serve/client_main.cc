/**
 * @file
 * The autofsm-client executable.
 *
 *     autofsm-client [--host=IP] [--port=N] [--count=N]
 *                    [--class=interactive|batch|bulk|mix]
 *                    [--trace-ref=NAME] [--branches=N] [--order=N]
 *                    [--tenant=NAME] [--request-file=FILE] [--metrics]
 *                    [--debug] [--trace] [--dump-trace[=FILE]]
 *                    [--check-json=FILE] [--check-jsonl=FILE]
 *                    [--timeout-ms=N] [--net-retries=N] [--backoff-ms=N]
 *
 * Drives the autofsm-serve daemon: sends --count design requests (class
 * "mix" cycles interactive/batch/bulk, the smoke job's load), prints a
 * one-line summary per response, and exits nonzero if any request
 * failed or returned an empty artifact. --metrics scrapes and prints
 * the daemon's Prometheus text instead; --debug scrapes the
 * slow-request ring. --request-file replays a JSON array of
 * DesignRequests (the flow/api.hh schema).
 *
 * Observability helpers:
 *  - --trace asks the daemon for each request's span tree;
 *  - --dump-trace[=FILE] implies --trace and writes the collected spans
 *    as Chrome trace-event JSON (stdout without a FILE);
 *  - --check-json=FILE / --check-jsonl=FILE validate a file (or each
 *    line of one) against the repo's strict JSON parser, no server
 *    needed — the CI smoke job lints trace dumps and daemon logs with
 *    these.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "flow/budget.hh"
#include "obs/export.hh"
#include "obs/log.hh"
#include "serve/client.hh"
#include "support/json_parse.hh"

namespace
{

bool
flagText(std::string_view arg, std::string_view prefix, std::string *out)
{
    if (arg.substr(0, prefix.size()) != prefix)
        return false;
    *out = std::string(arg.substr(prefix.size()));
    return true;
}

/** Strict-parse a whole file; 0 on success, 1 with a log line if not. */
int
checkJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        autofsm::obs::logError("client.check", "cannot open file",
                               {{"file", path}});
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
        (void)autofsm::JsonValue::parse(text.str());
    } catch (const std::exception &e) {
        autofsm::obs::logError("client.check", "invalid JSON",
                               {{"file", path}, {"detail", e.what()}});
        return 1;
    }
    std::cout << path << ": valid JSON\n";
    return 0;
}

/** Strict-parse every non-empty line of a JSON-lines file. */
int
checkJsonLinesFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        autofsm::obs::logError("client.check", "cannot open file",
                               {{"file", path}});
        return 1;
    }
    std::string line;
    uint64_t lineNo = 0;
    uint64_t parsed = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        try {
            (void)autofsm::JsonValue::parse(line);
            ++parsed;
        } catch (const std::exception &e) {
            autofsm::obs::logError("client.check", "invalid JSON line",
                                   {{"file", path},
                                    {"line", static_cast<int64_t>(lineNo)},
                                    {"detail", e.what()}});
            return 1;
        }
    }
    std::cout << path << ": " << parsed << " valid JSON lines\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace autofsm;
    std::string host = "127.0.0.1";
    long port = 7421;
    long count = 1;
    std::string klass = "interactive";
    std::string traceRef = "compress";
    long branches = 20000;
    long order = 2;
    std::string tenant = "cli";
    std::string requestFile;
    bool metrics = false;
    bool debug = false;
    bool trace = false;
    bool dumpTrace = false;
    std::string dumpTraceFile;
    std::string checkJson;
    std::string checkJsonl;
    long timeoutMs = 0;
    long netRetries = 2;
    long backoffMs = 50;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        std::string text;
        if (arg == "-h" || arg == "--help") {
            std::cout
                << "usage: " << argv[0]
                << " [--host=IP] [--port=N] [--count=N]\n"
                   "  [--class=interactive|batch|bulk|mix] "
                   "[--trace-ref=NAME]\n"
                   "  [--branches=N] [--order=N] [--tenant=NAME]\n"
                   "  [--request-file=FILE] [--metrics] [--debug]\n"
                   "  [--trace] [--dump-trace[=FILE]]\n"
                   "  [--check-json=FILE] [--check-jsonl=FILE]\n"
                   "  [--timeout-ms=N] [--net-retries=N] "
                   "[--backoff-ms=N]\n";
            return 0;
        } else if (arg == "--metrics") {
            metrics = true;
        } else if (arg == "--debug") {
            debug = true;
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--dump-trace") {
            trace = true;
            dumpTrace = true;
        } else if (flagText(arg, "--dump-trace=", &dumpTraceFile)) {
            trace = true;
            dumpTrace = true;
        } else if (flagText(arg, "--check-json=", &checkJson) ||
                   flagText(arg, "--check-jsonl=", &checkJsonl) ||
                   flagText(arg, "--host=", &host) ||
                   flagText(arg, "--class=", &klass) ||
                   flagText(arg, "--trace-ref=", &traceRef) ||
                   flagText(arg, "--tenant=", &tenant) ||
                   flagText(arg, "--request-file=", &requestFile)) {
        } else if (flagText(arg, "--port=", &text)) {
            port = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--count=", &text)) {
            count = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--branches=", &text)) {
            branches = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--order=", &text)) {
            order = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--timeout-ms=", &text)) {
            timeoutMs = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--net-retries=", &text)) {
            netRetries = std::strtol(text.c_str(), nullptr, 10);
        } else if (flagText(arg, "--backoff-ms=", &text)) {
            backoffMs = std::strtol(text.c_str(), nullptr, 10);
        } else {
            obs::logError("client.main", "unknown flag",
                          {{"flag", std::string(arg)}});
            return 2;
        }
    }

    // Pure file-lint modes: no connection needed.
    if (!checkJson.empty() || !checkJsonl.empty()) {
        int status = 0;
        if (!checkJson.empty())
            status |= checkJsonFile(checkJson);
        if (!checkJsonl.empty())
            status |= checkJsonLinesFile(checkJsonl);
        return status;
    }

    serve::ClientOptions clientOptions;
    clientOptions.connectAttempts = static_cast<int>(netRetries) + 1;
    clientOptions.backoffInitialMs = backoffMs;
    clientOptions.timeoutMs = timeoutMs;

    try {
        auto client = std::make_unique<serve::Client>(
            host, static_cast<uint16_t>(port), clientOptions);
        if (metrics) {
            std::cout << client->fetchMetrics();
            return 0;
        }
        if (debug) {
            std::cout << client->fetchDebug() << "\n";
            return 0;
        }

        std::vector<DesignRequest> requests;
        if (!requestFile.empty()) {
            std::ifstream in(requestFile);
            if (!in) {
                obs::logError("client.main", "cannot open request file",
                              {{"file", requestFile}});
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            requests = designRequestsFromJson(text.str());
        } else {
            static const char *kMix[] = {"interactive", "batch", "bulk"};
            for (long i = 0; i < count; ++i) {
                DesignRequest request;
                request.id = static_cast<uint64_t>(i + 1);
                request.tenant = tenant;
                const std::string name =
                    klass == "mix" ? kMix[i % 3] : klass;
                const auto parsed = requestClassFromName(name);
                if (!parsed) {
                    obs::logError("client.main", "unknown class",
                                  {{"class", name}});
                    return 2;
                }
                request.requestClass = *parsed;
                request.traceRef = traceRef;
                request.traceBranches = static_cast<uint64_t>(branches);
                request.options.order = static_cast<int>(order);
                requests.push_back(std::move(request));
            }
        }
        if (trace) {
            for (DesignRequest &request : requests)
                request.trace = true;
        }

        int failures = 0;
        std::vector<obs::SpanRecord> spans;
        for (const DesignRequest &request : requests) {
            // One request, up to 1 + netRetries tries: a broken or
            // timed-out connection is torn down and re-dialed (the
            // constructor backs off between its own attempts). A daemon
            // that is draining — or gone — yields a *structured*
            // rejection mirroring the admission controller's taxonomy,
            // not a raw socket error.
            DesignResponse response;
            bool answered = false;
            std::string lastError;
            long backoff = std::max<long>(1, backoffMs);
            for (long attempt = 0; attempt <= netRetries; ++attempt) {
                try {
                    if (!client) {
                        client = std::make_unique<serve::Client>(
                            host, static_cast<uint16_t>(port),
                            clientOptions);
                    }
                    response = client->design(request);
                    answered = true;
                    break;
                } catch (const serve::ServerError &e) {
                    // Protocol-level refusal: the daemon is up and
                    // spoke; retrying the same frame cannot help.
                    lastError = e.what();
                    break;
                } catch (const std::exception &e) {
                    // NetError / FrameError: connection is unusable.
                    lastError = e.what();
                    client.reset();
                    if (attempt < netRetries) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(backoff));
                        backoff = std::min(
                            backoff * 2,
                            std::max(backoff, clientOptions.backoffMaxMs));
                    }
                }
            }
            if (!answered) {
                response = DesignResponse{};
                response.id = request.id;
                response.ok = false;
                response.error.stage = "client.net";
                response.error.kind =
                    errorKindName(ErrorKind::BudgetExceeded);
                response.error.detail =
                    "daemon unreachable (draining or down) after " +
                    std::to_string(netRetries + 1) +
                    " attempts: " + lastError;
            }
            if (response.ok && !response.artifact.empty()) {
                std::cout << "id=" << response.id << " ok states="
                          << response.statesFinal << " millis="
                          << response.designMillis
                          << (response.degraded ? " degraded" : "")
                          << (response.fromCache ? " cached" : "")
                          << (response.trace.empty()
                                  ? ""
                                  : " spans=" +
                                      std::to_string(
                                          response.trace.size()))
                          << "\n";
            } else {
                ++failures;
                std::cout << "id=" << response.id << " FAILED ["
                          << response.error.stage << " "
                          << response.error.kind << "] "
                          << response.error.detail << "\n";
            }
            spans.insert(spans.end(), response.trace.begin(),
                         response.trace.end());
        }
        if (dumpTrace) {
            if (dumpTraceFile.empty()) {
                obs::renderTraceEvents(std::cout, spans);
                std::cout << "\n";
            } else {
                std::ofstream out(dumpTraceFile);
                if (!out) {
                    obs::logError("client.main", "cannot write trace file",
                                  {{"file", dumpTraceFile}});
                    return 1;
                }
                obs::renderTraceEvents(out, spans);
                out << "\n";
            }
        }
        if (failures > 0) {
            obs::logError(
                "client.main", "requests failed",
                {{"failed", static_cast<int64_t>(failures)},
                 {"total", static_cast<uint64_t>(requests.size())}});
            return 1;
        }
    } catch (const std::exception &e) {
        obs::logError("client.main", "fatal", {{"detail", e.what()}});
        return 1;
    }
    return 0;
}
