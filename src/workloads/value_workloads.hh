/**
 * @file
 * Synthetic load-value workloads.
 *
 * Stand-ins for the paper's value-prediction benchmark suite (groff,
 * gcc, li, go, perl). Each benchmark is a set of static load sites with
 * archetypal value behavior (constant, strided, phase-changing stride,
 * repeating non-arithmetic cycles, random). The loads are pushed through
 * the *real* two-delta stride predictor in src/vpred; the confidence
 * traces that train and evaluate the FSM estimators are that predictor's
 * genuine hit/miss streams. Cycle-structured loads produce periodic
 * correctness patterns that counting (SUD) estimators cannot express but
 * history-based FSMs can - the behavior Figure 2 measures.
 */

#ifndef AUTOFSM_WORKLOADS_VALUE_WORKLOADS_HH
#define AUTOFSM_WORKLOADS_VALUE_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/value_trace.hh"

namespace autofsm
{

/** Names of the five value-prediction benchmarks, paper order. */
const std::vector<std::string> &valueBenchmarkNames();

/**
 * Generate a dynamic load trace of roughly @p approx_loads records for
 * benchmark @p name. Deterministic per (name, approx_loads).
 */
ValueTrace makeValueTrace(const std::string &name,
                          size_t approx_loads = 300000);

} // namespace autofsm

#endif // AUTOFSM_WORKLOADS_VALUE_WORKLOADS_HH
