/**
 * @file
 * Process-wide memoizing cache over makeBranchTrace.
 *
 * makeBranchTrace is deterministic in its (benchmark, input,
 * approx_branches) triple, yet the seed code regenerated the same
 * trace in figure4, figure5, the trainer example and every bench.
 * cachedBranchTrace builds each distinct trace exactly once per
 * process and hands out shared ownership of the immutable result.
 *
 * Thread-safe: concurrent callers of the same key block on one build
 * (the first caller constructs, the rest wait on a shared future), so
 * a parallel benchmark fan-out never duplicates work. Hits and misses
 * are exported as autofsm_trace_cache_{hits,misses}_total.
 *
 * The cache is capped (setBranchTraceCacheCapacity): past the cap, the
 * least-recently-used *completed* entry is evicted — in-flight builds
 * are never dropped, so concurrent callers keep deduplicating — and
 * counted in autofsm_tracecache_evictions_total (shared with the
 * packed-trace memo, sim/packed_trace.hh). Outstanding shared_ptrs to
 * an evicted trace stay valid; only the cache's reference goes away.
 */

#ifndef AUTOFSM_WORKLOADS_TRACE_CACHE_HH
#define AUTOFSM_WORKLOADS_TRACE_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/branch_workloads.hh"

namespace autofsm
{

/** Point-in-time tallies of the process-wide trace cache. */
struct BranchTraceCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    /** Total dynamic branches held across cached traces. */
    uint64_t cachedBranches = 0;
    /** Completed entries dropped by the LRU cap. */
    uint64_t evictions = 0;
    /** The current cap (entries; 0 = unlimited). */
    size_t capacity = 0;
};

/**
 * The memoized equivalent of makeBranchTrace. The returned trace is
 * shared and immutable; callers must not cast away constness. Throws
 * whatever makeBranchTrace throws (and does not cache the failure).
 */
std::shared_ptr<const BranchTrace>
cachedBranchTrace(const std::string &name, WorkloadInput input,
                  size_t approx_branches = 500000);

/** Current cache tallies (process-wide, monotone hit/miss counts). */
BranchTraceCacheStats branchTraceCacheStats();

/**
 * Cap the cache at @p capacity entries (0 = unlimited). Lowering the
 * cap evicts LRU completed entries immediately. Returns the previous
 * cap. The default is 64 — roughly benchmarks x inputs x a few trace
 * lengths, far above any single experiment's working set.
 */
size_t setBranchTraceCacheCapacity(size_t capacity);

/**
 * Drop every cached trace (outstanding shared_ptrs stay valid) and
 * zero the stats. For tests; production code never needs it.
 */
void clearBranchTraceCache();

} // namespace autofsm

#endif // AUTOFSM_WORKLOADS_TRACE_CACHE_HH
