/**
 * @file
 * Synthetic memory access workloads for the cache-management
 * application (Section 2.4).
 *
 * Each workload mixes static loads with archetypal locality: streaming
 * (sequential, never reused - pure pollution), resident loops (small
 * arrays re-walked repeatedly - high reuse), and scattered accesses
 * over a large region (negligible reuse). Bypass predictors must learn,
 * per load PC, whether its fills pay off.
 */

#ifndef AUTOFSM_WORKLOADS_MEMORY_WORKLOADS_HH
#define AUTOFSM_WORKLOADS_MEMORY_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/value_trace.hh"

namespace autofsm
{

/** Names of the synthetic memory workloads. */
const std::vector<std::string> &memoryWorkloadNames();

/**
 * Generate roughly @p approx_accesses (pc, address) records for
 * workload @p name; `LoadRecord::value` carries the byte address.
 * Deterministic per (name, approx_accesses).
 */
ValueTrace makeMemoryTrace(const std::string &name,
                           size_t approx_accesses = 200000);

} // namespace autofsm

#endif // AUTOFSM_WORKLOADS_MEMORY_WORKLOADS_HH
