/**
 * @file
 * Synthetic branch workloads.
 *
 * Stand-ins for the paper's ATOM-traced binaries (SPEC95 compress,
 * ijpeg, vortex; MediaBench gsm, g721, gs). Each benchmark is a small
 * program model: a fixed round of static branch sites executed
 * repeatedly, where each site follows one of a few behavior archetypes
 * (biased-random, loop exit, globally-correlated, local pattern). The
 * archetype mixes are chosen so that each benchmark's qualitative
 * profile matches what the paper reports for the real program (see
 * DESIGN.md Section 2). Every benchmark has two inputs (train/test) that
 * share structure but differ in seed and data-dependent parameters, for
 * the custom-same vs custom-diff comparison.
 */

#ifndef AUTOFSM_WORKLOADS_BRANCH_WORKLOADS_HH
#define AUTOFSM_WORKLOADS_BRANCH_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/branch_trace.hh"

namespace autofsm
{

/** Which of the two synthetic inputs to run a benchmark with. */
enum class WorkloadInput
{
    Train, ///< input used for profiling / FSM training
    Test,  ///< distinct input used for reporting (custom-diff)
};

/** Names of the six branch benchmarks, in the paper's order. */
const std::vector<std::string> &branchBenchmarkNames();

/**
 * Generate a dynamic branch trace of roughly @p approx_branches events
 * for benchmark @p name (must be one of branchBenchmarkNames()).
 *
 * Deterministic: the same (name, input, approx_branches) triple always
 * yields the same trace.
 */
BranchTrace makeBranchTrace(const std::string &name, WorkloadInput input,
                            size_t approx_branches = 500000);

} // namespace autofsm

#endif // AUTOFSM_WORKLOADS_BRANCH_WORKLOADS_HH
