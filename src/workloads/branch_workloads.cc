#include "workloads/branch_workloads.hh"

#include <cassert>
#include <stdexcept>

#include "support/history.hh"
#include "support/rng.hh"

namespace autofsm
{

namespace
{

/** Behavior archetypes for one static branch site. */
enum class SiteKind
{
    /** Taken with fixed probability `bias`. */
    Biased,
    /**
     * Loop-exit branch: taken (trip-1) times then not-taken once per
     * loop instance; `trips` cycles per instance (data-dependent trip
     * counts).
     */
    Loop,
    /**
     * Globally-correlated branch: outcome = XOR of the global-history
     * bits at `taps` (1 = the most recent branch outcome), optionally
     * inverted, flipped with probability `noise`.
     */
    GlobalXor,
    /** Repeating local pattern, each bit flipped with `noise`. */
    LocalPattern,
};

/** Static description of one branch site in the program model. */
struct SiteSpec
{
    SiteKind kind;
    /** How many times the site appears per program round. */
    int repeat = 1;
    double bias = 0.5;        ///< Biased
    double noise = 0.0;       ///< GlobalXor / LocalPattern
    std::vector<int> trips;   ///< Loop: trip-count cycle
    std::vector<int> taps;    ///< GlobalXor
    bool invert = false;      ///< GlobalXor
    std::vector<int> pattern; ///< LocalPattern
};

/** Mutable per-site execution state. */
struct SiteState
{
    size_t trip_pos = 0;    // index into trips
    size_t pattern_pos = 0; // index into pattern
};

/**
 * Round-based program model: one "round" executes every site in order
 * (loops expanding to a full loop instance), which gives the global
 * history the kind of repeatable cross-branch structure real programs
 * have.
 */
class ProgramModel
{
  public:
    ProgramModel(std::vector<SiteSpec> sites, uint64_t seed)
        : sites_(std::move(sites)), states_(sites_.size()), rng_(seed),
          global_(16)
    {
        // Pre-warm the global history so GlobalXor sites are well
        // defined from the first round.
        for (int i = 0; i < 16; ++i)
            global_.push(static_cast<int>(rng_.below(2)));
    }

    BranchTrace
    generate(size_t approx_branches)
    {
        BranchTrace trace;
        trace.reserve(approx_branches + 64);
        while (trace.size() < approx_branches) {
            for (size_t i = 0; i < sites_.size(); ++i) {
                for (int r = 0; r < sites_[i].repeat; ++r)
                    executeSite(i, trace);
            }
        }
        return trace;
    }

  private:
    void
    emit(uint64_t pc, bool taken, BranchTrace &trace)
    {
        trace.push_back({pc, taken});
        global_.push(taken ? 1 : 0);
    }

    void
    executeSite(size_t idx, BranchTrace &trace)
    {
        const SiteSpec &spec = sites_[idx];
        SiteState &state = states_[idx];
        // Synthetic text addresses: 16-byte spaced branch sites.
        const uint64_t pc = 0x120000000ULL + 16 * idx;

        switch (spec.kind) {
          case SiteKind::Biased:
            emit(pc, rng_.chance(spec.bias), trace);
            break;
          case SiteKind::Loop: {
            const int trip = spec.trips[state.trip_pos];
            state.trip_pos = (state.trip_pos + 1) % spec.trips.size();
            for (int t = 0; t < trip - 1; ++t)
                emit(pc, true, trace);
            emit(pc, false, trace);
            break;
          }
          case SiteKind::GlobalXor: {
            int outcome = spec.invert ? 1 : 0;
            for (int tap : spec.taps)
                outcome ^= bitOf(global_.value(), tap - 1);
            if (spec.noise > 0.0 && rng_.chance(spec.noise))
                outcome ^= 1;
            emit(pc, outcome != 0, trace);
            break;
          }
          case SiteKind::LocalPattern: {
            int outcome = spec.pattern[state.pattern_pos];
            state.pattern_pos =
                (state.pattern_pos + 1) % spec.pattern.size();
            if (spec.noise > 0.0 && rng_.chance(spec.noise))
                outcome ^= 1;
            emit(pc, outcome != 0, trace);
            break;
          }
        }
    }

    std::vector<SiteSpec> sites_;
    std::vector<SiteState> states_;
    Rng rng_;
    HistoryRegister global_;
};

SiteSpec
biased(double bias, int repeat = 1)
{
    SiteSpec spec;
    spec.kind = SiteKind::Biased;
    spec.bias = bias;
    spec.repeat = repeat;
    return spec;
}

SiteSpec
loop(std::vector<int> trips, int repeat = 1)
{
    SiteSpec spec;
    spec.kind = SiteKind::Loop;
    spec.trips = std::move(trips);
    spec.repeat = repeat;
    return spec;
}

SiteSpec
globalXor(std::vector<int> taps, double noise, bool invert = false,
          int repeat = 1)
{
    SiteSpec spec;
    spec.kind = SiteKind::GlobalXor;
    spec.taps = std::move(taps);
    spec.noise = noise;
    spec.invert = invert;
    spec.repeat = repeat;
    return spec;
}

SiteSpec
localPattern(std::vector<int> pattern, double noise, int repeat = 1)
{
    SiteSpec spec;
    spec.kind = SiteKind::LocalPattern;
    spec.pattern = std::move(pattern);
    spec.noise = noise;
    spec.repeat = repeat;
    return spec;
}

/**
 * Benchmark program models. The archetype mixes target the qualitative
 * per-program profiles of Figure 5 (see DESIGN.md); `test` varies the
 * data-dependent parameters (seeds, some trip counts) while keeping the
 * program structure, mirroring a different program input.
 */
std::vector<SiteSpec>
buildSites(const std::string &name, bool test)
{
    if (name == "compress") {
        // One dominant, hard branch (data-dependent local pattern with
        // noise; consecutive instances so local and global history
        // coincide) plus noisy compare branches that keep the baseline
        // miss rate high.
        return {
            localPattern({1, 1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 0}, 0.10, 6),
            biased(0.60, 2),
            biased(0.45, 1),
            loop(test ? std::vector<int>{9, 9, 8} :
                        std::vector<int>{8, 9, 9}),
            biased(0.88, 4),
            biased(0.96, 6),
        };
    }
    if (name == "ijpeg") {
        // DCT/quantization-style branches strongly correlated with the
        // branch two back (the Figure 6 machine), with little local
        // structure. LGC gains nothing over gshare here.
        return {
            globalXor({2}, 0.02, false, 6),
            globalXor({2}, 0.03, true, 3),
            globalXor({3}, 0.04, false, 3),
            biased(0.92, 4),
            loop({64}),
            biased(0.50, 2),
        };
    }
    if (name == "vortex") {
        // Database-style: nearly every branch is a deterministic
        // function of recent global outcomes; per-branch 2-bit counters
        // see 50/50 chaos, global predictors see near-perfect structure.
        return {
            globalXor({1}, 0.005, false, 3),
            globalXor({2}, 0.005, true, 3),
            globalXor({1, 2}, 0.01, false, 3),
            globalXor({3}, 0.005, false, 2),
            globalXor({2, 4}, 0.01, true, 2),
            biased(0.97, 6),
            loop({16}),
        };
    }
    if (name == "gsm") {
        // Speech transcoding: deep global correlation (window lookback
        // of 4-7 branches) that small gshare tables dilute.
        return {
            globalXor({4}, 0.02, false, 4),
            globalXor({5}, 0.02, true, 3),
            globalXor({4, 7}, 0.03, false, 3),
            globalXor({6}, 0.02, false, 2),
            biased(0.88, 4),
            loop({40}),
            biased(0.50, 1),
        };
    }
    if (name == "g721") {
        // ADPCM decode: mostly strongly biased branches the XScale
        // already predicts well; one correlated branch is the remaining
        // headroom.
        return {
            biased(0.95, 6),
            biased(0.93, 4),
            biased(0.05, 3),
            globalXor({2}, 0.03, false, 2),
            loop(test ? std::vector<int>{25} : std::vector<int>{24}),
            biased(0.60, 1),
        };
    }
    if (name == "gs") {
        // Postscript interpreter: highly predictable overall; the
        // headroom is in a couple of branches perfectly correlated with
        // a data-dependent branch a few slots back (the Figure 7 shape:
        // 50/50 to a counter, deterministic given global history).
        return {
            biased(0.97, 8),
            biased(0.03, 4),
            biased(0.50, 1), // "data" branch the next two key off
            globalXor({1}, 0.02, false, 1),
            globalXor({2}, 0.02, true, 1),
            loop({24}),
            biased(0.93, 2),
            biased(0.98, 12),
        };
    }
    throw std::invalid_argument("unknown branch benchmark: " + name);
}

} // anonymous namespace

const std::vector<std::string> &
branchBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "compress", "ijpeg", "vortex", "gsm", "g721", "gs",
    };
    return names;
}

BranchTrace
makeBranchTrace(const std::string &name, WorkloadInput input,
                size_t approx_branches)
{
    const bool test = input == WorkloadInput::Test;
    // Distinct, fixed seeds per (benchmark, input).
    uint64_t seed = 0x5eed0000ULL + (test ? 0x100 : 0);
    for (char c : name)
        seed = seed * 131 + static_cast<unsigned char>(c);

    ProgramModel model(buildSites(name, test), seed);
    return model.generate(approx_branches);
}

} // namespace autofsm
