#include "workloads/trace_cache.hh"

#include <chrono>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hh"
#include "store/store.hh"
#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

using TracePtr = std::shared_ptr<const BranchTrace>;

struct TraceCache
{
    struct Entry
    {
        std::shared_future<TracePtr> future;
        /** Logical clock of the last lookup, for LRU eviction. */
        uint64_t lastUse = 0;
    };

    std::mutex mutex;
    /** Futures, not values: a key's first caller installs the future,
     *  builds outside the lock, and fulfills it; concurrent callers of
     *  the same key wait instead of rebuilding. */
    std::unordered_map<std::string, Entry> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t clock = 0;
    size_t capacity = 64;
};

/**
 * Drop LRU *completed* entries until the map fits @p capacity. Caller
 * holds the lock. In-flight builds are never evicted (their waiters
 * and the dedup contract depend on the entry), so the map can
 * transiently exceed the cap while many builds race; it shrinks on the
 * next insertion after they complete.
 */
template <typename Map>
size_t
evictOverCap(Map &entries, size_t capacity, uint64_t &evictions)
{
    size_t dropped = 0;
    while (capacity != 0 && entries.size() > capacity) {
        auto victim = entries.end();
        for (auto it = entries.begin(); it != entries.end(); ++it) {
            if (it->second.future.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready) {
                continue;
            }
            if (victim == entries.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == entries.end())
            break; // everything over the cap is still building
        entries.erase(victim);
        ++evictions;
        ++dropped;
    }
    return dropped;
}

TraceCache &
cache()
{
    static TraceCache instance;
    return instance;
}

void
publishEvictions(size_t dropped)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (dropped == 0 || !registry.enabled())
        return;
    registry
        .counter("autofsm_tracecache_evictions_total",
                 "Completed entries dropped by the LRU caps of the "
                 "process-wide trace caches (branch traces and packed "
                 "conversions).")
        .inc(dropped);
}

void
publishCacheCounters(bool hit)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (!registry.enabled())
        return;
    if (hit) {
        registry
            .counter("autofsm_trace_cache_hits_total",
                     "cachedBranchTrace calls served from the cache.")
            .inc();
    } else {
        registry
            .counter("autofsm_trace_cache_misses_total",
                     "cachedBranchTrace calls that built a new trace.")
            .inc();
    }
}

std::string
cacheKey(const std::string &name, WorkloadInput input,
         size_t approx_branches)
{
    return name + '\x1f' +
        std::to_string(static_cast<int>(input)) + '\x1f' +
        std::to_string(approx_branches);
}

/**
 * Disk-tier read-through: rebuild the AoS trace from a stored packed
 * blob. Any store failure (including an injected read fault) is a
 * clean miss — the caller falls back to generating the trace.
 */
TracePtr
loadTraceFromStore(const std::string &key)
{
    const std::shared_ptr<store::ArtifactStore> disk = store::globalStore();
    if (!disk)
        return nullptr;
    std::optional<store::TraceBlob> blob;
    try {
        blob = disk->loadTrace(key);
    } catch (...) {
        return nullptr;
    }
    if (!blob)
        return nullptr;
    auto trace = std::make_shared<BranchTrace>();
    trace->reserve(blob->count);
    for (uint64_t i = 0; i < blob->count; ++i) {
        trace->push_back(
            {blob->pcs[i],
             ((blob->takenWords[i >> 6] >> (i & 63)) & 1ULL) != 0});
    }
    return trace;
}

/** Best-effort write-through of a freshly built trace (SoA layout). */
void
saveTraceToStore(const std::string &key, const BranchTrace &trace)
{
    const std::shared_ptr<store::ArtifactStore> disk = store::globalStore();
    if (!disk)
        return;
    const size_t n = trace.size();
    std::vector<uint64_t> pcs(n);
    std::vector<uint64_t> words((n + 63) / 64, 0);
    for (size_t i = 0; i < n; ++i) {
        pcs[i] = trace[i].pc;
        if (trace[i].taken)
            words[i >> 6] |= 1ULL << (i & 63);
    }
    try {
        disk->putTrace(key, pcs, words, n);
    } catch (...) {
        // Injected mid-commit crash or real IO failure: already logged
        // and counted by the store; the in-memory trace stands.
    }
}

} // anonymous namespace

std::shared_ptr<const BranchTrace>
cachedBranchTrace(const std::string &name, WorkloadInput input,
                  size_t approx_branches)
{
    TraceCache &c = cache();
    const std::string key = cacheKey(name, input, approx_branches);

    std::shared_future<TracePtr> future;
    std::promise<TracePtr> promise;
    bool creator = false;
    size_t dropped = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        const auto it = c.entries.find(key);
        if (it != c.entries.end()) {
            it->second.lastUse = ++c.clock;
            future = it->second.future;
            ++c.hits;
        } else {
            future = promise.get_future().share();
            c.entries.emplace(key,
                              TraceCache::Entry{future, ++c.clock});
            dropped = evictOverCap(c.entries, c.capacity, c.evictions);
            creator = true;
            ++c.misses;
        }
    }
    publishCacheCounters(!creator);
    publishEvictions(dropped);

    if (creator) {
        try {
            AUTOFSM_FAILPOINT("workloads.trace_build");
            // Disk tier first: a persisted packed trace skips the
            // workload model entirely. Misses (and any store failure)
            // build as before, then spill best-effort for next time.
            TracePtr built = loadTraceFromStore(key);
            if (!built) {
                built = std::make_shared<const BranchTrace>(
                    makeBranchTrace(name, input, approx_branches));
                saveTraceToStore(key, *built);
            }
            promise.set_value(std::move(built));
        } catch (...) {
            // Don't cache the failure: the entry must be erased BEFORE
            // the promise is fulfilled. In the other order a concurrent
            // caller can find the entry after set_exception and latch
            // the already-failed future instead of getting the fresh
            // attempt this policy promises.
            {
                std::lock_guard<std::mutex> lock(c.mutex);
                c.entries.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

BranchTraceCacheStats
branchTraceCacheStats()
{
    TraceCache &c = cache();
    BranchTraceCacheStats stats;
    std::lock_guard<std::mutex> lock(c.mutex);
    stats.hits = c.hits;
    stats.misses = c.misses;
    stats.entries = c.entries.size();
    stats.evictions = c.evictions;
    stats.capacity = c.capacity;
    for (const auto &[key, entry] : c.entries) {
        if (entry.future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            // Completed builds only; in-flight entries count as zero.
            try {
                stats.cachedBranches += entry.future.get()->size();
            } catch (...) {
                // A failing entry is being erased by its creator.
            }
        }
    }
    return stats;
}

size_t
setBranchTraceCacheCapacity(size_t capacity)
{
    TraceCache &c = cache();
    size_t dropped = 0;
    size_t previous = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        previous = c.capacity;
        c.capacity = capacity;
        dropped = evictOverCap(c.entries, c.capacity, c.evictions);
    }
    publishEvictions(dropped);
    return previous;
}

void
clearBranchTraceCache()
{
    TraceCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.hits = 0;
    c.misses = 0;
    c.evictions = 0;
}

} // namespace autofsm
