#include "workloads/trace_cache.hh"

#include <chrono>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hh"
#include "support/failpoint.hh"

namespace autofsm
{

namespace
{

using TracePtr = std::shared_ptr<const BranchTrace>;

struct TraceCache
{
    std::mutex mutex;
    /** Futures, not values: a key's first caller installs the future,
     *  builds outside the lock, and fulfills it; concurrent callers of
     *  the same key wait instead of rebuilding. */
    std::unordered_map<std::string, std::shared_future<TracePtr>> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
};

TraceCache &
cache()
{
    static TraceCache instance;
    return instance;
}

void
publishCacheCounters(bool hit)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (!registry.enabled())
        return;
    if (hit) {
        registry
            .counter("autofsm_trace_cache_hits_total",
                     "cachedBranchTrace calls served from the cache.")
            .inc();
    } else {
        registry
            .counter("autofsm_trace_cache_misses_total",
                     "cachedBranchTrace calls that built a new trace.")
            .inc();
    }
}

std::string
cacheKey(const std::string &name, WorkloadInput input,
         size_t approx_branches)
{
    return name + '\x1f' +
        std::to_string(static_cast<int>(input)) + '\x1f' +
        std::to_string(approx_branches);
}

} // anonymous namespace

std::shared_ptr<const BranchTrace>
cachedBranchTrace(const std::string &name, WorkloadInput input,
                  size_t approx_branches)
{
    TraceCache &c = cache();
    const std::string key = cacheKey(name, input, approx_branches);

    std::shared_future<TracePtr> future;
    std::promise<TracePtr> promise;
    bool creator = false;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        const auto it = c.entries.find(key);
        if (it != c.entries.end()) {
            future = it->second;
            ++c.hits;
        } else {
            future = promise.get_future().share();
            c.entries.emplace(key, future);
            creator = true;
            ++c.misses;
        }
    }
    publishCacheCounters(!creator);

    if (creator) {
        try {
            AUTOFSM_FAILPOINT("workloads.trace_build");
            promise.set_value(std::make_shared<const BranchTrace>(
                makeBranchTrace(name, input, approx_branches)));
        } catch (...) {
            // Don't cache the failure: the entry must be erased BEFORE
            // the promise is fulfilled. In the other order a concurrent
            // caller can find the entry after set_exception and latch
            // the already-failed future instead of getting the fresh
            // attempt this policy promises.
            {
                std::lock_guard<std::mutex> lock(c.mutex);
                c.entries.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

BranchTraceCacheStats
branchTraceCacheStats()
{
    TraceCache &c = cache();
    BranchTraceCacheStats stats;
    std::lock_guard<std::mutex> lock(c.mutex);
    stats.hits = c.hits;
    stats.misses = c.misses;
    stats.entries = c.entries.size();
    for (const auto &[key, future] : c.entries) {
        if (future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            // Completed builds only; in-flight entries count as zero.
            try {
                stats.cachedBranches += future.get()->size();
            } catch (...) {
                // A failing entry is being erased by its creator.
            }
        }
    }
    return stats;
}

void
clearBranchTraceCache()
{
    TraceCache &c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.hits = 0;
    c.misses = 0;
}

} // namespace autofsm
