#include "workloads/memory_workloads.hh"

#include <stdexcept>

#include "support/rng.hh"

namespace autofsm
{

namespace
{

/** Address-stream archetypes for one static load. */
enum class AccessKind
{
    /** Sequential walk over an unbounded region: no reuse. */
    Stream,
    /** Repeated walk over a small resident array: high reuse. */
    LoopArray,
    /** Uniform random over a large region: negligible reuse. */
    Scatter,
};

struct AccessSpec
{
    AccessKind kind;
    int repeat = 1;
    uint64_t base = 0;
    uint64_t footprint = 4096; ///< LoopArray / Scatter region size
    uint64_t stride = 32;      ///< Stream / LoopArray step
};

struct AccessState
{
    uint64_t pos = 0;
};

class MemoryModel
{
  public:
    MemoryModel(std::vector<AccessSpec> sites, uint64_t seed)
        : sites_(std::move(sites)), states_(sites_.size()), rng_(seed)
    {}

    ValueTrace
    generate(size_t approx_accesses)
    {
        ValueTrace trace;
        trace.reserve(approx_accesses + 16);
        while (trace.size() < approx_accesses) {
            for (size_t i = 0; i < sites_.size(); ++i) {
                for (int r = 0; r < sites_[i].repeat; ++r)
                    executeSite(i, trace);
            }
        }
        return trace;
    }

  private:
    void
    executeSite(size_t idx, ValueTrace &trace)
    {
        const AccessSpec &spec = sites_[idx];
        AccessState &state = states_[idx];
        const uint64_t pc = 0x160000000ULL + 16 * idx;

        uint64_t addr = 0;
        switch (spec.kind) {
          case AccessKind::Stream:
            addr = spec.base + state.pos;
            state.pos += spec.stride;
            break;
          case AccessKind::LoopArray:
            addr = spec.base + (state.pos % spec.footprint);
            state.pos += spec.stride;
            break;
          case AccessKind::Scatter:
            addr = spec.base + (rng_.below(spec.footprint / 32)) * 32;
            break;
        }
        trace.push_back({pc, addr});
    }

    std::vector<AccessSpec> sites_;
    std::vector<AccessState> states_;
    Rng rng_;
};

AccessSpec
stream(uint64_t base, int repeat = 1, uint64_t stride = 32)
{
    return {AccessKind::Stream, repeat, base, 0, stride};
}

AccessSpec
loopArray(uint64_t base, uint64_t footprint, int repeat = 1,
          uint64_t stride = 32)
{
    return {AccessKind::LoopArray, repeat, base, footprint, stride};
}

AccessSpec
scatter(uint64_t base, uint64_t footprint, int repeat = 1)
{
    return {AccessKind::Scatter, repeat, base, footprint, 0};
}

std::vector<AccessSpec>
buildSites(const std::string &name)
{
    if (name == "stream_mix") {
        // Copy kernel polluting a resident working set: the classic
        // bypass win.
        return {
            loopArray(0x100000, 8192, 4),
            stream(0x40000000, 4),
            stream(0x80000000, 2, 64),
            loopArray(0x200000, 4096, 2),
        };
    }
    if (name == "stencil") {
        // Several resident planes plus one streaming input edge.
        return {
            loopArray(0x300000, 16384, 3),
            loopArray(0x380000, 16384, 3),
            stream(0xA0000000, 2),
            scatter(0x10000000, 1 << 22, 1),
        };
    }
    if (name == "hash_walk") {
        // Hash-table probing: scattered, low-reuse accesses dominate,
        // with a small hot header array.
        return {
            scatter(0x20000000, 1 << 24, 6),
            loopArray(0x400000, 2048, 2),
            stream(0xB0000000, 1),
        };
    }
    throw std::invalid_argument("unknown memory workload: " + name);
}

} // anonymous namespace

const std::vector<std::string> &
memoryWorkloadNames()
{
    static const std::vector<std::string> names = {
        "stream_mix", "stencil", "hash_walk",
    };
    return names;
}

ValueTrace
makeMemoryTrace(const std::string &name, size_t approx_accesses)
{
    uint64_t seed = 0x3E3E;
    for (char c : name)
        seed = seed * 131 + static_cast<unsigned char>(c);
    MemoryModel model(buildSites(name), seed);
    return model.generate(approx_accesses);
}

} // namespace autofsm
