#include "workloads/value_workloads.hh"

#include <cassert>
#include <stdexcept>

#include "support/rng.hh"

namespace autofsm
{

namespace
{

/** Value-behavior archetypes for one static load site. */
enum class LoadKind
{
    /** Always the same value: trivially predictable. */
    Constant,
    /** Arithmetic sequence with a fixed stride. */
    Stride,
    /**
     * Strided, but the stride changes to a new random value every
     * `phase` executions: bursts of hits separated by short miss runs.
     */
    PhasedStride,
    /**
     * Repeating non-arithmetic value cycle: a two-delta predictor hits
     * and misses in a fixed periodic pattern - structure a history FSM
     * can learn but a counting estimator cannot.
     */
    Cycle,
    /** Value replaced by a fresh random one with probability `churn`. */
    RandomWalk,
};

struct LoadSpec
{
    LoadKind kind;
    int repeat = 1;            ///< executions per program round
    uint64_t base = 0;         ///< Constant/Stride/PhasedStride start
    int64_t stride = 0;        ///< Stride
    int phase = 32;            ///< PhasedStride
    std::vector<uint64_t> cycle; ///< Cycle values
    double churn = 1.0;        ///< RandomWalk
};

struct LoadState
{
    uint64_t value = 0;
    int64_t stride = 0;
    int phase_pos = 0;
    size_t cycle_pos = 0;
    bool init = false;
};

class ValueProgramModel
{
  public:
    ValueProgramModel(std::vector<LoadSpec> sites, uint64_t seed)
        : sites_(std::move(sites)), states_(sites_.size()), rng_(seed)
    {}

    ValueTrace
    generate(size_t approx_loads)
    {
        ValueTrace trace;
        trace.reserve(approx_loads + 64);
        while (trace.size() < approx_loads) {
            for (size_t i = 0; i < sites_.size(); ++i) {
                for (int r = 0; r < sites_[i].repeat; ++r)
                    executeSite(i, trace);
            }
        }
        return trace;
    }

  private:
    void
    executeSite(size_t idx, ValueTrace &trace)
    {
        const LoadSpec &spec = sites_[idx];
        LoadState &state = states_[idx];
        const uint64_t pc = 0x140000000ULL + 16 * idx;

        if (!state.init) {
            state.value = spec.base;
            state.stride = spec.stride;
            state.init = true;
        }

        uint64_t value = 0;
        switch (spec.kind) {
          case LoadKind::Constant:
            value = spec.base;
            break;
          case LoadKind::Stride:
            value = state.value;
            state.value += static_cast<uint64_t>(spec.stride);
            break;
          case LoadKind::PhasedStride:
            value = state.value;
            state.value += static_cast<uint64_t>(state.stride);
            if (++state.phase_pos >= spec.phase) {
                state.phase_pos = 0;
                // New data region: new base-ish value and stride.
                state.stride = static_cast<int64_t>(rng_.below(64)) + 1;
                state.value += rng_.below(1 << 20);
            }
            break;
          case LoadKind::Cycle:
            value = spec.cycle[state.cycle_pos];
            state.cycle_pos = (state.cycle_pos + 1) % spec.cycle.size();
            break;
          case LoadKind::RandomWalk:
            if (rng_.chance(spec.churn))
                state.value = rng_.next();
            value = state.value;
            break;
        }
        trace.push_back({pc, value});
    }

    std::vector<LoadSpec> sites_;
    std::vector<LoadState> states_;
    Rng rng_;
};

LoadSpec
constantLoad(uint64_t base, int repeat = 1)
{
    LoadSpec spec;
    spec.kind = LoadKind::Constant;
    spec.base = base;
    spec.repeat = repeat;
    return spec;
}

LoadSpec
strideLoad(uint64_t base, int64_t stride, int repeat = 1)
{
    LoadSpec spec;
    spec.kind = LoadKind::Stride;
    spec.base = base;
    spec.stride = stride;
    spec.repeat = repeat;
    return spec;
}

LoadSpec
phasedLoad(uint64_t base, int phase, int repeat = 1)
{
    LoadSpec spec;
    spec.kind = LoadKind::PhasedStride;
    spec.base = base;
    spec.stride = 8;
    spec.phase = phase;
    spec.repeat = repeat;
    return spec;
}

LoadSpec
cycleLoad(std::vector<uint64_t> cycle, int repeat = 1)
{
    LoadSpec spec;
    spec.kind = LoadKind::Cycle;
    spec.cycle = std::move(cycle);
    spec.repeat = repeat;
    return spec;
}

LoadSpec
randomLoad(double churn, int repeat = 1)
{
    LoadSpec spec;
    spec.kind = LoadKind::RandomWalk;
    spec.churn = churn;
    spec.repeat = repeat;
    return spec;
}

/**
 * Benchmark mixes. All five share archetypes (programs share idioms -
 * this is what makes cross-training work) but differ in proportions and
 * parameters, giving each its own accuracy/coverage frontier.
 */
std::vector<LoadSpec>
buildLoads(const std::string &name)
{
    if (name == "gcc") {
        // Large working set: moderate predictability, many phase
        // changes, some pointer chasing.
        return {
            constantLoad(0x1000, 3),
            strideLoad(0x2000, 4, 3),
            phasedLoad(0x40000, 24, 4),
            cycleLoad({5, 5, 5, 9}, 3),
            cycleLoad({100, 200, 100, 350}, 2),
            randomLoad(0.8, 4),
            randomLoad(0.3, 2),
        };
    }
    if (name == "go") {
        // Notoriously unpredictable: heavy random component, short
        // phases.
        return {
            constantLoad(0x77, 2),
            phasedLoad(0x9000, 10, 3),
            cycleLoad({1, 2, 4, 8, 1, 3}, 2),
            randomLoad(0.9, 6),
            randomLoad(0.5, 3),
            strideLoad(0x100, 16, 1),
        };
    }
    if (name == "groff") {
        // Text processing: highly regular, long strided runs,
        // repeating token cycles.
        return {
            constantLoad(0x20, 4),
            strideLoad(0x8000, 1, 4),
            strideLoad(0xA000, 12, 2),
            cycleLoad({10, 20, 10, 20, 30}, 3),
            phasedLoad(0x30000, 48, 2),
            randomLoad(0.7, 2),
        };
    }
    if (name == "li") {
        // Lisp interpreter: cons-cell cycles and constants, bursty
        // pointer churn.
        return {
            constantLoad(0xC0DE, 4),
            cycleLoad({8, 8, 24}, 4),
            cycleLoad({3, 1, 4, 1, 5}, 2),
            phasedLoad(0x50000, 16, 2),
            randomLoad(0.6, 3),
            strideLoad(0x600, 8, 1),
        };
    }
    if (name == "perl") {
        // String/hash heavy: medium phases, mixed cycles, some noise.
        return {
            constantLoad(0x5EA1, 3),
            strideLoad(0x7000, 2, 2),
            cycleLoad({42, 42, 7, 42}, 3),
            phasedLoad(0x60000, 32, 3),
            randomLoad(0.85, 3),
            randomLoad(0.2, 2),
        };
    }
    throw std::invalid_argument("unknown value benchmark: " + name);
}

} // anonymous namespace

const std::vector<std::string> &
valueBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "gcc", "go", "groff", "li", "perl",
    };
    return names;
}

ValueTrace
makeValueTrace(const std::string &name, size_t approx_loads)
{
    uint64_t seed = 0xA11CE;
    for (char c : name)
        seed = seed * 131 + static_cast<unsigned char>(c);
    ValueProgramModel model(buildLoads(name), seed);
    return model.generate(approx_loads);
}

} // namespace autofsm
