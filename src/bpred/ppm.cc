#include "bpred/ppm.hh"

#include <cassert>

namespace autofsm
{

PpmPredictor::PpmPredictor(const PpmConfig &config, const AreaCosts &costs)
    : config_(config), costs_(costs)
{
    assert(config.maxOrder >= 1 && config.maxOrder <= 24);
    assert(config.log2Entries >= 1 && config.log2Entries <= 22);
    tables_.resize(static_cast<size_t>(config.maxOrder));
    for (auto &table : tables_)
        table.assign(1ULL << config.log2Entries, Counts{});
}

size_t
PpmPredictor::indexOf(uint64_t pc, int order) const
{
    const uint64_t mask = (1ULL << config_.log2Entries) - 1;
    const uint64_t context = history_ & ((1ULL << order) - 1);
    // Order-salted hash keeps contexts of different lengths apart even
    // when they share a table geometry.
    uint64_t h = (pc >> 2) ^ (context * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<uint64_t>(order) << 56);
    h ^= h >> 33;
    return static_cast<size_t>(h & mask);
}

bool
PpmPredictor::predict(uint64_t pc) const
{
    // Longest context with enough evidence wins (partial matching).
    for (int order = config_.maxOrder; order >= 1; --order) {
        const Counts &entry =
            tables_[static_cast<size_t>(order - 1)][indexOf(pc, order)];
        const int total = entry.taken + entry.notTaken;
        if (total >= config_.minSamples && entry.taken != entry.notTaken)
            return entry.taken > entry.notTaken;
    }
    return false; // cold: predict not-taken, like the BTB-miss default
}

void
PpmPredictor::update(uint64_t pc, bool taken)
{
    for (int order = 1; order <= config_.maxOrder; ++order) {
        Counts &entry =
            tables_[static_cast<size_t>(order - 1)][indexOf(pc, order)];
        uint16_t &hit = taken ? entry.taken : entry.notTaken;
        if (hit == 0xffff) {
            // Halve both counts to keep the ratio while avoiding wrap.
            entry.taken = static_cast<uint16_t>(entry.taken >> 1);
            entry.notTaken = static_cast<uint16_t>(entry.notTaken >> 1);
        }
        ++hit;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

double
PpmPredictor::area() const
{
    // 2 x 16-bit frequency counters per entry, per order table.
    const double bits = static_cast<double>(config_.maxOrder) *
        static_cast<double>(1ULL << config_.log2Entries) * 32.0;
    return tableArea(bits + config_.btbBits, costs_);
}

std::string
PpmPredictor::name() const
{
    return "ppm-m" + std::to_string(config_.maxOrder) + "-2^" +
        std::to_string(config_.log2Entries);
}

} // namespace autofsm
