/**
 * @file
 * Profile-guided training of custom per-branch FSM predictors
 * (Section 7.3).
 *
 * Step 1: profile the application with the baseline XScale predictor to
 * find the branches causing the most mispredictions. Step 2: for each
 * such branch, build a Markov model over the *global* history register
 * as seen right before the branch executes. Step 3: run the Section 4
 * design flow per branch.
 */

#ifndef AUTOFSM_BPRED_TRAINER_HH
#define AUTOFSM_BPRED_TRAINER_HH

#include <cstdint>
#include <vector>

#include "bpred/btb.hh"
#include "flow/design_flow.hh"
#include "fsmgen/designer.hh"
#include "fsmgen/profile.hh"
#include "synth/area.hh"
#include "trace/branch_trace.hh"

namespace autofsm
{

/** Knobs of the custom-predictor training flow. */
struct CustomTrainingOptions
{
    /** Global history length; the paper uses 9 throughout. */
    int historyLength = 9;
    /** How many of the worst branches to build FSMs for. */
    int maxCustomBranches = 12;
    /** Pattern knobs (threshold 0.5, 1% don't-care mass by default). */
    PatternOptions patterns;
    /** Logic minimizer selection. */
    MinimizeAlgo minimizer = MinimizeAlgo::Auto;
    /** Baseline used for the misprediction profile. */
    BtbConfig baseline;
    /**
     * Worker threads for the per-branch design fan-out (0 = one per
     * hardware core). Results are deterministic for any value.
     */
    unsigned threads = 0;
};

/**
 * Whole-trace tallies of the baseline profiling pass (step 1). The
 * sweep engine's custom-same curve replays the training trace against
 * the same baseline the profiler already simulated, so recording the
 * pass here lets that curve skip the BTB chain entirely.
 */
struct BaselineBtbProfile
{
    /** True once a profiling pass has filled the struct. */
    bool valid = false;
    /** Baseline mispredictions over the whole training trace. */
    uint64_t mispredicts = 0;
    /** Lookup/hit tallies of the pass (telemetry parity). */
    uint64_t lookups = 0;
    uint64_t hits = 0;
    /** The baseline's area (default AreaCosts) and name. */
    double area = 0.0;
    std::string name;
};

/** One candidate branch with its trained global-history Markov model. */
struct BranchModel
{
    uint64_t pc = 0;
    /** Baseline mispredictions in the profiling run (ranking key). */
    uint64_t baselineMisses = 0;
    MarkovModel model{1};
    /** Record indices in the training trace where this branch executes. */
    std::vector<uint32_t> positions;
};

/** One trained branch: who it is, how bad it was, and its machine. */
struct TrainedBranch
{
    uint64_t pc = 0;
    /** Baseline mispredictions in the profiling run (ranking key). */
    uint64_t baselineMisses = 0;
    /** Full design-flow artifacts, including the final FSM. */
    FsmDesignResult design;
    /** Per-stage wall-clock and state counts of this branch's design. */
    FlowTrace trace;
    /**
     * Synthesis estimate of the final FSM (default AreaCosts), computed
     * once here so curve assembly and sampling never re-synthesize the
     * machine.
     */
    AreaEstimate fsmArea;
    /**
     * Record indices in the training trace where this branch executes,
     * recorded during model building. With a BaselineBtbProfile these
     * let the custom-same replay skip its baseline pass.
     */
    std::vector<uint32_t> trainPositions;
};

/**
 * One candidate branch carrying a whole order sweep: its models at
 * every requested history length, derived from a single profiling pass
 * (fsmgen/profile.hh fold sweeps).
 */
struct BranchModelSweep
{
    uint64_t pc = 0;
    /** Baseline mispredictions in the profiling run (ranking key). */
    uint64_t baselineMisses = 0;
    /** Per-order models, each bit-identical to training that order. */
    MultiOrderProfile profile;
    /** Record indices in the training trace where this branch executes. */
    std::vector<uint32_t> positions;
};

/**
 * Profiling + model-building front half of the training flow: rank
 * branches by baseline mispredictions and train one global-history
 * Markov model per selected branch (steps 1-2 of Section 7.3).
 *
 * @return Candidate branches sorted by decreasing baseline
 *         mispredictions, each carrying its trained model and its
 *         record positions in @p trace. When @p profile is non-null it
 *         receives the baseline pass's whole-trace tallies.
 */
std::vector<BranchModel>
collectBranchModels(const BranchTrace &trace,
                    const CustomTrainingOptions &options = {},
                    BaselineBtbProfile *profile = nullptr);

/**
 * Sweep form of collectBranchModels: one baseline profiling pass and
 * one trace walk produce, for every selected branch, its Markov model
 * at *every* order of @p orders (counted once at max(orders), lower
 * orders fold-derived — see fsmgen/profile.hh). Each model is
 * bit-identical to what collectBranchModels yields with
 * options.historyLength set to that order. options.historyLength is
 * ignored here; everything else (baseline geometry, branch budget)
 * applies unchanged.
 */
std::vector<BranchModelSweep>
collectBranchModelSweeps(const BranchTrace &trace,
                         const std::vector<int> &orders,
                         const CustomTrainingOptions &options = {},
                         BaselineBtbProfile *profile = nullptr);

/**
 * Profile @p trace with the baseline predictor and design one FSM per
 * worst branch. The per-branch designs are fanned out across
 * options.threads workers via BatchDesigner; the result is bit-identical
 * to the serial flow for any thread count.
 *
 * @return Trained branches sorted by decreasing baseline mispredictions
 *         (the order in which Figure 5 adds custom entries). When
 *         @p profile is non-null it receives the baseline pass's
 *         whole-trace tallies; together with each branch's
 *         trainPositions these let evaluateFigure5's custom-same curve
 *         reuse the profiling pass instead of re-simulating the BTB.
 */
std::vector<TrainedBranch>
trainCustomPredictors(const BranchTrace &trace,
                      const CustomTrainingOptions &options = {},
                      BaselineBtbProfile *profile = nullptr);

/**
 * Per-branch baseline misprediction counts for @p trace under a fresh
 * XScale BTB of @p baseline geometry (exposed for tests and benches).
 */
std::vector<std::pair<uint64_t, uint64_t>>
profileBaselineMisses(const BranchTrace &trace,
                      const BtbConfig &baseline = {},
                      BaselineBtbProfile *profile = nullptr);

} // namespace autofsm

#endif // AUTOFSM_BPRED_TRAINER_HH
