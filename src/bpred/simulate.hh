/**
 * @file
 * Trace-driven simulation of branch predictors.
 */

#ifndef AUTOFSM_BPRED_SIMULATE_HH
#define AUTOFSM_BPRED_SIMULATE_HH

#include <string>
#include <unordered_map>

#include "bpred/predictor.hh"
#include "trace/branch_trace.hh"

namespace autofsm
{

/** Outcome of one simulation run. */
struct BpredSimResult
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;

    /** Misprediction rate in [0,1]. */
    double
    missRate() const
    {
        return branches == 0
            ? 0.0
            : static_cast<double>(mispredicts) /
                static_cast<double>(branches);
    }
};

/**
 * Publish one run's branch/mispredict tallies to the global metrics
 * registry, labelled with @p predictor_name. Called once per finished
 * run by simulateBranchPredictor and the sweep kernels, so both paths
 * export identical counters.
 */
void publishBpredRun(const std::string &predictor_name,
                     const BpredSimResult &result);

/** Drive @p predictor with @p trace (predict, then update, per record). */
BpredSimResult simulateBranchPredictor(BranchPredictor &predictor,
                                       const BranchTrace &trace);

/**
 * Like simulateBranchPredictor, additionally collecting per-static-
 * branch misprediction counts into @p per_branch.
 */
BpredSimResult
simulateBranchPredictor(BranchPredictor &predictor, const BranchTrace &trace,
                        std::unordered_map<uint64_t, uint64_t> &per_branch);

} // namespace autofsm

#endif // AUTOFSM_BPRED_SIMULATE_HH
