/**
 * @file
 * Local/Global Chooser (LGC) predictor, "similar to the predictor found
 * in the Alpha 21264" (Section 7.5): a two-level local predictor, a
 * global-history predictor, and a meta chooser that picks between them.
 */

#ifndef AUTOFSM_BPRED_LOCAL_GLOBAL_HH
#define AUTOFSM_BPRED_LOCAL_GLOBAL_HH

#include <vector>

#include "bpred/predictor.hh"
#include "support/sud_counter.hh"
#include "synth/area.hh"

namespace autofsm
{

/**
 * LGC geometry, scaled by one knob: all four structures (local history
 * table, local pattern table, global table, chooser) have 2^log2Entries
 * entries, and local/global history lengths equal log2Entries.
 */
struct LgcConfig
{
    int log2Entries = 10;
    /** Target-BTB storage charged for comparability (tag + target). */
    double btbBits = 128.0 * (23 + 32);
};

/** The Local Global Chooser predictor. */
class LocalGlobalChooser final : public BranchPredictor
{
  public:
    explicit LocalGlobalChooser(const LgcConfig &config = {},
                                const AreaCosts &costs = {});

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

  private:
    bool localPredict(uint64_t pc) const;
    bool globalPredict() const;
    size_t pcIndex(uint64_t pc) const;
    size_t globalIndex() const;

    LgcConfig config_;
    AreaCosts costs_;
    std::vector<uint64_t> localHistory_;
    std::vector<SudCounter> localTable_;
    std::vector<SudCounter> globalTable_;
    /** Chooser: high value selects the global prediction. */
    std::vector<SudCounter> chooser_;
    uint64_t history_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_LOCAL_GLOBAL_HH
