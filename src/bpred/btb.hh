/**
 * @file
 * XScale-style coupled branch target buffer (Section 7.2).
 *
 * Intel's XScale has a 128-entry BTB; each entry carries a 2-bit
 * saturating counter used for conditional branch prediction, and a BTB
 * miss predicts not-taken. This is the baseline the customized
 * architecture extends.
 */

#ifndef AUTOFSM_BPRED_BTB_HH
#define AUTOFSM_BPRED_BTB_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "bpred/predictor.hh"
#include "support/sud_counter.hh"
#include "synth/area.hh"

namespace autofsm
{

/** Geometry of the coupled BTB. */
struct BtbConfig
{
    int entries = 128;  ///< direct-mapped entry count (power of two)
    int tagBits = 23;   ///< tag width stored per entry
    int targetBits = 32; ///< branch target width stored per entry
};

/** Direct-mapped BTB with a 2-bit counter per entry. */
class XScaleBtb final : public BranchPredictor
{
  public:
    explicit XScaleBtb(const BtbConfig &config = {},
                       const AreaCosts &costs = {});

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

    /** True iff @p pc currently hits in the BTB. */
    bool hit(uint64_t pc) const;

    /** Lifetime predict() calls (telemetry: autofsm_btb_lookups_total). */
    uint64_t
    lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }

    /** Lifetime tag hits among those lookups. */
    uint64_t
    hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }

    const BtbConfig &config() const { return config_; }

    /** Storage bits of one entry (tag + target + counter). */
    double entryBits() const;

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        SudCounter counter{SudConfig::twoBit(), 1};
    };

    size_t indexOf(uint64_t pc) const;
    uint64_t tagOf(uint64_t pc) const;

    BtbConfig config_;
    AreaCosts costs_;
    std::vector<Entry> entries_;
    /** Tallied in predict() (const, hence mutable); relaxed atomics so
     *  an instance shared across threads tallies without a data race.
     *  The table itself is still single-writer via update(). Callers
     *  export the totals in bulk via publishBtbMetrics(). */
    mutable std::atomic<uint64_t> lookups_{0};
    mutable std::atomic<uint64_t> hits_{0};
};

/**
 * Export @p btb's lookup/hit tallies to the global metrics registry
 * (autofsm_btb_lookups_total / autofsm_btb_hits_total, labelled with the
 * BTB's name). Call once per finished simulation pass.
 */
void publishBtbMetrics(const XScaleBtb &btb);

/**
 * Same export for callers that tally outside an XScaleBtb instance
 * (e.g. the sweep engine's BtbKernel).
 */
void publishBtbMetrics(const std::string &btb_name, uint64_t lookups,
                       uint64_t hits);

} // namespace autofsm

#endif // AUTOFSM_BPRED_BTB_HH
