/**
 * @file
 * General-purpose counter design (Section 1 / Section 6 methodology
 * applied to branch prediction).
 *
 * Instead of customizing one FSM per branch, design ONE counter from
 * the aggregate per-branch outcome behavior of a whole suite, and use
 * it in place of the 2-bit counter in every BTB entry - "customized to
 * achieve the best average performance over the design workload". The
 * Markov model is built over each static branch's *local* outcome
 * stream (that is what a per-entry counter sees at runtime).
 */

#ifndef AUTOFSM_BPRED_COUNTER_DESIGN_HH
#define AUTOFSM_BPRED_COUNTER_DESIGN_HH

#include "fsmgen/designer.hh"
#include "trace/branch_trace.hh"

namespace autofsm
{

/**
 * Accumulate, into @p model, every (local history, outcome) pair of
 * every static branch in @p trace. Each branch keeps its own history
 * register of the model's order; call repeatedly to aggregate a suite.
 */
void collectLocalOutcomeModel(const BranchTrace &trace, MarkovModel &model);

/**
 * Design a general-purpose prediction counter of the given history
 * length from aggregate traces (convenience wrapper: collect + design).
 */
FsmDesignResult designGeneralCounter(const std::vector<BranchTrace> &traces,
                                     const FsmDesignOptions &options);

} // namespace autofsm

#endif // AUTOFSM_BPRED_COUNTER_DESIGN_HH
