/**
 * @file
 * Common interface of the branch direction predictors compared in
 * Figure 5 (XScale bimodal BTB, gshare, local/global chooser, and the
 * customized architecture).
 */

#ifndef AUTOFSM_BPRED_PREDICTOR_HH
#define AUTOFSM_BPRED_PREDICTOR_HH

#include <cstdint>
#include <string>

namespace autofsm
{

/** A trace-driven conditional branch direction predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction for the branch at @p pc. */
    virtual bool predict(uint64_t pc) const = 0;

    /** Train with the resolved direction of the branch at @p pc. */
    virtual void update(uint64_t pc, bool taken) = 0;

    /** Estimated implementation area, in the repo's gate units. */
    virtual double area() const = 0;

    /** Human-readable configuration name for reports. */
    virtual std::string name() const = 0;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_PREDICTOR_HH
