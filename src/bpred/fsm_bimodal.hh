/**
 * @file
 * Bimodal BTB whose per-entry counter is a generated FSM.
 *
 * The drop-in general-purpose use of the design flow: identical
 * geometry to the XScale BTB, but each entry holds an instance of one
 * automatically designed prediction counter (all instances share the
 * immutable transition table). Allocation resets the entry's machine to
 * its start state.
 */

#ifndef AUTOFSM_BPRED_FSM_BIMODAL_HH
#define AUTOFSM_BPRED_FSM_BIMODAL_HH

#include <vector>

#include "bpred/btb.hh"
#include "fsmgen/predictor_fsm.hh"

namespace autofsm
{

/** Direct-mapped BTB with a generated-FSM counter per entry. */
class FsmBimodalBtb : public BranchPredictor
{
  public:
    FsmBimodalBtb(const Dfa &counter, const BtbConfig &config = {},
                  const AreaCosts &costs = {});

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

    /** States in the shared counter machine. */
    int counterStates() const { return table_->numStates(); }

  private:
    struct Entry
    {
        bool valid = false;
        uint64_t tag = 0;
        int state = 0;
    };

    size_t indexOf(uint64_t pc) const;
    uint64_t tagOf(uint64_t pc) const;

    BtbConfig config_;
    AreaCosts costs_;
    std::shared_ptr<const FsmTable> table_;
    std::vector<Entry> entries_;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_FSM_BIMODAL_HH
