/**
 * @file
 * McFarling's gshare predictor [26], one of the Figure 5 comparison
 * points: a table of 2-bit counters indexed by PC XOR global history.
 */

#ifndef AUTOFSM_BPRED_GSHARE_HH
#define AUTOFSM_BPRED_GSHARE_HH

#include <vector>

#include "bpred/predictor.hh"
#include "support/sud_counter.hh"
#include "synth/area.hh"

namespace autofsm
{

/** Gshare geometry: table of 2^log2Entries 2-bit counters. */
struct GshareConfig
{
    int log2Entries = 12;
    /** Global history bits folded into the index (<= log2Entries). */
    int historyBits = 12;
    /**
     * Storage bits charged for the accompanying target BTB (tag +
     * target, no counters), so areas are comparable with the coupled
     * XScale design.
     */
    double btbBits = 128.0 * (23 + 32);
};

/** The gshare predictor. */
class Gshare final : public BranchPredictor
{
  public:
    explicit Gshare(const GshareConfig &config = {},
                    const AreaCosts &costs = {});

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

  private:
    size_t indexOf(uint64_t pc) const;

    GshareConfig config_;
    AreaCosts costs_;
    std::vector<SudCounter> table_;
    uint64_t history_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_GSHARE_HH
