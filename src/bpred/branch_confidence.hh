/**
 * @file
 * Branch confidence estimation (Sections 2.5 and 3.1).
 *
 * Jacobsen/Rotenberg/Smith-style confidence: alongside a branch
 * predictor, a per-branch estimator watches whether the predictor was
 * right and classifies each upcoming prediction as high or low
 * confidence. Manne et al. use exactly this to gate the fetch unit on
 * low-confidence branches (pipeline gating). Both counter-based and
 * generated-FSM estimators are provided, plus Grunwald et al.'s
 * evaluation metrics (PVP, PVN, sensitivity, specificity).
 */

#ifndef AUTOFSM_BPRED_BRANCH_CONFIDENCE_HH
#define AUTOFSM_BPRED_BRANCH_CONFIDENCE_HH

#include <memory>
#include <vector>

#include "bpred/predictor.hh"
#include "fsmgen/markov.hh"
#include "fsmgen/predictor_fsm.hh"
#include "support/sud_counter.hh"
#include "trace/branch_trace.hh"

namespace autofsm
{

/** Per-branch confidence estimator bank over a hashed table. */
class BranchConfidenceEstimator
{
  public:
    virtual ~BranchConfidenceEstimator() = default;

    /** Is the upcoming prediction for @p pc high-confidence? */
    virtual bool confident(uint64_t pc) const = 0;

    /** Record whether the prediction for @p pc was correct. */
    virtual void update(uint64_t pc, bool correct) = 0;
};

/** Table of SUD (or resetting) counters indexed by PC. */
class SudBranchConfidence : public BranchConfidenceEstimator
{
  public:
    SudBranchConfidence(int log2_entries, const SudConfig &config);

    bool confident(uint64_t pc) const override;
    void update(uint64_t pc, bool correct) override;

  private:
    size_t indexOf(uint64_t pc) const;

    int log2Entries_;
    std::vector<SudCounter> counters_;
};

/** Table of generated-FSM estimators sharing one transition table. */
class FsmBranchConfidence : public BranchConfidenceEstimator
{
  public:
    FsmBranchConfidence(int log2_entries, const Dfa &fsm);

    bool confident(uint64_t pc) const override;
    void update(uint64_t pc, bool correct) override;

  private:
    size_t indexOf(uint64_t pc) const;

    int log2Entries_;
    std::shared_ptr<const FsmTable> table_;
    std::vector<PredictorFsm> machines_;
};

/**
 * Grunwald et al.'s confidence metrics. Convention: "positive" = high
 * confidence, the event being detected = the prediction being correct.
 */
struct ConfidenceMetrics
{
    uint64_t branches = 0;
    uint64_t correct = 0;            ///< predictor was right
    uint64_t highConfidence = 0;     ///< marked confident
    uint64_t highAndCorrect = 0;     ///< confident and right

    /** PVP: P(correct | high confidence). */
    double pvp() const;
    /** PVN: P(incorrect | low confidence). */
    double pvn() const;
    /** Sensitivity: P(high confidence | correct). */
    double sensitivity() const;
    /** Specificity: P(low confidence | incorrect). */
    double specificity() const;
};

/**
 * Run @p predictor over @p trace with @p estimator watching its
 * correctness stream; returns the aggregated metrics. The estimator is
 * updated on every branch with whether the prediction was right.
 */
ConfidenceMetrics
measureBranchConfidence(BranchPredictor &predictor,
                        BranchConfidenceEstimator &estimator,
                        const BranchTrace &trace);

/**
 * Training pass for FSM branch confidence: per-table-entry Markov
 * model of the predictor's correctness stream (the branch analogue of
 * collectConfidenceModels).
 */
void collectBranchConfidenceModel(BranchPredictor &predictor,
                                  const BranchTrace &trace,
                                  int log2_entries, MarkovModel &model);

} // namespace autofsm

#endif // AUTOFSM_BPRED_BRANCH_CONFIDENCE_HH
