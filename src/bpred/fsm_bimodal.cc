#include "bpred/fsm_bimodal.hh"

#include <algorithm>
#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

FsmBimodalBtb::FsmBimodalBtb(const Dfa &counter, const BtbConfig &config,
                             const AreaCosts &costs)
    : config_(config), costs_(costs),
      table_(std::make_shared<const FsmTable>(counter)),
      entries_(static_cast<size_t>(config.entries))
{
    assert(config.entries > 0 &&
           (config.entries & (config.entries - 1)) == 0);
    for (auto &entry : entries_)
        entry.state = table_->start();
}

size_t
FsmBimodalBtb::indexOf(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) &
                               static_cast<uint64_t>(config_.entries - 1));
}

uint64_t
FsmBimodalBtb::tagOf(uint64_t pc) const
{
    const int index_bits = ceilLog2(static_cast<uint32_t>(config_.entries));
    return (pc >> (2 + index_bits)) & lowMask(config_.tagBits);
}

bool
FsmBimodalBtb::predict(uint64_t pc) const
{
    const Entry &entry = entries_[indexOf(pc)];
    if (!entry.valid || entry.tag != tagOf(pc))
        return false; // BTB miss: predict not-taken
    return table_->output(entry.state) != 0;
}

void
FsmBimodalBtb::update(uint64_t pc, bool taken)
{
    Entry &entry = entries_[indexOf(pc)];
    if (!entry.valid || entry.tag != tagOf(pc)) {
        entry.valid = true;
        entry.tag = tagOf(pc);
        entry.state = table_->start();
    }
    entry.state = table_->next(entry.state, taken ? 1 : 0);
}

double
FsmBimodalBtb::area() const
{
    // Each entry stores tag + target + the counter state bits; the
    // (shared) next-state logic is charged once per entry as well, as a
    // replicated-per-entry hardware counter would be.
    const int state_bits =
        std::max(1, ceilLog2(static_cast<uint32_t>(table_->numStates())));
    const double entry_bits = static_cast<double>(
        config_.tagBits + config_.targetBits + state_bits);
    return tableArea(entry_bits * config_.entries, costs_);
}

std::string
FsmBimodalBtb::name() const
{
    return "fsm-bimodal" + std::to_string(config_.entries) + "-s" +
        std::to_string(table_->numStates());
}

} // namespace autofsm
