#include "bpred/local_global.hh"

#include <cassert>

namespace autofsm
{

LocalGlobalChooser::LocalGlobalChooser(const LgcConfig &config,
                                       const AreaCosts &costs)
    : config_(config), costs_(costs)
{
    assert(config.log2Entries >= 1 && config.log2Entries <= 20);
    const size_t n = 1ULL << config.log2Entries;
    localHistory_.assign(n, 0);
    localTable_.assign(n, SudCounter(SudConfig::twoBit(), 1));
    globalTable_.assign(n, SudCounter(SudConfig::twoBit(), 1));
    chooser_.assign(n, SudCounter(SudConfig::twoBit(), 1));
}

size_t
LocalGlobalChooser::pcIndex(uint64_t pc) const
{
    return static_cast<size_t>((pc >> 2) &
                               ((1ULL << config_.log2Entries) - 1));
}

size_t
LocalGlobalChooser::globalIndex() const
{
    return static_cast<size_t>(history_ &
                               ((1ULL << config_.log2Entries) - 1));
}

bool
LocalGlobalChooser::localPredict(uint64_t pc) const
{
    const uint64_t hist = localHistory_[pcIndex(pc)] &
        ((1ULL << config_.log2Entries) - 1);
    return localTable_[static_cast<size_t>(hist)].predict();
}

bool
LocalGlobalChooser::globalPredict() const
{
    return globalTable_[globalIndex()].predict();
}

bool
LocalGlobalChooser::predict(uint64_t pc) const
{
    return chooser_[globalIndex()].predict() ? globalPredict()
                                             : localPredict(pc);
}

void
LocalGlobalChooser::update(uint64_t pc, bool taken)
{
    const bool local_pred = localPredict(pc);
    const bool global_pred = globalPredict();

    // Chooser trains only when the components disagree.
    if (local_pred != global_pred)
        chooser_[globalIndex()].update(global_pred == taken);

    const uint64_t mask = (1ULL << config_.log2Entries) - 1;
    const uint64_t local_hist = localHistory_[pcIndex(pc)] & mask;
    localTable_[static_cast<size_t>(local_hist)].update(taken);
    globalTable_[globalIndex()].update(taken);

    localHistory_[pcIndex(pc)] =
        ((local_hist << 1) | (taken ? 1 : 0)) & mask;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

double
LocalGlobalChooser::area() const
{
    const double n = static_cast<double>(1ULL << config_.log2Entries);
    // LHT (history bits per entry) + three 2-bit counter tables.
    const double bits =
        n * config_.log2Entries + 3.0 * 2.0 * n + config_.btbBits;
    return tableArea(bits, costs_);
}

std::string
LocalGlobalChooser::name() const
{
    return "lgc-2^" + std::to_string(config_.log2Entries);
}

} // namespace autofsm
