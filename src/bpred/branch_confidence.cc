#include "bpred/branch_confidence.hh"

#include <cassert>

#include "support/bits.hh"
#include "support/history.hh"

namespace autofsm
{

namespace
{

size_t
hashPc(uint64_t pc, int log2_entries)
{
    uint64_t h = (pc >> 2) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<size_t>(h & ((1ULL << log2_entries) - 1));
}

} // anonymous namespace

SudBranchConfidence::SudBranchConfidence(int log2_entries,
                                         const SudConfig &config)
    : log2Entries_(log2_entries),
      counters_(1ULL << log2_entries, SudCounter(config))
{
    assert(log2_entries >= 1 && log2_entries <= 20);
}

size_t
SudBranchConfidence::indexOf(uint64_t pc) const
{
    return hashPc(pc, log2Entries_);
}

bool
SudBranchConfidence::confident(uint64_t pc) const
{
    return counters_[indexOf(pc)].predict();
}

void
SudBranchConfidence::update(uint64_t pc, bool correct)
{
    counters_[indexOf(pc)].update(correct);
}

FsmBranchConfidence::FsmBranchConfidence(int log2_entries, const Dfa &fsm)
    : log2Entries_(log2_entries),
      table_(std::make_shared<const FsmTable>(fsm))
{
    assert(log2_entries >= 1 && log2_entries <= 20);
    const size_t n = 1ULL << log2_entries;
    machines_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        machines_.emplace_back(table_);
}

size_t
FsmBranchConfidence::indexOf(uint64_t pc) const
{
    return hashPc(pc, log2Entries_);
}

bool
FsmBranchConfidence::confident(uint64_t pc) const
{
    return machines_[indexOf(pc)].predict() != 0;
}

void
FsmBranchConfidence::update(uint64_t pc, bool correct)
{
    machines_[indexOf(pc)].update(correct ? 1 : 0);
}

double
ConfidenceMetrics::pvp() const
{
    return highConfidence == 0
        ? 0.0
        : static_cast<double>(highAndCorrect) /
            static_cast<double>(highConfidence);
}

double
ConfidenceMetrics::pvn() const
{
    const uint64_t low = branches - highConfidence;
    const uint64_t low_and_wrong =
        (branches - correct) - (highConfidence - highAndCorrect);
    return low == 0 ? 0.0
                    : static_cast<double>(low_and_wrong) /
            static_cast<double>(low);
}

double
ConfidenceMetrics::sensitivity() const
{
    return correct == 0 ? 0.0
                        : static_cast<double>(highAndCorrect) /
            static_cast<double>(correct);
}

double
ConfidenceMetrics::specificity() const
{
    const uint64_t wrong = branches - correct;
    const uint64_t low_and_wrong =
        wrong - (highConfidence - highAndCorrect);
    return wrong == 0 ? 0.0
                      : static_cast<double>(low_and_wrong) /
            static_cast<double>(wrong);
}

ConfidenceMetrics
measureBranchConfidence(BranchPredictor &predictor,
                        BranchConfidenceEstimator &estimator,
                        const BranchTrace &trace)
{
    ConfidenceMetrics metrics;
    for (const auto &record : trace) {
        const bool marked = estimator.confident(record.pc);
        const bool right = predictor.predict(record.pc) == record.taken;

        ++metrics.branches;
        metrics.correct += right;
        metrics.highConfidence += marked;
        metrics.highAndCorrect += marked && right;

        estimator.update(record.pc, right);
        predictor.update(record.pc, record.taken);
    }
    return metrics;
}

void
collectBranchConfidenceModel(BranchPredictor &predictor,
                             const BranchTrace &trace, int log2_entries,
                             MarkovModel &model)
{
    const size_t entries = 1ULL << log2_entries;
    std::vector<uint32_t> history(entries, 0);
    std::vector<int> pushes(entries, 0);

    for (const auto &record : trace) {
        const size_t entry = hashPc(record.pc, log2_entries);
        const bool right = predictor.predict(record.pc) == record.taken;

        if (pushes[entry] >= model.order())
            model.observe(history[entry] & lowMask(model.order()),
                          right ? 1 : 0);

        history[entry] =
            ((history[entry] << 1) | (right ? 1U : 0U)) &
            lowMask(model.order());
        if (pushes[entry] < model.order())
            ++pushes[entry];

        predictor.update(record.pc, record.taken);
    }
}

} // namespace autofsm
