#include "bpred/btb.hh"

#include <cassert>

#include "obs/metrics.hh"
#include "support/bits.hh"

namespace autofsm
{

XScaleBtb::XScaleBtb(const BtbConfig &config, const AreaCosts &costs)
    : config_(config), costs_(costs),
      entries_(static_cast<size_t>(config.entries))
{
    assert(config.entries > 0 &&
           (config.entries & (config.entries - 1)) == 0);
}

size_t
XScaleBtb::indexOf(uint64_t pc) const
{
    // Branches are 4-byte aligned in the synthetic traces.
    return static_cast<size_t>((pc >> 2) &
                               static_cast<uint64_t>(config_.entries - 1));
}

uint64_t
XScaleBtb::tagOf(uint64_t pc) const
{
    const int index_bits = ceilLog2(static_cast<uint32_t>(config_.entries));
    return (pc >> (2 + index_bits)) & lowMask(config_.tagBits);
}

bool
XScaleBtb::hit(uint64_t pc) const
{
    const Entry &entry = entries_[indexOf(pc)];
    return entry.valid && entry.tag == tagOf(pc);
}

bool
XScaleBtb::predict(uint64_t pc) const
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    const Entry &entry = entries_[indexOf(pc)];
    if (!entry.valid || entry.tag != tagOf(pc))
        return false; // BTB miss: predict not-taken
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry.counter.predict();
}

void
XScaleBtb::update(uint64_t pc, bool taken)
{
    Entry &entry = entries_[indexOf(pc)];
    if (entry.valid && entry.tag == tagOf(pc)) {
        entry.counter.update(taken);
        return;
    }
    // Allocate on first contact (or conflict): bias towards the
    // observed direction, starting from the weak state.
    entry.valid = true;
    entry.tag = tagOf(pc);
    entry.counter = SudCounter(SudConfig::twoBit(), taken ? 2 : 1);
}

double
XScaleBtb::entryBits() const
{
    return static_cast<double>(config_.tagBits + config_.targetBits + 2);
}

double
XScaleBtb::area() const
{
    return tableArea(entryBits() * config_.entries, costs_);
}

std::string
XScaleBtb::name() const
{
    return "xscale-btb" + std::to_string(config_.entries);
}

void
publishBtbMetrics(const XScaleBtb &btb)
{
    publishBtbMetrics(btb.name(), btb.lookups(), btb.hits());
}

void
publishBtbMetrics(const std::string &btb_name, uint64_t lookups,
                  uint64_t hits)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (!registry.enabled())
        return;
    const obs::Labels labels = {{"btb", btb_name}};
    registry
        .counter("autofsm_btb_lookups_total",
                 "BTB predict() lookups across simulation passes.", labels)
        .inc(lookups);
    registry
        .counter("autofsm_btb_hits_total",
                 "BTB tag hits among those lookups.", labels)
        .inc(hits);
}

} // namespace autofsm
