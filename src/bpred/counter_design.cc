#include "bpred/counter_design.hh"

#include <unordered_map>

#include "support/history.hh"

namespace autofsm
{

void
collectLocalOutcomeModel(const BranchTrace &trace, MarkovModel &model)
{
    std::unordered_map<uint64_t, HistoryRegister> histories;
    for (const auto &record : trace) {
        auto it = histories.find(record.pc);
        if (it == histories.end()) {
            it = histories.emplace(record.pc,
                                   HistoryRegister(model.order()))
                     .first;
        }
        HistoryRegister &history = it->second;
        if (history.warm())
            model.observe(history.value(), record.taken ? 1 : 0);
        history.push(record.taken ? 1 : 0);
    }
}

FsmDesignResult
designGeneralCounter(const std::vector<BranchTrace> &traces,
                     const FsmDesignOptions &options)
{
    MarkovModel model(options.order);
    for (const BranchTrace &trace : traces)
        collectLocalOutcomeModel(trace, model);
    return designFsm(model, options);
}

} // namespace autofsm
