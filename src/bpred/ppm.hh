/**
 * @file
 * Prediction by Partial Matching (PPM) branch predictor.
 *
 * The data-compression-derived predictor of Chen, Coffey & Mudge
 * (ASPLOS'96), discussed in the paper's prior-work section: M tables
 * indexed by global histories of length 1..M; all tables are searched
 * in parallel and the longest history with sufficient evidence makes
 * the prediction. Included as an additional strong baseline for the
 * Figure 5 comparisons.
 */

#ifndef AUTOFSM_BPRED_PPM_HH
#define AUTOFSM_BPRED_PPM_HH

#include <vector>

#include "bpred/predictor.hh"
#include "synth/area.hh"

namespace autofsm
{

/** PPM geometry. */
struct PpmConfig
{
    /** Longest context length M; tables cover lengths 1..M. */
    int maxOrder = 8;
    /** log2 entries of each per-order table. */
    int log2Entries = 10;
    /** Counter evidence required before a context may predict. */
    int minSamples = 2;
    /** Target-BTB storage charged for comparability. */
    double btbBits = 128.0 * (23 + 32);
};

/** The PPM predictor. */
class PpmPredictor : public BranchPredictor
{
  public:
    explicit PpmPredictor(const PpmConfig &config = {},
                          const AreaCosts &costs = {});

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    double area() const override;
    std::string name() const override;

  private:
    /** Frequency entry: taken/not-taken counts for one context. */
    struct Counts
    {
        uint16_t taken = 0;
        uint16_t notTaken = 0;
    };

    size_t indexOf(uint64_t pc, int order) const;

    PpmConfig config_;
    AreaCosts costs_;
    /** tables_[k] covers history length k+1. */
    std::vector<std::vector<Counts>> tables_;
    uint64_t history_ = 0;
};

} // namespace autofsm

#endif // AUTOFSM_BPRED_PPM_HH
