#include "bpred/gshare.hh"

#include <cassert>

#include "support/bits.hh"

namespace autofsm
{

Gshare::Gshare(const GshareConfig &config, const AreaCosts &costs)
    : config_(config), costs_(costs)
{
    assert(config.log2Entries >= 1 && config.log2Entries <= 24);
    assert(config.historyBits >= 0 &&
           config.historyBits <= config.log2Entries);
    table_.assign(1ULL << config.log2Entries,
                  SudCounter(SudConfig::twoBit(), 1));
}

size_t
Gshare::indexOf(uint64_t pc) const
{
    const uint64_t mask = (1ULL << config_.log2Entries) - 1;
    const uint64_t hist = history_ & ((1ULL << config_.historyBits) - 1);
    return static_cast<size_t>(((pc >> 2) ^ hist) & mask);
}

bool
Gshare::predict(uint64_t pc) const
{
    return table_[indexOf(pc)].predict();
}

void
Gshare::update(uint64_t pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

double
Gshare::area() const
{
    const double counter_bits = 2.0 * static_cast<double>(table_.size());
    return tableArea(counter_bits + config_.btbBits, costs_);
}

std::string
Gshare::name() const
{
    return "gshare-2^" + std::to_string(config_.log2Entries);
}

} // namespace autofsm
