#include "bpred/simulate.hh"

namespace autofsm
{

BpredSimResult
simulateBranchPredictor(BranchPredictor &predictor, const BranchTrace &trace)
{
    BpredSimResult result;
    for (const auto &record : trace) {
        ++result.branches;
        if (predictor.predict(record.pc) != record.taken)
            ++result.mispredicts;
        predictor.update(record.pc, record.taken);
    }
    return result;
}

BpredSimResult
simulateBranchPredictor(BranchPredictor &predictor, const BranchTrace &trace,
                        std::unordered_map<uint64_t, uint64_t> &per_branch)
{
    BpredSimResult result;
    for (const auto &record : trace) {
        ++result.branches;
        if (predictor.predict(record.pc) != record.taken) {
            ++result.mispredicts;
            ++per_branch[record.pc];
        }
        predictor.update(record.pc, record.taken);
    }
    return result;
}

} // namespace autofsm
