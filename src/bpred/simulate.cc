#include "bpred/simulate.hh"

#include "obs/metrics.hh"

namespace autofsm
{

/*
 * Counters are registered per predictor name (bounded label
 * cardinality: one per swept configuration) and bumped once per run,
 * so the per-branch hot loop stays untouched.
 */
void
publishBpredRun(const std::string &predictor_name,
                const BpredSimResult &result)
{
    obs::MetricsRegistry &registry = obs::globalMetrics();
    if (!registry.enabled())
        return;
    const obs::Labels labels = {{"predictor", predictor_name}};
    registry
        .counter("autofsm_bpred_branches_total",
                 "Dynamic branches simulated.", labels)
        .inc(result.branches);
    registry
        .counter("autofsm_bpred_mispredicts_total",
                 "Mispredicted dynamic branches.", labels)
        .inc(result.mispredicts);
}

BpredSimResult
simulateBranchPredictor(BranchPredictor &predictor, const BranchTrace &trace)
{
    BpredSimResult result;
    for (const auto &record : trace) {
        ++result.branches;
        if (predictor.predict(record.pc) != record.taken)
            ++result.mispredicts;
        predictor.update(record.pc, record.taken);
    }
    publishBpredRun(predictor.name(), result);
    return result;
}

BpredSimResult
simulateBranchPredictor(BranchPredictor &predictor, const BranchTrace &trace,
                        std::unordered_map<uint64_t, uint64_t> &per_branch)
{
    BpredSimResult result;
    for (const auto &record : trace) {
        ++result.branches;
        if (predictor.predict(record.pc) != record.taken) {
            ++result.mispredicts;
            ++per_branch[record.pc];
        }
        predictor.update(record.pc, record.taken);
    }
    publishBpredRun(predictor.name(), result);
    return result;
}

} // namespace autofsm
