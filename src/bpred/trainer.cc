#include "bpred/trainer.hh"

#include <algorithm>
#include <unordered_map>

#include "support/history.hh"

namespace autofsm
{

std::vector<std::pair<uint64_t, uint64_t>>
profileBaselineMisses(const BranchTrace &trace, const BtbConfig &baseline)
{
    XScaleBtb btb(baseline);
    std::unordered_map<uint64_t, uint64_t> misses;
    for (const auto &record : trace) {
        if (btb.predict(record.pc) != record.taken)
            ++misses[record.pc];
        btb.update(record.pc, record.taken);
    }

    std::vector<std::pair<uint64_t, uint64_t>> ranked(misses.begin(),
                                                      misses.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first; // deterministic tie-break
              });
    return ranked;
}

std::vector<TrainedBranch>
trainCustomPredictors(const BranchTrace &trace,
                      const CustomTrainingOptions &options)
{
    const auto ranked = profileBaselineMisses(trace, options.baseline);
    const size_t count = std::min(
        ranked.size(), static_cast<size_t>(options.maxCustomBranches));

    // Second pass: one Markov model per selected branch, fed with the
    // global history register content at each execution of that branch.
    std::unordered_map<uint64_t, MarkovModel> models;
    for (size_t i = 0; i < count; ++i)
        models.emplace(ranked[i].first, MarkovModel(options.historyLength));

    HistoryRegister global(options.historyLength);
    for (const auto &record : trace) {
        if (global.warm()) {
            const auto it = models.find(record.pc);
            if (it != models.end())
                it->second.observe(global.value(), record.taken ? 1 : 0);
        }
        global.push(record.taken ? 1 : 0);
    }

    std::vector<TrainedBranch> trained;
    trained.reserve(count);
    FsmDesignOptions design;
    design.order = options.historyLength;
    design.patterns = options.patterns;
    design.minimizer = options.minimizer;
    for (size_t i = 0; i < count; ++i) {
        TrainedBranch branch;
        branch.pc = ranked[i].first;
        branch.baselineMisses = ranked[i].second;
        branch.design = designFsm(models.at(branch.pc), design);
        trained.push_back(std::move(branch));
    }
    return trained;
}

} // namespace autofsm
